"""Unit tests for the global block cache."""

import pytest

from repro.lsm.block import Block
from repro.lsm.blockcache import BlockCache


def block(n=1):
    return Block([f"k{i}".encode() for i in range(n)], [b"v"] * n)


def test_get_miss_then_hit():
    cache = BlockCache(1000)
    assert cache.get(1, 0) is None
    cache.put(1, 0, block(), 100)
    assert cache.get(1, 0) is not None
    assert cache.hits == 1
    assert cache.misses == 1


def test_capacity_evicts_lru():
    cache = BlockCache(250)
    cache.put(1, 0, block(), 100)
    cache.put(1, 1, block(), 100)
    cache.get(1, 0)  # touch: 0 becomes most-recent
    cache.put(1, 2, block(), 100)  # evicts (1,1)
    assert cache.get(1, 1) is None
    assert cache.get(1, 0) is not None
    assert cache.used_bytes <= 250


def test_replace_updates_bytes():
    cache = BlockCache(1000)
    cache.put(1, 0, block(), 100)
    cache.put(1, 0, block(), 300)
    assert cache.used_bytes == 300


def test_evict_table_drops_all_its_blocks():
    cache = BlockCache(1000)
    cache.put(1, 0, block(), 100)
    cache.put(1, 1, block(), 100)
    cache.put(2, 0, block(), 100)
    cache.evict_table(1)
    assert cache.get(1, 0) is None
    assert cache.get(2, 0) is not None
    assert cache.used_bytes == 100


def test_clear():
    cache = BlockCache(1000)
    cache.put(1, 0, block(), 100)
    cache.clear()
    assert cache.used_bytes == 0
    assert cache.get(1, 0) is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        BlockCache(-1)


def test_zero_capacity_caches_nothing_lasting():
    cache = BlockCache(0)
    cache.put(1, 0, block(), 100)
    assert cache.used_bytes == 0
