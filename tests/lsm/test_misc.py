"""Unit tests for file naming, table cache and the lazy executor."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.background import LazyExecutor
from repro.lsm.filenames import (
    current_file_name,
    log_file_name,
    manifest_file_name,
    parse_file_name,
    table_file_name,
    temp_file_name,
)
from repro.lsm.format import TYPE_VALUE, make_internal_key
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder
from repro.lsm.tablecache import TableCache


# ----------------------------------------------------------------------
# filenames
# ----------------------------------------------------------------------

def test_file_names():
    assert table_file_name("db", 7) == "db/000007.ldb"
    assert log_file_name("db", 12) == "db/000012.log"
    assert manifest_file_name("db", 3) == "db/MANIFEST-000003"
    assert current_file_name("db") == "db/CURRENT"
    assert temp_file_name("db", 9) == "db/000009.dbtmp"


@pytest.mark.parametrize(
    "path,expected",
    [
        ("db/000007.ldb", ("table", 7)),
        ("db/000012.log", ("log", 12)),
        ("db/MANIFEST-000003", ("manifest", 3)),
        ("db/CURRENT", ("current", None)),
        ("db/000009.dbtmp", ("temp", 9)),
        ("db/garbage.txt", ("unknown", None)),
        ("db/MANIFEST-xyz", ("unknown", None)),
        ("other/000007.ldb", ("unknown", None)),
    ],
)
def test_parse_file_name(path, expected):
    assert parse_file_name("db", path) == expected


# ----------------------------------------------------------------------
# table cache
# ----------------------------------------------------------------------

def build_table(stack, number):
    path = table_file_name("db", number)
    builder = TableBuilder(stack.fs, path, Options(), at=0, number=number)
    builder.add(make_internal_key(b"key", 1, TYPE_VALUE), b"v")
    builder.finish(at=0)


def test_table_cache_opens_once():
    stack = StorageStack()
    build_table(stack, 1)
    cache = TableCache(stack.fs, "db")
    table1, t = cache.get_table(1, at=0)
    table2, t = cache.get_table(1, at=t)
    assert table1 is table2
    assert cache.opens == 1


def test_table_cache_evicts_lru():
    stack = StorageStack()
    for number in (1, 2, 3):
        build_table(stack, number)
    cache = TableCache(stack.fs, "db", capacity=2)
    t = 0
    _, t = cache.get_table(1, at=t)
    _, t = cache.get_table(2, at=t)
    _, t = cache.get_table(3, at=t)  # evicts 1
    _, t = cache.get_table(1, at=t)  # reopens
    assert cache.opens == 4


def test_table_cache_explicit_evict():
    stack = StorageStack()
    build_table(stack, 1)
    cache = TableCache(stack.fs, "db")
    _, t = cache.get_table(1, at=0)
    cache.evict(1)
    _, t = cache.get_table(1, at=t)
    assert cache.opens == 2


def test_table_cache_rejects_bad_capacity():
    stack = StorageStack()
    with pytest.raises(ValueError):
        TableCache(stack.fs, "db", capacity=0)


# ----------------------------------------------------------------------
# lazy executor
# ----------------------------------------------------------------------

def test_executor_serializes_on_one_thread():
    bg = LazyExecutor(1)
    first = bg.execute(0, lambda start: start + 100)
    second = bg.execute(0, lambda start: start + 50)
    assert first == 100
    assert second == 150  # waited for the first job


def test_executor_ready_time_respected():
    bg = LazyExecutor(1)
    done = bg.execute(500, lambda start: start + 10)
    assert done == 510


def test_executor_parallel_threads():
    bg = LazyExecutor(2)
    first = bg.execute(0, lambda start: start + 100)
    second = bg.execute(0, lambda start: start + 100)
    assert first == 100
    assert second == 100  # ran on the other thread


def test_executor_nested_submission_never_rewinds():
    bg = LazyExecutor(1)

    def outer(start):
        inner_done = bg.execute(start + 80, lambda s: s + 100)
        assert inner_done == start + 180
        return start + 80

    bg.execute(0, outer)
    assert bg.earliest_free() == 180  # keeps the nested job's time


def test_executor_rejects_time_travel():
    bg = LazyExecutor(1)
    with pytest.raises(RuntimeError):
        bg.execute(100, lambda start: start - 1)


def test_executor_accounting():
    bg = LazyExecutor(1)
    bg.execute(0, lambda start: start + 100)
    bg.execute(0, lambda start: start + 50)
    assert bg.jobs == 2
    assert bg.busy_ns == 150
    assert bg.idle_at(150)
    assert not bg.idle_at(149)


def test_executor_rejects_zero_threads():
    with pytest.raises(ValueError):
        LazyExecutor(0)
