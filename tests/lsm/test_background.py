"""Unit tests for the lazy background executor."""

import pytest

from repro.lsm.background import LazyExecutor


def test_rejects_zero_threads():
    with pytest.raises(ValueError):
        LazyExecutor(0)


def test_single_thread_serializes_jobs():
    ex = LazyExecutor(1)
    ex.execute(0, lambda start: start + 100)
    # second job is ready at t=10 but the thread is busy until 100
    starts = []

    def job(start):
        starts.append(start)
        return start + 50

    done = ex.execute(10, job)
    assert starts == [100]
    assert done == 150
    assert ex.jobs == 2
    assert ex.busy_ns == 150


def test_job_starts_no_earlier_than_ready():
    ex = LazyExecutor(1)
    done = ex.execute(500, lambda start: start + 1)
    assert done == 501
    assert ex.earliest_free() == 501


def test_least_loaded_thread_is_selected():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 1000)  # thread 0 busy until 1000
    starts = []

    def job(start):
        starts.append(start)
        return start + 10

    ex.execute(0, job)  # should land on the idle thread 1
    assert starts == [0]
    assert sorted(ex._free_at) == [10, 1000]
    assert ex.earliest_free() == 10
    assert ex.latest_free() == 1000


def test_work_going_backwards_raises():
    ex = LazyExecutor(1)
    with pytest.raises(RuntimeError, match="backwards"):
        ex.execute(100, lambda start: start - 1)


def test_nested_followups_never_rewind_free_at():
    """A job that recursively executes follow-up work may advance the
    thread past its own completion; the outer bookkeeping must not
    rewind the watermark."""
    ex = LazyExecutor(1)

    def outer(start):
        # nested follow-up runs on the same thread and finishes later
        ex.execute(start, lambda s: s + 1000)
        return start + 10  # outer job itself is short

    done = ex.execute(0, outer)
    assert done == 10
    assert ex.earliest_free() == 1000  # not rewound to 10
    assert ex.jobs == 2


def test_idle_at_tracks_all_threads():
    ex = LazyExecutor(2)
    assert ex.idle_at(0)
    ex.execute(0, lambda start: start + 100)
    assert not ex.idle_at(50)
    assert ex.idle_at(100)


# ----------------------------------------------------------------------
# multi-thread scheduling: pinning, attribution, stalls
# ----------------------------------------------------------------------


def test_thread_pinning_overrides_least_loaded():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 1000)  # thread 0 busy until 1000
    starts = []

    def job(start):
        starts.append(start)
        return start + 10

    ex.execute(0, job, thread=0)  # pinned behind the busy thread
    assert starts == [1000]
    assert ex.free_at(0) == 1010
    assert ex.free_at(1) == 0


def test_per_thread_attribution():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 100)  # thread 0
    ex.execute(0, lambda start: start + 40)  # thread 1
    ex.execute(0, lambda start: start + 5, thread=0)
    assert ex.thread_jobs == [2, 1]
    assert ex.thread_busy_ns == [105, 40]
    assert ex.jobs == 3
    assert ex.busy_ns == 145


def test_stall_accounting_when_all_threads_busy():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 100)
    ex.execute(0, lambda start: start + 100)
    assert ex.stall_ns == 0
    # both threads busy until 100: a job ready at 30 stalls 70 ns
    ex.execute(30, lambda start: start + 10)
    assert ex.stall_ns == 70


def test_next_start_previews_the_schedule():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 100)
    assert ex.next_start(0) == 0  # thread 1 still idle
    ex.execute(0, lambda start: start + 60)
    assert ex.next_start(0) == 60  # earliest-free thread
    assert ex.next_start(500) == 500  # ready dominates


def test_snapshot_includes_threads_and_stalls():
    ex = LazyExecutor(2)
    ex.execute(0, lambda start: start + 100)
    snap = ex.snapshot()
    assert snap["threads"] == 2
    assert snap["thread_jobs"] == [1, 0]
    assert snap["thread_busy_ns"] == [100, 0]
    assert snap["stall_ns"] == 0


def test_obs_wiring_records_stalls():
    from repro.obs.metrics import MetricRegistry

    obs = MetricRegistry()
    ex = LazyExecutor(1, obs=obs, name="bg.test")
    ex.execute(0, lambda start: start + 100)
    ex.execute(20, lambda start: start + 10)  # stalls 80 ns
    assert obs.counter("bg.stall_ns").value == 80
    assert obs.find_histogram("bg.queue_ns").count == 2
    assert "bg.test" in obs._sources
