"""Unit tests for store options and scaling."""

import pytest

from repro.lsm.options import KIB, MIB, Options, SyncPolicy, level_file_limits


def test_defaults_match_paper_setup():
    options = Options()
    assert options.write_buffer_size == 64 * MIB
    assert options.max_file_size == 64 * MIB
    assert options.l0_compaction_trigger == 4
    assert options.l0_slowdown_writes_trigger == 8
    assert options.l0_stop_writes_trigger == 12


def test_default_sync_policy_is_stock_leveldb():
    policy = SyncPolicy()
    assert policy.sync_minor and policy.sync_major and policy.sync_manifest
    assert not policy.sync_wal
    assert not policy.nob_commit


def test_level_limits_multiply():
    options = Options(max_bytes_for_level_base=10 * MIB, level_multiplier=10)
    assert options.max_bytes_for_level(1) == 10 * MIB
    assert options.max_bytes_for_level(2) == 100 * MIB
    assert options.max_bytes_for_level(3) == 1000 * MIB


def test_level_zero_has_no_byte_limit():
    with pytest.raises(ValueError):
        Options().max_bytes_for_level(0)


def test_level_file_limits_helper():
    options = Options(num_levels=4, max_bytes_for_level_base=100)
    assert level_file_limits(options) == [100.0, 1000.0, 10000.0]


def test_scaled_shrinks_capacities_not_block():
    options = Options().scaled(1000)
    assert options.write_buffer_size == 64 * MIB // 1000
    assert options.max_file_size == 64 * MIB // 1000
    assert options.block_size == Options().block_size
    assert options.max_bytes_for_level_base == 10 * MIB // 1000


def test_scaled_floors():
    options = Options().scaled(10**9)
    assert options.write_buffer_size == 4 * KIB
    assert options.max_file_size == 4 * KIB
    assert options.max_bytes_for_level_base == 2 * KIB


def test_scaled_rejects_below_one():
    with pytest.raises(ValueError):
        Options().scaled(0.5)


def test_scaled_copies_sync_policy():
    base = Options()
    scaled = base.scaled(10)
    scaled.sync.sync_minor = False
    assert base.sync.sync_minor  # not shared


def test_compaction_limits_track_file_size():
    options = Options(max_file_size=1 * MIB)
    assert options.expanded_compaction_limit() == 25 * MIB
    assert options.grandparent_overlap_limit() == 10 * MIB


def test_validate_accepts_defaults_and_scaled():
    Options().validate()
    Options().scaled(1000).validate()


@pytest.mark.parametrize(
    "field,value",
    [
        ("write_buffer_size", 0),
        ("max_file_size", -1),
        ("block_size", 0),
        ("num_levels", 1),
        ("level_multiplier", 1),
        ("l0_compaction_trigger", 0),
        ("background_threads", 0),
        ("reclaim_interval_ns", 0),
    ],
)
def test_validate_rejects_bad_values(field, value):
    options = Options()
    setattr(options, field, value)
    with pytest.raises(ValueError):
        options.validate()


def test_validate_rejects_inverted_triggers():
    options = Options(
        l0_compaction_trigger=10,
        l0_slowdown_writes_trigger=8,
        l0_stop_writes_trigger=12,
    )
    with pytest.raises(ValueError):
        options.validate()
