"""Unit tests for the bloom filter."""

from repro.lsm.bloom import BloomFilter


def keys(n, prefix="key"):
    return [f"{prefix}{i:06d}".encode() for i in range(n)]


def test_no_false_negatives():
    members = keys(2000)
    bloom = BloomFilter.build(members, bits_per_key=10)
    assert all(bloom.may_contain(k) for k in members)


def test_false_positive_rate_reasonable():
    bloom = BloomFilter.build(keys(2000), bits_per_key=10)
    probes = keys(10000, prefix="other")
    false_positives = sum(1 for k in probes if bloom.may_contain(k))
    # 10 bits/key gives ~1% FP in theory; allow generous slack
    assert false_positives / len(probes) < 0.05


def test_more_bits_fewer_false_positives():
    members = keys(2000)
    probes = keys(5000, prefix="probe")
    small = BloomFilter.build(members, bits_per_key=4)
    large = BloomFilter.build(members, bits_per_key=16)
    fp_small = sum(1 for k in probes if small.may_contain(k))
    fp_large = sum(1 for k in probes if large.may_contain(k))
    assert fp_large <= fp_small


def test_empty_filter():
    bloom = BloomFilter.build([], bits_per_key=10)
    # an empty filter may answer anything but must not crash
    bloom.may_contain(b"anything")


def test_encode_decode_roundtrip():
    members = keys(500)
    bloom = BloomFilter.build(members, bits_per_key=10)
    decoded = BloomFilter.decode(bloom.encode())
    assert decoded.k == bloom.k
    assert all(decoded.may_contain(k) for k in members)


def test_decode_empty():
    bloom = BloomFilter.decode(b"")
    assert not bloom.may_contain(b"x")


def test_single_key():
    bloom = BloomFilter.build([b"lonely"], bits_per_key=10)
    assert bloom.may_contain(b"lonely")
