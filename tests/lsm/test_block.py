"""Unit tests for data blocks."""

import pytest

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.format import CorruptionError


def test_build_and_decode_roundtrip():
    builder = BlockBuilder()
    entries = [(f"key{i:04d}".encode(), f"value{i}".encode()) for i in range(50)]
    for key, value in entries:
        builder.add(key, value)
    block = Block.decode(builder.finish())
    assert block.entries() == entries


def test_empty_block():
    builder = BlockBuilder()
    assert builder.empty
    block = Block.decode(builder.finish())
    assert len(block) == 0


def test_ordering_is_callers_contract():
    """Blocks accept any order (internal-key order != raw byte order);
    the table builder validates with the internal comparator."""
    builder = BlockBuilder()
    builder.add(b"b", b"1")
    builder.add(b"a", b"2")  # accepted: caller is responsible
    block = Block.decode(builder.finish())
    assert block.entries() == [(b"b", b"1"), (b"a", b"2")]


def test_size_estimate_tracks_content():
    builder = BlockBuilder()
    assert builder.size_estimate == 4  # trailer only
    builder.add(b"key", b"value")
    assert builder.size_estimate > 4


def test_finish_resets_builder():
    builder = BlockBuilder()
    builder.add(b"a", b"1")
    builder.finish()
    assert builder.empty
    builder.add(b"a", b"1")  # same key fine after reset
    block = Block.decode(builder.finish())
    assert block.entries() == [(b"a", b"1")]


def test_decode_truncated_raises():
    builder = BlockBuilder()
    builder.add(b"key", b"value")
    data = builder.finish()
    with pytest.raises(CorruptionError):
        Block.decode(data[: len(data) // 2])
    with pytest.raises(CorruptionError):
        Block.decode(b"xy")


def test_decode_trailing_garbage_raises():
    builder = BlockBuilder()
    builder.add(b"key", b"value")
    data = builder.finish()
    with pytest.raises(CorruptionError):
        Block.decode(b"junk" + data)


def test_empty_values_allowed():
    builder = BlockBuilder()
    builder.add(b"tombstone", b"")
    block = Block.decode(builder.finish())
    assert block.entries() == [(b"tombstone", b"")]


def test_binary_keys_and_values():
    builder = BlockBuilder()
    entries = [(bytes([0, i]), bytes(range(i % 64))) for i in range(1, 64)]
    for key, value in entries:
        builder.add(key, value)
    block = Block.decode(builder.finish())
    assert block.entries() == entries
