"""Unit tests for the virtual-time compaction token bucket."""

import pytest

from repro.lsm.ratelimit import NS_PER_SEC, CompactionRateLimiter


def test_constructor_validates_rates():
    with pytest.raises(ValueError):
        CompactionRateLimiter(0)
    with pytest.raises(ValueError):
        CompactionRateLimiter(-5)
    with pytest.raises(ValueError):
        CompactionRateLimiter(100, burst_bytes=-1)


def test_default_burst_is_one_second_of_tokens():
    rl = CompactionRateLimiter(1000)
    assert rl.burst_bytes == 1000
    assert rl.tokens_at(0) == 1000


def test_admit_within_burst_starts_at_ready():
    rl = CompactionRateLimiter(1000, burst_bytes=500)
    start = rl.admit(ready=100, nbytes=300)
    assert start == 100
    assert rl.admitted_jobs == 1
    assert rl.admitted_bytes == 300
    assert rl.throttled_jobs == 0
    assert rl.tokens_at(100) == 200


def test_admit_beyond_tokens_pushes_start_out():
    rl = CompactionRateLimiter(1000, burst_bytes=1000)
    rl.admit(ready=0, nbytes=900)  # leave 100 tokens
    # a 600-byte job must wait for 500 more bytes at 1000 B/s
    start = rl.admit(ready=0, nbytes=600)
    assert start == NS_PER_SEC // 2
    assert rl.throttled_jobs == 1
    assert rl.throttle_ns == start
    # the debit happened at the granted start: bucket is empty there
    assert rl.tokens_at(start) == 0


def test_job_larger_than_burst_overdraws_after_full_refill():
    # the bucket clamps at burst, so a job bigger than the whole bucket
    # waits for the *deficit* to refill, then borrows the rest — the
    # negative balance pushes later jobs out instead of stalling this
    # one forever
    rl = CompactionRateLimiter(1000, burst_bytes=100)
    start = rl.admit(ready=0, nbytes=600)
    assert start == NS_PER_SEC // 2
    assert rl.tokens_at(start) == -500
    follow = rl.peek(ready=start, nbytes=100)
    assert follow > start


def test_admit_ceil_divides_so_bucket_never_goes_short():
    # 3 B/s with a 1-byte deficit: wait must round UP to a whole token
    rl = CompactionRateLimiter(3, burst_bytes=1)
    rl.admit(ready=0, nbytes=1)  # drain the bucket
    start = rl.admit(ready=0, nbytes=1)
    # 1 byte at 3 B/s = 333333333.33.. ns, ceil -> 333333334
    assert start == (1 * NS_PER_SEC + 2) // 3
    assert rl.tokens_at(start) >= 0


def test_refill_carries_fractional_remainder():
    rl = CompactionRateLimiter(3, burst_bytes=10)
    rl.admit(ready=0, nbytes=10)  # empty at t=0
    # refill in steps too small to mint whole tokens must not lose the
    # fraction: after a full second in 10 uneven steps the bucket holds
    # exactly rate * 1s tokens
    t = 0
    for step in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
        t += step * NS_PER_SEC // 55
    rl.tokens_at(t)
    assert rl.tokens_at(NS_PER_SEC) == 3


def test_refill_clamps_at_burst():
    rl = CompactionRateLimiter(1000, burst_bytes=50)
    rl.admit(ready=0, nbytes=50)
    assert rl.tokens_at(10 * NS_PER_SEC) == 50


def test_urgent_admit_starts_at_ready_and_overdraws():
    rl = CompactionRateLimiter(1000, burst_bytes=100)
    start = rl.admit(ready=0, nbytes=400, urgent=True)
    assert start == 0
    assert rl.bypassed_jobs == 1
    assert rl.bypassed_bytes == 400
    # the overdraft is real: the bucket went negative and pushes
    # later non-urgent work further out than an empty bucket would
    assert rl.tokens_at(0) == -300
    follow = rl.admit(ready=0, nbytes=100)
    assert follow == (400 * NS_PER_SEC + 999) // 1000


def test_urgent_with_enough_tokens_is_not_a_bypass():
    rl = CompactionRateLimiter(1000, burst_bytes=500)
    rl.admit(ready=0, nbytes=200, urgent=True)
    assert rl.bypassed_jobs == 0


def test_peek_matches_admit_without_consuming():
    rl = CompactionRateLimiter(1000, burst_bytes=100)
    rl.admit(ready=0, nbytes=100)  # empty the bucket
    first = rl.peek(ready=0, nbytes=50)
    second = rl.peek(ready=0, nbytes=50)
    assert first == second  # peek is idempotent
    granted = rl.admit(ready=0, nbytes=50)
    assert granted == first
    assert rl.peek(ready=0, nbytes=50, urgent=True) == 0


def test_note_held_counts_pressure():
    rl = CompactionRateLimiter(1000)
    rl.note_held()
    rl.note_held()
    assert rl.held_jobs == 2
    # hold-backs never touch admission accounting
    assert rl.admitted_jobs == 0 and rl.throttled_jobs == 0


def test_negative_bytes_rejected():
    rl = CompactionRateLimiter(1000)
    with pytest.raises(ValueError):
        rl.admit(0, -1)
    with pytest.raises(ValueError):
        rl.peek(0, -1)


def test_snapshot_has_the_stats_contract_keys():
    rl = CompactionRateLimiter(1000, burst_bytes=100, fair=True)
    rl.admit(0, 100)
    rl.admit(0, 50)
    rl.note_held()
    snap = rl.snapshot()
    assert snap["bytes_per_sec"] == 1000
    assert snap["burst_bytes"] == 100
    assert snap["fair"] is True
    assert snap["admitted_jobs"] == 2
    assert snap["admitted_bytes"] == 150
    assert snap["throttled_jobs"] == 1
    assert snap["throttle_ns"] > 0
    assert snap["held_jobs"] == 1
    assert snap["bypassed_jobs"] == 0


def test_sequence_is_deterministic():
    def drive(rl):
        out = []
        t = 0
        for i in range(50):
            t += 7_000_000 * (i % 5 + 1)
            out.append(rl.admit(t, 1000 * (i % 7), urgent=(i % 11 == 0)))
        return out

    a = drive(CompactionRateLimiter(100_000, burst_bytes=10_000, fair=True))
    b = drive(CompactionRateLimiter(100_000, burst_bytes=10_000, fair=True))
    assert a == b
