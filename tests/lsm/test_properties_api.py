"""Unit tests for GetProperty / GetApproximateSizes."""

import random

import pytest

from repro.bench.harness import ScaledConfig


def filled(n=800, seed=1):
    config = ScaledConfig(scale=5000)
    stack, db = config.build_store("leveldb")
    rng = random.Random(seed)
    t = 0
    for _ in range(n):
        key = f"key{rng.randrange(n):05d}".encode()
        t = db.put(key, b"v" * 200, at=t)
    t = db.wait_for_background(t)
    return db, t


def test_num_files_at_level():
    db, t = filled()
    total = 0
    for level in range(db.options.num_levels):
        value = db.get_property(f"leveldb.num-files-at-level{level}")
        assert value is not None
        total += int(value)
    assert total == len(db.versions.current.all_file_numbers())


def test_num_files_bad_level():
    db, t = filled(n=50)
    assert db.get_property("leveldb.num-files-at-level99") is None
    assert db.get_property("leveldb.num-files-at-levelX") is None


def test_stats_property():
    db, t = filled()
    stats = db.get_property("leveldb.stats")
    assert "Compactions" in stats
    assert "Level" in stats


def test_sstables_property_lists_files():
    db, t = filled()
    listing = db.get_property("leveldb.sstables")
    for number in db.versions.current.all_file_numbers():
        assert str(number) in listing


def test_memory_usage_property():
    db, t = filled()
    usage = int(db.get_property("leveldb.approximate-memory-usage"))
    assert usage >= db.mem.approximate_memory_usage


def test_unknown_property_returns_none():
    db, t = filled(n=50)
    assert db.get_property("leveldb.nope") is None
    assert db.get_property("rocksdb.stats") is None


def test_approximate_sizes_covers_everything():
    db, t = filled()
    (size,) = db.get_approximate_sizes([(b"key00000", b"kez")])
    live_bytes = sum(
        f.file_size
        for files in db.versions.current.files
        for f in files
    )
    assert size == live_bytes


def test_approximate_sizes_partial_ranges():
    db, t = filled()
    whole, = db.get_approximate_sizes([(b"key00000", b"kez")])
    first_half, second_half = db.get_approximate_sizes(
        [(b"key00000", b"key00400"), (b"key00400", b"kez")]
    )
    assert 0 < first_half < whole
    assert 0 < second_half < whole
    assert first_half + second_half == pytest.approx(whole, rel=0.25)


def test_approximate_sizes_empty_range():
    db, t = filled()
    (size,) = db.get_approximate_sizes([(b"zzz", b"zzzz")])
    assert size == 0


def test_approximate_sizes_rejects_inverted():
    db, t = filled(n=50)
    with pytest.raises(ValueError):
        db.get_approximate_sizes([(b"b", b"a")])
