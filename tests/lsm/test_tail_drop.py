"""Regression: a corrupt WAL tail is counted, not silently swallowed.

``LogReader.dropped_tail`` always knew when it discarded a torn or
corrupt tail, but neither the DB open path nor the repairer surfaced
it — recovery looked identical whether the WAL replayed cleanly or
lost records. These tests pin the propagation into ``DBStats``, the
``wal.tail_dropped`` observability counter and ``RepairResult``.
"""

import pytest

from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.filenames import parse_file_name
from repro.lsm.options import Options
from repro.lsm.repair import repair_db
from repro.obs.metrics import MetricRegistry


@pytest.fixture()
def stack():
    return StorageStack(StackConfig(obs=MetricRegistry()))


def fill_and_corrupt_wal(stack, keys=8):
    """Write a WAL, close the store, then smash garbage onto its tail."""
    db = DB(stack, options=Options())
    t = 0
    for i in range(keys):
        t = db.put(f"key{i}".encode(), f"value{i}".encode(), at=t)
    t = db.close(t)
    logs = [
        path
        for path in stack.fs.list_dir("db/")
        if parse_file_name("db", path)[0] == "log"
    ]
    assert len(logs) == 1
    handle, t = stack.fs.open(logs[0], at=t)
    return handle.append(b"\xff" * 12, at=t)


def test_open_counts_dropped_tail(stack):
    fill_and_corrupt_wal(stack)
    db = DB(stack, options=Options())
    assert db.stats.wal_tail_drops == 1
    assert db.stats.recovered_records == 8  # intact prefix fully replayed
    value, _ = db.get(b"key7", at=stack.now)
    assert value == b"value7"
    assert stack.obs.counter("wal.tail_dropped").value == 1
    assert db.stats.snapshot()["wal_tail_drops"] == 1


def test_clean_open_counts_nothing(stack):
    db = DB(stack, options=Options())
    t = db.put(b"k", b"v", at=0)
    t = db.close(t)
    db = DB(stack, options=Options())
    assert db.stats.wal_tail_drops == 0
    assert stack.obs.counter("wal.tail_dropped").value == 0


def test_repair_counts_dropped_tail(stack):
    t = fill_and_corrupt_wal(stack)
    result, t = repair_db(stack.fs, "db", Options(), at=t)
    assert result.tail_drops == 1
    assert result.records_recovered == 8
    assert "tail_drops=1" in repr(result)
    assert stack.obs.counter("wal.tail_dropped").value == 1
    db = DB(stack, options=Options())
    value, _ = db.get(b"key0", at=stack.now)
    assert value == b"value0"
