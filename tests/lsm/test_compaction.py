"""Unit tests for compaction picking and output geometry."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.compaction import (
    Compaction,
    OutputCutter,
    pick_seek_compaction,
    pick_size_compaction,
)
from repro.lsm.format import TYPE_VALUE, make_internal_key
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version, VersionSet


def ikey(user, seq=10):
    return make_internal_key(user, seq, TYPE_VALUE)


def meta(number, lo, hi, size=1000):
    return FileMetaData(
        number=number, file_size=size, smallest=ikey(lo), largest=ikey(hi)
    )


def make_versions(stack, options=None):
    return VersionSet(stack.fs, "db", options or Options())


@pytest.fixture()
def stack():
    return StorageStack()


def test_no_compaction_when_all_scores_low(stack):
    versions = make_versions(stack)
    assert pick_size_compaction(versions, versions.options) is None


def test_l0_compaction_picks_all_overlapping(stack):
    versions = make_versions(stack)
    version = Version(7)
    version.files[0] = [
        meta(1, b"a", b"m"),
        meta(2, b"g", b"z"),
        meta(3, b"a", b"c"),
        meta(4, b"x", b"z"),
    ]
    versions.current = version
    compaction = pick_size_compaction(versions, versions.options)
    assert compaction is not None
    assert compaction.level == 0
    assert sorted(f.number for f in compaction.inputs) == [1, 2, 3, 4]


def test_level1_compaction_includes_next_level_overlap(stack):
    options = Options(max_bytes_for_level_base=1000)
    versions = make_versions(stack, options)
    version = Version(7)
    version.files[1] = [meta(1, b"a", b"m", size=5000)]
    version.files[2] = [meta(2, b"a", b"f"), meta(3, b"g", b"p"), meta(4, b"q", b"z")]
    versions.current = version
    compaction = pick_size_compaction(versions, options)
    assert compaction.level == 1
    assert [f.number for f in compaction.inputs] == [1]
    assert sorted(f.number for f in compaction.overlaps) == [2, 3]


def test_compact_pointer_round_robins(stack):
    options = Options(max_bytes_for_level_base=100)
    versions = make_versions(stack, options)
    version = Version(7)
    version.files[1] = [meta(1, b"a", b"c", 400), meta(2, b"d", b"f", 400)]
    versions.current = version
    first = pick_size_compaction(versions, options)
    assert [f.number for f in first.inputs] == [1]
    # pointer advanced past file 1's range: next pick starts at file 2
    second = pick_size_compaction(versions, options)
    assert [f.number for f in second.inputs] == [2]
    # wraps around when the pointer passes the last file
    third = pick_size_compaction(versions, options)
    assert [f.number for f in third.inputs] == [1]


def test_trivial_move_detection(stack):
    options = Options()
    compaction = Compaction(level=1, inputs=[meta(1, b"a", b"c")], overlaps=[])
    assert compaction.is_trivial_move(options)
    with_overlap = Compaction(
        level=1, inputs=[meta(1, b"a", b"c")], overlaps=[meta(2, b"b", b"d")]
    )
    assert not with_overlap.is_trivial_move(options)
    two_inputs = Compaction(
        level=1, inputs=[meta(1, b"a", b"c"), meta(2, b"d", b"f")], overlaps=[]
    )
    assert not two_inputs.is_trivial_move(options)


def test_trivial_move_blocked_by_grandparents(stack):
    options = Options(max_file_size=1000)
    heavy_grandparents = [
        meta(i, b"a", b"c", size=5000) for i in range(10, 20)
    ]
    compaction = Compaction(
        level=1,
        inputs=[meta(1, b"a", b"c")],
        overlaps=[],
        grandparents=heavy_grandparents,
    )
    assert not compaction.is_trivial_move(options)


def test_seek_compaction_for_live_file(stack):
    versions = make_versions(stack)
    version = Version(7)
    target = meta(5, b"d", b"f")
    version.files[1] = [target]
    version.files[2] = [meta(6, b"a", b"z")]
    versions.current = version
    compaction = pick_seek_compaction(versions, versions.options, 1, target)
    assert compaction is not None
    assert compaction.is_seek
    assert [f.number for f in compaction.inputs] == [5]
    assert [f.number for f in compaction.overlaps] == [6]


def test_seek_compaction_skips_stale_file(stack):
    versions = make_versions(stack)
    versions.current = Version(7)
    ghost = meta(5, b"d", b"f")
    assert pick_seek_compaction(versions, versions.options, 1, ghost) is None


def test_seek_compaction_rejects_last_level(stack):
    options = Options(num_levels=3)
    versions = make_versions(stack, options)
    target = meta(5, b"d", b"f")
    versions.current = Version(3)
    versions.current.files[2] = [target]
    assert pick_seek_compaction(versions, options, 2, target) is None


def test_output_cutter_cuts_at_file_size():
    options = Options(max_file_size=1000)
    compaction = Compaction(level=1, inputs=[], overlaps=[])
    cutter = OutputCutter(compaction, options)
    assert not cutter.should_stop_before(b"key", 500)
    assert cutter.should_stop_before(b"key", 1000)


def test_output_cutter_cuts_on_grandparent_overlap():
    options = Options(max_file_size=10**9)  # size never triggers
    grandparents = [
        meta(i, f"k{i:02d}".encode(), f"k{i:02d}z".encode(),
             size=options.grandparent_overlap_limit() // 2)
        for i in range(10)
    ]
    compaction = Compaction(
        level=1, inputs=[], overlaps=[], grandparents=grandparents
    )
    cutter = OutputCutter(compaction, options)
    # walking past three grandparents accumulates > the overlap limit
    assert not cutter.should_stop_before(b"k00", 0)
    assert not cutter.should_stop_before(b"k01", 0)
    assert cutter.should_stop_before(b"k05", 0)


def test_compaction_properties():
    inputs = [meta(1, b"a", b"c", 100)]
    overlaps = [meta(2, b"b", b"d", 200)]
    compaction = Compaction(level=3, inputs=inputs, overlaps=overlaps)
    assert compaction.output_level == 4
    assert compaction.input_bytes == 300
    assert compaction.all_inputs == inputs + overlaps
    edit = compaction.make_delete_edit()
    assert (3, 1) in edit.deleted_files
    assert (4, 2) in edit.deleted_files
