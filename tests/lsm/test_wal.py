"""Unit tests for the write-ahead log: framing, replay, torn tails."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.format import TYPE_DELETION, TYPE_VALUE, CorruptionError
from repro.lsm.wal import LogReader, LogWriter, decode_batch, encode_batch


@pytest.fixture()
def stack():
    return StorageStack()


def make_log(stack, path="wal"):
    handle, _ = stack.fs.create(path, at=0)
    return LogWriter(handle)


def test_encode_decode_roundtrip():
    entries = [(TYPE_VALUE, b"k1", b"v1"), (TYPE_DELETION, b"k2", b"")]
    record = encode_batch(42, entries)
    sequence, decoded = decode_batch(record[8:])
    assert sequence == 42
    assert decoded == entries


def test_encode_rejects_bad_type():
    with pytest.raises(ValueError):
        encode_batch(1, [(9, b"k", b"v")])


def test_decode_truncated_raises():
    record = encode_batch(1, [(TYPE_VALUE, b"key", b"value")])
    with pytest.raises(CorruptionError):
        decode_batch(record[8:-3])


def test_write_then_replay(stack):
    writer = make_log(stack)
    t = writer.add_record(1, [(TYPE_VALUE, b"a", b"1")], at=0)
    t = writer.add_record(2, [(TYPE_VALUE, b"b", b"2"), (TYPE_VALUE, b"c", b"3")], at=t)
    reader = LogReader(writer.handle)
    records = list(reader.records(at=t))
    assert records == [
        (1, [(TYPE_VALUE, b"a", b"1")]),
        (2, [(TYPE_VALUE, b"b", b"2"), (TYPE_VALUE, b"c", b"3")]),
    ]
    assert not reader.dropped_tail


def test_empty_log_replays_nothing(stack):
    writer = make_log(stack)
    reader = LogReader(writer.handle)
    assert list(reader.records(at=0)) == []
    assert not reader.dropped_tail


def test_torn_tail_after_crash_drops_only_tail(stack):
    writer = make_log(stack)
    t = writer.add_record(1, [(TYPE_VALUE, b"a", b"1")], at=0)
    t = writer.handle.fsync(at=t)  # first record durable
    t = writer.add_record(2, [(TYPE_VALUE, b"b", b"2")], at=t)
    stack.fs.crash()
    handle, t = stack.fs.open("wal", at=stack.now)
    reader = LogReader(handle)
    records = list(reader.records(at=t))
    assert records == [(1, [(TYPE_VALUE, b"a", b"1")])]


def test_partially_durable_record_is_dropped(stack):
    """A record whose bytes were only partially written back is skipped."""
    writer = make_log(stack)
    t = writer.add_record(1, [(TYPE_VALUE, b"key", b"v" * 100)], at=0)
    full = writer.handle.size
    # write back only part of the record, then 'commit' that state
    inode = writer.handle._inode
    stack.fs.writeback_inode(inode.ino, t, max_bytes=full - 10)
    stack.journal.commit_sync(t)
    stack.fs.crash()
    handle, t = stack.fs.open("wal", at=stack.now)
    assert handle.size == full - 10
    reader = LogReader(handle)
    assert list(reader.records(at=t)) == []
    assert reader.dropped_tail


def test_large_batch_roundtrip(stack):
    writer = make_log(stack)
    entries = [
        (TYPE_VALUE, f"key{i:05d}".encode(), bytes(50) + bytes([i % 256]))
        for i in range(500)
    ]
    t = writer.add_record(10, entries, at=0)
    reader = LogReader(writer.handle)
    (sequence, decoded), = list(reader.records(at=t))
    assert sequence == 10
    assert decoded == entries
