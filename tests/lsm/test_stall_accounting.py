"""Regression tests for the stall-accounting contract.

Three bugs lived here and must stay dead:

1. ``_note_stall`` only emitted ``lsm.write_stall`` spans when a tracer
   was attached, so observe-only runs (``--observe``) saw stall
   *counters* move with zero stall *spans* — any span-based consumer
   (the soak harness) silently under-reported.
2. ``_wait_for_l0_drain`` could release a blocked writer with L0 still
   at/above the stop trigger and no trace of the escape anywhere.
3. ``slowdown_ns`` was excluded from every "total stall" view, so the
   1 ms L0 slowdowns — often the bulk of writer-visible delay — were
   invisible unless you knew to add two fields yourself.
"""

import random

import pytest

from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB, DBStats
from repro.lsm.options import KIB, Options
from repro.obs.metrics import MetricRegistry


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def observed_db(**overrides):
    stack = StorageStack(StackConfig(obs=MetricRegistry()))
    return DB(stack, options=small_options(**overrides)), stack


def fill(db, n=300, seed=7, value_size=512):
    rng = random.Random(seed)
    t = 0
    for _ in range(n):
        key = b"k%012d" % rng.randrange(n)
        t = db.put(key, bytes(value_size), at=t)
    return t


def stall_spans_by_cause(obs):
    sums = {}
    for span in obs.spans:
        if span.name != "lsm.write_stall":
            continue
        cause = span.attrs.get("cause")
        sums[cause] = sums.get(cause, 0) + span.duration_ns
    return sums


# ---------------------------------------------------------------------------
# bug 1: stall spans must exist on every observed run (no tracer needed)
# ---------------------------------------------------------------------------


def test_observed_run_emits_stall_spans_without_tracer():
    db, stack = observed_db()
    fill(db)
    stats = db.stats
    assert stats.blocked_ns > 0, "workload too light to stall; fix the test"
    by_cause = stall_spans_by_cause(stack.obs)
    assert by_cause, "no lsm.write_stall spans on an observed run"
    # the spans exactly tile the counters, cause by cause
    assert by_cause.get("memtable_full", 0) == stats.stall_memtable_ns
    assert by_cause.get("l0_stop", 0) == stats.stall_l0_stop_ns
    assert by_cause.get("l0_slowdown", 0) == stats.slowdown_ns
    assert sum(by_cause.values()) == stats.blocked_ns


def test_unobserved_run_stays_quiet_but_counts():
    db = DB(StorageStack(), options=small_options())
    fill(db)
    assert db.stats.blocked_ns > 0
    # the NULL registry collects nothing — and nothing crashed


def test_note_stall_skips_empty_intervals():
    db, stack = observed_db()
    db._note_stall("l0_slowdown", 100, 100)
    db._note_stall("l0_slowdown", 100, 50)
    assert stall_spans_by_cause(stack.obs) == {}


# ---------------------------------------------------------------------------
# bug 2: abandoning the L0-stop wait must be visible
# ---------------------------------------------------------------------------


def test_l0_stop_abandonment_is_counted(monkeypatch):
    db, stack = observed_db()
    monkeypatch.setattr(
        db, "_l0_live_count", lambda: db.options.l0_stop_writes_trigger
    )
    monkeypatch.setattr(db, "_run_one_background_job", lambda: None)
    resumed = db._wait_for_l0_drain(1000)
    assert resumed == 1000  # the writer proceeds, L0 still full
    assert db.stats.l0_stop_abandoned == 1
    assert stack.obs.counter("db.stall.l0_stop_abandoned").value == 1
    assert db.stats.snapshot()["l0_stop_abandoned"] == 1


def test_l0_stop_abandonment_unobserved_still_counts(monkeypatch):
    db = DB(StorageStack(), options=small_options())
    monkeypatch.setattr(
        db, "_l0_live_count", lambda: db.options.l0_stop_writes_trigger
    )
    monkeypatch.setattr(db, "_run_one_background_job", lambda: None)
    db._wait_for_l0_drain(0)
    assert db.stats.l0_stop_abandoned == 1


def test_l0_drain_cap_unreachable_for_in_tree_store():
    # an aggressive L0 regime: stop trigger is hit repeatedly, yet the
    # background picker always produces a job that drains it, so the
    # 100k escape hatch never fires
    db, _ = observed_db(
        l0_compaction_trigger=2,
        l0_slowdown_writes_trigger=3,
        l0_stop_writes_trigger=4,
    )
    fill(db, n=400)
    assert db.stats.stall_l0_stop_ns > 0, "L0 stop never hit; fix the test"
    assert db.stats.l0_stop_abandoned == 0


# ---------------------------------------------------------------------------
# bug 3: the unified blocked_ns total
# ---------------------------------------------------------------------------


def test_blocked_ns_is_stall_plus_slowdown():
    stats = DBStats()
    stats.stall_ns = 700
    stats.slowdown_ns = 42
    assert stats.blocked_ns == 742
    snap = stats.snapshot()
    assert snap["blocked_ns"] == 742
    assert snap["stall_ns"] == 700
    assert snap["slowdown_ns"] == 42


def test_hard_stall_split_tiles_exactly_after_a_run():
    db, _ = observed_db()
    fill(db)
    stats = db.stats
    assert stats.stall_ns == stats.stall_memtable_ns + stats.stall_l0_stop_ns
    assert stats.blocked_ns == stats.stall_ns + stats.slowdown_ns


# ---------------------------------------------------------------------------
# dynamic slowdown: off by default, monotone debt-scaled ramp when on
# ---------------------------------------------------------------------------


def test_dynamic_slowdown_defaults_off():
    assert Options().dynamic_slowdown is False
    assert Options().compaction_rate_bytes_per_sec == 0


def test_dynamic_slowdown_ramp_is_monotone_and_bounded():
    db = DB(StorageStack(), options=small_options(dynamic_slowdown=True))
    opts = db.options
    delays = [
        db._dynamic_slowdown_ns(count)
        for count in range(
            opts.l0_slowdown_writes_trigger, opts.l0_stop_writes_trigger
        )
    ]
    assert delays == sorted(delays)
    assert delays[0] >= opts.dynamic_slowdown_min_ns
    assert delays[-1] <= opts.dynamic_slowdown_max_ns
    # deepest debt reaches the full configured ceiling
    assert delays[-1] == opts.dynamic_slowdown_max_ns


def test_dynamic_slowdown_charges_slowdown_not_stall():
    db, stack = observed_db(dynamic_slowdown=True)
    fill(db)
    stats = db.stats
    if stats.slowdown_ns:
        by_cause = stall_spans_by_cause(stack.obs)
        assert by_cause.get("l0_slowdown", 0) == stats.slowdown_ns
    assert stats.stall_ns == stats.stall_memtable_ns + stats.stall_l0_stop_ns
