"""Unit tests for the vLog: encoding, segments, GC, gated reclamation."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.format import CorruptionError
from repro.lsm.vlog import (
    INLINE_PREFIX,
    POINTER_PREFIX,
    VLog,
    decode_pointer,
    decode_stored,
    encode_inline,
    encode_pointer,
    is_pointer,
)


def make_vlog(segment_bytes=64, gc_ratio=0.5):
    stack = StorageStack()
    return stack, VLog(stack.fs, "db", segment_bytes, gc_ratio)


# ----------------------------------------------------------------------
# stored-value encoding
# ----------------------------------------------------------------------


def test_pointer_roundtrip():
    for seg, off, length in [(0, 0, 1), (3, 127, 128), (300, 99999, 4096)]:
        stored = encode_pointer(seg, off, length)
        assert is_pointer(stored)
        assert stored[:1] == POINTER_PREFIX
        assert decode_pointer(stored) == (seg, off, length)


def test_inline_roundtrip():
    stored = encode_inline(b"hello")
    assert not is_pointer(stored)
    assert stored[:1] == INLINE_PREFIX
    assert decode_stored(stored) == b"hello"


def test_decode_rejects_wrong_marker():
    with pytest.raises(CorruptionError):
        decode_pointer(encode_inline(b"x"))
    with pytest.raises(CorruptionError):
        decode_stored(encode_pointer(1, 2, 3))


def test_decode_rejects_trailing_bytes():
    with pytest.raises(CorruptionError):
        decode_pointer(encode_pointer(1, 2, 3) + b"junk")


# ----------------------------------------------------------------------
# append / seal / read
# ----------------------------------------------------------------------


def test_append_returns_resolvable_pointer():
    _, vlog = make_vlog()
    pointer, t = vlog.append(b"A" * 10, 0)
    assert decode_pointer(pointer) == (0, 0, 10)
    data, t = vlog.read(0, 0, 10, t)
    assert data == b"A" * 10
    value, _ = vlog.resolve(pointer, t)
    assert value == b"A" * 10


def test_head_seals_at_segment_size_and_rolls():
    _, vlog = make_vlog(segment_bytes=32)
    t = 0
    pointers = []
    for _ in range(4):
        pointer, t = vlog.append(b"B" * 16, t)
        pointers.append(decode_pointer(pointer))
    # 32-byte segments, 16-byte values: two values per segment
    assert [p[0] for p in pointers] == [0, 0, 1, 1]
    assert vlog.segments() == [0, 1]


def test_read_past_end_is_corruption():
    _, vlog = make_vlog()
    _, t = vlog.append(b"C" * 8, 0)
    with pytest.raises(CorruptionError):
        vlog.read(0, 4, 100, t)


def test_sync_dirty_covers_rolled_heads():
    stack, vlog = make_vlog(segment_bytes=16)
    t = 0
    for _ in range(3):  # rolls the head twice mid-"dump"
        _, t = vlog.append(b"D" * 16, t)
    before = stack.sync_stats.by_reason.get("vlog", 0)
    t = vlog.sync_dirty(t)
    assert stack.sync_stats.by_reason.get("vlog", 0) == before + 3
    # idempotent: nothing dirty afterwards
    assert vlog.sync_dirty(t) == t


# ----------------------------------------------------------------------
# garbage accounting, GC candidates, retirement
# ----------------------------------------------------------------------


def test_gc_candidates_need_seal_and_garbage():
    _, vlog = make_vlog(segment_bytes=32, gc_ratio=0.5)
    t = 0
    _, t = vlog.append(b"E" * 16, t)
    _, t = vlog.append(b"E" * 16, t)  # seals segment 0
    assert vlog.gc_candidates() == set()  # fully live
    vlog.note_dead(0, 16)
    assert vlog.gc_candidates() == {0}  # half garbage, at threshold
    # the open head never qualifies
    _, t = vlog.append(b"E" * 8, t)
    vlog.note_dead(1, 8)
    assert 1 not in vlog.gc_candidates()


def test_relocate_moves_bytes_and_kills_source():
    _, vlog = make_vlog(segment_bytes=16)
    _, t = vlog.append(b"F" * 16, 0)  # seals segment 0
    pointer, t = vlog.relocate(0, 0, 16, t)
    segment, offset, length = decode_pointer(pointer)
    assert segment == 1 and length == 16
    assert vlog.live_bytes(0) == 0
    assert vlog.relocated_bytes == 16
    data, _ = vlog.resolve(pointer, t)
    assert data == b"F" * 16
    assert vlog.dead_segments() == [0]


def test_reclaim_unlinks_and_forgets():
    stack, vlog = make_vlog(segment_bytes=16)
    _, t = vlog.append(b"G" * 16, 0)
    vlog.note_dead(0, 16)
    vlog.note_barrier(0, [7, 7, 9])  # dedup
    assert vlog.take_retirement(0) == [7, 9]
    assert vlog.dead_segments() == []  # retiring segments excluded
    t = vlog.reclaim_segment(0, t)
    assert not stack.fs.exists("db/000000.vlg")
    assert vlog.segments() == []
    assert vlog.reclaimed_segments == 1


def test_reopen_adopts_segments_and_reset_live():
    stack, vlog = make_vlog(segment_bytes=16)
    _, t = vlog.append(b"H" * 16, 0)
    _, t = vlog.append(b"H" * 8, t)
    t = vlog.sync_dirty(t)
    reopened = VLog(stack.fs, "db", 16, 0.5)
    assert reopened.segments() == [0, 1]
    assert reopened.live_bytes(0) == 0  # live is rebuilt by the store
    reopened.reset_live({0: 16})
    assert reopened.live_bytes(0) == 16
    assert reopened.dead_segments() == [1]
    # numbering resumes past adopted segments
    _, _ = reopened.append(b"H" * 4, t)
    assert reopened.head_number == 2
