"""Unit/integration tests for RepairDB."""

import random

import pytest

from repro.bench.harness import ScaledConfig
from repro.lsm.db import DB
from repro.lsm.filenames import current_file_name
from repro.lsm.repair import repair_db


def filled_store(scale=10_000, n=800, seed=3):
    config = ScaledConfig(scale=scale)
    stack, db = config.build_store("leveldb")
    rng = random.Random(seed)
    expected = {}
    t = 0
    for _ in range(n):
        key = f"key{rng.randrange(n):05d}".encode()
        value = f"v{rng.randrange(10**6):07d}".encode() * 4
        t = db.put(key, value, at=t)
        expected[key] = value
    t = db.close(t)
    return stack, expected, t, config


def test_repair_after_losing_current():
    stack, expected, t, config = filled_store()
    stack.fs.unlink(current_file_name("db"), at=t)
    result, t = repair_db(stack.fs, "db", config.build_options(), at=t)
    assert result.tables_salvaged > 0
    db = DB(stack, options=config.build_options())
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key], f"{key!r} lost after repair"


def test_repair_after_losing_manifest():
    stack, expected, t, config = filled_store(seed=5)
    for path in list(stack.fs.list_dir("db/")):
        if "MANIFEST" in path or path.endswith("CURRENT"):
            t = stack.fs.unlink(path, at=t)
    result, t = repair_db(stack.fs, "db", config.build_options(), at=t)
    db = DB(stack, options=config.build_options())
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_repair_converts_wal_to_table():
    stack, expected, t, config = filled_store(n=200, seed=7)
    # keys still in the WAL (memtable never flushed) must survive repair
    stack.fs.unlink(current_file_name("db"), at=t)
    result, t = repair_db(stack.fs, "db", config.build_options(), at=t)
    assert result.logs_converted >= 1 or result.records_recovered == 0
    db = DB(stack, options=config.build_options())
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_repair_sets_last_sequence():
    stack, expected, t, config = filled_store(n=300, seed=9)
    stack.fs.unlink(current_file_name("db"), at=t)
    result, t = repair_db(stack.fs, "db", config.build_options(), at=t)
    assert result.last_sequence >= 300
    # writes after repair continue with fresh sequence numbers
    db = DB(stack, options=config.build_options())
    t = db.put(b"brand-new", b"value", at=t)
    value, t = db.get(b"brand-new", at=t)
    assert value == b"value"


def test_repair_drops_corrupt_tables():
    stack, expected, t, config = filled_store(n=300, seed=11)
    # fabricate a garbage .ldb file
    handle, t = stack.fs.create("db/999999.ldb", at=t)
    t = handle.append(b"garbage" * 10, at=t)
    stack.fs.unlink(current_file_name("db"), at=t)
    result, t = repair_db(stack.fs, "db", config.build_options(), at=t)
    assert result.tables_dropped >= 1
    assert not stack.fs.exists("db/999999.ldb")


def test_repair_empty_directory():
    config = ScaledConfig(scale=10_000)
    stack = config.build_stack()
    result, t = repair_db(stack.fs, "db", config.build_options(), at=0)
    assert result.tables_salvaged == 0
    db = DB(stack, options=config.build_options())
    value, t = db.get(b"anything", at=t)
    assert value is None
