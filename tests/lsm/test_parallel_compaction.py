"""Parallel compaction scheduling: conflict detection and stall relief."""

import random

import pytest

from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.compaction import CompactionSchedule, ranges_overlap
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options


# ----------------------------------------------------------------------
# range predicate
# ----------------------------------------------------------------------


def test_ranges_overlap_basic():
    assert ranges_overlap(b"a", b"c", b"b", b"d")
    assert ranges_overlap(b"a", b"c", b"c", b"d")  # inclusive touch
    assert not ranges_overlap(b"a", b"b", b"c", b"d")
    assert not ranges_overlap(b"c", b"d", b"a", b"b")


def test_ranges_overlap_unbounded():
    # None = unbounded side (an empty input set): always conflicts
    assert ranges_overlap(None, None, b"a", b"b")
    assert ranges_overlap(b"a", b"b", None, None)


# ----------------------------------------------------------------------
# schedule bookkeeping
# ----------------------------------------------------------------------


def test_clearance_requires_shared_level_and_range():
    schedule = CompactionSchedule()
    schedule.add(frozenset((1, 2)), b"a", b"m", done=1000)
    # same levels, overlapping range: blocked until 1000
    assert schedule.clearance(frozenset((2, 3)), b"k", b"z", 0) == 1000
    # same levels, disjoint range: free
    assert schedule.clearance(frozenset((1, 2)), b"n", b"z", 0) is None
    # different levels, overlapping range: free
    assert schedule.clearance(frozenset((3, 4)), b"a", b"m", 0) is None


def test_clearance_ignores_closed_spans():
    schedule = CompactionSchedule()
    schedule.add(frozenset((1, 2)), b"a", b"m", done=1000)
    assert schedule.clearance(frozenset((1, 2)), b"a", b"m", 1000) is None
    assert schedule.clearance(frozenset((1, 2)), b"a", b"m", 999) == 1000


def test_clearance_takes_max_over_conflicts():
    schedule = CompactionSchedule()
    schedule.add(frozenset((1, 2)), b"a", b"m", done=1000)
    schedule.add(frozenset((2, 3)), b"c", b"f", done=2000)
    assert schedule.clearance(frozenset((2,)), b"d", b"e", 0) == 2000


def test_prune_drops_closed_spans():
    schedule = CompactionSchedule()
    schedule.add(frozenset((1, 2)), b"a", b"m", done=1000)
    schedule.add(frozenset((1, 2)), b"a", b"m", done=3000)
    schedule.prune(2000)
    assert len(schedule) == 1


# ----------------------------------------------------------------------
# end-to-end: differential convergence + overlapping spans + stalls
# ----------------------------------------------------------------------


def build_db(threads, channels, write_buffer=32 * KIB):
    stack = StorageStack(
        StackConfig(num_channels=channels if channels != 1 else None)
    )
    options = Options(
        write_buffer_size=write_buffer,
        max_file_size=16 * KIB,
        l0_compaction_trigger=4,
        background_threads=threads,
    )
    return stack, DB(stack, options=options)


def fill(db, stack, num_ops=6000, key_space=1500, seed=7):
    rng = random.Random(seed)
    t = stack.now
    expect = {}
    for i in range(num_ops):
        key = f"k{rng.randrange(key_space):06d}".encode()
        value = (f"v{i}-" * 6).encode()
        expect[key] = value
        t = db.put(key, value, t)
    t = db.wait_for_background(t)
    return expect, t


@pytest.mark.parametrize("threads,channels", [(2, 1), (2, 4), (4, 4)])
def test_parallel_store_converges_to_serial_contents(threads, channels):
    _, serial_db = (pair := build_db(1, 1))
    expect, t1 = fill(serial_db, pair[0])
    stack, db = build_db(threads, channels)
    expect2, t2 = fill(db, stack)
    assert expect == expect2
    for key, value in expect.items():
        got, t2 = db.get(key, t2)
        assert got == value
        got, t1 = serial_db.get(key, t1)
        assert got == value


def test_two_threads_overlap_compactions_in_virtual_time():
    stack, db = build_db(2, 4)
    fill(db, stack)
    snap = db.bg.snapshot()
    # both threads did real work — spans overlapped, else one thread
    # would have absorbed everything serially
    assert min(snap["thread_jobs"]) > 0
    assert min(snap["thread_busy_ns"]) > 0


def test_parallel_threads_reduce_bg_stall():
    """The write-stall regression gate: 1x1 backlog stalls, 4ch x 2thr
    strictly less (ISSUE acceptance)."""
    stack1, db1 = build_db(1, 1)
    fill(db1, stack1)
    assert db1.bg.stall_ns > 0
    stack2, db2 = build_db(2, 4)
    fill(db2, stack2)
    assert db2.bg.stall_ns < db1.bg.stall_ns


def test_single_thread_never_registers_spans():
    stack, db = build_db(1, 1)
    fill(db, stack, num_ops=2000)
    assert len(db._schedule) == 0


def test_multi_thread_registers_and_prunes_spans():
    stack, db = build_db(2, 1)
    fill(db, stack, num_ops=2000)
    # spans were registered during the run and pruned as time passed
    assert db.bg.jobs > 0
    db._schedule.prune(db.bg.latest_free())
    assert len(db._schedule) == 0
