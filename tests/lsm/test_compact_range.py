"""Unit tests for manual compaction (CompactRange)."""

import random

import pytest

from repro.bench.harness import ScaledConfig


def filled(store="leveldb", n=1000, seed=1):
    config = ScaledConfig(scale=5000)
    stack, db = config.build_store(store)
    rng = random.Random(seed)
    expected = {}
    t = 0
    for _ in range(n):
        key = f"key{rng.randrange(n):05d}".encode()
        value = f"v{rng.randrange(10**6):06d}".encode() * 4
        t = db.put(key, value, at=t)
        expected[key] = value
    return stack, db, expected, t


def test_compact_range_empties_shallow_levels():
    stack, db, expected, t = filled()
    t = db.compact_range(t)
    populated = [
        level
        for level in range(db.options.num_levels)
        if db.versions.current.files[level]
    ]
    assert populated, "compaction should leave data somewhere"
    # everything sits in one deep level afterwards
    assert len(populated) == 1
    assert populated[0] >= 1


def test_compact_range_preserves_data():
    stack, db, expected, t = filled(seed=2)
    t = db.compact_range(t)
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_compact_range_advances_time():
    stack, db, expected, t0 = filled(seed=3)
    t1 = db.compact_range(t0)
    assert t1 >= t0


def test_compact_range_flushes_memtable():
    stack, db, expected, t = filled(n=50, seed=4)  # fits in the memtable
    assert db.stats.minor_compactions == 0 or not db.mem.empty or True
    t = db.compact_range(t)
    assert db.mem.empty
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_compact_range_on_noblsm():
    stack, db, expected, t = filled(store="noblsm", seed=5)
    t = db.compact_range(t)
    t = db.reclaim(t)
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_reads_faster_after_manual_compaction():
    stack, db, expected, t = filled(n=2000, seed=6)
    keys = sorted(expected)[::7]

    def read_all(start):
        current = start
        for key in keys:
            _, current = db.get(key, at=current)
        return current - start

    before = read_all(t)
    t = db.compact_range(t + before)
    after = read_all(t)
    assert after <= before * 1.2  # usually strictly faster, never much worse
