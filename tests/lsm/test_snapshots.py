"""Snapshot reads: pinned views across writes, compactions and scans."""

import random

import pytest

from repro.bench.harness import ScaledConfig
from repro.lsm.db import Snapshot


def store(scale=10_000, name="leveldb"):
    config = ScaledConfig(scale=scale)
    return config.build_store(name)


def test_snapshot_pins_point_reads():
    _, db = store()
    t = db.put(b"k", b"v1", at=0)
    snap = db.get_snapshot()
    t = db.put(b"k", b"v2", at=t)
    value, t = db.get(b"k", at=t)
    assert value == b"v2"
    value, t = db.get(b"k", at=t, snapshot=snap)
    assert value == b"v1"


def test_snapshot_hides_later_inserts():
    _, db = store()
    t = db.put(b"a", b"1", at=0)
    snap = db.get_snapshot()
    t = db.put(b"b", b"2", at=t)
    value, t = db.get(b"b", at=t, snapshot=snap)
    assert value is None


def test_snapshot_sees_through_deletes():
    _, db = store()
    t = db.put(b"k", b"alive", at=0)
    snap = db.get_snapshot()
    t = db.delete(b"k", at=t)
    value, t = db.get(b"k", at=t)
    assert value is None
    value, t = db.get(b"k", at=t, snapshot=snap)
    assert value == b"alive"


def test_snapshot_survives_compactions():
    stack, db = store()
    rng = random.Random(1)
    t = 0
    v1 = {}
    for i in range(300):
        key = f"key{i:04d}".encode()
        value = f"gen1-{rng.randrange(10**6)}".encode() * 4
        t = db.put(key, value, at=t)
        v1[key] = value
    snap = db.get_snapshot()
    for i in range(300):
        key = f"key{i:04d}".encode()
        t = db.put(key, f"gen2-{rng.randrange(10**6)}".encode() * 4, at=t)
    t = db.compact_range(t)  # heavy rewriting while the snapshot is live
    for key in sorted(v1)[::13]:
        value, t = db.get(key, at=t, snapshot=snap)
        assert value == v1[key], f"snapshot lost {key!r}"


def test_snapshot_scan_is_frozen():
    _, db = store()
    t = 0
    for i in range(50):
        t = db.put(f"key{i:03d}".encode(), b"old", at=t)
    snap = db.get_snapshot()
    for i in range(50, 60):
        t = db.put(f"key{i:03d}".encode(), b"new", at=t)
    t = db.put(b"key005", b"updated", at=t)
    pairs, t = db.scan(b"key000", 100, at=t, snapshot=snap)
    assert len(pairs) == 50  # later inserts invisible
    assert dict(pairs)[b"key005"] == b"old"


def test_release_allows_version_dropping():
    stack, db = store()
    t = db.put(b"k", b"v1", at=0)
    snap = db.get_snapshot()
    assert db._smallest_snapshot() == snap.sequence
    db.release_snapshot(snap)
    assert db._smallest_snapshot() == db.versions.last_sequence
    with pytest.raises(ValueError):
        db.get(b"k", at=t, snapshot=snap)


def test_compaction_drops_unpinned_versions():
    stack, db = store()
    t = 0
    for _ in range(200):
        t = db.put(b"hotkey", b"x" * 300, at=t)
    t = db.compact_range(t)
    # without snapshots only the newest version survives anywhere
    iterator = db.iterate(at=t)
    count = 0
    while iterator.valid:
        count += 1
        iterator.next()
    assert count == 1


def test_snapshot_on_noblsm():
    stack, db = store(name="noblsm")
    t = db.put(b"k", b"v1", at=0)
    snap = db.get_snapshot()
    t = db.put(b"k", b"v2", at=t)
    for i in range(400):
        t = db.put(f"fill{i:05d}".encode(), b"f" * 200, at=t)
    value, t = db.get(b"k", at=t, snapshot=snap)
    assert value == b"v1"


def test_snapshot_on_l2sm_hot_keys():
    stack, db = store(name="l2sm")
    t = 0
    for _ in range(200):
        t = db.put(b"hot", b"v-old", at=t)
    snap = db.get_snapshot()
    for _ in range(200):
        t = db.put(b"hot", b"v-new", at=t)
    value, t = db.get(b"hot", at=t)
    assert value == b"v-new"
    # Documented limitation of the hot store: it keeps only the newest
    # version, so a snapshot read of a hot key may miss — but it must
    # never leak a post-snapshot value.
    value, t = db.get(b"hot", at=t, snapshot=snap)
    assert value != b"v-new"


def test_multiple_snapshots_independent():
    _, db = store()
    t = db.put(b"k", b"v1", at=0)
    snap1 = db.get_snapshot()
    t = db.put(b"k", b"v2", at=t)
    snap2 = db.get_snapshot()
    t = db.put(b"k", b"v3", at=t)
    assert db.get(b"k", at=t, snapshot=snap1)[0] == b"v1"
    assert db.get(b"k", at=t, snapshot=snap2)[0] == b"v2"
    assert db.get(b"k", at=t)[0] == b"v3"
    db.release_snapshot(snap1)
    assert db.get(b"k", at=t, snapshot=snap2)[0] == b"v2"
