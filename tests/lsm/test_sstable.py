"""Unit tests for SSTable building, reading, and iteration."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.format import (
    CorruptionError,
    TYPE_DELETION,
    TYPE_VALUE,
    make_internal_key,
)
from repro.lsm.options import Options
from repro.lsm.sstable import Table, TableBuilder


@pytest.fixture()
def stack():
    return StorageStack()


def small_options():
    return Options(block_size=256)


def build_table(stack, entries, path="table.ldb"):
    builder = TableBuilder(stack.fs, path, small_options(), at=0)
    for internal_key, value in entries:
        builder.add(internal_key, value)
    size, t = builder.finish(at=0)
    return size, t


def sample_entries(n=200, seq_base=100):
    return [
        (
            make_internal_key(f"key{i:05d}".encode(), seq_base + i, TYPE_VALUE),
            f"value-{i}".encode() * 3,
        )
        for i in range(n)
    ]


def test_build_creates_real_file(stack):
    size, _ = build_table(stack, sample_entries())
    assert stack.fs.exists("table.ldb")
    assert stack.fs.stat_size("table.ldb") == size


def test_open_and_get(stack):
    entries = sample_entries()
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    result, t = table.get(b"key00042", at=t)
    assert result == (True, b"value-42" * 3)


def test_get_missing_key(stack):
    build_table(stack, sample_entries())
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    result, t = table.get(b"nope", at=t)
    assert result is None


def test_get_tombstone(stack):
    entries = [
        (make_internal_key(b"dead", 5, TYPE_DELETION), b""),
        (make_internal_key(b"live", 6, TYPE_VALUE), b"v"),
    ]
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    result, t = table.get(b"dead", at=t)
    assert result == (False, b"")


def test_newest_version_returned(stack):
    entries = [
        (make_internal_key(b"key", 9, TYPE_VALUE), b"new"),
        (make_internal_key(b"key", 5, TYPE_VALUE), b"old"),
    ]
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    result, t = table.get(b"key", at=t)
    assert result == (True, b"new")


def test_builder_rejects_out_of_order(stack):
    builder = TableBuilder(stack.fs, "t.ldb", small_options(), at=0)
    builder.add(make_internal_key(b"b", 1, TYPE_VALUE), b"v")
    with pytest.raises(ValueError):
        builder.add(make_internal_key(b"a", 1, TYPE_VALUE), b"v")


def test_builder_tracks_bounds(stack):
    entries = sample_entries(50)
    builder = TableBuilder(stack.fs, "t.ldb", small_options(), at=0)
    for internal_key, value in entries:
        builder.add(internal_key, value)
    builder.finish(at=0)
    assert builder.smallest == entries[0][0]
    assert builder.largest == entries[-1][0]
    assert builder.num_entries == 50


def test_open_bad_magic_raises(stack):
    handle, t = stack.fs.create("junk.ldb", at=0)
    handle.append(b"x" * 100, at=t)
    with pytest.raises(CorruptionError):
        Table.open(stack.fs, "junk.ldb", at=0)


def test_open_too_small_raises(stack):
    handle, t = stack.fs.create("tiny.ldb", at=0)
    handle.append(b"xy", at=t)
    with pytest.raises(CorruptionError):
        Table.open(stack.fs, "tiny.ldb", at=0)


def test_truncated_table_detected(stack):
    """A crash-truncated table fails to open (recovery validation)."""
    size, t = build_table(stack, sample_entries())
    stack.fs.crash()  # never committed: file is gone entirely
    assert not stack.fs.exists("table.ldb")


def test_all_entries_roundtrip(stack):
    entries = sample_entries(300)
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    read, t = table.all_entries(at=t)
    assert read == entries


def test_iterator_full_scan(stack):
    entries = sample_entries(150)
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    iterator = table.iterate(t)
    iterator.seek_to_first()
    seen = []
    while iterator.valid:
        seen.append((iterator.key, iterator.value))
        iterator.next()
    assert seen == entries


def test_iterator_seek(stack):
    entries = sample_entries(150)
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    iterator = table.iterate(t)
    iterator.seek(make_internal_key(b"key00100", 2**40, TYPE_VALUE))
    assert iterator.valid
    assert iterator.key[:-8] == b"key00100"


def test_iterator_seek_past_end(stack):
    build_table(stack, sample_entries(10))
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    iterator = table.iterate(t)
    iterator.seek(make_internal_key(b"zzz", 2**40, TYPE_VALUE))
    assert not iterator.valid


def test_smallest_largest_and_max_sequence(stack):
    entries = sample_entries(80, seq_base=1000)
    build_table(stack, entries)
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    smallest, t = table.smallest_key(t)
    assert smallest == entries[0][0]
    assert table.largest_key() == entries[-1][0]
    max_seq, t = table.max_sequence(t)
    assert max_seq == 1000 + 79


def test_reads_charge_time(stack):
    build_table(stack, sample_entries(300))
    stack.pagecache.drop_all()
    table, t0 = Table.open(stack.fs, "table.ldb", at=0)
    result, t1 = table.get(b"key00222", at=t0)
    assert result is not None
    assert t1 > t0


def test_block_cache_avoids_rereads(stack):
    build_table(stack, sample_entries(10))
    table, t = Table.open(stack.fs, "table.ldb", at=0)
    _, t1 = table.get(b"key00003", at=t)
    reads_before = stack.ssd.stats.read_ios
    _, t2 = table.get(b"key00003", at=t1)
    assert stack.ssd.stats.read_ios == reads_before
