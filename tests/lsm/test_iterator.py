"""Unit tests for merging, level, and DB iterators."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.format import (
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    make_internal_key,
)
from repro.lsm.iterator import (
    DBIterator,
    MemTableIterator,
    MergingIterator,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import KIB, Options


def mt(*entries):
    table = MemTable()
    for seq, vtype, key, value in entries:
        table.add(seq, vtype, key, value)
    return table


def drain(iterator):
    out = []
    while iterator.valid:
        out.append((iterator.key, iterator.value))
        iterator.next()
    return out


def test_memtable_iterator_order_and_seek():
    source = MemTableIterator(
        mt((1, TYPE_VALUE, b"b", b"2"), (2, TYPE_VALUE, b"a", b"1")), at=0
    )
    source.seek_to_first()
    assert source.valid and source.key[:-8] == b"a"
    source.seek(make_internal_key(b"b", MAX_SEQUENCE, TYPE_VALUE))
    assert source.key[:-8] == b"b"
    source.next()
    assert not source.valid


def test_merging_iterator_interleaves():
    first = MemTableIterator(mt((1, TYPE_VALUE, b"a", b"1"), (2, TYPE_VALUE, b"c", b"3")), 0)
    second = MemTableIterator(mt((3, TYPE_VALUE, b"b", b"2")), 0)
    merger = MergingIterator([first, second], cpu_iter_next_ns=10)
    merger.seek_to_first()
    keys = [key[:-8] for key, _ in drain(merger)]
    assert keys == [b"a", b"b", b"c"]


def test_merging_iterator_newest_version_first():
    old = MemTableIterator(mt((1, TYPE_VALUE, b"k", b"old")), 0)
    new = MemTableIterator(mt((5, TYPE_VALUE, b"k", b"new")), 0)
    merger = MergingIterator([old, new], cpu_iter_next_ns=10)
    merger.seek_to_first()
    entries = drain(merger)
    assert [v for _, v in entries] == [b"new", b"old"]


def test_db_iterator_dedupes_and_skips_tombstones():
    source = MemTableIterator(
        mt(
            (5, TYPE_VALUE, b"a", b"newest"),
            (6, TYPE_DELETION, b"b", b""),
            (7, TYPE_VALUE, b"c", b"live"),
        ),
        0,
    )
    older = MemTableIterator(
        mt((1, TYPE_VALUE, b"a", b"stale"), (2, TYPE_VALUE, b"b", b"dead")),
        0,
    )
    merger = MergingIterator([source, older], cpu_iter_next_ns=10)
    iterator = DBIterator(merger)
    iterator.seek_to_first()
    assert drain_db(iterator) == [(b"a", b"newest"), (b"c", b"live")]


def drain_db(iterator):
    out = []
    while iterator.valid:
        out.append((iterator.key, iterator.value))
        iterator.next()
    return out


def test_db_iterator_seek():
    source = MemTableIterator(
        mt(*[(i + 1, TYPE_VALUE, f"k{i:02d}".encode(), b"v") for i in range(10)]),
        0,
    )
    merger = MergingIterator([source], cpu_iter_next_ns=10)
    iterator = DBIterator(merger)
    iterator.seek(b"k05")
    assert iterator.key == b"k05"
    iterator.seek(b"k99")
    assert not iterator.valid


def test_level_iterator_through_db():
    """Scans over a multi-level store use the level iterator path."""
    stack = StorageStack()
    options = Options(
        write_buffer_size=4 * KIB,
        max_file_size=4 * KIB,
        max_bytes_for_level_base=8 * KIB,
    )
    db = DB(stack, options=options)
    t = 0
    expected = {}
    for i in range(600):
        key = f"key{(i * 37) % 500:05d}".encode()
        value = f"v{i}".encode()
        t = db.put(key, value, at=t)
        expected[key] = value
    t = db.wait_for_background(t)
    assert any(db.versions.current.files[level] for level in range(1, 7))
    pairs, t = db.scan(b"key00100", 25, at=t)
    assert len(pairs) == 25
    assert pairs[0][0] >= b"key00100"
    for key, value in pairs:
        assert expected[key] == value
    # iteration time advanced
    iterator = db.iterate(at=t)
    assert iterator.time >= t
