"""End-to-end behaviour of the LevelDB-like store."""

import pytest

from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


@pytest.fixture()
def stack():
    return StorageStack()


@pytest.fixture()
def db(stack):
    return DB(stack, options=small_options())


def test_put_then_get(db):
    t = db.put(b"key", b"value", at=0)
    value, _ = db.get(b"key", at=t)
    assert value == b"value"


def test_get_missing_returns_none(db):
    value, _ = db.get(b"missing", at=0)
    assert value is None


def test_overwrite_returns_newest(db):
    t = db.put(b"k", b"v1", at=0)
    t = db.put(b"k", b"v2", at=t)
    value, _ = db.get(b"k", at=t)
    assert value == b"v2"


def test_delete_hides_key(db):
    t = db.put(b"k", b"v", at=0)
    t = db.delete(b"k", at=t)
    value, _ = db.get(b"k", at=t)
    assert value is None


def test_put_advances_time(db):
    t = db.put(b"k", b"v" * 100, at=0)
    assert t > 0


def test_many_puts_trigger_compactions(db):
    t = 0
    for i in range(400):
        t = db.put(f"key{i:06d}".encode(), b"v" * 100, at=t)
    assert db.stats.minor_compactions >= 1
    # all keys still readable after compactions
    for i in range(0, 400, 37):
        value, t = db.get(f"key{i:06d}".encode(), at=t)
        assert value == b"v" * 100


def test_overwrites_survive_compactions(db):
    t = 0
    for round_number in range(4):
        for i in range(120):
            value = f"r{round_number}v{i}".encode()
            t = db.put(f"key{i:04d}".encode(), value, at=t)
    for i in range(0, 120, 11):
        value, t = db.get(f"key{i:04d}".encode(), at=t)
        assert value == f"r3v{i}".encode()


def test_deletes_survive_compactions(db):
    t = 0
    for i in range(200):
        t = db.put(f"key{i:04d}".encode(), b"x" * 64, at=t)
    for i in range(0, 200, 2):
        t = db.delete(f"key{i:04d}".encode(), at=t)
    for i in range(100):
        t = db.put(f"other{i:04d}".encode(), b"y" * 64, at=t)
    value, t = db.get(b"key0002", at=t)
    assert value is None
    value, t = db.get(b"key0003", at=t)
    assert value == b"x" * 64


def test_iterate_yields_sorted_unique_keys(db):
    t = 0
    expected = {}
    for i in range(300):
        key = f"key{i % 150:05d}".encode()
        value = f"v{i}".encode()
        t = db.put(key, value, at=t)
        expected[key] = value
    iterator = db.iterate(at=t)
    seen = []
    while iterator.valid:
        seen.append((iterator.key, iterator.value))
        iterator.next()
    assert [k for k, _ in seen] == sorted(expected)
    assert dict(seen) == expected


def test_scan_returns_range(db):
    t = 0
    for i in range(100):
        t = db.put(f"key{i:04d}".encode(), str(i).encode(), at=t)
    pairs, t = db.scan(b"key0050", 10, at=t)
    assert len(pairs) == 10
    assert pairs[0][0] == b"key0050"
    assert pairs[-1][0] == b"key0059"


def test_scan_skips_deleted(db):
    t = 0
    for i in range(20):
        t = db.put(f"key{i:04d}".encode(), b"v", at=t)
    t = db.delete(b"key0005", at=t)
    pairs, t = db.scan(b"key0004", 3, at=t)
    assert [k for k, _ in pairs] == [b"key0004", b"key0006", b"key0007"]


def test_sync_stats_recorded(stack):
    db = DB(stack, options=small_options())
    t = 0
    for i in range(400):
        t = db.put(f"key{i:06d}".encode(), b"v" * 100, at=t)
    assert stack.sync_stats.sync_calls > 0
    assert stack.sync_stats.by_reason.get("minor", 0) >= 1


def test_volatile_policy_never_syncs(stack):
    options = small_options()
    options.sync.sync_minor = False
    options.sync.sync_major = False
    options.sync.sync_manifest = False
    db = DB(stack, options=options)
    t = 0
    for i in range(400):
        t = db.put(f"key{i:06d}".encode(), b"v" * 100, at=t)
    assert stack.sync_stats.sync_calls == 0


def test_write_batch_is_atomic_in_sequence(db):
    from repro.lsm.format import TYPE_VALUE

    entries = [(TYPE_VALUE, f"b{i}".encode(), b"v") for i in range(5)]
    t = db.write(entries, at=0)
    for i in range(5):
        value, t = db.get(f"b{i}".encode(), at=t)
        assert value == b"v"


def test_closed_db_rejects_operations(db):
    t = db.put(b"k", b"v", at=0)
    db.close(t)
    with pytest.raises(RuntimeError):
        db.put(b"x", b"y", at=t)
    with pytest.raises(RuntimeError):
        db.get(b"k", at=t)


def test_stats_count_operations(db):
    t = db.put(b"a", b"1", at=0)
    t = db.put(b"b", b"2", at=t)
    _, t = db.get(b"a", at=t)
    t = db.delete(b"a", at=t)
    pairs, t = db.scan(b"a", 5, at=t)
    assert db.stats.puts == 2
    assert db.stats.gets == 1
    assert db.stats.deletes == 1
    assert db.stats.scans == 1
