"""Unit tests for the WriteBatch API."""

import pytest

from repro.bench.harness import ScaledConfig
from repro.lsm.write_batch import WriteBatch


def test_batch_accumulates():
    batch = WriteBatch()
    batch.put(b"a", b"1")
    batch.delete(b"b")
    assert len(batch) == 2
    assert batch.approximate_size > 0


def test_batch_clear():
    batch = WriteBatch()
    batch.put(b"a", b"1")
    batch.clear()
    assert len(batch) == 0


def test_batch_append():
    first = WriteBatch()
    first.put(b"a", b"1")
    second = WriteBatch()
    second.put(b"b", b"2")
    first.append(second)
    assert len(first) == 2


def test_apply_batch_to_db():
    config = ScaledConfig(scale=10_000)
    _, db = config.build_store("leveldb")
    batch = WriteBatch()
    for i in range(10):
        batch.put(f"k{i}".encode(), f"v{i}".encode())
    batch.delete(b"k3")
    t = db.apply(batch, at=0)
    value, t = db.get(b"k1", at=t)
    assert value == b"v1"
    value, t = db.get(b"k3", at=t)
    assert value is None


def test_apply_empty_batch_is_free():
    config = ScaledConfig(scale=10_000)
    _, db = config.build_store("leveldb")
    assert db.apply(WriteBatch(), at=123) == 123


def test_batch_atomic_sequence_numbers():
    config = ScaledConfig(scale=10_000)
    _, db = config.build_store("leveldb")
    before = db.versions.last_sequence
    batch = WriteBatch()
    for i in range(5):
        batch.put(f"k{i}".encode(), b"v")
    db.apply(batch, at=0)
    assert db.versions.last_sequence == before + 5
    assert db.stats.wal_records == 1  # one record for the whole batch
