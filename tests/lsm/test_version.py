"""Unit tests for versions, edits and MANIFEST persistence."""

import pytest

from repro.fs.stack import StorageStack
from repro.lsm.format import TYPE_VALUE, make_internal_key
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, Version, VersionEdit, VersionSet


def ikey(user, seq=10):
    return make_internal_key(user, seq, TYPE_VALUE)


def meta(number, lo, hi, size=1000, ino=-1):
    return FileMetaData(
        number=number, file_size=size, smallest=ikey(lo), largest=ikey(hi), ino=ino
    )


@pytest.fixture()
def stack():
    return StorageStack()


# ----------------------------------------------------------------------
# VersionEdit encode/decode
# ----------------------------------------------------------------------

def test_edit_roundtrip():
    edit = VersionEdit(log_number=7, next_file_number=20, last_sequence=999)
    edit.add_file(2, meta(11, b"a", b"m", size=4096, ino=77))
    edit.delete_file(1, 5)
    edit.compact_pointers.append((3, b"pivot"))
    decoded = VersionEdit.decode(edit.encode())
    assert decoded.log_number == 7
    assert decoded.next_file_number == 20
    assert decoded.last_sequence == 999
    assert decoded.deleted_files == [(1, 5)]
    assert decoded.compact_pointers == [(3, b"pivot")]
    (level, new_meta), = decoded.new_files
    assert level == 2
    assert new_meta.number == 11
    assert new_meta.file_size == 4096
    assert new_meta.smallest == ikey(b"a")
    assert new_meta.largest == ikey(b"m")
    assert new_meta.ino == 77


def test_empty_edit_roundtrip():
    decoded = VersionEdit.decode(VersionEdit().encode())
    assert decoded.new_files == []
    assert decoded.deleted_files == []
    assert decoded.log_number is None


# ----------------------------------------------------------------------
# Version structure
# ----------------------------------------------------------------------

def test_overlapping_inputs_disjoint_level():
    version = Version(7)
    version.files[1] = [meta(1, b"a", b"c"), meta(2, b"d", b"f"), meta(3, b"g", b"i")]
    hits = version.overlapping_inputs(1, b"c", b"e")
    assert [f.number for f in hits] == [1, 2]
    assert version.overlapping_inputs(1, b"x", b"z") == []
    assert [f.number for f in version.overlapping_inputs(1, None, None)] == [1, 2, 3]


def test_overlapping_inputs_level0_expands():
    version = Version(7)
    version.files[0] = [meta(1, b"a", b"d"), meta(2, b"c", b"h"), meta(3, b"g", b"k")]
    # asking for [a, b] pulls in file 1; file 1 reaches d, which pulls in
    # file 2, which reaches h, which pulls in file 3 (fixed point)
    hits = version.overlapping_inputs(0, b"a", b"b")
    assert sorted(f.number for f in hits) == [1, 2, 3]


def test_files_for_get_level0_newest_first():
    version = Version(7)
    version.files[0] = [meta(1, b"a", b"z"), meta(5, b"a", b"z"), meta(3, b"a", b"z")]
    hits = version.files_for_get(b"m")
    assert [f.number for _, f in hits] == [5, 3, 1]


def test_files_for_get_skips_shadows():
    version = Version(7)
    shadow = meta(2, b"a", b"z")
    shadow.shadow = True
    version.files[0] = [meta(1, b"a", b"z"), shadow]
    hits = version.files_for_get(b"m")
    assert [f.number for _, f in hits] == [1]


def test_files_for_get_one_candidate_per_deep_level():
    version = Version(7)
    version.files[2] = [meta(1, b"a", b"c"), meta(2, b"d", b"f")]
    hits = version.files_for_get(b"e")
    assert [(lvl, f.number) for lvl, f in hits] == [(2, 2)]
    assert version.files_for_get(b"zz") == []


def test_pick_level_for_memtable_output():
    options = Options()
    version = Version(7)
    # empty store: new table can be pushed to level 2
    assert version.pick_level_for_memtable_output(b"a", b"b", options) == 2
    # overlap at level 0 keeps it at level 0
    version.files[0] = [meta(1, b"a", b"c")]
    assert version.pick_level_for_memtable_output(b"b", b"d", options) == 0
    # overlap at level 1 stops the push-down at level 0->... level 0
    version = Version(7)
    version.files[1] = [meta(2, b"a", b"c")]
    assert version.pick_level_for_memtable_output(b"b", b"d", options) == 0


# ----------------------------------------------------------------------
# VersionSet persistence
# ----------------------------------------------------------------------

def test_log_and_apply_then_recover(stack):
    options = Options()
    versions = VersionSet(stack.fs, "db", options)
    edit = VersionEdit(log_number=3)
    edit.add_file(1, meta(4, b"a", b"m", size=2222, ino=9))
    t = versions.log_and_apply(edit, at=0)
    versions.last_sequence = 55
    edit2 = VersionEdit()
    edit2.add_file(2, meta(6, b"n", b"z"))
    edit2.delete_file(1, 4)
    t = versions.log_and_apply(edit2, at=t)
    t = stack.fs.fsync(versions._manifest, at=t)

    recovered = VersionSet(stack.fs, "db", options)
    recovered.recover(at=t)
    assert recovered.log_number == 3
    assert recovered.last_sequence == 55
    assert recovered.current.num_files(1) == 0
    assert [f.number for f in recovered.current.files[2]] == [6]


def test_recover_ignores_torn_manifest_tail(stack):
    options = Options()
    options.sync.sync_manifest = False  # NobLSM-style async manifest
    versions = VersionSet(stack.fs, "db", options)
    edit = VersionEdit(log_number=3)
    edit.add_file(1, meta(4, b"a", b"m"))
    t = versions.log_and_apply(edit, at=0)
    t = stack.fs.fsync(versions._manifest, at=t)
    edit2 = VersionEdit()
    edit2.add_file(1, meta(9, b"n", b"z"))
    t = versions.log_and_apply(edit2, at=t)  # not synced
    stack.fs.crash()
    recovered = VersionSet(stack.fs, "db", options)
    recovered.recover(at=stack.now)
    numbers = [f.number for f in recovered.current.files[1]]
    assert numbers == [4]  # second edit lost with the volatile tail


def test_recover_with_validator_rolls_back_lost_outputs(stack):
    options = Options()
    options.sync.sync_manifest = False
    versions = VersionSet(stack.fs, "db", options)
    edit = VersionEdit()
    edit.add_file(1, meta(4, b"a", b"m"))
    edit.add_file(1, meta(5, b"n", b"z"))
    t = versions.log_and_apply(edit, at=0)
    # a compaction consumed 4 and 5, producing 8 — but 8 was lost
    edit2 = VersionEdit()
    edit2.delete_file(1, 4)
    edit2.delete_file(1, 5)
    edit2.add_file(2, meta(8, b"a", b"z"))
    t = versions.log_and_apply(edit2, at=t)
    t = stack.fs.fsync(versions._manifest, at=t)

    recovered = VersionSet(stack.fs, "db", options)
    recovered.validate_new_file = lambda m: m.number != 8
    recovered.recover(at=t)
    assert recovered.skipped_edits == 1
    assert [f.number for f in recovered.current.files[1]] == [4, 5]
    assert recovered.current.files[2] == []


def test_recover_validator_cascades_through_consumers(stack):
    options = Options()
    options.sync.sync_manifest = False
    versions = VersionSet(stack.fs, "db", options)
    base = VersionEdit()
    base.add_file(1, meta(4, b"a", b"z"))
    t = versions.log_and_apply(base, at=0)
    # the lost compaction produced 7 and 8; 8 is plainly missing after
    # the crash (so the edit must roll back), while 7 was consumed by a
    # later compaction that produced a durable 9 derived from half-lost
    # data — that consumer must roll back too
    lost = VersionEdit()
    lost.delete_file(1, 4)
    lost.add_file(2, meta(7, b"a", b"m"))
    lost.add_file(2, meta(8, b"n", b"z"))
    t = versions.log_and_apply(lost, at=t)
    consumer = VersionEdit()
    consumer.delete_file(2, 7)
    consumer.add_file(3, meta(9, b"a", b"m"))
    t = versions.log_and_apply(consumer, at=t)
    t = stack.fs.fsync(versions._manifest, at=t)

    recovered = VersionSet(stack.fs, "db", options)
    recovered.validate_new_file = lambda m: m.number != 8
    recovered.recover(at=t)
    # both the lost edit and its consumer are rolled back
    assert recovered.skipped_edits == 2
    assert [f.number for f in recovered.current.files[1]] == [4]
    assert recovered.current.files[2] == []
    assert recovered.current.files[3] == []


def test_recover_validator_accepts_consumed_missing_files(stack):
    """A file deleted by a later edit may legitimately be gone from disk."""
    options = Options()
    options.sync.sync_manifest = False
    versions = VersionSet(stack.fs, "db", options)
    first = VersionEdit()
    first.add_file(1, meta(4, b"a", b"z"))
    t = versions.log_and_apply(first, at=0)
    second = VersionEdit()
    second.delete_file(1, 4)
    second.add_file(2, meta(8, b"a", b"z"))
    t = versions.log_and_apply(second, at=t)
    t = stack.fs.fsync(versions._manifest, at=t)

    recovered = VersionSet(stack.fs, "db", options)
    # 4 is gone from disk (consumed + reclaimed); 8 is durable
    recovered.validate_new_file = lambda m: m.number != 4
    recovered.recover(at=t)
    assert recovered.skipped_edits == 0
    assert [f.number for f in recovered.current.files[2]] == [8]


def test_level_scores(stack):
    options = Options(max_bytes_for_level_base=1000)
    versions = VersionSet(stack.fs, "db", options)
    version = Version(options.num_levels)
    version.files[0] = [meta(i, b"a", b"z") for i in range(1, 5)]
    version.files[1] = [meta(9, b"a", b"z", size=2500)]
    versions.current = version
    assert versions.level_score(0) == pytest.approx(1.0)
    assert versions.level_score(1) == pytest.approx(2.5)
    level, score = versions.pick_compaction_level()
    assert level == 1
    assert score == pytest.approx(2.5)
