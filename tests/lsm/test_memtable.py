"""Unit tests for the memtable."""

import pytest

from repro.lsm.format import TYPE_DELETION, TYPE_VALUE
from repro.lsm.memtable import ENTRY_OVERHEAD, MemTable


@pytest.fixture()
def memtable():
    return MemTable()


def test_empty_memtable(memtable):
    assert memtable.empty
    assert len(memtable) == 0
    assert memtable.get(b"missing") is None


def test_add_and_get(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"value")
    assert memtable.get(b"key") == (True, b"value")
    assert not memtable.empty


def test_newest_write_wins(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"old")
    memtable.add(2, TYPE_VALUE, b"key", b"new")
    assert memtable.get(b"key") == (True, b"new")
    assert len(memtable) == 2  # both versions retained (snapshots)


def test_sequence_bound_reads_older_version(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"old")
    memtable.add(2, TYPE_VALUE, b"key", b"new")
    assert memtable.get(b"key", sequence_bound=1) == (True, b"old")
    assert memtable.get(b"key", sequence_bound=0) is None


def test_deletion_returns_tombstone(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"value")
    memtable.add(2, TYPE_DELETION, b"key", b"")
    assert memtable.get(b"key") == (False, b"")


def test_bad_type_rejected(memtable):
    with pytest.raises(ValueError):
        memtable.add(1, 9, b"key", b"value")


def test_memory_accounting_grows(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"v" * 100)
    expected = len(b"key") + 100 + ENTRY_OVERHEAD
    assert memtable.approximate_memory_usage == expected


def test_memory_accounting_accumulates_versions(memtable):
    memtable.add(1, TYPE_VALUE, b"key", b"v" * 100)
    memtable.add(2, TYPE_VALUE, b"key", b"v" * 10)
    expected = 2 * (len(b"key") + ENTRY_OVERHEAD) + 100 + 10
    assert memtable.approximate_memory_usage == expected


def test_sorted_entries_in_key_order(memtable):
    for i, key in enumerate([b"zebra", b"apple", b"mango"]):
        memtable.add(i + 1, TYPE_VALUE, key, b"v")
    keys = [key for key, _, _, _ in memtable.sorted_entries()]
    assert keys == [b"apple", b"mango", b"zebra"]


def test_sorted_entries_versions_newest_first(memtable):
    memtable.add(1, TYPE_VALUE, b"k", b"v1")
    memtable.add(2, TYPE_VALUE, b"k", b"v2")
    entries = list(memtable.sorted_entries())
    assert [(s, v) for _, s, _, v in entries] == [(2, b"v2"), (1, b"v1")]


def test_sorted_entries_carry_metadata(memtable):
    memtable.add(7, TYPE_DELETION, b"key", b"")
    entries = list(memtable.sorted_entries())
    assert entries == [(b"key", 7, TYPE_DELETION, b"")]


def test_smallest_largest(memtable):
    for i, key in enumerate([b"m", b"a", b"z"]):
        memtable.add(i + 1, TYPE_VALUE, key, b"v")
    assert memtable.smallest_key() == b"a"
    assert memtable.largest_key() == b"z"


def test_unique_keys_counts_distinct_user_keys(memtable):
    assert memtable.unique_keys == 0
    memtable.add(1, TYPE_VALUE, b"a", b"v1")
    memtable.add(2, TYPE_VALUE, b"b", b"v2")
    assert memtable.unique_keys == 2
    # another version of an existing key adds an entry, not a key
    memtable.add(3, TYPE_VALUE, b"a", b"v3")
    assert memtable.unique_keys == 2
    assert len(memtable) == 3
