"""Unit tests for on-disk encodings."""

import pytest

from repro.lsm.format import (
    CorruptionError,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    crc32,
    get_fixed32,
    get_fixed64,
    get_length_prefixed,
    get_varint,
    internal_compare,
    make_internal_key,
    pack_tag,
    parse_internal_key,
    put_fixed32,
    put_fixed64,
    put_length_prefixed,
    put_varint,
)


@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**21, 2**32 - 1, 2**56])
def test_varint_roundtrip(value):
    encoded = put_varint(value)
    decoded, offset = get_varint(encoded)
    assert decoded == value
    assert offset == len(encoded)


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        put_varint(-1)


def test_varint_truncated_raises():
    encoded = put_varint(300)
    with pytest.raises(CorruptionError):
        get_varint(encoded[:-1])


def test_varint_in_stream():
    buf = put_varint(5) + put_varint(1000) + b"tail"
    first, pos = get_varint(buf)
    second, pos = get_varint(buf, pos)
    assert (first, second) == (5, 1000)
    assert buf[pos:] == b"tail"


@pytest.mark.parametrize("value", [0, 1, 0xFFFFFFFF])
def test_fixed32_roundtrip(value):
    assert get_fixed32(put_fixed32(value)) == value


@pytest.mark.parametrize("value", [0, 1, 0xFFFFFFFFFFFFFFFF])
def test_fixed64_roundtrip(value):
    assert get_fixed64(put_fixed64(value)) == value


def test_length_prefixed_roundtrip():
    buf = put_length_prefixed(b"hello") + put_length_prefixed(b"")
    first, pos = get_length_prefixed(buf)
    second, pos = get_length_prefixed(buf, pos)
    assert (first, second) == (b"hello", b"")
    assert pos == len(buf)


def test_length_prefixed_truncated():
    buf = put_length_prefixed(b"hello")[:-1]
    with pytest.raises(CorruptionError):
        get_length_prefixed(buf)


def test_crc32_differs_on_corruption():
    data = b"some block contents"
    corrupted = b"some block European"
    assert crc32(data) != crc32(corrupted)


def test_pack_tag_bounds():
    assert pack_tag(0, TYPE_VALUE) == 1
    assert pack_tag(MAX_SEQUENCE, TYPE_DELETION) == MAX_SEQUENCE << 8
    with pytest.raises(ValueError):
        pack_tag(MAX_SEQUENCE + 1, TYPE_VALUE)
    with pytest.raises(ValueError):
        pack_tag(0, 7)


def test_internal_key_roundtrip():
    key = make_internal_key(b"user", 42, TYPE_VALUE)
    user, sequence, value_type = parse_internal_key(key)
    assert user == b"user"
    assert sequence == 42
    assert value_type == TYPE_VALUE


def test_parse_internal_key_too_short():
    with pytest.raises(CorruptionError):
        parse_internal_key(b"short")


def test_internal_compare_orders_by_user_key():
    a = make_internal_key(b"aaa", 5, TYPE_VALUE)
    b = make_internal_key(b"bbb", 5, TYPE_VALUE)
    assert internal_compare(a, b) < 0
    assert internal_compare(b, a) > 0


def test_internal_compare_newer_sequence_first():
    older = make_internal_key(b"key", 5, TYPE_VALUE)
    newer = make_internal_key(b"key", 9, TYPE_VALUE)
    assert internal_compare(newer, older) < 0  # newer sorts first


def test_internal_compare_equal():
    a = make_internal_key(b"key", 5, TYPE_VALUE)
    b = make_internal_key(b"key", 5, TYPE_VALUE)
    assert internal_compare(a, b) == 0


def test_internal_compare_deletion_vs_value_same_seq():
    deletion = make_internal_key(b"key", 5, TYPE_DELETION)
    value = make_internal_key(b"key", 5, TYPE_VALUE)
    # higher tag (value type 1) sorts first, mirroring LevelDB
    assert internal_compare(value, deletion) < 0
