"""Correctness of every baseline store: same data in, same data out."""

import random

import pytest

from repro.baselines.registry import PAPER_STORES, make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis

ALL_STORES = PAPER_STORES + ["volatile"]


def small_options():
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    options.reclaim_interval_ns = millis(50)
    return options


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def random_ops(n, seed, key_space=None):
    rng = random.Random(seed)
    key_space = key_space or n
    ops = []
    for _ in range(n):
        key = f"key{rng.randrange(key_space):06d}".encode()
        value = f"v{rng.randrange(1 << 20):07d}".encode() * 8
        ops.append((key, value))
    return ops


@pytest.mark.parametrize("store_name", ALL_STORES)
def test_store_roundtrip_under_compactions(store_name):
    stack = fast_stack()
    db = make_store(store_name, stack, options=small_options())
    expected = {}
    t = 0
    for key, value in random_ops(1200, seed=3):
        t = db.put(key, value, at=t)
        expected[key] = value
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key], f"{store_name}: wrong value for {key!r}"


@pytest.mark.parametrize("store_name", ALL_STORES)
def test_store_deletes(store_name):
    stack = fast_stack()
    db = make_store(store_name, stack, options=small_options())
    t = 0
    ops = random_ops(600, seed=4)
    expected = {}
    for key, value in ops:
        t = db.put(key, value, at=t)
        expected[key] = value
    doomed = sorted(expected)[::3]
    for key in doomed:
        t = db.delete(key, at=t)
        del expected[key]
    for key, value in random_ops(300, seed=5, key_space=2000):
        key = b"other" + key
        t = db.put(key, value, at=t)
        expected[key] = value
    for key in doomed:
        value, t = db.get(key, at=t)
        assert value is None, f"{store_name}: deleted {key!r} came back"
    for key in sorted(expected)[::7]:
        value, t = db.get(key, at=t)
        assert value == expected[key]


@pytest.mark.parametrize("store_name", ALL_STORES)
def test_store_iteration_matches_dict(store_name):
    stack = fast_stack()
    db = make_store(store_name, stack, options=small_options())
    expected = {}
    t = 0
    for key, value in random_ops(800, seed=6, key_space=400):
        t = db.put(key, value, at=t)
        expected[key] = value
    iterator = db.iterate(at=t)
    seen = {}
    last_key = None
    while iterator.valid:
        assert last_key is None or iterator.key > last_key, (
            f"{store_name}: iteration out of order"
        )
        last_key = iterator.key
        seen[iterator.key] = iterator.value
        iterator.next()
    assert seen == expected, f"{store_name}: iteration missed or invented keys"


@pytest.mark.parametrize("store_name", ALL_STORES)
def test_store_time_advances_monotonically(store_name):
    stack = fast_stack()
    db = make_store(store_name, stack, options=small_options())
    t = 0
    for key, value in random_ops(300, seed=7):
        t2 = db.put(key, value, at=t)
        assert t2 >= t
        t = t2


def test_volatile_never_syncs():
    stack = fast_stack()
    db = make_store("volatile", stack, options=small_options())
    t = 0
    for key, value in random_ops(1000, seed=8):
        t = db.put(key, value, at=t)
    assert stack.sync_stats.sync_calls == 0


def test_bolt_fewer_syncs_than_leveldb_same_data():
    results = {}
    for name in ("leveldb", "bolt"):
        stack = fast_stack()
        db = make_store(name, stack, options=small_options())
        t = 0
        for key, value in random_ops(1500, seed=9):
            t = db.put(key, value, at=t)
        db.close(t)
        results[name] = stack.sync_stats.sync_calls
    assert results["bolt"] < results["leveldb"]


def test_pebblesdb_lower_write_amplification():
    written = {}
    for name in ("leveldb", "pebblesdb"):
        stack = fast_stack()
        db = make_store(name, stack, options=small_options())
        t = 0
        for key, value in random_ops(2000, seed=10, key_space=1000):
            t = db.put(key, value, at=t)
        db.close(t)
        written[name] = db.stats.bytes_compacted_out + db.stats.bytes_flushed
    assert written["pebblesdb"] < written["leveldb"]


def test_pebblesdb_guard_appends_happen():
    stack = fast_stack()
    db = make_store("pebblesdb", stack, options=small_options())
    t = 0
    for key, value in random_ops(2000, seed=11, key_space=1000):
        t = db.put(key, value, at=t)
    assert db.guard_appends > 0


def test_l2sm_separates_hot_keys():
    stack = fast_stack()
    db = make_store("l2sm", stack, options=small_options())
    rng = random.Random(12)
    t = 0
    # heavy skew: 10 hot keys take half the updates
    for _ in range(2000):
        if rng.random() < 0.5:
            key = f"hot{rng.randrange(10):02d}".encode()
        else:
            key = f"cold{rng.randrange(5000):06d}".encode()
        t = db.put(key, f"v{rng.randrange(1000)}".encode() * 10, at=t)
    assert db.hot_dumps > 0
    # hot keys should be readable from the hot store
    value, t = db.get(b"hot00", at=t)
    assert value is not None


def test_l2sm_hot_store_survives_crash():
    stack = fast_stack()
    db = make_store("l2sm", stack, options=small_options())
    rng = random.Random(13)
    t = 0
    expected = {}
    for _ in range(2000):
        key = f"hot{rng.randrange(8):02d}".encode()
        value = f"v{rng.randrange(10**6)}".encode() * 10
        t = db.put(key, value, at=t)
        expected[key] = value
    memtable_keys = {k for k in expected if db.mem.get(k) is not None}
    stack.crash()
    db = make_store("l2sm", stack, options=small_options())
    t = stack.now
    for key in sorted(set(expected) - memtable_keys):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_rocksdb_uses_multiple_threads():
    stack = fast_stack()
    db = make_store("rocksdb", stack, options=small_options())
    assert db.bg.num_threads == 4


def test_hyperleveldb_uses_smaller_tables():
    stack = fast_stack()
    db = make_store("hyperleveldb", stack, options=small_options())
    assert db.options.max_file_size < small_options().max_file_size


def test_make_store_rejects_unknown():
    with pytest.raises(ValueError):
        make_store("cassandra", fast_stack())
