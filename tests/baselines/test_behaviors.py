"""Behavioural contracts of each baseline model (beyond correctness)."""

import random

import pytest

from repro.baselines.bolt import BoLT
from repro.baselines.l2sm import HOT_THRESHOLD, L2SMLike
from repro.baselines.pebblesdb import GUARD_MERGE_THRESHOLD, PebblesDBLike
from repro.baselines.registry import make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    options.reclaim_interval_ns = millis(50)
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def fill_random(db, n, seed=1, key_space=None, value_size=150):
    rng = random.Random(seed)
    space = key_space or n
    t = 0
    for _ in range(n):
        key = f"key{rng.randrange(space):06d}".encode()
        t = db.put(key, b"v" * value_size, at=t)
    return t


# ----------------------------------------------------------------------
# BoLT
# ----------------------------------------------------------------------

def test_bolt_one_sync_per_compaction():
    stack = fast_stack()
    db = BoLT(stack, options=small_options())
    t = fill_random(db, 2000, seed=2)
    t = db.wait_for_background(t)
    majors_with_outputs = db.factual_tables
    major_syncs = stack.sync_stats.by_reason.get("major", 0)
    assert major_syncs == majors_with_outputs
    # ... while the bytes cover every output, not just the synced file
    assert (
        stack.sync_stats.bytes_by_reason.get("major", 0)
        >= db.stats.bytes_compacted_out * 0.9
    )


def test_bolt_read_pays_logical_indirection():
    stack = fast_stack()
    bolt = BoLT(stack, options=small_options())
    t = fill_random(bolt, 500, seed=3)
    _, t_bolt = bolt.get(b"key000001", at=t)

    stack2 = fast_stack()
    ldb = make_store("leveldb", stack2, options=small_options())
    t = fill_random(ldb, 500, seed=3)
    _, t_ldb = ldb.get(b"key000001", at=t)
    # same structural work plus a constant indirection
    assert t_bolt - t >= 0


# ----------------------------------------------------------------------
# PebblesDB
# ----------------------------------------------------------------------

def test_pebblesdb_guards_grow_with_levels():
    stack = fast_stack()
    db = PebblesDBLike(stack, options=small_options())
    t = fill_random(db, 3000, seed=4, key_space=1500)
    populated = [
        level
        for level in range(1, db.options.num_levels)
        if db.versions.current.files[level]
    ]
    assert db._guards, "guards should exist after compactions"
    for level in db._guards:
        assert db._guards[level] == sorted(db._guards[level])


def test_pebblesdb_guard_merges_bound_overlap():
    stack = fast_stack()
    db = PebblesDBLike(stack, options=small_options())
    t = fill_random(db, 4000, seed=5, key_space=800)
    t = db.wait_for_background(t)
    # within any guard range, resident (fully-contained) files stay under
    # the merge threshold plus the in-flight slack
    version = db.versions.current
    for level, guards in db._guards.items():
        bounds = [None] + list(guards) + [None]
        for lo, hi in zip(bounds, bounds[1:]):
            resident = db._guard_range_files(level, lo, hi)
            assert len(resident) <= GUARD_MERGE_THRESHOLD + 2


def test_pebblesdb_writes_less_than_leveldb():
    totals = {}
    for name in ("leveldb", "pebblesdb"):
        stack = fast_stack()
        db = make_store(name, stack, options=small_options())
        t = fill_random(db, 3000, seed=6, key_space=1500)
        t = db.wait_for_background(t)
        totals[name] = db.stats.bytes_compacted_out + db.stats.bytes_flushed
    assert totals["pebblesdb"] < totals["leveldb"]


# ----------------------------------------------------------------------
# L2SM
# ----------------------------------------------------------------------

def test_l2sm_hot_log_gc_demotes_cooled_keys():
    stack = fast_stack()
    db = L2SMLike(stack, options=small_options())
    rng = random.Random(7)
    t = 0
    # phase 1: a hot set (big enough to overflow the memtable) is hammered
    for _ in range(2500):
        key = f"hot{rng.randrange(60):02d}".encode()
        t = db.put(key, b"h" * 200, at=t)
    assert db.hot_dumps > 0
    # phase 2: the hot set cools while cold traffic dominates
    for _ in range(4000):
        key = f"cold{rng.randrange(4000):06d}".encode()
        t = db.put(key, b"c" * 200, at=t)
    if db.hot_gcs:
        assert db.demoted_keys > 0
    # cooled keys remain readable wherever they live now
    value, t = db.get(b"hot07", at=t)
    assert value == b"h" * 200


def test_l2sm_uniform_workload_behaves_like_leveldb():
    """Table 1: L2SM's sync counts track LevelDB's under uniform load."""
    counts = {}
    for name in ("leveldb", "l2sm"):
        stack = fast_stack()
        db = make_store(name, stack, options=small_options())
        fill_random(db, 2500, seed=8, key_space=10_000)  # few repeats
        counts[name] = stack.sync_stats.sync_calls
    assert counts["l2sm"] == pytest.approx(counts["leveldb"], rel=0.4)


def test_l2sm_skewed_updates_reduce_compaction_io():
    """The design goal: hot updates skip the main tree's compactions."""
    written = {}
    for name in ("leveldb", "l2sm"):
        stack = fast_stack()
        db = make_store(name, stack, options=small_options())
        rng = random.Random(9)
        t = 0
        for _ in range(4000):
            if rng.random() < 0.6:
                key = f"hot{rng.randrange(8):02d}".encode()
            else:
                key = f"cold{rng.randrange(3000):06d}".encode()
            t = db.put(key, b"v" * 200, at=t)
        t = db.wait_for_background(t)
        written[name] = db.stats.bytes_compacted_out + db.stats.bytes_flushed
    assert written["l2sm"] < written["leveldb"]
