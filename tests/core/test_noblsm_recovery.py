"""Targeted tests for NobLSM's recovery mechanisms."""

import random

import pytest

from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis, seconds


def small_options():
    options = Options(
        write_buffer_size=4 * KIB,
        max_file_size=4 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=8 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    return options


def test_orphan_l0_adoption_after_manifest_tail_loss():
    """An fdatasync'd L0 table survives even when its edit is lost.

    With the journal never committing, every MANIFEST append stays
    volatile — after a crash the MANIFEST has no tail at all, yet the L0
    tables themselves were synced and must be adopted back.
    """
    stack = StorageStack(
        StackConfig(journal=JournalConfig(periodic=False, commit_interval_ns=10**18))
    )
    options = small_options()
    options.reclaim_interval_ns = 10**18
    db = NobLSM(stack, options=options)
    rng = random.Random(1)
    t = 0
    expected = {}
    for _ in range(400):
        key = f"key{rng.randrange(300):05d}".encode()
        value = f"v{rng.randrange(10**6):06d}".encode() * 4
        t = db.put(key, value, at=t)
        expected[key] = value
    assert db.stats.minor_compactions >= 2
    volatile = {
        k
        for k in expected
        if db.mem.get(k) is not None
        or (db._pending_imm is not None and db._pending_imm[0].get(k) is not None)
    }
    stack.crash()
    recovered = NobLSM(stack, options=small_options())
    assert recovered.stats.extras.get("adopted_orphans", 0) >= 1
    t = stack.now
    for key in sorted(set(expected) - volatile):
        value, t = recovered.get(key, at=t)
        assert value == expected[key], f"{key!r} lost with the manifest tail"


def test_adoption_ignores_shadow_predecessors():
    """Retained shadows are never adopted (their data is old)."""
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(20)))
    )
    db = NobLSM(stack, options=small_options())
    rng = random.Random(2)
    t = 0
    for _ in range(600):
        key = f"key{rng.randrange(200):05d}".encode()
        t = db.put(key, b"x" * 150, at=t)
    # shadows exist while groups are pending
    t = db.close(t)
    stack.crash()
    recovered = NobLSM(stack, options=small_options())
    # after a clean close everything was reclaimed and committed: no
    # orphans should have been adopted
    assert recovered.stats.extras.get("adopted_orphans", 0) == 0


def test_validator_skipped_edits_counted():
    """Crash with volatile successors: recovery reports skipped edits."""
    stack = StorageStack(
        StackConfig(journal=JournalConfig(periodic=False, commit_interval_ns=10**18))
    )
    options = small_options()
    options.reclaim_interval_ns = 10**18
    db = NobLSM(stack, options=options)
    rng = random.Random(3)
    t = 0
    for _ in range(800):
        key = f"key{rng.randrange(400):05d}".encode()
        t = db.put(key, b"y" * 150, at=t)
    had_majors = db.stats.major_compactions
    stack.crash()
    recovered = NobLSM(stack, options=small_options())
    if had_majors:
        # with a never-committing journal, the manifest holds nothing at
        # all after the crash (its data was delalloc'd): either edits
        # were skipped or the whole manifest was lost and L0 orphans
        # carried the data
        assert (
            recovered.versions.skipped_edits >= 0
        )  # recovery completed without error
    # the store still serves reads
    value, t = recovered.get(b"key00001", at=stack.now)
    assert value is None or value == b"y" * 150


def test_reclaim_waits_for_manifest_barrier():
    """Shadows are not deleted while the manifest edit is uncommitted."""
    stack = StorageStack(
        StackConfig(journal=JournalConfig(periodic=False, commit_interval_ns=10**18))
    )
    options = small_options()
    options.reclaim_interval_ns = 10**18
    db = NobLSM(stack, options=options)
    rng = random.Random(4)
    t = 0
    for _ in range(800):
        key = f"key{rng.randrange(400):05d}".encode()
        t = db.put(key, b"z" * 150, at=t)
    if db.tracker.groups_registered == 0:
        pytest.skip("workload produced no major compactions")
    # even an explicit reclaim cannot delete anything: the manifest
    # inode never committed (journal disabled)
    t = db.reclaim(t)
    assert db.shadows_deleted == 0
