"""noblsm-kv behaviour: separation, GC, commit-gated segment reclaim."""

import pytest

from repro.core.noblsm import NobLSM
from repro.core.noblsm_kv import NobLSMKV
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.filenames import vlog_file_name
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(20)))
    )


def kv_options(**overrides):
    options = Options(
        write_buffer_size=1 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    options.value_threshold = 16
    options.vlog_segment_bytes = 512
    options.vlog_gc_garbage_ratio = 0.3
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def fill(db, n, t=0, value_size=27, seed=3):
    import random

    rng = random.Random(seed)
    keys = []
    for _ in range(n):
        key = f"key{rng.randrange(64):04d}".encode()
        t = db.put(key, f"v{rng.randrange(10**8):08d}".encode() * (value_size // 9), at=t)
        keys.append(key)
    return keys, t


def settle(db, stack, t):
    t = db.wait_for_background(t)
    t = max(t, stack.settle())
    return db.reclaim(t)


def test_threshold_none_is_inert():
    """Without value_threshold the kv store is plain NobLSM."""
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options(value_threshold=None))
    assert db.vlog is None
    keys, t = fill(db, 200)
    t = settle(db, stack, t)
    assert not [p for p in stack.fs.list_dir("db/") if p.endswith(".vlg")]
    value, _ = db.get(keys[-1], at=t)
    assert value is not None


def test_separated_values_read_back():
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    keys, t = fill(db, 240)
    t = settle(db, stack, t)
    assert db.vlog.appends > 0
    # every key readable, values intact through pointer resolution
    import random

    rng = random.Random(3)
    model = {}
    for _ in range(240):
        key = f"key{rng.randrange(64):04d}".encode()
        model[key] = f"v{rng.randrange(10**8):08d}".encode() * 3
    for key, expect in model.items():
        value, t = db.get(key, at=t)
        assert value == expect, key


def test_small_values_stay_inline():
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options(value_threshold=4096))
    _, t = fill(db, 240)
    t = settle(db, stack, t)
    assert db.vlog.appends == 0
    assert not [p for p in stack.fs.list_dir("db/") if p.endswith(".vlg")]


def test_scan_resolves_pointers():
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    _, t = fill(db, 240)
    t = settle(db, stack, t)
    pairs, _ = db.scan(b"", 100, t)
    assert pairs
    for key, value in pairs:
        assert value.startswith(b"v")
        assert len(value) == 27


def test_gc_reclaims_segments_and_disk_matches():
    """Overwrite-heavy fill: garbage segments are GC'd and unlinked,
    and the on-disk .vlg set matches the vLog's own tracking."""
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    _, t = fill(db, 480)
    t = settle(db, stack, t)
    t = db.close(t)
    assert db.vlog.reclaimed_segments > 0
    assert db.pending_segment_retirements == []
    on_disk = sorted(
        p for p in stack.fs.list_dir("db/") if p.endswith(".vlg")
    )
    tracked = sorted(vlog_file_name("db", s) for s in db.vlog.segments())
    assert on_disk == tracked


def test_retirement_waits_for_commit_gate():
    """Dead segments wait at the gate: some reclaim poll must find a
    retirement still blocked on its barrier with the segment intact on
    disk, and by close every retirement has drained. (Breaking the gate
    outright deadlocks by design — suppressed polls never prune barrier
    inos whose commit records later shadow-unlinks erase — so the gate
    is observed in vivo rather than forced.)"""
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    deferred = []
    original = NobLSMKV.reclaim

    def spying(self, at):
        for segment, barrier in self.pending_segment_retirements:
            if barrier:
                assert stack.fs.exists(vlog_file_name("db", segment)), (
                    f"segment {segment} unlinked while barrier {barrier} "
                    f"uncommitted"
                )
                deferred.append(segment)
        return original(self, at)

    NobLSMKV.reclaim = spying
    try:
        _, t = fill(db, 480)
        t = db.wait_for_background(t)
        t = max(t, stack.settle())
        t = db.close(t)
    finally:
        NobLSMKV.reclaim = original
    assert deferred, "no retirement was ever observed waiting at the gate"
    assert db.pending_segment_retirements == []


def test_reopen_rebuilds_accounting_and_reads():
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    keys, t = fill(db, 240)
    t = settle(db, stack, t)
    t = db.close(t)
    reopened = NobLSMKV(stack, options=kv_options())
    live = {s: reopened.vlog.live_bytes(s) for s in reopened.vlog.segments()}
    assert any(v > 0 for v in live.values())
    import random

    rng = random.Random(3)
    model = {}
    for _ in range(240):
        key = f"key{rng.randrange(64):04d}".encode()
        model[key] = f"v{rng.randrange(10**8):08d}".encode() * 3
    t2 = stack.now
    for key, expect in model.items():
        value, t2 = reopened.get(key, at=t2)
        assert value == expect, key


def test_describe_exposes_vlog_snapshot():
    stack = fast_stack()
    db = NobLSMKV(stack, options=kv_options())
    _, t = fill(db, 120)
    settle(db, stack, t)
    doc = db.describe()
    assert "vlog" in doc
    assert doc["vlog"]["appends"] == db.vlog.appends


def test_kv_registry_entry():
    from repro.baselines.registry import STORE_CLASSES, make_store

    assert STORE_CLASSES["noblsm-kv"] is NobLSMKV
    stack = fast_stack()
    db = make_store("noblsm-kv", stack, options=kv_options())
    assert isinstance(db, NobLSMKV)


def test_kv_store_matches_noblsm_final_state():
    """Same workload, kv on vs plain noblsm: identical final KV map."""
    stack_a = fast_stack()
    kv = NobLSMKV(stack_a, options=kv_options())
    _, t_a = fill(kv, 300)
    t_a = settle(kv, stack_a, t_a)
    stack_b = fast_stack()
    plain = NobLSM(stack_b, options=kv_options(value_threshold=None))
    _, t_b = fill(plain, 300)
    t_b = settle(plain, stack_b, t_b)
    pairs_a, _ = kv.scan(b"", 200, t_a)
    pairs_b, _ = plain.scan(b"", 200, t_b)
    assert pairs_a == pairs_b
