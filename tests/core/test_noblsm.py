"""NobLSM behaviour: sync-once, shadow retention, reclamation."""

import pytest

from repro.core.noblsm import NobLSM
from repro.fs.stack import StackConfig, StorageStack
from repro.fs.jbd2 import JournalConfig
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis, seconds


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    options.reclaim_interval_ns = millis(50)
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def fast_stack():
    """A stack whose journal commits every 50 virtual ms (scaled run)."""
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def filled_keys(n, prefix="key", seed=7):
    """The deterministic random key sequence `fill` writes."""
    import random

    rng = random.Random(seed)
    return [f"{prefix}{rng.randrange(n * 4):06d}".encode() for _ in range(n)]


def fill(db, n, t=0, prefix="key", value_size=100, seed=7):
    """Random-key fill (fillrandom-like), deterministic per seed."""
    for key in filled_keys(n, prefix, seed):
        t = db.put(key, b"v" * value_size, at=t)
    return t


@pytest.fixture()
def stack():
    return fast_stack()


@pytest.fixture()
def db(stack):
    return NobLSM(stack, options=small_options())


def test_noblsm_reads_after_compactions(db):
    t = fill(db, 800)
    for key in filled_keys(800)[::71]:
        value, t = db.get(key, at=t)
        assert value == b"v" * 100


def test_noblsm_only_syncs_tables_at_minor(stack, db):
    """KV data is synced exactly once (L0 tables); the only other syncs
    are LevelDB's tiny MANIFEST/CURRENT syncs, never 'major'."""
    fill(db, 800)
    reasons = set(stack.sync_stats.by_reason)
    assert reasons <= {"minor", "manifest", "current"}
    assert stack.sync_stats.by_reason.get("minor", 0) > 0
    assert stack.sync_stats.by_reason.get("major", 0) == 0
    # table data synced == flushed L0 bytes, nothing re-synced
    assert stack.sync_stats.bytes_by_reason.get("minor", 0) > 0


def test_noblsm_syncs_less_than_leveldb():
    nob_stack = fast_stack()
    nob = NobLSM(nob_stack, options=small_options())
    t = fill(nob, 800)
    nob.close(t)

    ldb_stack = fast_stack()
    ldb = DB(ldb_stack, options=small_options())
    t = fill(ldb, 800)
    ldb.close(t)

    assert nob_stack.sync_stats.sync_calls < ldb_stack.sync_stats.sync_calls
    assert nob_stack.sync_stats.bytes_synced < ldb_stack.sync_stats.bytes_synced


def test_noblsm_faster_than_leveldb_on_fill():
    nob = NobLSM(fast_stack(), options=small_options())
    t_nob = fill(nob, 1500)

    ldb = DB(fast_stack(), options=small_options())
    t_ldb = fill(ldb, 1500)

    assert t_nob < t_ldb


def test_major_outputs_tracked_not_synced(stack, db):
    fill(db, 1200)
    assert db.stats.major_compactions >= 1
    assert db.tracker.groups_registered >= 1
    assert stack.syscalls.check_commit_calls >= 1
    assert stack.sync_stats.by_reason.get("major", 0) == 0


def test_shadows_retained_until_commit(stack):
    # Journal that never commits on its own: shadows must accumulate.
    slow = StorageStack(
        StackConfig(journal=JournalConfig(periodic=False, commit_interval_ns=seconds(10_000)))
    )
    options = small_options()
    options.reclaim_interval_ns = seconds(10_000)
    db = NobLSM(slow, options=options)
    fill(db, 1200)
    if db.tracker.groups_registered:
        assert db.shadow_count > 0
        assert db.shadows_deleted == 0


def test_reclaim_deletes_shadows_after_commit(db, stack):
    t = fill(db, 1200)
    assert db.tracker.groups_registered >= 1
    t = db.close(t)
    assert db.shadow_count == 0
    assert db.shadows_deleted > 0
    assert db.tracker.reclaimable() == []


def test_reclaim_runs_periodically(db):
    t = fill(db, 1200)
    db.stack.events.run_until(t + seconds(1))
    assert db.reclaim_runs >= 2


def test_shadow_files_not_searched(db):
    """Reads never touch shadow tables (they are out of the version)."""
    t = fill(db, 1200)
    shadows = db.tracker.shadow_numbers()
    live = set(db.versions.current.all_file_numbers())
    assert not (shadows & live)


def test_noblsm_data_written_back_eventually(stack, db):
    """Async commits must still move the bytes to the device."""
    t = fill(db, 800)
    db.close(t)
    user_bytes = 800 * 100
    assert stack.ssd.stats.bytes_written > user_bytes


def test_kernel_tables_bounded(db, stack):
    t = fill(db, 1500)
    db.close(t)
    # every tracked inode was either unlinked (erased) or stays committed;
    # Pending drains completely at quiescence
    assert not stack.syscalls.pending
