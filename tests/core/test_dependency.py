"""Unit tests for the predecessor/successor dependency tracker."""

import pytest

from repro.core.dependency import DependencyTracker, SSTableRef


def ref(number, ino=None):
    return SSTableRef(number=number, ino=ino or number + 1000, path=f"db/{number}.ldb")


@pytest.fixture()
def tracker():
    return DependencyTracker()


def test_register_requires_successors(tracker):
    with pytest.raises(ValueError):
        tracker.register([ref(1)], [])


def test_group_counts(tracker):
    group = tracker.register([ref(1), ref(2)], [ref(3)])
    assert group.p == 2
    assert group.q == 1
    assert tracker.groups_registered == 1


def test_resolve_when_all_successors_committed(tracker):
    tracker.register([ref(1)], [ref(3), ref(4)])
    committed = {1003}
    resolved = tracker.resolve(lambda ino: ino in committed)
    assert resolved == []
    committed.add(1004)
    resolved = tracker.resolve(lambda ino: ino in committed)
    assert len(resolved) == 1
    assert tracker.groups_resolved == 1


def test_reclaim_order_is_consecutive(tracker):
    g1 = tracker.register([ref(1)], [ref(10)])
    g2 = tracker.register([ref(2)], [ref(20)])
    g3 = tracker.register([ref(3)], [ref(30)])
    # only g2 and g3's successors committed: nothing reclaimable yet,
    # because g1 blocks the prefix
    committed = {1020, 1030}
    tracker.resolve(lambda ino: ino in committed)
    assert tracker.reclaimable() == []
    committed.add(1010)
    tracker.resolve(lambda ino: ino in committed)
    ready = tracker.reclaimable()
    assert [g.group_id for g in ready] == [g1.group_id, g2.group_id, g3.group_id]


def test_mark_reclaimed_removes_from_ready(tracker):
    g1 = tracker.register([ref(1)], [ref(10)])
    tracker.resolve(lambda ino: True)
    tracker.mark_reclaimed(g1)
    assert tracker.reclaimable() == []


def test_shadow_numbers_until_reclaimed(tracker):
    g1 = tracker.register([ref(1), ref(2)], [ref(10)])
    assert tracker.shadow_numbers() == {1, 2}
    tracker.resolve(lambda ino: True)
    tracker.mark_reclaimed(g1)
    assert tracker.shadow_numbers() == set()


def test_consumed_successor_settles_via_consumer(tracker):
    """A successor re-compacted before committing settles when its
    consuming group resolves (its ino was erased on unlink)."""
    g1 = tracker.register([ref(1)], [ref(10)])
    g2 = tracker.register([ref(10)], [ref(20)])  # 10 consumed by g2
    committed = {1020}  # only g2's successor ever commits
    tracker.resolve(lambda ino: ino in committed)
    assert g2.resolved
    assert g1.resolved  # settled transitively


def test_unresolved_consumer_keeps_producer_unresolved(tracker):
    g1 = tracker.register([ref(1)], [ref(10)])
    g2 = tracker.register([ref(10)], [ref(20)])
    tracker.resolve(lambda ino: False)
    assert not g1.resolved
    assert not g2.resolved


def test_barrier_inos_block_resolution(tracker):
    g1 = tracker.register([ref(1)], [ref(10)], barrier_inos=[555])
    committed = {1010}
    tracker.resolve(lambda ino: ino in committed)
    assert not g1.resolved  # barrier (the manifest inode) not committed
    committed.add(555)
    tracker.resolve(lambda ino: ino in committed)
    assert g1.resolved


def test_settled_cache_survives_table_erasure(tracker):
    """Once observed committed, a successor stays settled even if its
    kernel-table entry is later erased by unlink."""
    g1 = tracker.register([ref(1)], [ref(10)])
    committed = {1010}
    tracker.resolve(lambda ino: ino in committed)
    assert g1.resolved
    committed.clear()  # unlink erased the entry
    assert tracker.resolve(lambda ino: False) == []
    assert g1.resolved


def test_clear_wipes_everything(tracker):
    tracker.register([ref(1)], [ref(10)])
    tracker.clear()
    assert tracker.outstanding_groups() == []
    assert tracker.shadow_numbers() == set()


def test_out_of_order_successor_commits_keep_shadows(tracker):
    """Parallel compactions finish out of order: the later-registered
    group's successors commit first. Its predecessors must stay shadowed
    (reclaim is consecutive) and the earlier group's late commit must
    release both — deletion order never runs ahead of durability."""
    g1 = tracker.register([ref(1)], [ref(10)])
    g2 = tracker.register([ref(2)], [ref(20)])
    committed = {1020}  # g2's successor commits before g1's
    tracker.resolve(lambda ino: ino in committed)
    assert g2.resolved and not g1.resolved
    assert tracker.reclaimable() == []  # g1 blocks the prefix
    assert tracker.shadow_numbers() == {1, 2}
    committed.add(1010)
    tracker.resolve(lambda ino: ino in committed)
    assert [g.group_id for g in tracker.reclaimable()] == [
        g1.group_id,
        g2.group_id,
    ]


def test_out_of_order_consumption_settles_transitively(tracker):
    """A successor consumed by a host-later group that resolves first
    still settles its producer once the consumer resolves — even though
    the file itself never commits (it was compacted away)."""
    g1 = tracker.register([ref(1)], [ref(10)])
    g2 = tracker.register([ref(10)], [ref(20)])  # consumes g1's output
    committed = {1020}
    tracker.resolve(lambda ino: ino in committed)
    # g2 resolved via its committed successor; that settles ref(10) for
    # g1 despite ino 1010 never committing
    assert g2.resolved and g1.resolved
    ready = tracker.reclaimable()
    assert [g.group_id for g in ready] == [g1.group_id, g2.group_id]
