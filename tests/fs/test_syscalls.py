"""Unit tests for the NobLSM kernel tables and syscalls."""

import pytest

from repro.fs.stack import StorageStack
from repro.sim.clock import seconds


@pytest.fixture()
def stack():
    return StorageStack()


def _dirty_file(stack, path):
    f, t = stack.fs.create(path, at=stack.now)
    t = f.append(b"sstable-bytes" * 100, at=t)
    return f, t


def test_check_commit_fills_pending(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f.ino], at=t)
    assert f.ino in stack.syscalls.pending
    assert f.ino not in stack.syscalls.committed


def test_already_durable_inode_goes_straight_to_committed(stack):
    f, t = _dirty_file(stack, "sst1")
    t = f.fsync(at=t)
    stack.syscalls.check_commit([f.ino], at=t)
    assert f.ino in stack.syscalls.committed


def test_commit_moves_pending_to_committed(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f.ino], at=t)
    stack.events.run_until(t + seconds(6))
    ok, _ = stack.syscalls.is_committed(f.ino, at=stack.now)
    assert ok
    assert f.ino not in stack.syscalls.pending


def test_is_committed_false_before_commit(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f.ino], at=t)
    ok, _ = stack.syscalls.is_committed(f.ino, at=t)
    assert not ok


def test_untracked_inode_never_committed(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.events.run_until(t + seconds(6))
    ok, _ = stack.syscalls.is_committed(f.ino, at=stack.now)
    assert not ok  # was never check_commit'ed


def test_unlink_erases_table_entries(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f.ino], at=t)
    stack.events.run_until(t + seconds(6))
    assert f.ino in stack.syscalls.committed
    stack.fs.unlink("sst1", at=stack.now)
    assert f.ino not in stack.syscalls.committed
    assert f.ino not in stack.syscalls.pending


def test_multiple_inodes_across_transactions(stack):
    """Inodes of one compaction may land in different transactions."""
    f1, t1 = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f1.ino], at=t1)
    stack.events.run_until(t1 + seconds(6))  # commits f1's txn
    f2, t2 = _dirty_file(stack, "sst2")
    stack.syscalls.check_commit([f2.ino], at=t2)
    ok1, _ = stack.syscalls.is_committed(f1.ino, at=stack.now)
    ok2, _ = stack.syscalls.is_committed(f2.ino, at=stack.now)
    assert ok1 and not ok2
    stack.events.run_until(stack.now + seconds(6))
    ok2, _ = stack.syscalls.is_committed(f2.ino, at=stack.now)
    assert ok2


def test_fsync_of_other_file_commits_tracked_inode_after_writeback(stack):
    """Once the flusher has written a tracked inode back (joining it to
    the running transaction), any forced commit moves it to Committed."""
    f1, t1 = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f1.ino], at=t1)
    stack.events.run_until(t1 + seconds(2))  # flusher writes f1 back
    f2, t2 = _dirty_file(stack, "other")
    t = f2.fsync(at=max(stack.now, t2))
    ok, _ = stack.syscalls.is_committed(f1.ino, at=t)
    assert ok


def test_fsync_does_not_commit_unwritten_tracked_inode(stack):
    """Delayed allocation: a tracked inode whose data is still dirty is
    not covered by someone else's fsync."""
    f1, t1 = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f1.ino], at=t1)
    f2, t2 = _dirty_file(stack, "other")
    t = f2.fsync(at=max(t1, t2))
    ok, _ = stack.syscalls.is_committed(f1.ino, at=t)
    assert not ok


def test_syscall_counters(stack):
    f, t = _dirty_file(stack, "sst1")
    stack.syscalls.check_commit([f.ino], at=t)
    stack.syscalls.is_committed(f.ino, at=t)
    stack.syscalls.is_committed(f.ino, at=t)
    assert stack.syscalls.check_commit_calls == 1
    assert stack.syscalls.is_committed_calls == 2
