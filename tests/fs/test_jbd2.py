"""Unit tests for the JBD2 journal engine."""

import pytest

from repro.fs.jbd2 import JournalConfig, NsOp, NsOpKind, TxnState
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import millis, seconds


@pytest.fixture()
def stack():
    return StorageStack()


def dirty_file(stack, path, nbytes=4096):
    handle, t = stack.fs.create(path, at=stack.now)
    t = handle.append(b"x" * nbytes, at=t)
    return handle, t


def test_join_creates_running_txn(stack):
    journal = stack.journal
    assert journal.running is None
    journal.join(42, durable_size=100)
    assert journal.running is not None
    assert 42 in journal.running.inodes
    assert journal.running.commit_sizes[42] == 100


def test_join_keeps_largest_snapshot(stack):
    journal = stack.journal
    journal.join(42, durable_size=100)
    journal.join(42, durable_size=50)
    assert journal.running.commit_sizes[42] == 100
    journal.join(42, durable_size=200)
    assert journal.running.commit_sizes[42] == 200


def test_commit_sync_empty_txn_is_cheap(stack):
    done = stack.journal.commit_sync(at=1000)
    assert done == 1000
    assert stack.journal.commits == 0


def test_commit_sync_flushes_device(stack):
    handle, t = dirty_file(stack, "f")
    stack.fs.writeback_inode(handle.ino, t)
    flushes = stack.ssd.stats.flushes
    done = stack.journal.commit_sync(at=t)
    assert done > t
    assert stack.ssd.stats.flushes == flushes + 1
    assert stack.journal.commits == 1
    assert stack.journal.forced_commits == 1


def test_periodic_commit_fires_every_interval(stack):
    handle, t = dirty_file(stack, "f")
    stack.fs.writeback_inode(handle.ino, t)  # joins the running txn
    stack.events.run_until(t + seconds(6))
    assert stack.journal.commits >= 1
    assert handle._inode.committed_size == 4096


def test_periodic_commit_skipped_when_nothing_pending():
    stack = StorageStack()
    stack.events.run_until(seconds(20))
    assert stack.journal.commits == 0


def test_periodic_disabled_by_config():
    stack = StorageStack(StackConfig(journal=JournalConfig(periodic=False)))
    handle, t = dirty_file(stack, "f")
    stack.fs.writeback_inode(handle.ino, t)
    stack.events.run_until(t + seconds(60))
    assert stack.journal.commits == 0
    assert handle._inode.committed_size == 0


def test_wait_for_inode_running_txn_forces_commit(stack):
    handle, t = dirty_file(stack, "f")
    stack.fs.writeback_inode(handle.ino, t)
    done = stack.journal.wait_for_inode(handle.ino, t)
    assert done > t
    assert stack.journal.txn_of(handle.ino) is None  # committed


def test_wait_for_inode_clean_inode_is_free(stack):
    handle, t = dirty_file(stack, "f")
    t = handle.fsync(at=t)
    assert stack.journal.wait_for_inode(handle.ino, t) == t


def test_wait_for_committing_txn(stack):
    """An inode in an in-flight async commit waits for its completion."""
    stack2 = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(10)))
    )
    handle, t = dirty_file(stack2, "f")
    stack2.fs.writeback_inode(handle.ino, t)
    txn = stack2.journal.commit_async(t)
    assert txn is not None
    assert txn.state is TxnState.COMMITTING
    done = stack2.journal.wait_for_inode(handle.ino, t)
    assert done == txn.commit_done_at


def test_commits_serialize_on_device(stack):
    h1, t1 = dirty_file(stack, "f1")
    stack.fs.writeback_inode(h1.ino, t1)
    txn1 = stack.journal.commit_async(t1)
    h2, t2 = dirty_file(stack, "f2")
    stack.fs.writeback_inode(h2.ino, t2)
    done2 = stack.journal.commit_sync(max(t1, t2))
    assert done2 > txn1.commit_done_at  # second waits for the first


def test_sync_commit_applies_older_async_commit_first(stack):
    h1, t1 = dirty_file(stack, "f1")
    stack.fs.writeback_inode(h1.ino, t1)
    stack.journal.commit_async(t1)
    h2, t2 = dirty_file(stack, "f2")
    stack.fs.writeback_inode(h2.ino, t2)
    stack.journal.commit_sync(max(t1, t2))
    # both are durably applied, in tid order
    assert h1._inode.committed_size == 4096
    assert h2._inode.committed_size == 4096


def test_ns_ops_apply_at_commit(stack):
    handle, t = stack.fs.create("path", at=0)
    assert "path" not in stack.fs._durable_namespace
    stack.journal.commit_sync(t)
    assert stack.fs._durable_namespace.get("path") == handle.ino


def test_journal_write_size_scales_with_inodes(stack):
    journal = stack.journal
    txn = journal._ensure_running()
    for ino in range(40):
        txn.inodes.add(ino)
    many = journal._journal_write_bytes(txn)
    txn.inodes.clear()
    txn.inodes.add(1)
    one = journal._journal_write_bytes(txn)
    assert many > one


def test_discard_volatile_resets(stack):
    handle, t = dirty_file(stack, "f")
    stack.fs.writeback_inode(handle.ino, t)
    assert stack.journal.running is not None
    stack.journal.discard_volatile()
    assert stack.journal.running is None
    assert stack.journal.txn_of(handle.ino) is None
