"""Unit tests for delayed allocation, the flusher, and throttling."""

import pytest

from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import millis, seconds
from repro.sim.latency import MIB


@pytest.fixture()
def stack():
    return StorageStack()


def test_buffered_write_does_not_join_journal(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.fsync(at=t)  # the CREATE metadata is now committed
    t = handle.append(b"x" * 4096, at=t)
    assert stack.journal.txn_of(handle.ino) is None  # delalloc: data only
    assert handle.ino in stack.fs._delalloc


def test_writeback_joins_journal(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 4096, at=t)
    written, t = stack.fs.writeback_inode(handle.ino, t)
    assert written == 4096
    assert stack.journal.txn_of(handle.ino) is not None
    assert handle._inode.durable_len == 4096
    assert handle.ino not in stack.fs._delalloc


def test_partial_writeback_advances_prefix(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 10_000, at=t)
    written, t = stack.fs.writeback_inode(handle.ino, t, max_bytes=4_000)
    assert written == 4_000
    assert handle._inode.durable_len == 4_000
    assert handle.ino in stack.fs._delalloc  # still dirty
    written, t = stack.fs.writeback_inode(handle.ino, t)
    assert written == 6_000
    assert handle._inode.durable_len == 10_000


def test_flusher_drains_automatically(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 4096, at=t)
    stack.events.run_until(t + seconds(3))
    assert handle._inode.durable_len == 4096
    assert stack.fs.flusher_runs >= 1


def test_flusher_paces_in_chunks():
    stack = StorageStack(StackConfig(writeback_chunk_bytes=64 * 1024))
    handle, t = stack.fs.create("big", at=0)
    t = handle.append_zeros(1 * MIB, at=t)
    stack.events.run_until(t + seconds(3))
    # 1 MiB at 64 KiB per round = at least 16 flusher rounds
    assert stack.fs.flusher_runs >= 16
    assert handle._inode.durable_len == 1 * MIB


def test_unlinked_file_not_written_back(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 4096, at=t)
    t = stack.fs.unlink("f", at=t)
    before = stack.ssd.stats.bytes_written
    stack.events.run_until(t + seconds(3))
    assert stack.ssd.stats.bytes_written == before  # nothing to flush


def test_hard_dirty_limit_throttles_writer():
    stack = StorageStack(
        StackConfig(pagecache_bytes=1 * MIB, hard_dirty_ratio=0.25)
    )
    handle, t = stack.fs.create("f", at=0)
    # a burst far beyond the 256 KiB hard limit
    for _ in range(16):
        t = handle.append_zeros(64 * 1024, at=t)
    assert stack.fs.throttle_ns > 0
    # throttled writers end up device-bound, not memcpy-bound
    assert t > stack.fs.cpu.memcpy_ns(16 * 64 * 1024) * 2


def test_no_throttle_below_limit(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 4096, at=t)
    assert stack.fs.throttle_ns == 0


def test_rename_flushes_source(stack):
    """auto_da_alloc: replace-via-rename persists the content."""
    handle, t = stack.fs.create("tmp", at=0)
    t = handle.append(b"MANIFEST-000001\n", at=t)
    t = stack.fs.rename("tmp", "CURRENT", at=t)
    inode = stack.fs._get_inode("CURRENT")
    assert inode.durable_len == inode.size


def test_direct_write_joins_immediately(stack):
    handle, t = stack.fs.create("f", at=0)
    t = handle.write_direct(128 * 1024, at=t)
    assert stack.journal.txn_of(handle.ino) is not None
    assert handle._inode.durable_len == 128 * 1024
    assert handle.ino not in stack.fs._delalloc
