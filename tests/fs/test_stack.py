"""Unit tests for the StorageStack bundle."""

import pytest

from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import millis, seconds


def test_stack_wires_components():
    stack = StorageStack()
    assert stack.fs.journal is stack.journal
    assert stack.fs.device is stack.ssd
    assert stack.fs.sync_stats is stack.sync_stats
    assert stack.journal.datasource is stack.fs
    assert stack.syscalls.fs is stack.fs


def test_config_applied():
    config = StackConfig(
        pagecache_bytes=1024 * 1024,
        dirty_ratio=0.5,
        writeback_interval_ns=millis(7),
        journal=JournalConfig(commit_interval_ns=millis(3)),
    )
    stack = StorageStack(config)
    assert stack.pagecache.capacity_bytes == 1024 * 1024
    assert stack.pagecache.dirty_ratio == 0.5
    assert stack.fs.writeback_interval_ns == millis(7)
    assert stack.journal.config.commit_interval_ns == millis(3)


def test_settle_reaches_quiescence():
    stack = StorageStack()
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 100_000, at=t)
    end = stack.settle()
    assert stack.pagecache.dirty_bytes == 0
    assert stack.journal.committing is None
    inode = stack.fs._get_inode("f")
    assert inode.committed_size == inode.size


def test_settle_on_idle_stack_is_cheap():
    stack = StorageStack()
    before = stack.now
    stack.settle()
    assert stack.now == before


def test_crash_shortcut():
    stack = StorageStack()
    handle, t = stack.fs.create("v", at=0)
    handle.append(b"gone", at=t)
    stack.crash()
    assert not stack.fs.exists("v")


def test_now_tracks_clock():
    stack = StorageStack()
    stack.clock.advance_to(12345)
    assert stack.now == 12345
