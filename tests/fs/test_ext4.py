"""Unit tests for the Ext4 model: namespace, data path, fsync, durability."""

import pytest

from repro.fs.ext4 import FileExists, FileNotFound
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import seconds


@pytest.fixture()
def stack():
    return StorageStack()


def make_file(stack, path="f", data=b""):
    f, t = stack.fs.create(path, at=stack.now)
    if data:
        t = f.append(data, at=t)
    return f, t


def test_create_and_exists(stack):
    make_file(stack, "db/000001.log")
    assert stack.fs.exists("db/000001.log")
    assert not stack.fs.exists("db/missing")


def test_create_duplicate_raises(stack):
    make_file(stack, "dup")
    with pytest.raises(FileExists):
        stack.fs.create("dup", at=stack.now)


def test_open_missing_raises(stack):
    with pytest.raises(FileNotFound):
        stack.fs.open("missing", at=0)


def test_append_and_read_roundtrip(stack):
    f, t = make_file(stack, "f", b"hello world")
    data, _ = f.read(0, 11, at=t)
    assert data == b"hello world"


def test_read_partial_and_past_eof(stack):
    f, t = make_file(stack, "f", b"abcdef")
    assert f.read(2, 3, at=t)[0] == b"cde"
    assert f.read(4, 100, at=t)[0] == b"ef"
    assert f.read(100, 5, at=t)[0] == b""


def test_append_zeros_reads_back_zeros(stack):
    f, t = make_file(stack, "f")
    t = f.append_zeros(1024, at=t)
    t = f.append(b"tail", at=t)
    data, _ = f.read(1020, 8, at=t)
    assert data == b"\x00\x00\x00\x00tail"
    assert f.size == 1028


def test_append_costs_memcpy_time(stack):
    f, t0 = make_file(stack, "f")
    t1 = f.append(b"x" * 1024 * 1024, at=t0)
    assert t1 > t0


def test_unlink_removes_path(stack):
    f, t = make_file(stack, "f", b"data")
    stack.fs.unlink("f", at=t)
    assert not stack.fs.exists("f")


def test_unlink_missing_raises(stack):
    with pytest.raises(FileNotFound):
        stack.fs.unlink("missing", at=0)


def test_rename_moves_path(stack):
    f, t = make_file(stack, "tmp", b"manifest")
    stack.fs.rename("tmp", "CURRENT", at=t)
    assert not stack.fs.exists("tmp")
    assert stack.fs.exists("CURRENT")
    g, t2 = stack.fs.open("CURRENT", at=stack.now)
    assert g.read(0, 8, at=t2)[0] == b"manifest"


def test_list_dir_prefix(stack):
    make_file(stack, "db/a")
    make_file(stack, "db/b")
    make_file(stack, "other/c")
    assert stack.fs.list_dir("db/") == ["db/a", "db/b"]


def test_fsync_blocks_and_makes_durable(stack):
    f, t = make_file(stack, "f", b"x" * 4096)
    done = f.fsync(at=t, reason="test")
    assert done > t
    inode = stack.fs._get_inode("f")
    assert inode.durable_len == 4096
    assert inode.committed_size == 4096
    assert stack.sync_stats.sync_calls == 1
    assert stack.sync_stats.bytes_synced == 4096
    assert stack.sync_stats.by_reason["test"] == 1


def test_fsync_forces_flush(stack):
    f, t = make_file(stack, "f", b"x" * 4096)
    f.fsync(at=t)
    assert stack.ssd.stats.flushes >= 1


def test_second_fsync_with_no_new_data_is_cheap(stack):
    f, t = make_file(stack, "f", b"x" * 4096)
    t = f.fsync(at=t)
    flushes = stack.ssd.stats.flushes
    t2 = f.fsync(at=t)
    assert stack.ssd.stats.flushes == flushes  # nothing to commit
    assert stack.sync_stats.bytes_synced == 4096  # second sync added 0


def test_periodic_commit_makes_data_durable_without_fsync(stack):
    f, t = make_file(stack, "f", b"y" * 8192)
    # Advance past the 5 s commit interval plus commit duration.
    stack.events.run_until(t + seconds(6))
    inode = stack.fs._get_inode("f")
    assert inode.committed_size == 8192
    assert stack.sync_stats.sync_calls == 0  # no application syncs


def test_dirty_threshold_triggers_early_commit():
    config = StackConfig(pagecache_bytes=1024 * 1024, dirty_ratio=0.10)
    stack = StorageStack(config)
    f, t = stack.fs.create("f", at=0)
    t = f.append(b"z" * 512 * 1024, at=t)  # far above 10% of 1 MiB
    stack.events.run_until(t + seconds(0.2))
    assert stack.journal.commits >= 1


def test_fsync_does_not_entangle_other_files(stack):
    """Delayed allocation: fsync of f1 does not write back or commit
    f2's data — f2's pages are not in any transaction yet."""
    f1, t = make_file(stack, "f1", b"a" * 4096)
    f2, t2 = make_file(stack, "f2", b"b" * 4096)
    f1.fsync(at=max(t, t2))
    inode2 = stack.fs._get_inode("f2")
    assert inode2.committed_size == 0
    assert inode2.dirty_bytes == 4096


def test_flusher_then_commit_makes_file_durable(stack):
    """The flusher writes data back; the next commit journals the inode."""
    f, t = make_file(stack, "f", b"c" * 8192)
    stack.events.run_until(t + seconds(2))  # flusher (1 s default)
    inode = stack.fs._get_inode("f")
    assert inode.durable_len == 8192  # data on device
    assert inode.committed_size == 0  # metadata not yet journaled
    stack.events.run_until(t + seconds(11))  # past a commit interval
    assert inode.committed_size == 8192


def test_fsync_commits_already_written_back_files(stack):
    """A forced commit covers inodes the flusher already joined."""
    f1, t = make_file(stack, "f1", b"a" * 4096)
    stack.events.run_until(t + seconds(2))  # flusher joins f1 to the txn
    f2, t2 = make_file(stack, "f2", b"b" * 4096)
    f2.fsync(at=max(stack.now, t2))
    inode1 = stack.fs._get_inode("f1")
    assert inode1.committed_size == 4096


def test_direct_write_bypasses_cache(stack):
    f, t = make_file(stack, "f")
    done = f.write_direct(2 * 1024 * 1024, at=t)
    assert done > t
    assert stack.ssd.stats.bytes_written >= 2 * 1024 * 1024
    inode = stack.fs._get_inode("f")
    assert inode.durable_len == 2 * 1024 * 1024
    assert stack.pagecache.dirty_bytes == 0


def test_read_miss_costs_device_time(stack):
    f, t = make_file(stack, "f", b"r" * 256 * 1024)
    t = f.fsync(at=t)
    stack.pagecache.drop_all()  # emulate cold cache
    before_reads = stack.ssd.stats.read_ios
    _, done = f.read(0, 4096, at=t)
    assert stack.ssd.stats.read_ios > before_reads
    assert done > t


def test_read_hit_costs_no_device_time(stack):
    f, t = make_file(stack, "f", b"r" * 4096)
    before = stack.ssd.stats.read_ios
    f.read(0, 4096, at=t)
    assert stack.ssd.stats.read_ios == before


def test_settle_reaches_quiescence(stack):
    f, t = make_file(stack, "f", b"w" * 64 * 1024)
    stack.settle()
    assert stack.pagecache.dirty_bytes == 0
    inode = stack.fs._get_inode("f")
    assert inode.committed_size == inode.size
