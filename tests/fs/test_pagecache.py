"""Unit tests for the page cache model."""

import pytest

from repro.fs.pagecache import PAGE_SIZE, PageCache

MB = 1024 * 1024


@pytest.fixture()
def cache():
    return PageCache(capacity_bytes=16 * MB)


def test_write_makes_pages_dirty(cache):
    cache.write(ino=1, offset=0, nbytes=PAGE_SIZE)
    assert cache.dirty_bytes == PAGE_SIZE


def test_write_spanning_pages(cache):
    cache.write(ino=1, offset=PAGE_SIZE - 10, nbytes=20)
    assert cache.dirty_bytes == 2 * PAGE_SIZE


def test_rewrite_does_not_double_count_dirty(cache):
    cache.write(ino=1, offset=0, nbytes=PAGE_SIZE)
    cache.write(ino=1, offset=0, nbytes=PAGE_SIZE)
    assert cache.dirty_bytes == PAGE_SIZE


def test_read_hit_after_write(cache):
    cache.write(ino=1, offset=0, nbytes=PAGE_SIZE)
    missed = cache.read_misses(ino=1, offset=0, nbytes=PAGE_SIZE)
    assert missed == 0
    assert cache.hits >= 1


def test_read_miss_populates(cache):
    missed = cache.read_misses(ino=1, offset=0, nbytes=PAGE_SIZE)
    assert missed == PAGE_SIZE
    assert cache.read_misses(ino=1, offset=0, nbytes=PAGE_SIZE) == 0


def test_zero_length_read_is_free(cache):
    assert cache.read_misses(ino=1, offset=0, nbytes=0) == 0


def test_clean_inode_clears_dirty(cache):
    cache.write(ino=1, offset=0, nbytes=4 * PAGE_SIZE)
    cache.clean_inode(ino=1, up_to_offset=4 * PAGE_SIZE)
    assert cache.dirty_bytes == 0


def test_clean_inode_partial_prefix(cache):
    cache.write(ino=1, offset=0, nbytes=4 * PAGE_SIZE)
    cache.clean_inode(ino=1, up_to_offset=2 * PAGE_SIZE)
    assert cache.dirty_bytes == 2 * PAGE_SIZE


def test_drop_inode_removes_everything(cache):
    cache.write(ino=1, offset=0, nbytes=2 * PAGE_SIZE)
    cache.write(ino=2, offset=0, nbytes=PAGE_SIZE)
    cache.drop_inode(1)
    assert cache.dirty_bytes == PAGE_SIZE
    assert cache.read_misses(ino=1, offset=0, nbytes=PAGE_SIZE) == PAGE_SIZE


def test_eviction_prefers_clean_pages():
    cache = PageCache(capacity_bytes=4 * PAGE_SIZE)
    cache.read_misses(ino=1, offset=0, nbytes=2 * PAGE_SIZE)  # clean
    cache.write(ino=2, offset=0, nbytes=2 * PAGE_SIZE)  # dirty
    cache.read_misses(ino=3, offset=0, nbytes=2 * PAGE_SIZE)  # forces evict
    assert cache.evictions >= 2
    assert cache.dirty_bytes == 2 * PAGE_SIZE  # dirty pages survived


def test_dirty_pages_never_evicted_even_over_capacity():
    cache = PageCache(capacity_bytes=2 * PAGE_SIZE)
    cache.write(ino=1, offset=0, nbytes=4 * PAGE_SIZE)
    assert cache.dirty_bytes == 4 * PAGE_SIZE  # transient overshoot allowed


def test_dirty_threshold_fires_once_per_crossing():
    fires = []
    cache = PageCache(
        capacity_bytes=10 * PAGE_SIZE,
        dirty_ratio=0.5,
        on_dirty_threshold=lambda: fires.append(True),
    )
    cache.write(ino=1, offset=0, nbytes=5 * PAGE_SIZE)
    cache.write(ino=1, offset=5 * PAGE_SIZE, nbytes=PAGE_SIZE)
    assert len(fires) == 1
    cache.clean_inode(1, up_to_offset=6 * PAGE_SIZE)
    cache.write(ino=2, offset=0, nbytes=5 * PAGE_SIZE)
    assert len(fires) == 2


def test_invalid_construction():
    with pytest.raises(ValueError):
        PageCache(capacity_bytes=0)
    with pytest.raises(ValueError):
        PageCache(capacity_bytes=1024, dirty_ratio=0.0)
    with pytest.raises(ValueError):
        PageCache(capacity_bytes=1024, dirty_ratio=1.5)
