"""Crash semantics: what survives a power failure."""

import pytest

from repro.fs.crash import crash_and_recover
from repro.fs.stack import StorageStack
from repro.sim.clock import seconds


@pytest.fixture()
def stack():
    return StorageStack()


def test_unsynced_file_vanishes(stack):
    f, t = stack.fs.create("volatile", at=0)
    f.append(b"data", at=t)
    report = crash_and_recover(stack.fs)
    assert "volatile" in report.lost_paths
    assert not stack.fs.exists("volatile")


def test_fsynced_file_survives(stack):
    f, t = stack.fs.create("durable", at=0)
    t = f.append(b"data", at=t)
    f.fsync(at=t)
    report = crash_and_recover(stack.fs)
    assert "durable" in report.surviving_paths
    g, t2 = stack.fs.open("durable", at=stack.now)
    assert g.read(0, 4, at=t2)[0] == b"data"


def test_async_committed_file_survives_without_fsync(stack):
    """The paper's core observation: async commit implies durability."""
    f, t = stack.fs.create("implicit", at=0)
    t = f.append(b"committed by the journal", at=t)
    stack.events.run_until(t + seconds(6))
    crash_and_recover(stack.fs)
    assert stack.fs.exists("implicit")
    g, t2 = stack.fs.open("implicit", at=stack.now)
    assert g.read(0, 100, at=t2)[0] == b"committed by the journal"


def test_tail_after_commit_is_truncated(stack):
    f, t = stack.fs.create("log", at=0)
    t = f.append(b"early", at=t)
    t = f.fsync(at=t)
    t = f.append(b"LATE", at=max(t, stack.now))
    report = crash_and_recover(stack.fs)
    assert report.truncated_paths.get("log") == (9, 5)
    g, t2 = stack.fs.open("log", at=stack.now)
    assert g.size == 5
    assert g.read(0, 10, at=t2)[0] == b"early"


def test_uncommitted_unlink_resurrects_file(stack):
    f, t = stack.fs.create("ghost", at=0)
    t = f.append(b"boo", at=t)
    t = f.fsync(at=t)
    stack.fs.unlink("ghost", at=t)
    assert not stack.fs.exists("ghost")
    crash_and_recover(stack.fs)
    assert stack.fs.exists("ghost")  # unlink never committed


def test_committed_unlink_stays_deleted(stack):
    f, t = stack.fs.create("gone", at=0)
    t = f.append(b"x", at=t)
    t = f.fsync(at=t)
    t = stack.fs.unlink("gone", at=t)
    stack.events.run_until(t + seconds(6))
    crash_and_recover(stack.fs)
    assert not stack.fs.exists("gone")


def test_uncommitted_rename_rolls_back(stack):
    f, t = stack.fs.create("tmp", at=0)
    t = f.append(b"m", at=t)
    t = f.fsync(at=t)
    t = stack.fs.rename("tmp", "CURRENT", at=t)
    crash_and_recover(stack.fs)
    assert stack.fs.exists("tmp")
    assert not stack.fs.exists("CURRENT")


def test_committed_rename_persists(stack):
    f, t = stack.fs.create("tmp", at=0)
    t = f.append(b"m", at=t)
    t = stack.fs.rename("tmp", "CURRENT", at=t)
    g, t = stack.fs.open("CURRENT", at=t)
    t = g.fsync(at=t)
    crash_and_recover(stack.fs)
    assert stack.fs.exists("CURRENT")
    assert not stack.fs.exists("tmp")


def test_crash_clears_kernel_tables(stack):
    f, t = stack.fs.create("tracked", at=0)
    t = f.append(b"d", at=t)
    stack.syscalls.check_commit([f.ino], at=t)
    crash_and_recover(stack.fs)
    assert not stack.syscalls.pending
    assert not stack.syscalls.committed


def test_crash_empties_page_cache(stack):
    f, t = stack.fs.create("f", at=0)
    t = f.append(b"c" * 4096, at=t)
    f.fsync(at=t)
    crash_and_recover(stack.fs)
    before = stack.ssd.stats.read_ios
    g, t2 = stack.fs.open("f", at=stack.now)
    g.read(0, 4096, at=t2)
    assert stack.ssd.stats.read_ios > before  # cold cache after reboot


def test_repeated_crashes_are_stable(stack):
    f, t = stack.fs.create("stable", at=0)
    t = f.append(b"abc", at=t)
    t = f.fsync(at=t)
    for _ in range(3):
        crash_and_recover(stack.fs)
        assert stack.fs.exists("stable")
        g, t2 = stack.fs.open("stable", at=stack.now)
        assert g.read(0, 3, at=t2)[0] == b"abc"


# ----------------------------------------------------------------------
# durable-state introspection (predict_crash_report's public inputs)
# ----------------------------------------------------------------------


def test_durable_stat_tracks_committed_size(stack):
    f, t = stack.fs.create("tracked", at=0)
    assert stack.fs.durable_stat("tracked") is None  # create uncommitted
    t = f.append(b"12345", at=t)
    t = f.fsync(at=t)
    assert stack.fs.durable_stat("tracked") == 5
    f.append(b"tail", at=t)
    assert stack.fs.durable_stat("tracked") == 5  # tail still volatile
    assert stack.fs.durable_stat("missing") is None


def test_durable_namespace_is_a_copy(stack):
    f, t = stack.fs.create("a", at=0)
    t = f.append(b"x", at=t)
    t = f.fsync(at=t)
    namespace = stack.fs.durable_namespace()
    assert "a" in namespace
    namespace.clear()  # mutating the copy must not touch the fs
    assert "a" in stack.fs.durable_namespace()


def test_prediction_matches_outcome(stack):
    """predict_crash_report must agree with what Ext4.crash() then does."""
    f, t = stack.fs.create("keep", at=0)
    t = f.append(b"keep", at=t)
    t = f.fsync(at=t)
    g, t = stack.fs.create("lose", at=t)
    t = g.append(b"lose", at=t)
    report = crash_and_recover(stack.fs)
    assert "keep" in report.surviving_paths
    assert "lose" in report.lost_paths
    assert stack.fs.exists("keep")
    assert not stack.fs.exists("lose")


def test_reappeared_file_reported_with_durable_size(stack):
    f, t = stack.fs.create("ghost", at=0)
    t = f.append(b"boo", at=t)
    t = f.fsync(at=t)
    t = stack.fs.unlink("ghost", at=t)
    report = crash_and_recover(stack.fs)
    assert report.reappeared_paths == {"ghost": 3}
    assert stack.fs.exists("ghost")


def test_committed_unlink_does_not_reappear(stack):
    from repro.sim.clock import seconds as _seconds

    f, t = stack.fs.create("gone", at=0)
    t = f.append(b"x", at=t)
    t = f.fsync(at=t)
    t = stack.fs.unlink("gone", at=t)
    stack.events.run_until(t + _seconds(6))
    report = crash_and_recover(stack.fs)
    assert report.reappeared_paths == {}
    assert not stack.fs.exists("gone")
