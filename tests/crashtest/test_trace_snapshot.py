"""Crash-matrix trace snapshots: traced replays are faithful and bounded."""

from repro.crashtest.harness import (
    CrashMatrixConfig,
    build_workload,
    discover_points,
    reference_run,
    run_point,
)
from repro.crashtest.report import matrix_payload
from repro.obs.trace import validate_chrome_trace


def small_config(**kwargs):
    return CrashMatrixConfig(points=8, seed=3, num_ops=80, **kwargs)


def pick_point(config):
    ops = build_workload(config)
    spans, windows, end_ns = reference_run(config, ops)
    points = discover_points(config, spans, windows, end_ns)
    # a mid-run point so there is trace history to snapshot
    return ops, sorted(points, key=lambda p: p.time_ns)[len(points) // 2]


def test_traced_replay_matches_untraced_timeline():
    config = small_config()
    ops, point = pick_point(config)
    plain = run_point(config, ops, point)
    traced = run_point(config, ops, point, trace=True)
    assert traced.crashed_at == plain.crashed_at
    assert traced.recovery == plain.recovery
    assert traced.wal_tail_drops == plain.wal_tail_drops
    assert [str(v) for v in traced.violations] == [
        str(v) for v in plain.violations
    ]
    assert plain.trace_events is None
    assert traced.trace_events


def test_snapshot_is_valid_bounded_chrome_trace():
    config = small_config()
    ops, point = pick_point(config)
    result = run_point(config, ops, point, trace=True)
    events = result.trace_events
    validate_chrome_trace({"traceEvents": events})
    xs = [e for e in events if e["ph"] == "X"]
    assert 0 < len(xs) <= 500
    # clipped to the window leading up to the crash
    window_us = 3 * config.commit_interval_ns / 1000.0
    crash_us = result.crashed_at / 1000.0
    for e in xs:
        assert e["ts"] >= crash_us - window_us - 1
        assert e["ts"] <= crash_us + 1


def test_snapshot_works_with_parallel_stack():
    config = small_config(num_channels=4, background_threads=2)
    ops, point = pick_point(config)
    result = run_point(config, ops, point, trace=True)
    validate_chrome_trace({"traceEvents": result.trace_events})


def test_matrix_payload_carries_traces():
    config = small_config()
    ops, point = pick_point(config)

    class FakeReport:
        mode = config.mode
        seed = config.seed
        num_ops = len(ops)
        reference_end_ns = 0
        points_explored = 1
        points_by_kind = {}
        recovery_modes = {"open": 1, "repair": 0, "failed": 0}
        wal_tail_drops = 0
        lost_tail_totals = {
            "volatile_keys": 0, "lost": 0, "reverted": 0, "intact": 0
        }
        violations = []
        results = [run_point(config, ops, point, trace=True)]

    payload = matrix_payload([FakeReport()])
    assert payload["schema"] == "repro.crashmatrix/1"
    traces = payload["modes"][0]["traces"]
    assert len(traces) == 1
    assert traces[0]["point"]["time_ns"] == point.time_ns
    assert traces[0]["crashed_at"] == FakeReport.results[0].crashed_at
    assert traces[0]["events"]
