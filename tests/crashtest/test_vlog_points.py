"""Crash-matrix coverage for the noblsm-kv vLog, plus the gate mutation.

The headline regression test breaks the segment-retirement commit gate
(``_retirement_committed`` always says yes) and asserts the matrix
flags the resulting premature reclaims. The detection must not depend
on the store's own retirement bookkeeping — a lying gate empties that
instantly — so the harness independently cross-checks every
recovery-relevant table's pointers against the on-disk segment set.
"""

import pytest

from repro.core.noblsm_kv import NobLSMKV
from repro.crashtest.harness import (
    CrashMatrixConfig,
    build_workload,
    run_crash_matrix,
    run_point,
)
from repro.crashtest.points import CrashPoint, points_from_spans

# the smallest budget at which GC + retirement happen inside the
# workload horizon; CI uses the same floor for its kv sweep
KV_CONFIG = dict(mode="noblsm-kv", points=60, num_ops=240)


@pytest.fixture(scope="module")
def kv_report():
    return run_crash_matrix(CrashMatrixConfig(**KV_CONFIG))


def test_kv_matrix_has_no_violations(kv_report):
    assert kv_report.violations == []
    assert kv_report.recovery_modes["failed"] == 0


def test_kv_matrix_covers_vlog_families(kv_report):
    """All four vLog point families must actually be explored."""
    kinds = set(kv_report.points_by_kind)
    assert {
        "mid-vlog-append",
        "mid-vlog-gc",
        "pre-vlog-reclaim",
        "post-vlog-reclaim",
    } <= kinds, f"vlog families missing from {sorted(kinds)}"


def test_vlog_spans_map_to_point_kinds():
    spans = [
        ("db.vlog.append", 100, 200),
        ("db.vlog.gc", 300, 400),
        ("db.vlog.reclaim", 500, 600),
    ]
    points = points_from_spans(spans)
    kinds = {p.kind: p.time_ns for p in points}
    assert kinds["mid-vlog-append"] == 150
    assert kinds["mid-vlog-gc"] == 350
    assert kinds["pre-vlog-reclaim"] == 500
    assert kinds["post-vlog-reclaim"] == 601


def test_broken_reclaim_gate_is_caught():
    """THE mutation test: disable the commit gate, matrix must flag it.

    With ``_retirement_committed`` short-circuited to True, dead
    segments are unlinked the instant they retire — while compaction
    outputs holding the relocated pointers are still uncommitted. The
    sweep must report ``segment-reclaimed-early`` violations."""
    original = NobLSMKV._retirement_committed
    NobLSMKV._retirement_committed = lambda self, barrier, at: (True, at)
    try:
        report = run_crash_matrix(CrashMatrixConfig(**KV_CONFIG))
    finally:
        NobLSMKV._retirement_committed = original
    kinds = {v.kind for v in report.violations}
    assert "segment-reclaimed-early" in kinds, (
        "the crash matrix failed to flag reclaim-before-commit"
    )


def test_broken_gate_caught_at_single_post_reclaim_point():
    """The detection does not need a lucky sweep: one crash point right
    after an early reclaim already fires, keeping the mutation signal
    deterministic at minimum budget."""
    import repro.lsm.vlog as vlog_module

    config = CrashMatrixConfig(**KV_CONFIG)
    ops = build_workload(config)
    original = NobLSMKV._retirement_committed
    NobLSMKV._retirement_committed = lambda self, barrier, at: (True, at)
    reclaim_times = []
    orig_reclaim = vlog_module.VLog.reclaim_segment

    def logging(self, segment, at):
        reclaim_times.append(at)
        return orig_reclaim(self, segment, at)

    vlog_module.VLog.reclaim_segment = logging
    try:
        # reference pass just to learn when the first early reclaim is
        stack = config.build_stack()
        db = config.build_store(stack)
        from repro.crashtest.harness import _apply_ops

        _apply_ops(db, ops, stack)
        stack.events.run_until(stack.now + 3 * config.commit_interval_ns)
        db.close(stack.now)
        assert reclaim_times, "broken gate never reclaimed anything"
        vlog_module.VLog.reclaim_segment = orig_reclaim
        result = run_point(
            config, ops, CrashPoint(reclaim_times[0] + 1, "post-vlog-reclaim")
        )
    finally:
        vlog_module.VLog.reclaim_segment = orig_reclaim
        NobLSMKV._retirement_committed = original
    assert any(
        v.kind == "segment-reclaimed-early" for v in result.violations
    )


def test_kv_matrix_is_deterministic():
    config = CrashMatrixConfig(mode="noblsm-kv", points=10, num_ops=120)
    first = run_crash_matrix(config)
    second = run_crash_matrix(config)
    assert [r.point for r in first.results] == [
        r.point for r in second.results
    ]
    assert [r.recovery for r in first.results] == [
        r.recovery for r in second.results
    ]
