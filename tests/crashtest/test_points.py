"""Unit tests for crash-point discovery and selection."""

import random

from repro.crashtest.points import (
    CrashPoint,
    SpanCollector,
    points_from_ops,
    points_from_spans,
    random_points,
    select_points,
)


def test_commit_span_yields_three_points():
    points = points_from_spans([("journal.commit", 100, 200)])
    kinds = {p.kind: p.time_ns for p in points}
    assert kinds == {
        "commit-begin": 100,
        "mid-commit": 150,
        "commit-boundary": 201,
    }


def test_compaction_spans_yield_begin_and_mid():
    points = points_from_spans(
        [("db.compaction.minor", 10, 30), ("db.compaction.major", 100, 400)]
    )
    kinds = {p.kind: p.time_ns for p in points}
    assert kinds == {
        "minor-begin": 10,
        "mid-minor": 20,
        "major-begin": 100,
        "mid-major": 250,
    }


def test_writeback_span_yields_mid_only():
    points = points_from_spans([("fs.writeback", 0, 100)])
    assert [(p.kind, p.time_ns) for p in points] == [("mid-writeback", 50)]


def test_unknown_span_names_ignored():
    assert points_from_spans([("db.put", 0, 10)]) == []


def test_points_from_ops_skips_instant_acks():
    points = points_from_ops([(100, 300), (400, 400)])
    assert [(p.kind, p.time_ns) for p in points] == [("mid-wal-append", 200)]


def test_random_points_in_range():
    rng = random.Random(1)
    points = random_points(1000, rng, 50)
    assert len(points) == 50
    assert all(0 < p.time_ns <= 1000 for p in points)
    assert all(p.kind == "random" for p in points)


def test_random_points_empty_run():
    assert random_points(0, random.Random(1), 10) == []


def test_select_dedups_timestamps():
    candidates = [
        CrashPoint(100, "mid-commit"),
        CrashPoint(100, "random"),
        CrashPoint(200, "random"),
    ]
    selected = select_points(candidates, 10, random.Random(0))
    assert len(selected) == 2
    assert {p.time_ns for p in selected} == {100, 200}


def test_select_balances_kinds():
    candidates = [CrashPoint(i, "mid-wal-append") for i in range(100)]
    candidates += [CrashPoint(1000, "mid-major")]
    selected = select_points(candidates, 10, random.Random(0))
    # the lone major point must survive the flood of WAL points
    assert any(p.kind == "mid-major" for p in selected)
    assert len(selected) == 10


def test_select_respects_budget_and_sorts():
    candidates = [CrashPoint(i * 7, "random") for i in range(1, 50)]
    selected = select_points(candidates, 5, random.Random(3))
    assert len(selected) == 5
    assert selected == sorted(selected, key=lambda p: p.time_ns)


def test_span_collector_filters_names():
    class FakeSpan:
        def __init__(self, name):
            self.name = name
            self.start_ns = 1
            self.end_ns = 2

    collector = SpanCollector()
    collector(FakeSpan("journal.commit"))
    collector(FakeSpan("db.put"))
    assert collector.spans == [("journal.commit", 1, 2)]
