"""Unit tests for the durability oracle's invariants."""

import pytest

from repro.crashtest.oracle import DurabilityOracle


def completed_put(oracle, key, value):
    oracle.begin("put", key, value)
    oracle.ack()


def completed_delete(oracle, key):
    oracle.begin("delete", key, None)
    oracle.ack()


def test_durable_key_must_survive_exactly():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    violations, _ = oracle.check({b"k": b"v1"}, [(b"k", b"v1")], volatile=[])
    assert violations == []
    violations, _ = oracle.check({b"k": None}, [], volatile=[])
    assert [v.kind for v in violations] == ["lost-durable-key"]


def test_durable_key_stale_value_flagged():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    completed_put(oracle, b"k", b"v2")
    violations, _ = oracle.check({b"k": b"v1"}, [(b"k", b"v1")], volatile=[])
    assert [v.kind for v in violations] == ["stale-durable-key"]


def test_acked_delete_must_stay_deleted():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    completed_delete(oracle, b"k")
    violations, _ = oracle.check({b"k": b"v1"}, [(b"k", b"v1")], volatile=[])
    assert [v.kind for v in violations] == ["resurrected-delete"]
    violations, _ = oracle.check({b"k": None}, [], volatile=[])
    assert violations == []


def test_volatile_key_may_be_lost_or_revert():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    completed_put(oracle, b"k", b"v2")
    for got, field in ((None, "lost"), (b"v1", "reverted"), (b"v2", "intact")):
        scanned = [(b"k", got)] if got else []
        violations, stats = oracle.check({b"k": got}, scanned, volatile=[b"k"])
        assert violations == []
        assert getattr(stats, field) == 1
        assert stats.volatile_keys == 1


def test_volatile_key_must_not_fabricate():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    violations, _ = oracle.check({b"k": b"zz"}, [], volatile=[b"k"])
    assert [v.kind for v in violations] == ["fabricated-value"]


def test_in_flight_key_is_always_uncertain():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    oracle.begin("put", b"k", b"v2")  # crash mid-append: never acked
    violations, _ = oracle.check({b"k": b"v2"}, [(b"k", b"v2")], volatile=[])
    assert violations == []
    violations, _ = oracle.check({b"k": b"v1"}, [(b"k", b"v1")], volatile=[])
    assert violations == []


def test_sync_mode_ignores_volatile_set():
    oracle = DurabilityOracle(sync_acked=True)
    completed_put(oracle, b"k", b"v1")
    violations, _ = oracle.check({b"k": None}, [], volatile=[b"k"])
    assert [v.kind for v in violations] == ["lost-durable-key"]


def test_scan_rejects_unknown_keys_and_values():
    oracle = DurabilityOracle()
    completed_put(oracle, b"k", b"v1")
    violations, _ = oracle.check(
        {b"k": b"v1"}, [(b"k", b"v1"), (b"x", b"y")], volatile=[]
    )
    assert [v.kind for v in violations] == ["unknown-key"]
    violations, _ = oracle.check(
        {b"k": b"v1"}, [(b"k", b"v1"), (b"k", b"other")], volatile=[]
    )
    assert [v.kind for v in violations] == ["fabricated-value"]


def test_ack_without_begin_raises():
    oracle = DurabilityOracle()
    with pytest.raises(RuntimeError):
        oracle.ack()


def test_begin_rejects_unknown_op():
    oracle = DurabilityOracle()
    with pytest.raises(ValueError):
        oracle.begin("merge", b"k", b"v")
