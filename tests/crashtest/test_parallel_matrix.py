"""Crash-matrix spot-check with the parallel compaction scheduler.

Durability invariants must hold regardless of how many background
threads race compactions or how many device channels the I/O fans out
over — the dependency tracker's consecutive-reclaim rule is exactly what
keeps out-of-order virtual completions crash-safe.
"""

import pytest

from repro.crashtest import CrashMatrixConfig, run_crash_matrix


def parallel_config(mode, **overrides):
    defaults = dict(
        mode=mode,
        points=8,
        num_ops=40,
        seed=11,
        background_threads=2,
    )
    defaults.update(overrides)
    return CrashMatrixConfig(**defaults)


@pytest.mark.parametrize("mode", ["noblsm", "sync"])
def test_matrix_clean_with_two_background_threads(mode):
    report = run_crash_matrix(parallel_config(mode))
    assert report.points_explored == 8
    assert report.violations == []
    assert report.recovery_modes["failed"] == 0


def test_matrix_clean_with_threads_and_channels():
    report = run_crash_matrix(
        parallel_config("noblsm", num_channels=4)
    )
    assert report.violations == []
    assert report.recovery_modes["failed"] == 0


def test_matrix_deterministic_with_parallel_scheduler():
    first = run_crash_matrix(parallel_config("noblsm"))
    second = run_crash_matrix(parallel_config("noblsm"))
    assert [r.point for r in first.results] == [
        r.point for r in second.results
    ]
    assert [r.recovery for r in first.results] == [
        r.recovery for r in second.results
    ]


def test_single_thread_matrix_unchanged_by_new_knobs():
    """background_threads=1 / num_channels=1 must reproduce the seed's
    matrix exactly (the defaults are bit-identical)."""
    base = CrashMatrixConfig(mode="noblsm", points=8, num_ops=40, seed=11)
    knobbed = CrashMatrixConfig(
        mode="noblsm",
        points=8,
        num_ops=40,
        seed=11,
        background_threads=1,
        num_channels=1,
    )
    first = run_crash_matrix(base)
    second = run_crash_matrix(knobbed)
    assert [r.point for r in first.results] == [
        r.point for r in second.results
    ]
    assert [r.recovery for r in first.results] == [
        r.recovery for r in second.results
    ]
    assert first.violations == second.violations == []
