"""End-to-end tests for the crash-matrix harness (small budgets)."""

import json

import pytest

from repro.crashtest import (
    CrashMatrixConfig,
    CrashPoint,
    matrix_payload,
    render_matrix,
    run_crash_matrix,
)
from repro.crashtest.harness import build_workload, run_point


def small_config(mode, **overrides):
    defaults = dict(mode=mode, points=8, num_ops=40, seed=11)
    defaults.update(overrides)
    return CrashMatrixConfig(**defaults)


@pytest.mark.parametrize("mode", ["noblsm", "sync"])
def test_matrix_has_no_violations(mode):
    report = run_crash_matrix(small_config(mode))
    assert report.points_explored == 8
    assert report.violations == []
    assert report.recovery_modes["failed"] == 0
    # every explored point recovered one way or the other
    assert (
        report.recovery_modes["open"] + report.recovery_modes["repair"] == 8
    )


def test_matrix_is_deterministic():
    first = run_crash_matrix(small_config("noblsm"))
    second = run_crash_matrix(small_config("noblsm"))
    assert [r.point for r in first.results] == [r.point for r in second.results]
    assert [r.recovery for r in first.results] == [
        r.recovery for r in second.results
    ]


def test_point_in_background_tail_is_reachable():
    """A crash point after the last ack still crashes (background work)."""
    config = small_config("noblsm")
    ops = build_workload(config)
    result = run_point(config, ops, CrashPoint(10**12, "random"))
    assert result.violations == []
    assert result.crashed_at <= 10**12


def test_point_during_open_is_survivable():
    """Crashing inside the store's own open path must not wedge anything."""
    config = small_config("noblsm")
    ops = build_workload(config)
    result = run_point(config, ops, CrashPoint(1, "random"))
    assert result.violations == []


def test_workload_is_deterministic_and_mixed():
    config = small_config("noblsm", num_ops=200)
    first = build_workload(config)
    second = build_workload(config)
    assert first == second
    kinds = {op for op, _, _ in first}
    assert kinds == {"put", "delete"}


def test_config_rejects_unknown_mode():
    with pytest.raises(ValueError):
        CrashMatrixConfig(mode="paxos").validate()


def test_render_and_payload_agree():
    report = run_crash_matrix(small_config("sync", points=4))
    text = render_matrix([report])
    assert "PASS" in text
    assert "mode=sync" in text
    payload = matrix_payload([report])
    json.dumps(payload)  # must be serialisable
    assert payload["schema"] == "repro.crashmatrix/1"
    assert payload["total_points"] == 4
    assert payload["total_violations"] == 0
    assert payload["modes"][0]["recovery_modes"]["failed"] == 0
