"""Two stores sharing one machine (file system, journal, device).

The paper's kernel tables are global — Ext4 journaling is "shared by
system and all applications over time" (Section 4.2) — so two NobLSM
instances must coexist: transactions interleave their inodes, commits
cover both, and neither may reclaim or recover the other's files.
"""

import random

import pytest

from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis


def options():
    opts = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    opts.reclaim_interval_ns = millis(50)
    return opts


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def fill(db, n, seed, t=0):
    rng = random.Random(seed)
    data = {}
    for _ in range(n):
        key = f"key{rng.randrange(n):05d}".encode()
        value = f"v{rng.randrange(10**6):06d}".encode() * 3
        t = db.put(key, value, at=t)
        data[key] = value
    return data, t


def test_two_noblsm_stores_share_one_machine():
    stack = fast_stack()
    alpha = NobLSM(stack, dbname="alpha", options=options())
    beta = NobLSM(stack, dbname="beta", options=options())
    data_a, t = fill(alpha, 1500, seed=1)
    data_b, t = fill(beta, 1500, seed=2, t=t)
    for key in sorted(data_a)[::37]:
        value, t = alpha.get(key, at=t)
        assert value == data_a[key]
    for key in sorted(data_b)[::37]:
        value, t = beta.get(key, at=t)
        assert value == data_b[key]
    # the kernel tables served both stores over one journal
    assert alpha.tracker.groups_registered + beta.tracker.groups_registered > 0
    t = alpha.close(t)
    t = beta.close(t)
    assert alpha.shadow_count == 0
    assert beta.shadow_count == 0


def test_crash_recovers_both_tenants_independently():
    stack = fast_stack()
    alpha = NobLSM(stack, dbname="alpha", options=options())
    beta = DB(stack, dbname="beta", options=options())
    data_a, t = fill(alpha, 700, seed=3)
    data_b, t = fill(beta, 700, seed=4, t=t)

    def volatile(db, keys):
        out = set()
        for key in keys:
            if db.mem.get(key) is not None:
                out.add(key)
            elif db._pending_imm is not None and db._pending_imm[0].get(key):
                out.add(key)
        return out

    vol_a = volatile(alpha, data_a)
    vol_b = volatile(beta, data_b)
    stack.crash()
    alpha = NobLSM(stack, dbname="alpha", options=options())
    beta = DB(stack, dbname="beta", options=options())
    t = stack.now
    for key in sorted(set(data_a) - vol_a):
        value, t = alpha.get(key, at=t)
        assert value == data_a[key], f"alpha lost {key!r}"
    for key in sorted(set(data_b) - vol_b):
        value, t = beta.get(key, at=t)
        assert value == data_b[key], f"beta lost {key!r}"


def test_tenants_never_see_each_others_keys():
    stack = fast_stack()
    alpha = DB(stack, dbname="alpha", options=options())
    beta = DB(stack, dbname="beta", options=options())
    t = alpha.put(b"shared-name", b"from-alpha", at=0)
    value, t = beta.get(b"shared-name", at=t)
    assert value is None
    t = beta.put(b"shared-name", b"from-beta", at=t)
    value, t = alpha.get(b"shared-name", at=t)
    assert value == b"from-alpha"


def test_one_tenants_fsync_commits_the_others_metadata():
    """The global journal: a forced commit covers every tenant's ops."""
    stack = fast_stack()
    alpha = DB(stack, dbname="alpha", options=options())
    beta = DB(stack, dbname="beta", options=options())
    t = beta.put(b"k", b"v", at=0)
    # beta's WAL create is in the running transaction; alpha's minor
    # compactions force commits that make it durable
    data_a, t = fill(alpha, 400, seed=5, t=t)
    committed_logs = [
        path
        for path, ino in stack.fs._durable_namespace.items()
        if path.startswith("beta/") and path.endswith(".log")
    ]
    assert committed_logs, "beta's log creation should have been committed"
