"""Multi-threaded driver behaviour (the Figure 5b mechanism)."""

import pytest

from repro.bench.harness import ScaledConfig, ThreadedDriver


def put_op(key, value):
    def op(db, at):
        return db.put(key, value, at)

    return op


def get_op(key):
    def op(db, at):
        _, t = db.get(key, at)
        return t

    return op


def test_writes_serialize_on_writer_mutex():
    """K write threads gain nothing: the write path is serial."""
    config = ScaledConfig(scale=5000, value_size=512)
    ops = [
        put_op(f"key{i:06d}".encode(), b"v" * 512) for i in range(2000)
    ]

    _, db1 = config.build_store("leveldb")
    single_end = ThreadedDriver(db1, threads=1).run(list(ops))

    _, db4 = config.build_store("leveldb")
    multi_end = ThreadedDriver(db4, threads=4).run(list(ops))

    # within 10%: the writer mutex serializes both runs
    assert multi_end == pytest.approx(single_end, rel=0.10)


def test_reads_scale_with_threads():
    """Cache-resident reads have no shared lock: 4 threads ~ 4x faster."""
    config = ScaledConfig(scale=5000, value_size=512)
    stack, db = config.build_store("leveldb")
    t = 0
    for i in range(2000):
        t = db.put(f"key{i:06d}".encode(), b"v" * 512, at=t)
    t = db.wait_for_background(t)

    reads = [get_op(f"key{(i * 13) % 2000:06d}".encode()) for i in range(2000)]
    start = t
    single_driver = ThreadedDriver(db, threads=1, start=start)
    single_end = single_driver.run(list(reads)) - start

    multi_driver = ThreadedDriver(db, threads=4, start=start)
    multi_end = multi_driver.run(list(reads)) - start

    assert multi_end < single_end / 2.5  # near-linear scaling


def test_thread_clocks_stay_balanced():
    config = ScaledConfig(scale=5000, value_size=512)
    _, db = config.build_store("noblsm")
    ops = [put_op(f"k{i}".encode(), b"v" * 100) for i in range(400)]
    driver = ThreadedDriver(db, threads=4)
    driver.run(ops)
    clocks = sorted(driver.clocks)
    assert clocks[0] > 0
    # no thread starves: max lag bounded by a few ops' worth of time
    assert clocks[-1] < 3 * clocks[0] + 10_000_000


def test_mixed_threads_against_noblsm_and_leveldb():
    """The fig5b write-heavy shape: NobLSM < LevelDB under 4 threads."""
    config = ScaledConfig(scale=5000, value_size=1024)
    ends = {}
    for store in ("leveldb", "noblsm"):
        _, db = config.build_store(store)
        ops = [
            put_op(f"key{(i * 31) % 1500:06d}".encode(), b"v" * 1024)
            for i in range(3000)
        ]
        ends[store] = ThreadedDriver(db, threads=4).run(ops)
    assert ends["noblsm"] < ends["leveldb"]
