"""Seek compactions: the Figure 4d mechanism.

LevelDB sends an SSTable down a level after it serves too many fruitless
seeks; NobLSM performs the same compaction without syncs, which is where
its readrandom advantage comes from (paper Section 5.2).
"""

import random

import pytest

from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.core.noblsm import NobLSM
from repro.sim.clock import millis


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    options.reclaim_interval_ns = millis(50)
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def fill(db, n, seed=1):
    rng = random.Random(seed)
    t = 0
    for _ in range(n):
        key = f"key{rng.randrange(n):06d}".encode()
        t = db.put(key, b"v" * 200, at=t)
    return db.wait_for_background(t)


def hammer_reads(db, t, n=30_000, seed=2):
    rng = random.Random(seed)
    for _ in range(n):
        key = f"key{rng.randrange(4000):06d}".encode()
        _, t = db.get(key, at=t)
    return t


def test_seek_compactions_trigger_under_read_misses():
    stack = fast_stack()
    db = DB(stack, options=small_options())
    t = fill(db, 3000)
    t = hammer_reads(db, t)
    assert db.stats.seek_compactions > 0


def test_seek_compaction_disabled_by_option():
    stack = fast_stack()
    db = DB(stack, options=small_options(seek_compaction=False))
    t = fill(db, 3000)
    t = hammer_reads(db, t)
    assert db.stats.seek_compactions == 0


def test_seek_compactions_reduce_probes():
    """After seek compactions the same read mix touches fewer tables."""
    stack = fast_stack()
    db = DB(stack, options=small_options())
    t = fill(db, 3000)
    files_before = sum(
        len(files) for files in db.versions.current.files
    )
    t = hammer_reads(db, t, n=50_000)
    t = db.wait_for_background(t)
    l0_after = db._l0_live_count()
    assert l0_after <= db.options.l0_compaction_trigger


def test_noblsm_seek_compactions_without_syncs():
    stack = fast_stack()
    db = NobLSM(stack, options=small_options())
    t = fill(db, 3000)
    syncs_before = stack.sync_stats.by_reason.get("major", 0)
    t = hammer_reads(db, t)
    assert db.stats.seek_compactions > 0
    assert stack.sync_stats.by_reason.get("major", 0) == syncs_before == 0
