"""The paper's Figure 3 walkthrough, step by step.

Figure 3 narrates one NobLSM major compaction: (1) compact SSTables 127
(L1) and 123 (L2) into new L2 SSTables 230 and 231; (2) Ext4 writes them
asynchronously; (3) check_commit fills their inodes into the Pending
Table; (4) the p-to-q dependency is recorded; (5) writeback; (6) the
transaction commits; (7) entries move to the Committed Table; (8)
is_committed reports durability; (9) the old SSTables and the dependency
are removed; (10) Ext4 erases their table entries.

This test drives the same ten steps through the public machinery.
"""

from repro.core.dependency import DependencyTracker, SSTableRef
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import seconds


def make_sstable(stack, name, t, nbytes=64 * 1024):
    handle, t = stack.fs.create(name, at=t)
    t = handle.append(b"S" * nbytes, at=t)
    return handle, t


def test_figure3_walkthrough():
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=seconds(5)))
    )
    fs, syscalls = stack.fs, stack.syscalls
    tracker = DependencyTracker()
    t = 0

    # pre-existing old SSTables 127 (L1) and 123 (L2), already durable
    old_127, t = make_sstable(stack, "db/000127.ldb", t)
    old_123, t = make_sstable(stack, "db/000123.ldb", t)
    t = old_127.fsync(at=t)
    t = old_123.fsync(at=t)

    # (1)-(2) the compaction writes new SSTables 230 and 231, async only
    new_230, t = make_sstable(stack, "db/000230.ldb", t)
    new_231, t = make_sstable(stack, "db/000231.ldb", t)

    # (3) syscall check_commit fills the Pending Table
    t = syscalls.check_commit([new_230.ino, new_231.ino], at=t)
    assert {new_230.ino, new_231.ino} <= syscalls.pending
    assert not ({new_230.ino, new_231.ino} & syscalls.committed)

    # (4) the p-to-q dependency (p=2, q=2) joins the global sets
    group = tracker.register(
        predecessors=[
            SSTableRef(127, old_127.ino, "db/000127.ldb"),
            SSTableRef(123, old_123.ino, "db/000123.ldb"),
        ],
        successors=[
            SSTableRef(230, new_230.ino, "db/000230.ldb"),
            SSTableRef(231, new_231.ino, "db/000231.ldb"),
        ],
    )
    assert (group.p, group.q) == (2, 2)

    # (8, too early) is_committed says no before the commit
    ok, t = syscalls.is_committed(new_230.ino, at=t)
    assert not ok

    # (5)-(7) writeback + asynchronous transaction commit
    stack.events.run_until(t + seconds(7))
    assert new_230.ino in syscalls.committed
    assert new_231.ino in syscalls.committed
    assert new_230.ino not in syscalls.pending

    # (8) is_committed now reports durability for both successors
    ok_230, t = syscalls.is_committed(new_230.ino, at=stack.now)
    ok_231, t = syscalls.is_committed(new_231.ino, at=t)
    assert ok_230 and ok_231

    # (9) all q successors committed -> delete the p predecessors
    resolved = tracker.resolve(lambda ino: ino in syscalls.committed)
    assert group in resolved
    for ref in group.predecessors:
        t = fs.unlink(ref.path, at=t)
    tracker.mark_reclaimed(group)
    assert not fs.exists("db/000127.ldb")
    assert not fs.exists("db/000123.ldb")

    # (10) Ext4 erased the deleted inodes' table entries
    assert old_127.ino not in syscalls.committed
    assert old_123.ino not in syscalls.committed
    assert tracker.shadow_numbers() == set()

    # and a crash after all ten steps keeps the new SSTables intact
    stack.events.run_until(stack.now + seconds(7))
    stack.crash()
    assert fs.exists("db/000230.ldb")
    assert fs.exists("db/000231.ldb")
    assert fs.stat_size("db/000230.ldb") == 64 * 1024
