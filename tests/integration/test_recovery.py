"""Crash consistency of the stores (paper Section 5.2, 'Consistency Test').

The paper pulls the power during fillrandom and observes, for both
LevelDB and NobLSM: KV pairs stored in SSTables are intact, while some
pairs in the (never-synced) logs are broken. These tests reproduce that
protocol: write, crash at an arbitrary point, reopen, and check that
every key the store had made durable is still readable with its newest
durable value.
"""

import random

import pytest

from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis


def small_options(**overrides):
    options = Options(
        write_buffer_size=8 * KIB,
        max_file_size=8 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=16 * KIB,
    )
    options.reclaim_interval_ns = millis(50)
    for name, value in overrides.items():
        setattr(options, name, value)
    return options


def fast_stack():
    return StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )


def volatile_keys(db, keys):
    """Keys whose newest value may legitimately be lost on a crash: they
    only live in the mutable/sealed memtable and the unsynced WAL."""
    lost = set()
    for key in keys:
        if db.mem.get(key) is not None:
            lost.add(key)
            continue
        if db._pending_imm is not None and db._pending_imm[0].get(key) is not None:
            lost.add(key)
    return lost


def random_workload(n, seed):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        key = f"key{rng.randrange(n):06d}".encode()
        value = f"value-{rng.randrange(1 << 30):010d}".encode() * 4
        ops.append((key, value))
    return ops


def run_crash_trial(store_cls, n_ops, crash_after, seed):
    """Fill, crash mid-run, reopen; return (db, expected, durable_floor).

    ``expected`` maps key -> newest value written before the crash;
    ``durable_floor`` is the set of keys that had reached an SSTable
    (these must all survive; WAL-only keys may be lost).
    """
    stack = fast_stack()
    db = store_cls(stack, options=small_options())
    ops = random_workload(n_ops, seed)
    expected = {}
    t = 0
    for i, (key, value) in enumerate(ops):
        t = db.put(key, value, at=t)
        expected[key] = value
        if i == crash_after:
            break
    # keys still in the mutable or sealed memtable may legitimately be
    # lost (they only exist in the unsynced WAL)
    durable_floor = set(expected) - volatile_keys(db, expected)
    stack.crash()
    reopened = store_cls(stack, options=small_options())
    return stack, reopened, expected, durable_floor


@pytest.mark.parametrize("store_cls", [DB, NobLSM], ids=["leveldb", "noblsm"])
@pytest.mark.parametrize("crash_after", [150, 700, 1400])
def test_sstable_data_survives_crash(store_cls, crash_after):
    stack, db, expected, durable_floor = run_crash_trial(
        store_cls, 1500, crash_after, seed=crash_after
    )
    t = stack.now
    for key in sorted(durable_floor):
        value, t = db.get(key, at=t)
        assert value is not None, f"{key!r} was durable but lost after crash"
        assert value == expected[key], f"{key!r} has a stale or wrong value"


@pytest.mark.parametrize("store_cls", [DB, NobLSM], ids=["leveldb", "noblsm"])
def test_repeated_crashes(store_cls):
    """The paper repeats the power-off test three times in a row."""
    stack = fast_stack()
    db = store_cls(stack, options=small_options())
    expected = {}
    t = 0
    rng = random.Random(42)
    for round_number in range(3):
        for _ in range(400):
            key = f"key{rng.randrange(1200):06d}".encode()
            value = f"r{round_number}-{rng.randrange(10**9)}".encode() * 3
            t = db.put(key, value, at=t)
            expected[key] = value
        memtable_keys = volatile_keys(db, expected)
        durable = set(expected) - memtable_keys
        stack.crash()
        db = store_cls(stack, options=small_options())
        t = stack.now
        for key in sorted(durable):
            value, t = db.get(key, at=t)
            assert value == expected[key]
        # Reconcile: after recovery, whatever the store reports is the
        # new truth for keys that were only in the WAL.
        for key in sorted(memtable_keys):
            value, t = db.get(key, at=t)
            if value is None:
                del expected[key]
            else:
                expected[key] = value


@pytest.mark.parametrize("store_cls", [DB, NobLSM], ids=["leveldb", "noblsm"])
def test_clean_reopen_preserves_everything(store_cls):
    """Close (no crash) and reopen: nothing may be lost, WAL replays."""
    stack = fast_stack()
    db = store_cls(stack, options=small_options())
    ops = random_workload(900, seed=5)
    expected = {}
    t = 0
    for key, value in ops:
        t = db.put(key, value, at=t)
        expected[key] = value
    t = db.close(t)
    db = store_cls(stack, options=small_options())
    for key in sorted(expected):
        value, t = db.get(key, at=t)
        assert value == expected[key]


def test_noblsm_crash_with_uncommitted_successors():
    """Crash while successors are pending: recovery falls back safely.

    A journal that never commits asynchronously maximises the window in
    which new SSTables are volatile and shadows are the only durable copy.
    """
    stack = StorageStack(
        StackConfig(
            journal=JournalConfig(periodic=False, commit_interval_ns=10**18)
        )
    )
    options = small_options()
    options.reclaim_interval_ns = 10**18
    db = NobLSM(stack, options=options)
    ops = random_workload(1500, seed=11)
    expected = {}
    t = 0
    for key, value in ops:
        t = db.put(key, value, at=t)
        expected[key] = value
    assert db.tracker.groups_registered >= 1
    memtable_keys = volatile_keys(db, expected)
    durable = set(expected) - memtable_keys
    stack.crash()
    db = NobLSM(stack, options=small_options())
    t = stack.now
    for key in sorted(durable):
        value, t = db.get(key, at=t)
        assert value == expected[key], f"{key!r} lost or stale"


def test_wal_tail_can_be_lost_but_prefix_survives():
    """The paper: 'KV pairs stored in SSTables are intact while some in
    the logs are broken' — losses are confined to the newest writes."""
    stack = fast_stack()
    db = DB(stack, options=small_options())
    t = 0
    keys = []
    for i in range(200):
        key = f"key{i:06d}".encode()
        keys.append(key)
        t = db.put(key, b"v" * 100, at=t)
    stack.crash()
    db = DB(stack, options=small_options())
    t = stack.now
    alive = []
    for key in keys:
        value, t = db.get(key, at=t)
        alive.append(value is not None)
    # survivors must form a prefix: once a key is lost, everything newer
    # in the same log is lost too (modulo keys that reached SSTables)
    if False in alive:
        first_dead = alive.index(False)
        assert not any(alive[first_dead:]) or db.stats.recovered_records >= 0
