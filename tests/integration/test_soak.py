"""Soak test: a long mixed lifecycle against the dict model.

One NobLSM store lives through five epochs of mixed puts/deletes/reads/
scans; between epochs it is either cleanly closed + reopened, power-
failed + recovered, or metadata-wiped + repaired. At every boundary the
surviving contents must match the reconciled model exactly.
"""

import random

from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.lsm.repair import repair_db
from repro.sim.clock import millis


def make_options():
    options = Options(
        write_buffer_size=4 * KIB,
        max_file_size=4 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=8 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    return options


def volatile_keys(db, keys):
    lost = set()
    for key in keys:
        if db.mem.get(key) is not None:
            lost.add(key)
        elif db._pending_imm is not None and db._pending_imm[0].get(key) is not None:
            lost.add(key)
    return lost


def test_noblsm_soak_lifecycle():
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(20)))
    )
    db = NobLSM(stack, options=make_options())
    rng = random.Random(2022)
    model = {}
    t = 0

    transitions = ["close", "crash", "repair", "crash", "close"]
    for epoch, transition in enumerate(transitions):
        # mixed workload
        for _ in range(500):
            roll = rng.random()
            key = f"key{rng.randrange(300):05d}".encode()
            if roll < 0.6:
                value = f"e{epoch}-{rng.randrange(10**6):06d}".encode() * 3
                t = db.put(key, value, at=t)
                model[key] = value
            elif roll < 0.75:
                t = db.delete(key, at=t)
                model.pop(key, None)
            elif roll < 0.95:
                value, t = db.get(key, at=t)
                assert value == model.get(key), f"epoch {epoch}: {key!r}"
            else:
                pairs, t = db.scan(key, 5, at=t)
                for k, v in pairs:
                    assert model.get(k) == v, f"epoch {epoch} scan: {k!r}"

        if transition == "close":
            t = db.close(t)
            db = NobLSM(stack, options=make_options())
            t = max(t, stack.now)
            # clean close loses nothing
            for key in sorted(model):
                value, t = db.get(key, at=t)
                assert value == model[key], f"clean reopen lost {key!r}"
        elif transition == "crash":
            volatile = volatile_keys(db, set(model))
            stack.crash()
            db = NobLSM(stack, options=make_options())
            t = stack.now
            for key in sorted(model):
                value, t = db.get(key, at=t)
                if key in volatile:
                    if value is None:
                        del model[key]
                    else:
                        model[key] = value
                else:
                    assert value == model[key], f"crash lost durable {key!r}"
            # deletions of volatile keys may also roll back; reconcile
            for key in sorted(set(db_keys(db, t)) - set(model)):
                value, t = db.get(key, at=t)
                if value is not None:
                    model[key] = value
        else:  # repair
            t = db.close(t)
            for path in list(stack.fs.list_dir("db/")):
                if "MANIFEST" in path or path.endswith("CURRENT"):
                    t = stack.fs.unlink(path, at=t)
            _, t = repair_db(stack.fs, "db", make_options(), at=t)
            db = NobLSM(stack, options=make_options())
            for key in sorted(model):
                value, t = db.get(key, at=t)
                assert value == model[key], f"repair lost {key!r}"

    # final full verification via iteration
    iterator = db.iterate(at=t)
    seen = {}
    while iterator.valid:
        seen[iterator.key] = iterator.value
        iterator.next()
    assert seen == model


def db_keys(db, t):
    iterator = db.iterate(at=t)
    keys = []
    while iterator.valid:
        keys.append(iterator.key)
        iterator.next()
    return keys
