"""Makefile hygiene: one shared RUN variable carries PYTHONPATH=src.

Every gate target must expand to commands that put the source tree on
PYTHONPATH via the shared ``RUN`` variable — a target that spells
``PYTHONPATH=src`` by hand (or forgets it entirely) drifts the moment
the variable changes. ``make -n`` keeps this a pure dry-run smoke test:
nothing is built, only the expanded recipes are inspected.
"""

import re
import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
MAKEFILE = REPO / "Makefile"

GATE_TARGETS = [
    "perf-gate",
    "speed-gate",
    "soak-gate",
    "serve-gate",
    "amplification-gate",
    "slo-gate",
]


def dry_run(target):
    result = subprocess.run(
        ["make", "-n", target],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, (
        f"make -n {target} failed:\n{result.stderr}"
    )
    return result.stdout


def test_makefile_declares_shared_run_variable():
    text = MAKEFILE.read_text()
    assert re.search(r"^RUN\s*=\s*PYTHONPATH=src ", text, re.M), (
        "Makefile must define RUN = PYTHONPATH=src ..."
    )


def test_no_target_spells_pythonpath_by_hand():
    """PYTHONPATH=src appears exactly once: in the RUN definition."""
    text = MAKEFILE.read_text()
    assert text.count("PYTHONPATH=src") == 1


@pytest.mark.parametrize("target", GATE_TARGETS)
def test_gate_target_exists_and_uses_pythonpath(target):
    out = dry_run(target)
    python_lines = [
        line
        for line in out.splitlines()
        if "python" in line and "-m" in line
    ]
    assert python_lines, f"{target} expanded to no python invocations"
    for line in python_lines:
        assert "PYTHONPATH=src" in line, (
            f"{target} runs python without PYTHONPATH=src: {line}"
        )


@pytest.mark.parametrize("target", ["test", "test-fast"])
def test_pytest_targets_use_pythonpath(target):
    out = dry_run(target)
    assert "PYTHONPATH=src" in out


def test_every_gate_has_a_refresh_partner():
    """Each *-gate compares against a baseline someone can re-record."""
    text = MAKEFILE.read_text()
    for target in GATE_TARGETS:
        if target == "perf-gate":
            partner = "refresh-baselines"
        else:
            partner = "refresh-" + target.replace("-gate", "") + "-baseline"
        assert re.search(rf"^{partner}:", text, re.M), (
            f"{target} has no {partner} target"
        )
