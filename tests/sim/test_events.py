"""Unit tests for the event queue."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import _COMPACT_MIN_CANCELLED, EventQueue, Interrupt


@pytest.fixture()
def queue():
    return EventQueue(VirtualClock())


def test_events_fire_in_time_order(queue):
    fired = []
    queue.schedule(30, lambda t: fired.append(("b", t)))
    queue.schedule(10, lambda t: fired.append(("a", t)))
    queue.schedule(20, lambda t: fired.append(("c", t)))
    queue.run_until(100)
    assert fired == [("a", 10), ("c", 20), ("b", 30)]


def test_same_time_events_fire_in_schedule_order(queue):
    fired = []
    queue.schedule(10, lambda t: fired.append("first"))
    queue.schedule(10, lambda t: fired.append("second"))
    queue.run_until(10)
    assert fired == ["first", "second"]


def test_run_until_advances_clock(queue):
    queue.run_until(500)
    assert queue.clock.now == 500


def test_events_after_target_do_not_fire(queue):
    fired = []
    queue.schedule(100, lambda t: fired.append(t))
    queue.run_until(99)
    assert fired == []
    queue.run_until(100)
    assert fired == [100]


def test_cancelled_event_does_not_fire(queue):
    fired = []
    event = queue.schedule(10, lambda t: fired.append(t))
    event.cancel()
    queue.run_until(50)
    assert fired == []


def test_past_schedule_clamped_to_now(queue):
    queue.clock.advance_to(100)
    fired = []
    queue.schedule(10, lambda t: fired.append(t))
    queue.run_until(100)
    assert fired == [100]


def test_callback_can_schedule_more_events(queue):
    fired = []

    def chain(t):
        fired.append(t)
        if len(fired) < 3:
            queue.schedule(t + 10, chain)

    queue.schedule(10, chain)
    queue.run_until(100)
    assert fired == [10, 20, 30]


def test_schedule_after_uses_current_time(queue):
    queue.clock.advance_to(100)
    fired = []
    queue.schedule_after(50, lambda t: fired.append(t))
    queue.run_until(200)
    assert fired == [150]


def test_schedule_after_rejects_negative_delay(queue):
    with pytest.raises(ValueError):
        queue.schedule_after(-5, lambda t: None)


def test_len_counts_pending_only(queue):
    e1 = queue.schedule(10, lambda t: None)
    queue.schedule(20, lambda t: None)
    assert len(queue) == 2
    e1.cancel()
    assert len(queue) == 1


def test_next_event_time_skips_cancelled(queue):
    e1 = queue.schedule(10, lambda t: None)
    queue.schedule(20, lambda t: None)
    e1.cancel()
    assert queue.next_event_time() == 20


def test_reentrant_run_until_is_flattened(queue):
    fired = []

    def outer(t):
        fired.append(("outer", t))
        # A callback advancing time itself must not recurse.
        queue.run_until(t + 100)

    queue.schedule(10, outer)
    queue.schedule(20, lambda t: fired.append(("late", t)))
    queue.run_until(60)
    assert ("outer", 10) in fired
    assert ("late", 20) in fired


def test_drain_runs_everything(queue):
    fired = []
    for when in (5, 15, 25):
        queue.schedule(when, lambda t: fired.append(t))
    queue.drain()
    assert fired == [5, 15, 25]


def test_len_tracks_fired_and_cancelled_through_run(queue):
    """The live counter stays exact across firing, cancelling, and the
    lazy heap compaction that cancelled entries may trigger."""
    events = [queue.schedule(10 * (i + 1), lambda t: None) for i in range(8)]
    assert len(queue) == 8
    for e in events[::2]:
        e.cancel()
    assert len(queue) == 4
    queue.run_until(45)  # fires the live events at 20 and 40
    assert len(queue) == 2
    queue.run_until(1000)
    assert len(queue) == 0


def test_callback_cancel_triggering_compaction_mid_drain(queue):
    """A callback that cancels enough events to trip heap compaction while
    run_until is draining must not desync the drain loop: remaining live
    events fire exactly once, cancelled ones never fire."""
    fired = []
    # Enough future events that cancelling them trips the compaction
    # threshold (cancelled >= _COMPACT_MIN_CANCELLED and cancelled > live).
    doomed = [
        queue.schedule(1000 + i, lambda t: fired.append(("doomed", t)))
        for i in range(_COMPACT_MIN_CANCELLED + 10)
    ]

    def cancel_all(t):
        fired.append(("canceller", t))
        for e in doomed:
            e.cancel()
        # Work scheduled after compaction must still be seen by the drain.
        queue.schedule(t + 5, lambda t2: fired.append(("late", t2)))

    queue.schedule(10, cancel_all)
    queue.schedule(20, lambda t: fired.append(("survivor", t)))
    queue.run_until(2000)
    assert fired == [("canceller", 10), ("late", 15), ("survivor", 20)]
    assert len(queue) == 0
    assert queue._cancelled == 0


def test_cancel_after_fire_is_noop(queue):
    """Cancelling an event that already fired must not corrupt the
    pending/cancelled counters (stale timer handles do this)."""
    fired = []
    event = queue.schedule(10, lambda t: fired.append(t))
    queue.schedule(20, lambda t: None)
    queue.run_until(10)
    assert fired == [10]
    assert len(queue) == 1
    event.cancel()  # stale handle: event is long gone from the heap
    event.cancel()
    assert len(queue) == 1
    assert queue._cancelled == 0
    queue.run_until(100)
    assert len(queue) == 0


def test_cancel_after_interrupt_fired_is_noop(queue):
    """The crash harness cancels its interrupt after it fired; that must
    leave the queue consistent."""
    interrupt = queue.schedule_interrupt(50)
    queue.schedule(100, lambda t: None)
    with pytest.raises(Interrupt):
        queue.run_until(200)
    interrupt.cancel()
    assert len(queue) == 1
    assert queue._cancelled == 0
    queue.run_until(200)
    assert len(queue) == 0
