"""Unit tests for the multi-queue SSD channel model."""

import pytest

from repro.obs.metrics import MetricRegistry
from repro.sim.clock import VirtualClock
from repro.sim.latency import MIB, PM883
from repro.sim.ssd import SSD
from repro.sim.stats import DeviceStats


def quad():
    return SSD(VirtualClock(), PM883.with_channels(4))


# ----------------------------------------------------------------------
# profile plumbing
# ----------------------------------------------------------------------


def test_with_channels_identity():
    assert PM883.with_channels(1) is PM883


def test_with_channels_renames_profile():
    profile = PM883.with_channels(4)
    assert profile.num_channels == 4
    assert profile.name == "PM883-q4"
    # latency parameters are untouched
    assert profile.write_ns(MIB, True) == PM883.write_ns(MIB, True)


def test_with_channels_rejects_zero():
    with pytest.raises(ValueError):
        PM883.with_channels(0)


# ----------------------------------------------------------------------
# single-channel equivalence (the seed's serial timeline)
# ----------------------------------------------------------------------


def test_single_channel_matches_seed_timeline():
    """With one channel every op queues on one serial timeline."""
    ssd = SSD(VirtualClock(), PM883)
    first = ssd.write(MIB, at=0)
    second = ssd.write(MIB, at=0, stream="other")
    assert second == 2 * first  # stream hints change nothing at 1 channel
    assert ssd.stats.channel_busy_ns == []
    assert "channel_busy_ns" not in ssd.stats.snapshot()


def test_single_channel_snapshot_unchanged_by_streams():
    ssd = SSD(VirtualClock(), PM883)
    ssd.write(MIB, at=0, stream=7)
    ssd.forget_stream(7)  # no-op, must not blow up
    assert ssd.stats.write_ios == 1


# ----------------------------------------------------------------------
# arbitration
# ----------------------------------------------------------------------


def test_unhinted_ios_fan_out_across_channels():
    ssd = quad()
    first = ssd.write(MIB, at=0)
    second = ssd.write(MIB, at=0)
    # both land on idle channels and overlap fully in virtual time
    assert second == first
    assert ssd.busy_until == first


def test_least_loaded_wins_with_lowest_index_tiebreak():
    ssd = quad()
    ssd.write(MIB, at=0)  # channel 0
    ssd.write(MIB, at=0)  # channel 1 (tie broken by index)
    assert ssd.channel_busy_until(0) == ssd.channel_busy_until(1)
    assert ssd.channel_busy_until(2) == 0
    assert ssd.channel_busy_until(3) == 0


def test_five_writes_on_four_channels_queue_once():
    ssd = quad()
    one = ssd.write(MIB, at=0)
    for _ in range(3):
        ssd.write(MIB, at=0)
    fifth = ssd.write(MIB, at=0)
    assert fifth == 2 * one  # queued behind the least-loaded channel


def test_channel_busy_accounting():
    ssd = quad()
    done = ssd.write(MIB, at=0)
    ssd.write(MIB, at=0)
    busy = ssd.stats.channel_busy_ns
    assert busy[0] == done and busy[1] == done
    assert busy[2] == 0 and busy[3] == 0
    assert sum(busy) == ssd.stats.busy_ns


# ----------------------------------------------------------------------
# stream affinity
# ----------------------------------------------------------------------


def test_stream_sticks_to_its_first_channel():
    ssd = quad()
    first = ssd.write(MIB, at=0, stream="a")  # channel 0
    # channel 0 is now the *most* loaded, but the stream stays there
    second = ssd.write(MIB, at=0, stream="a")
    assert second == 2 * first
    assert ssd.channel_busy_until(1) == 0


def test_distinct_streams_use_distinct_channels():
    ssd = quad()
    a = ssd.write(MIB, at=0, stream="a")
    b = ssd.write(MIB, at=0, stream="b")
    assert a == b  # parallel service, no queueing


def test_forget_stream_releases_affinity():
    ssd = quad()
    ssd.write(MIB, at=0, stream="a")  # pins stream "a" to channel 0
    ssd.forget_stream("a")
    done = ssd.write(MIB, at=0, stream="a")
    # re-placed by least-loaded: channel 1, so no queueing behind ch 0
    assert done == ssd.channel_busy_until(1)
    assert ssd.channel_busy_until(0) == done


# ----------------------------------------------------------------------
# FLUSH barrier
# ----------------------------------------------------------------------


def test_flush_drains_every_channel():
    ssd = quad()
    ssd.write(MIB, at=0, stream="a")
    slow = ssd.write(10 * MIB, at=0, stream="b")
    done = ssd.flush(at=0)
    assert done == slow + PM883.flush_ns + PM883.barrier_extra_ns
    # all channels blocked until the barrier completes
    assert all(ssd.channel_busy_until(c) == done for c in range(4))


def test_flush_charged_to_every_channel_busy():
    ssd = quad()
    done = ssd.flush(at=0)
    assert ssd.stats.channel_busy_ns == [done] * 4
    # busy_ns counts the flush once; the per-channel list can sum higher
    assert ssd.stats.busy_ns == done


def test_io_after_flush_waits_for_barrier():
    ssd = quad()
    barrier = ssd.flush(at=0)
    done = ssd.write(MIB, at=0)
    assert done > barrier


# ----------------------------------------------------------------------
# stats / obs plumbing
# ----------------------------------------------------------------------


def test_device_stats_snapshot_roundtrip_with_channels():
    ssd = quad()
    ssd.write(MIB, at=0)
    ssd.read(MIB, at=0)
    ssd.flush(at=0)
    snap = ssd.stats.snapshot()
    assert snap["channel_busy_ns"] == ssd.stats.channel_busy_ns
    assert DeviceStats.from_snapshot(snap) == ssd.stats


def test_reset_clears_channels_and_streams():
    ssd = quad()
    ssd.write(MIB, at=0, stream="a")
    ssd.reset()
    assert ssd.busy_until == 0
    assert ssd.stats.channel_busy_ns == [0] * 4
    assert ssd._streams == {}


def test_per_channel_queue_histograms_only_when_multiqueue():
    obs = MetricRegistry()
    SSD(VirtualClock(), PM883.with_channels(2), obs=obs)
    assert obs.find_histogram("device.ch0.queue_ns") is not None
    obs_single = MetricRegistry()
    SSD(VirtualClock(), PM883, obs=obs_single)
    assert obs_single.find_histogram("device.ch0.queue_ns") is None


def test_queue_histogram_records_per_channel_wait():
    obs = MetricRegistry()
    ssd = SSD(VirtualClock(), PM883.with_channels(2), obs=obs)
    ssd.write(MIB, at=0, stream="a")
    ssd.write(MIB, at=0, stream="a")  # queues behind itself on channel 0
    hist = obs.find_histogram("device.ch0.queue_ns")
    assert hist.count == 2
    assert hist.max > 0
