"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import (
    VirtualClock,
    micros,
    millis,
    seconds,
    to_micros,
    to_seconds,
)


def test_clock_starts_at_zero():
    clock = VirtualClock()
    assert clock.now == 0


def test_clock_custom_start():
    clock = VirtualClock(start=100)
    assert clock.now == 100


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(start=-1)


def test_advance_to_moves_forward():
    clock = VirtualClock()
    assert clock.advance_to(50) == 50
    assert clock.now == 50


def test_advance_to_never_moves_backwards():
    clock = VirtualClock(start=100)
    assert clock.advance_to(50) == 100
    assert clock.now == 100


def test_advance_by_accumulates():
    clock = VirtualClock()
    clock.advance_by(10)
    clock.advance_by(15)
    assert clock.now == 25


def test_advance_by_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance_by(-1)


def test_unit_conversions_roundtrip():
    assert seconds(2) == 2_000_000_000
    assert millis(3) == 3_000_000
    assert micros(7) == 7_000
    assert to_seconds(seconds(5)) == 5.0
    assert to_micros(micros(9)) == 9.0


def test_fractional_conversions():
    assert seconds(0.5) == 500_000_000
    assert millis(0.25) == 250_000
