"""Unit tests for device profiles and statistics records."""

import pytest

from repro.sim.latency import CpuProfile, DEFAULT_CPU, DeviceProfile, MIB, PM883
from repro.sim.stats import DeviceStats, SyncStats


def test_write_time_linear_in_bytes():
    one = PM883.write_ns(MIB)
    two = PM883.write_ns(2 * MIB)
    assert two - one == pytest.approx(one - PM883.io_submit_ns, rel=0.01)


def test_random_slower_than_sequential():
    assert PM883.write_ns(MIB, sequential=False) > PM883.write_ns(MIB)
    assert PM883.read_ns(MIB, sequential=False) > PM883.read_ns(MIB)


def test_time_compressed_shrinks_fixed_costs_only():
    compressed = PM883.time_compressed(1000)
    assert compressed.flush_ns == PM883.flush_ns // 1000
    assert compressed.io_submit_ns == PM883.io_submit_ns // 1000
    assert compressed.seq_write_bw == PM883.seq_write_bw  # bandwidth kept


def test_time_compressed_rejects_nonpositive():
    with pytest.raises(ValueError):
        PM883.time_compressed(0)


def test_cpu_memcpy_cost():
    assert DEFAULT_CPU.memcpy_ns(0) == 0
    one_mb = DEFAULT_CPU.memcpy_ns(MIB)
    assert DEFAULT_CPU.memcpy_ns(2 * MIB) == pytest.approx(2 * one_mb, rel=0.01)


def test_device_stats_snapshot_and_reset():
    stats = DeviceStats(bytes_written=10, flushes=2, busy_ns=100)
    snapshot = stats.snapshot()
    assert snapshot["bytes_written"] == 10
    assert snapshot["flushes"] == 2
    stats.reset()
    assert stats.bytes_written == 0
    assert stats.busy_ns == 0


def test_sync_stats_by_reason():
    stats = SyncStats()
    stats.record(100, "minor")
    stats.record(200, "minor")
    stats.record(50, "manifest")
    assert stats.sync_calls == 3
    assert stats.bytes_synced == 350
    assert stats.by_reason == {"minor": 2, "manifest": 1}
    assert stats.bytes_by_reason == {"minor": 300, "manifest": 50}


def test_sync_stats_gib():
    stats = SyncStats()
    stats.record(2**30, "x")
    assert stats.gib_synced == pytest.approx(1.0)


def test_sync_stats_reset():
    stats = SyncStats()
    stats.record(100, "minor")
    stats.reset()
    assert stats.sync_calls == 0
    assert stats.by_reason == {}
    assert stats.snapshot()["bytes_synced"] == 0


def test_device_stats_snapshot_round_trip():
    stats = DeviceStats(
        bytes_written=10, bytes_read=4, write_ios=3, read_ios=2,
        flushes=1, busy_ns=777,
    )
    clone = DeviceStats.from_snapshot(stats.snapshot())
    assert clone == stats
    # fresh object round-trips to the zero state too
    assert DeviceStats.from_snapshot(DeviceStats().snapshot()) == DeviceStats()


def test_sync_stats_snapshot_round_trip():
    stats = SyncStats()
    stats.record(100, "minor")
    stats.record(50, "manifest")
    clone = SyncStats.from_snapshot(stats.snapshot())
    assert clone == stats
    # the clone owns its dicts: mutating it leaves the original alone
    clone.record(1, "wal")
    assert "wal" not in stats.by_reason


def test_snapshots_are_json_serializable():
    import json

    stats = SyncStats()
    stats.record(100, "minor")
    json.dumps(stats.snapshot())
    json.dumps(DeviceStats(bytes_written=5).snapshot())

