"""Unit tests for the SSD device model."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.latency import DeviceProfile, MIB, PM883, SLOW_HDD_LIKE
from repro.sim.ssd import SSD


@pytest.fixture()
def ssd():
    return SSD(VirtualClock(), PM883)


def test_write_advances_busy_timeline(ssd):
    done = ssd.write(MIB, at=0)
    assert done > 0
    assert ssd.busy_until == done


def test_back_to_back_writes_queue(ssd):
    first = ssd.write(MIB, at=0)
    second = ssd.write(MIB, at=0)
    assert second > first
    # Identical service times: the second waits for the first.
    assert second - first == first


def test_idle_gap_does_not_queue(ssd):
    first = ssd.write(MIB, at=0)
    late = first + 1_000_000
    second = ssd.write(MIB, at=late)
    assert second - late == first  # same service time, no queueing


def test_sequential_write_faster_than_random():
    ssd = SSD(VirtualClock(), PM883)
    seq = ssd.write(MIB, at=0, sequential=True)
    ssd.reset()
    rand = ssd.write(MIB, at=0, sequential=False)
    assert rand > seq


def test_read_faster_than_write_for_pm883(ssd):
    wrote = ssd.write(MIB, at=0)
    ssd.reset()
    read = ssd.read(MIB, at=0)
    assert read < wrote


def test_flush_costs_barrier(ssd):
    done = ssd.flush(at=0)
    assert done == PM883.flush_ns + PM883.barrier_extra_ns
    assert ssd.stats.flushes == 1


def test_flush_waits_for_queued_writes(ssd):
    write_done = ssd.write(10 * MIB, at=0)
    flush_done = ssd.flush(at=0)
    assert flush_done > write_done


def test_zero_byte_io_is_free(ssd):
    assert ssd.write(0, at=5) == 5
    assert ssd.read(0, at=5) == 5
    assert ssd.stats.write_ios == 0
    assert ssd.stats.read_ios == 0


def test_negative_io_rejected(ssd):
    with pytest.raises(ValueError):
        ssd.write(-1, at=0)
    with pytest.raises(ValueError):
        ssd.read(-1, at=0)


def test_stats_accumulate(ssd):
    ssd.write(MIB, at=0)
    ssd.read(2 * MIB, at=0)
    ssd.flush(at=0)
    assert ssd.stats.bytes_written == MIB
    assert ssd.stats.bytes_read == 2 * MIB
    assert ssd.stats.write_ios == 1
    assert ssd.stats.read_ios == 1
    assert ssd.stats.flushes == 1
    assert ssd.stats.busy_ns > 0


def test_reset_clears_state(ssd):
    ssd.write(MIB, at=0)
    ssd.reset()
    assert ssd.busy_until == 0
    assert ssd.stats.bytes_written == 0


def test_profile_scaling_slows_device():
    slow = PM883.scaled(2.0)
    assert slow.write_ns(MIB) > PM883.write_ns(MIB)
    assert slow.flush_ns == 2 * PM883.flush_ns


def test_profile_scaling_rejects_nonpositive():
    with pytest.raises(ValueError):
        PM883.scaled(0)


def test_hdd_profile_random_much_slower_than_seq():
    assert SLOW_HDD_LIKE.read_ns(MIB, sequential=False) > (
        10 * SLOW_HDD_LIKE.read_ns(MIB, sequential=True)
    )


def test_paper_anchor_fig2a_direct_rate():
    """4 GB written directly should take roughly 8.2 s (paper Fig. 2a)."""
    ssd = SSD(VirtualClock(), PM883)
    done = 0
    two_mib = 2 * MIB
    for _ in range(2048):  # 4 GB in 2 MB files
        done = ssd.write(two_mib, at=done)
    secs = done / 1e9
    assert 7.0 < secs < 10.0


def test_paper_anchor_fig2a_sync_penalty():
    """Adding a flush per 2 MB file costs roughly 1.9 s over 4 GB."""
    ssd = SSD(VirtualClock(), PM883)
    done = 0
    for _ in range(2048):
        done = ssd.write(2 * MIB, at=done)
        done = ssd.flush(at=done)
    plain = SSD(VirtualClock(), PM883)
    base = 0
    for _ in range(2048):
        base = plain.write(2 * MIB, at=base)
    extra_secs = (done - base) / 1e9
    assert 1.0 < extra_secs < 3.5
