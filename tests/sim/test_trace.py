"""Unit tests for the I/O trace recorder."""

from repro.sim.clock import VirtualClock
from repro.sim.latency import MIB, PM883
from repro.sim.ssd import SSD
from repro.sim.trace import IOTrace


def test_trace_records_operations():
    ssd = SSD(VirtualClock(), PM883)
    trace = IOTrace.attach(ssd)
    ssd.write(MIB, at=0)
    ssd.read(2 * MIB, at=0)
    ssd.flush(at=0)
    trace.detach()
    kinds = [e.kind for e in trace.events]
    assert kinds == ["write", "read", "flush"]
    totals = trace.totals()
    assert totals["write_bytes"] == MIB
    assert totals["read_bytes"] == 2 * MIB
    assert totals["flush"] == 1


def test_trace_detach_stops_recording():
    ssd = SSD(VirtualClock(), PM883)
    trace = IOTrace.attach(ssd)
    ssd.write(MIB, at=0)
    trace.detach()
    ssd.write(MIB, at=0)
    assert len(trace.events) == 1


def test_trace_capacity_drops_overflow():
    ssd = SSD(VirtualClock(), PM883)
    trace = IOTrace.attach(ssd, capacity=2)
    for _ in range(5):
        ssd.write(1024, at=0)
    assert len(trace.events) == 2
    assert trace.dropped == 3


def test_trace_queued_time():
    ssd = SSD(VirtualClock(), PM883)
    trace = IOTrace.attach(ssd)
    ssd.write(10 * MIB, at=0)
    ssd.write(1024, at=0)  # queues behind the big write
    first, second = trace.events
    assert second.queued_ns > first.completed_at - first.submitted_at - 1


def test_trace_works_through_full_stack():
    from repro.fs.stack import StorageStack

    stack = StorageStack()
    trace = IOTrace.attach(stack.ssd)
    handle, t = stack.fs.create("f", at=0)
    t = handle.append(b"x" * 8192, at=t)
    t = handle.fsync(at=t)
    trace.detach()
    kinds = {e.kind for e in trace.events}
    assert "write" in kinds
    assert "flush" in kinds


def test_format_timeline():
    ssd = SSD(VirtualClock(), PM883)
    trace = IOTrace.attach(ssd)
    ssd.write(MIB, at=0)
    text = trace.format_timeline()
    assert "write" in text
