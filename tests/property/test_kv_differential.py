"""Differential property test: noblsm-kv is read-equivalent to noblsm.

Key-value separation must be invisible to readers. For randomized
seeded put/get/delete/scan workloads, a noblsm-kv store at several
separation thresholds — 0 (everything rides the vLog), 64 (the mix
splits), 4096 (nothing separates) — must converge to exactly the same
final key → value map and scan order as plain NobLSM, on both the
serial seed configuration and the parallel one (4 channels x 2
threads). Interleaved reads keep the pointer-resolution path honest
while flushes and GC run underneath.
"""

import random

import pytest

from repro.baselines.registry import make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis

THRESHOLDS = [0, 64, 4096]
CONFIGS = [(1, 1), (4, 2)]  # (channels, threads)
KEY_SPACE = 48


def build(name, channels, threads, value_threshold=None):
    stack = StorageStack(
        StackConfig(
            journal=JournalConfig(commit_interval_ns=millis(20)),
            num_channels=channels if channels != 1 else None,
        )
    )
    options = Options(
        write_buffer_size=2 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
        background_threads=threads,
    )
    options.reclaim_interval_ns = millis(20)
    if value_threshold is not None:
        options.value_threshold = value_threshold
        options.vlog_segment_bytes = 1 * KIB
        options.vlog_gc_garbage_ratio = 0.3
    return stack, make_store(name, stack, options=options)


def workload(seed, num_ops=300):
    """Seeded put/delete/get mix with mixed value sizes; returns
    (ops, final dict model). Values straddle the 64-byte threshold."""
    rng = random.Random(seed)
    ops = []
    model = {}
    for i in range(num_ops):
        key = f"key{rng.randrange(KEY_SPACE):04d}".encode()
        roll = rng.random()
        if roll < 0.12:
            ops.append(("delete", key, None))
            model.pop(key, None)
        elif roll < 0.25:
            ops.append(("get", key, None))
        else:
            width = rng.choice((1, 1, 4, 12))  # 24ish / 100ish / 300ish
            value = f"v{i:04d}-{rng.randrange(10**8):08d}".encode() * width
            ops.append(("put", key, value))
            model[key] = value
    return ops, model


def apply_workload(db, stack, ops):
    """Returns (get results in op order, final t)."""
    t = stack.now
    reads = []
    for kind, key, value in ops:
        if kind == "put":
            t = db.put(key, value, t)
        elif kind == "delete":
            t = db.delete(key, t)
        else:
            got, t = db.get(key, t)
            reads.append((key, got))
    t = db.wait_for_background(t)
    t = max(t, stack.settle())
    return reads, db.reclaim(t)


def final_gets(db, t):
    out = {}
    for i in range(KEY_SPACE):
        key = f"key{i:04d}".encode()
        value, t = db.get(key, t)
        if value is not None:
            out[key] = value
    return out


@pytest.mark.parametrize("channels,threads", CONFIGS)
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_kv_matches_noblsm(threshold, channels, threads):
    for seed in (5, 71):
        ops, model = workload(seed)
        stack_a, kv = build("noblsm-kv", channels, threads, threshold)
        reads_a, t_a = apply_workload(kv, stack_a, ops)
        stack_b, plain = build("noblsm", channels, threads)
        reads_b, t_b = apply_workload(plain, stack_b, ops)

        # interleaved reads agree op-for-op
        assert reads_a == reads_b, f"mid-run get diverged (seed {seed})"
        # final point-lookup views agree with each other and the model
        assert final_gets(kv, t_a) == model, f"kv diverged (seed {seed})"
        assert final_gets(plain, t_b) == model
        # full scans agree in content and order
        pairs_a, _ = kv.scan(b"", KEY_SPACE + 10, t_a)
        pairs_b, _ = plain.scan(b"", KEY_SPACE + 10, t_b)
        assert pairs_a == pairs_b, f"scan diverged (seed {seed})"
        assert [k for k, _ in pairs_a] == sorted(model)

        # sanity: the threshold actually steered separation
        if threshold == 0:
            assert kv.vlog.appends > 0
        elif threshold == 4096:
            assert kv.vlog.appends == 0


@pytest.mark.parametrize("threshold", [0, 64])
def test_kv_survives_reopen(threshold):
    """Close + reopen mid-history: the rebuilt vLog accounting must not
    disturb read equivalence."""
    ops, model = workload(29, num_ops=240)
    half = len(ops) // 2
    stack, kv = build("noblsm-kv", 1, 1, threshold)
    apply_workload(kv, stack, ops[:half])
    kv.close(stack.now)
    kv = make_store(
        "noblsm-kv",
        stack,
        options=build_options_like(threshold),
    )
    _, t = apply_workload(kv, stack, ops[half:])
    assert final_gets(kv, t) == model


def build_options_like(value_threshold):
    options = Options(
        write_buffer_size=2 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
        background_threads=1,
    )
    options.reclaim_interval_ns = millis(20)
    options.value_threshold = value_threshold
    options.vlog_segment_bytes = 1 * KIB
    options.vlog_gc_garbage_ratio = 0.3
    return options
