"""Property tests for the simulation substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.pagecache import PAGE_SIZE, PageCache
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.latency import PM883
from repro.sim.ssd import SSD


@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=50),
    st.integers(min_value=0, max_value=20_000),
)
def test_event_queue_fires_in_time_order(times, horizon):
    queue = EventQueue(VirtualClock())
    fired = []
    for when in times:
        queue.schedule(when, lambda t: fired.append(t))
    queue.run_until(horizon)
    assert fired == sorted(t for t in times if t <= horizon)
    assert queue.clock.now == horizon


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
def test_event_queue_drain_fires_everything(times):
    queue = EventQueue(VirtualClock())
    fired = []
    for when in times:
        queue.schedule(when, lambda t: fired.append(t))
    queue.drain()
    assert fired == sorted(times)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "flush"]),
            st.integers(min_value=1, max_value=10 * 1024 * 1024),
            st.integers(min_value=0, max_value=10**9),
        ),
        max_size=40,
    )
)
def test_device_completions_monotone_and_busy_grows(ops):
    ssd = SSD(VirtualClock(), PM883)
    last_done = 0
    for kind, nbytes, at in ops:
        if kind == "write":
            done = ssd.write(nbytes, at)
        elif kind == "read":
            done = ssd.read(nbytes, at)
        else:
            done = ssd.flush(at)
        # the shared FIFO timeline: completions never go backwards
        assert done >= last_done
        assert done >= at
        last_done = done
    assert ssd.busy_until == last_done


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "clean", "drop"]),
            st.integers(min_value=0, max_value=8),  # ino
            st.integers(min_value=0, max_value=40),  # page count
        ),
        max_size=60,
    )
)
def test_pagecache_dirty_accounting_never_negative(ops):
    cache = PageCache(capacity_bytes=64 * PAGE_SIZE)
    for kind, ino, pages in ops:
        nbytes = pages * PAGE_SIZE
        if kind == "write":
            cache.write(ino, 0, nbytes)
        elif kind == "read":
            cache.read_misses(ino, 0, nbytes)
        elif kind == "clean":
            cache.clean_inode(ino, nbytes)
        else:
            cache.drop_inode(ino)
        assert cache.dirty_bytes >= 0
        assert cache.dirty_bytes <= cache.resident_bytes + cache.capacity_bytes
