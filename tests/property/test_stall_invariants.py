"""Property test: stall accounting tiles exactly, serial and parallel.

The contract (see :class:`repro.lsm.db.DBStats`): the hard-stall total
is exactly attributed into its two causes, and on an observed run the
cause-labelled ``lsm.write_stall`` spans tile every counter with no gap
and no overlap — for the serial seed configuration *and* the parallel
scheduler (multiple channels x background threads), where a bug in span
emission or double-counted stall attribution would first show up.
"""

import random

import pytest

from repro.baselines.registry import make_store
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.obs.metrics import MetricRegistry

GRID = [(1, 1), (4, 2)]  # (num_channels, background_threads)

STORES = ("leveldb", "noblsm")


def run_workload(store, channels, threads, seed, dynamic_slowdown=False):
    stack = StorageStack(
        StackConfig(
            obs=MetricRegistry(),
            num_channels=channels if channels != 1 else None,
        )
    )
    options = Options(
        write_buffer_size=4 * KIB,
        max_file_size=4 * KIB,
        block_size=1 * KIB,
        max_bytes_for_level_base=8 * KIB,
        l0_compaction_trigger=2,
        l0_slowdown_writes_trigger=3,
        l0_stop_writes_trigger=5,
        background_threads=threads,
        dynamic_slowdown=dynamic_slowdown,
    )
    db = make_store(store, stack, "db", options=options)
    rng = random.Random(seed)
    t = 0
    for _ in range(rng.randrange(150, 350)):
        key = b"k%012d" % rng.randrange(64)
        value = bytes(rng.randrange(64, 700))
        t = db.put(key, value, at=t)
        if rng.random() < 0.05:
            db.get(key, at=t)
    db.wait_for_background(t)
    return db, stack


def span_sums(obs):
    sums = {}
    for span in obs.spans:
        if span.name != "lsm.write_stall":
            continue
        assert span.duration_ns > 0, "zero-length stall span emitted"
        cause = span.attrs.get("cause")
        sums[cause] = sums.get(cause, 0) + span.duration_ns
    return sums


@pytest.mark.parametrize("channels,threads", GRID)
@pytest.mark.parametrize("store", STORES)
@pytest.mark.parametrize("seed", [1, 17, 4242])
def test_stall_counters_tile_and_spans_match(store, channels, threads, seed):
    db, stack = run_workload(store, channels, threads, seed)
    stats = db.stats

    # invariant 1: hard stalls are exactly attributed to their causes
    assert stats.stall_ns == stats.stall_memtable_ns + stats.stall_l0_stop_ns

    # invariant 2: the unified total is the sum of its documented parts
    assert stats.blocked_ns == stats.stall_ns + stats.slowdown_ns

    # invariant 3: observed spans tile every counter exactly; the
    # writer-blocked causes sum to blocked_ns, while ``major_deferred``
    # (a parallel-scheduler deferral, not writer-blocked time) is the
    # only other cause allowed and never leaks into the counters
    sums = span_sums(stack.obs)
    assert sums.get("memtable_full", 0) == stats.stall_memtable_ns
    assert sums.get("l0_stop", 0) == stats.stall_l0_stop_ns
    assert sums.get("l0_slowdown", 0) == stats.slowdown_ns
    writer_blocked = (
        sums.get("memtable_full", 0)
        + sums.get("l0_stop", 0)
        + sums.get("l0_slowdown", 0)
    )
    assert writer_blocked == stats.blocked_ns
    assert set(sums) <= {
        "memtable_full",
        "l0_stop",
        "l0_slowdown",
        "major_deferred",
    }


@pytest.mark.parametrize("channels,threads", GRID)
def test_invariants_hold_with_dynamic_slowdown(channels, threads):
    db, stack = run_workload(
        "noblsm", channels, threads, seed=99, dynamic_slowdown=True
    )
    stats = db.stats
    assert stats.stall_ns == stats.stall_memtable_ns + stats.stall_l0_stop_ns
    sums = span_sums(stack.obs)
    assert sums.get("l0_slowdown", 0) == stats.slowdown_ns
    assert (
        sums.get("memtable_full", 0)
        + sums.get("l0_stop", 0)
        + sums.get("l0_slowdown", 0)
        == stats.blocked_ns
    )


@pytest.mark.parametrize("seed", [3, 11])
def test_workload_actually_stalls(seed):
    # guard against the suite silently testing a stall-free regime
    db, _ = run_workload("noblsm", 1, 1, seed)
    assert db.stats.blocked_ns > 0
