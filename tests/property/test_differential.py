"""Differential property test: parallel noblsm vs serial sync baseline.

For randomized seeded workloads, a NobLSM store running the parallel
scheduler (several background threads on a multi-queue device) must
converge — after ``wait_for_background`` — to exactly the same final
key → value map as a sync-everything LevelDB running the seed's serial
configuration. The durability *timing* differs by design; the *contents*
may not.
"""

import random

import pytest

from repro.baselines.registry import make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis

GRID = [
    (threads, channels)
    for threads in (1, 2, 4)
    for channels in (1, 4)
]


def build(name, threads, channels, sync_wal=False):
    stack = StorageStack(
        StackConfig(
            journal=JournalConfig(commit_interval_ns=millis(20)),
            num_channels=channels if channels != 1 else None,
        )
    )
    options = Options(
        write_buffer_size=2 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
        background_threads=threads,
    )
    options.reclaim_interval_ns = millis(20)
    if sync_wal:
        options.sync.sync_wal = True
    return stack, make_store(name, stack, options=options)


def workload(seed, num_ops=300, key_space=48):
    """Seeded put/delete mix; returns (ops, final dict model)."""
    rng = random.Random(seed)
    ops = []
    model = {}
    for i in range(num_ops):
        key = f"key{rng.randrange(key_space):04d}".encode()
        if rng.random() < 0.15:
            ops.append(("delete", key, b""))
            model.pop(key, None)
        else:
            value = f"val{i}-{rng.randrange(10**6)}".encode()
            ops.append(("put", key, value))
            model[key] = value
    return ops, model


def apply_workload(db, stack, ops):
    t = stack.now
    for kind, key, value in ops:
        if kind == "put":
            t = db.put(key, value, t)
        else:
            t = db.delete(key, t)
    return db.wait_for_background(t)


def final_map(db, t, key_space=48):
    out = {}
    for i in range(key_space):
        key = f"key{i:04d}".encode()
        value, t = db.get(key, t)
        if value is not None:
            out[key] = value
    return out


@pytest.mark.parametrize("threads,channels", GRID)
def test_parallel_noblsm_matches_sync_baseline(threads, channels):
    for seed in (11, 97):
        ops, model = workload(seed)
        stack_a, noblsm = build("noblsm", threads, channels)
        t_a = apply_workload(noblsm, stack_a, ops)
        stack_b, sync_db = build("leveldb", 1, 1, sync_wal=True)
        t_b = apply_workload(sync_db, stack_b, ops)
        got_a = final_map(noblsm, t_a)
        got_b = final_map(sync_db, t_b)
        assert got_a == model, f"noblsm diverged (seed {seed})"
        assert got_b == model, f"sync baseline diverged (seed {seed})"


@pytest.mark.parametrize("threads,channels", [(2, 4), (4, 4)])
def test_parallel_scan_matches_model(threads, channels):
    """Iterators must also agree — ordering and shadow filtering."""
    ops, model = workload(23, num_ops=400)
    stack, db = build("noblsm", threads, channels)
    t = apply_workload(db, stack, ops)
    pairs, _ = db.scan(b"", len(model) + 10, t)
    assert dict(pairs) == model
    assert [k for k, _ in pairs] == sorted(model)
