"""Property-based tests for the on-disk encodings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.block import Block, BlockBuilder
from repro.lsm.bloom import BloomFilter
from repro.lsm.format import (
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    get_length_prefixed,
    get_varint,
    internal_compare,
    make_internal_key,
    parse_internal_key,
    put_length_prefixed,
    put_varint,
)
from repro.lsm.wal import decode_batch, encode_batch

keys = st.binary(min_size=0, max_size=40)
values = st.binary(min_size=0, max_size=200)


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrip(value):
    decoded, offset = get_varint(put_varint(value))
    assert decoded == value


@given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
def test_varint_stream_roundtrip(numbers):
    buf = b"".join(put_varint(n) for n in numbers)
    pos = 0
    out = []
    for _ in numbers:
        value, pos = get_varint(buf, pos)
        out.append(value)
    assert out == numbers
    assert pos == len(buf)


@given(st.lists(st.binary(max_size=100), max_size=20))
def test_length_prefixed_stream_roundtrip(chunks):
    buf = b"".join(put_length_prefixed(c) for c in chunks)
    pos = 0
    out = []
    for _ in chunks:
        chunk, pos = get_length_prefixed(buf, pos)
        out.append(chunk)
    assert out == chunks


@given(
    keys,
    st.integers(min_value=0, max_value=MAX_SEQUENCE),
    st.sampled_from([TYPE_VALUE, TYPE_DELETION]),
)
def test_internal_key_roundtrip(user_key, sequence, value_type):
    internal = make_internal_key(user_key, sequence, value_type)
    parsed = parse_internal_key(internal)
    assert parsed == (user_key, sequence, value_type)


@given(
    st.tuples(keys, st.integers(min_value=0, max_value=2**30)),
    st.tuples(keys, st.integers(min_value=0, max_value=2**30)),
)
def test_internal_compare_total_order(a, b):
    ka = make_internal_key(a[0], a[1], TYPE_VALUE)
    kb = make_internal_key(b[0], b[1], TYPE_VALUE)
    ab = internal_compare(ka, kb)
    ba = internal_compare(kb, ka)
    assert ab == -ba
    if a == b:
        assert ab == 0
    # consistent with the (user asc, seq desc) order
    expected = (a[0], -a[1]) < (b[0], -b[1])
    if expected:
        assert ab < 0


@given(
    st.lists(
        st.tuples(
            st.sampled_from([TYPE_VALUE, TYPE_DELETION]), keys, values
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=0, max_value=2**40),
)
def test_wal_batch_roundtrip(entries, sequence):
    record = encode_batch(sequence, entries)
    decoded_seq, decoded = decode_batch(record[8:])
    assert decoded_seq == sequence
    assert decoded == entries


@given(st.dictionaries(keys, values, max_size=60))
def test_block_roundtrip_sorted_entries(mapping):
    builder = BlockBuilder()
    entries = sorted(mapping.items())
    for key, value in entries:
        builder.add(key, value)
    block = Block.decode(builder.finish())
    assert block.entries() == entries


@given(st.sets(keys, max_size=200), st.integers(min_value=4, max_value=16))
def test_bloom_never_false_negative(members, bits_per_key):
    bloom = BloomFilter.build(members, bits_per_key)
    assert all(bloom.may_contain(k) for k in members)
    decoded = BloomFilter.decode(bloom.encode())
    assert all(decoded.may_contain(k) for k in members)
