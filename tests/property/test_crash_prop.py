"""Property test: crash consistency under arbitrary crash points.

For both LevelDB and NobLSM: run a random workload, crash at a random
point, recover, and check the paper's guarantee — every key that had
left the memtables (i.e. was synced into an SSTable at least once) is
readable with its newest pre-crash value; only WAL-tail keys may be
lost, and a lost key disappears entirely (no stale resurrection).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis

workload = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=10,
    max_size=150,
)


def build(store_cls):
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(20)))
    )
    options = Options(
        write_buffer_size=1 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    return stack, store_cls(stack, options=options)


def fresh_options():
    options = Options(
        write_buffer_size=1 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    return options


def run_crash_property(store_cls, ops, crash_fraction):
    stack, db = build(store_cls)
    expected = {}
    history = {}
    t = 0
    crash_at = max(1, int(len(ops) * crash_fraction))
    for index, (key_index, nonce) in enumerate(ops):
        key = f"key{key_index:04d}".encode()
        value = f"v{nonce:08d}".encode() * 3
        t = db.put(key, value, at=t)
        expected[key] = value
        history.setdefault(key, []).append(value)
        if index + 1 == crash_at:
            break
    volatile = set()
    for key in expected:
        if db.mem.get(key) is not None:
            volatile.add(key)
        elif db._pending_imm is not None and db._pending_imm[0].get(key) is not None:
            volatile.add(key)
    stack.crash()
    recovered = store_cls(stack, options=fresh_options())
    t = stack.now
    for key, value in sorted(expected.items()):
        got, t = recovered.get(key, at=t)
        if key in volatile:
            # the newest version was volatile: the key may be lost or
            # revert to an older (durable) version of *itself* — but it
            # must never return garbage
            assert got is None or got in history[key], (
                f"{store_cls.__name__}: {key!r} returned a value never written"
            )
        else:
            assert got == value, (
                f"{store_cls.__name__}: durable {key!r} lost or stale"
            )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=workload, fraction=st.floats(min_value=0.05, max_value=1.0))
def test_leveldb_crash_consistency(ops, fraction):
    run_crash_property(DB, ops, fraction)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=workload, fraction=st.floats(min_value=0.05, max_value=1.0))
def test_noblsm_crash_consistency(ops, fraction):
    run_crash_property(NobLSM, ops, fraction)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=workload,
    fractions=st.lists(
        st.floats(min_value=0.1, max_value=1.0), min_size=2, max_size=3
    ),
)
def test_noblsm_survives_repeated_crashes(ops, fractions):
    """Crash, recover, keep writing, crash again — never lose durable data."""
    stack, db = build(NobLSM)
    expected = {}
    t = 0
    pos = 0
    for fraction in fractions:
        count = max(1, int(len(ops) * fraction / len(fractions)))
        for key_index, nonce in ops[pos : pos + count]:
            key = f"key{key_index:04d}".encode()
            value = f"v{nonce:08d}".encode() * 3
            t = db.put(key, value, at=t)
            expected[key] = value
        pos += count
        volatile = set()
        for key in expected:
            if db.mem.get(key) is not None:
                volatile.add(key)
            elif (
                db._pending_imm is not None
                and db._pending_imm[0].get(key) is not None
            ):
                volatile.add(key)
        stack.crash()
        db = NobLSM(stack, options=fresh_options())
        t = stack.now
        for key in sorted(expected):
            got, t = db.get(key, at=t)
            if key in volatile:
                if got is None:
                    del expected[key]
                else:
                    expected[key] = got  # reverted to an older version
            else:
                assert got == expected[key], f"durable {key!r} lost"
