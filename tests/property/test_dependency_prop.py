"""Property tests for the dependency tracker's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dependency import DependencyTracker, SSTableRef


def ref(number):
    return SSTableRef(number=number, ino=number + 10_000, path=f"db/{number}.ldb")


chains = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),  # p
        st.integers(min_value=1, max_value=4),  # q
    ),
    min_size=1,
    max_size=12,
)


def build_chain(tracker, shape):
    """Register groups where each group consumes the previous one's
    successors (plus fresh files), mimicking compaction lineages."""
    groups = []
    next_number = 1
    available = []
    for p, q in shape:
        predecessors = []
        for _ in range(p):
            if available:
                predecessors.append(available.pop())
            else:
                predecessors.append(ref(next_number))
                next_number += 1
        successors = []
        for _ in range(q):
            successors.append(ref(next_number))
            next_number += 1
        groups.append(tracker.register(predecessors, successors))
        available.extend(successors)
    return groups


@settings(max_examples=100, deadline=None)
@given(shape=chains, committed_fraction=st.floats(min_value=0, max_value=1))
def test_reclaimable_is_always_a_resolved_prefix(shape, committed_fraction):
    tracker = DependencyTracker()
    groups = build_chain(tracker, shape)
    # commit an arbitrary subset of inos
    all_inos = {
        r.ino for g in groups for r in g.successors
    }
    committed = {
        ino for ino in all_inos if (ino * 2654435761) % 1000 < committed_fraction * 1000
    }
    tracker.resolve(lambda ino: ino in committed)
    ready = tracker.reclaimable()
    # invariant 1: everything reclaimable is resolved
    assert all(g.resolved for g in ready)
    # invariant 2: reclaimable groups form a prefix in registration order
    ready_ids = [g.group_id for g in ready]
    all_ids = sorted(g.group_id for g in groups)
    assert ready_ids == all_ids[: len(ready_ids)]
    # invariant 3: any group after an unresolved one is not reclaimable
    unresolved = [g.group_id for g in groups if not g.resolved]
    if unresolved:
        first_unresolved = min(unresolved)
        assert all(gid < first_unresolved for gid in ready_ids)


@settings(max_examples=100, deadline=None)
@given(shape=chains)
def test_resolution_is_monotone(shape):
    """Once resolved, a group stays resolved even if entries vanish."""
    tracker = DependencyTracker()
    groups = build_chain(tracker, shape)
    all_inos = [r.ino for g in groups for r in g.successors]
    committed = set()
    resolved_so_far = set()
    for ino in all_inos:
        committed.add(ino)
        tracker.resolve(lambda i: i in committed)
        now_resolved = {g.group_id for g in groups if g.resolved}
        assert resolved_so_far <= now_resolved  # never un-resolves
        resolved_so_far = now_resolved
    # everything commits eventually -> everything resolves
    assert resolved_so_far == {g.group_id for g in groups}


@settings(max_examples=50, deadline=None)
@given(shape=chains)
def test_shadow_numbers_shrink_only_by_reclaim(shape):
    tracker = DependencyTracker()
    groups = build_chain(tracker, shape)
    before = tracker.shadow_numbers()
    tracker.resolve(lambda ino: True)
    assert tracker.shadow_numbers() == before  # resolve alone frees nothing
    for group in tracker.reclaimable():
        tracker.mark_reclaimed(group)
    after = tracker.shadow_numbers()
    assert after <= before
    assert after == set()  # all resolved -> all reclaimed
