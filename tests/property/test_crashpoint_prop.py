"""Property test: arbitrary crash *virtual times*, not just op boundaries.

The older property test (test_crash_prop) crashes between operations;
this one drives the crashtest harness so the plug is pulled at any
virtual time — mid-WAL-append, mid-commit, mid-compaction, inside the
open path. For both stores, open-or-repair recovery must never lose an
acked-durable key nor resurrect an acked delete.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crashtest import CrashMatrixConfig, CrashPoint
from repro.crashtest.harness import build_workload, run_point


def check_point(mode, seed, fraction):
    config = CrashMatrixConfig(mode=mode, seed=seed, num_ops=60)
    ops = build_workload(config)
    # the sync run finishes in well under a second of virtual time; the
    # noblsm horizon stretches past the last journal commit
    horizon = 300_000_000 if mode == "sync" else 1_100_000_000
    when = max(1, int(horizon * fraction))
    result = run_point(config, ops, CrashPoint(when, "random"))
    assert result.recovery in ("open", "repair")
    assert result.violations == [], "\n".join(
        str(v) for v in result.violations
    )


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_noblsm_random_crash_times(seed, fraction):
    check_point("noblsm", seed, fraction)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_sync_baseline_random_crash_times(seed, fraction):
    check_point("sync", seed, fraction)
