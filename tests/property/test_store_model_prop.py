"""Property test: every store is observationally a dict.

Random sequences of puts/deletes/gets against a tiny-table store (so
compactions fire constantly) must always agree with a plain dict model —
across all seven store variants.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.registry import STORE_CLASSES
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.options import KIB, Options
from repro.sim.clock import millis

ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=0, max_value=10**6),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=60)),
    ),
    min_size=1,
    max_size=120,
)


def tiny_store(name):
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(20)))
    )
    options = Options(
        write_buffer_size=1 * KIB,
        max_file_size=1 * KIB,
        block_size=256,
        max_bytes_for_level_base=2 * KIB,
        l0_compaction_trigger=2,
    )
    options.reclaim_interval_ns = millis(20)
    return STORE_CLASSES[name](stack, options=options)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy)
def test_leveldb_matches_dict(ops):
    _run_model(ops, "leveldb")


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy)
def test_noblsm_matches_dict(ops):
    _run_model(ops, "noblsm")


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy)
def test_pebblesdb_matches_dict(ops):
    _run_model(ops, "pebblesdb")


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy)
def test_l2sm_matches_dict(ops):
    _run_model(ops, "l2sm")


def _run_model(ops, store_name):
    db = tiny_store(store_name)
    model = {}
    t = 0
    for op in ops:
        if op[0] == "put":
            key = f"key{op[1]:04d}".encode()
            value = f"value{op[2]:08d}".encode() * 2
            t = db.put(key, value, at=t)
            model[key] = value
        else:
            key = f"key{op[1]:04d}".encode()
            t = db.delete(key, at=t)
            model.pop(key, None)
    # point lookups agree
    for i in range(61):
        key = f"key{i:04d}".encode()
        value, t = db.get(key, at=t)
        assert value == model.get(key), f"{store_name}: mismatch for {key!r}"
    # full iteration agrees
    iterator = db.iterate(at=t)
    seen = {}
    while iterator.valid:
        seen[iterator.key] = iterator.value
        iterator.next()
    assert seen == model, f"{store_name}: iteration mismatch"
