"""Property tests: the extent list behaves like a plain bytearray."""

from hypothesis import given
from hypothesis import strategies as st

from repro.fs.ext4 import _ExtentList

operations = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.binary(max_size=64)),
        st.tuples(st.just("zeros"), st.integers(min_value=0, max_value=128)),
        st.tuples(st.just("truncate"), st.integers(min_value=0, max_value=400)),
    ),
    max_size=30,
)


@given(operations, st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=200))
def test_extent_list_matches_bytearray(ops, read_offset, read_len):
    extents = _ExtentList()
    model = bytearray()
    for op in ops:
        if op[0] == "append":
            extents.append(op[1])
            model.extend(op[1])
        elif op[0] == "zeros":
            extents.append_zeros(op[1])
            model.extend(b"\x00" * op[1])
        else:
            new_size = min(op[1], len(model))
            extents.truncate(new_size)
            del model[new_size:]
    assert extents.size == len(model)
    assert extents.read(read_offset, read_len) == bytes(
        model[read_offset : read_offset + read_len]
    )


@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=20))
def test_extent_full_read_roundtrip(chunks):
    extents = _ExtentList()
    for chunk in chunks:
        extents.append(chunk)
    assert extents.read(0, extents.size) == b"".join(chunks)


@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=10),
    st.data(),
)
def test_extent_truncate_is_prefix(chunks, data):
    extents = _ExtentList()
    for chunk in chunks:
        extents.append(chunk)
    full = extents.read(0, extents.size)
    cut = data.draw(st.integers(min_value=0, max_value=extents.size))
    extents.truncate(cut)
    assert extents.size == cut
    assert extents.read(0, cut) == full[:cut]
