"""Property test: a snapshot is a frozen dict.

Interleave writes, deletes and snapshot points; at the end, reads
through every snapshot must reproduce exactly the model dict as it was
at that snapshot's moment — regardless of the compactions that ran in
between.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import ScaledConfig

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(min_value=0, max_value=30),
            st.integers(min_value=0, max_value=10**6),
        ),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=30)),
        st.tuples(st.just("snap"), st.just(0)),
    ),
    min_size=5,
    max_size=120,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=operations)
def test_snapshots_are_frozen_dicts(ops):
    config = ScaledConfig(scale=30_000)  # tiny tables: constant compaction
    _, db = config.build_store("leveldb")
    model = {}
    pinned = []  # (snapshot, dict copy)
    t = 0
    for op in ops:
        if op[0] == "put":
            key = f"key{op[1]:03d}".encode()
            value = f"v{op[2]:07d}".encode() * 3
            t = db.put(key, value, at=t)
            model[key] = value
        elif op[0] == "delete":
            key = f"key{op[1]:03d}".encode()
            t = db.delete(key, at=t)
            model.pop(key, None)
        else:
            pinned.append((db.get_snapshot(), dict(model)))
    t = db.wait_for_background(t)
    for snapshot, frozen in pinned:
        # point reads agree
        for i in range(31):
            key = f"key{i:03d}".encode()
            value, t = db.get(key, at=t, snapshot=snapshot)
            assert value == frozen.get(key)
        # full scans agree
        iterator = db.iterate(at=t, snapshot=snapshot)
        seen = {}
        while iterator.valid:
            seen[iterator.key] = iterator.value
            iterator.next()
        assert seen == frozen
    # the live view agrees with the final model
    for i in range(31):
        key = f"key{i:03d}".encode()
        value, t = db.get(key, at=t)
        assert value == model.get(key)
