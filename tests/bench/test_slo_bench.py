"""Integration tests for the flight recorder: sampler + SLOs + gate.

One small telemetry-on serve pair is run once per module and every
assertion reads from it: the untuned cluster's shed burst must fire a
fast-burn alert at a pinned virtual timestamp, the fair twin must stay
silent, attaching the rig must not change the serve numbers, and the
``repro.slo/1`` / ``repro.timeseries/1`` documents must be
deterministic and gateable by ``repro.bench.compare``.
"""

import copy
import json
import re

import pytest

from repro.bench.compare import (
    SLO_METRICS,
    SLO_SCHEMA as COMPARE_SLO_SCHEMA,
    compare_documents,
    report_payload,
)
from repro.bench.slo import (
    SLO_SCHEMA,
    SloConfig,
    Telemetry,
    check_discrimination,
    render_dashboard,
    render_slo,
    run_slo,
    slo_document,
    write_slo_json,
    write_timeseries_json,
)
from repro.bench.soak import SoakConfig
from repro.serve.bench import ServeConfig, run_serve

#: the serve-bench SMALL shape: hot enough that the untuned hot shard
#: sheds, small enough for a unit-test budget (~3 s for the pair)
SMALL_SERVE = ServeConfig(
    num_shards=2,
    num_tenants=3,
    arrival_rate=90_000.0,
    duration_s=0.06,
    window_ms=10.0,
)

#: the untuned run's first fast-burn alert, pinned: the 54 ms sampler
#: tick is the first whose fast-rule short window sees the hot shard's
#: shed burst. Deterministic for this config + seed; a change here is a
#: behaviour change and must be explained, not waved through.
FIRST_FAST_BURN_NS = 54_000_000


def small_config():
    return SloConfig(scenario="serve", interval_ms=2.0, serve=SMALL_SERVE)


@pytest.fixture(scope="module")
def pair():
    return run_slo(small_config())


def test_pair_runs_untuned_then_fair(pair):
    base, fair = pair
    assert base.workload == "serve"
    assert fair.workload == "serve-fair"
    assert base.row["ops"] == fair.row["ops"] > 0
    assert base.row["samples"] == fair.row["samples"] > 0


def test_untuned_fires_fast_burn_at_pinned_timestamp(pair):
    base, _ = pair
    assert base.row["fast_burn_alerts"] >= 1
    assert base.row["first_fast_burn_at_ns"] == FIRST_FAST_BURN_NS
    # the sampler grid quantises alert times: every fire/resolve sits on
    # a tick boundary
    for monitor in base.telemetry.monitors:
        for alert in monitor.alerts:
            assert alert.fired_at_ns % base.telemetry.config.interval_ns == 0


def test_fair_twin_fires_nothing(pair):
    _, fair = pair
    assert fair.row["alerts_total"] == 0
    assert fair.row["bad_events"] == 0
    assert fair.row["max_burn"] == 0.0


def test_discrimination_check_passes_and_fails_correctly(pair):
    assert check_discrimination(pair) == []
    # strip the untuned run's alerts -> the recorder failed its job
    muted = copy.deepcopy(pair[0].row)
    muted["fast_burn_alerts"] = 0

    class FakeResult:
        def __init__(self, row):
            self.row = row
            self.workload = row["workload"]

    problems = check_discrimination([FakeResult(muted)])
    assert len(problems) == 1 and "fast-burn" in problems[0]
    # an alert on the tuned twin is equally a failure
    noisy = copy.deepcopy(pair[1].row)
    noisy["alerts_total"] = 2
    problems = check_discrimination([FakeResult(noisy)])
    assert len(problems) == 1 and "0 alerts" in problems[0]


def test_telemetry_does_not_change_serve_numbers(pair):
    """The rig's own clock/queue never touches the shard stacks."""
    plain = run_serve(SMALL_SERVE)  # untuned already: tuning fields zero
    observed = pair[0].base
    a, b = plain.to_dict(), observed.to_dict()
    a.pop("host", None), b.pop("host", None)
    assert a == b


def test_expected_health_series_exist(pair):
    base, _ = pair
    series = base.telemetry.sampler.series
    for name in (
        "serve.offered.delta",
        "serve.served.delta",
        "serve.shed.delta",
        "serve.latency_ns.ops",
        "serve.latency_ns.p999",
        "shard0.pressure",
        "shard0.queue_depth",
        "shard0.debt_bytes",
        "slo.latency.burn",
        "slo.availability.burn",
    ):
        assert name in series, sorted(series)
    # offered = served + shed + nothing else, tick by tick
    offered = sum(v for _, v in series["serve.offered.delta"].points())
    served = sum(v for _, v in series["serve.served.delta"].points())
    shed = sum(v for _, v in series["serve.shed.delta"].points())
    assert offered == served + shed == base.row["ops"]


def test_slo_document_shape_and_round_trip(pair):
    doc = slo_document(pair, {"target": "slo"})
    assert doc["schema"] == SLO_SCHEMA == COMPARE_SLO_SCHEMA
    assert [r["workload"] for r in doc["results"]] == ["serve", "serve-fair"]
    for row in doc["results"]:
        assert {"alerts_total", "fast_burn_alerts", "bad_events",
                "max_burn", "slos"} <= set(row)
        for slo in row["slos"]:
            assert {"spec", "rules", "good", "bad", "alerts"} <= set(slo)
    assert json.loads(json.dumps(doc)) == doc


def test_documents_are_deterministic():
    """Same config + seed -> byte-identical slo and timeseries exports."""
    tiny = SloConfig(
        scenario="serve",
        interval_ms=2.0,
        serve=ServeConfig(
            num_shards=2, num_tenants=3, arrival_rate=60_000.0,
            duration_s=0.03, window_ms=10.0,
        ),
    )
    first = run_slo(tiny)
    second = run_slo(tiny)
    assert json.dumps(slo_document(first), sort_keys=True) == json.dumps(
        slo_document(second), sort_keys=True
    )
    for a, b in zip(first, second):
        assert json.dumps(a.telemetry.sampler.document(), sort_keys=True) == \
            json.dumps(b.telemetry.sampler.document(), sort_keys=True)


def test_write_json_files(tmp_path, pair):
    slo_path = tmp_path / "slo.json"
    doc = write_slo_json(str(slo_path), pair, {"target": "slo"})
    assert json.loads(slo_path.read_text()) == doc
    ts_path = tmp_path / "timeseries-serve.json"
    ts_doc = write_timeseries_json(str(ts_path), pair[0], {"w": "serve"})
    on_disk = json.loads(ts_path.read_text())
    assert on_disk == ts_doc
    assert on_disk["schema"] == "repro.timeseries/1"
    assert on_disk["series"]["serve.offered.delta"]["points"]


def test_dashboard_renders_lanes_and_alert_markers(pair):
    text = render_dashboard(pair[0])
    assert "flight recorder" in text
    assert "slo.latency.burn" in text
    assert "!" in text  # alert overlay on the burn lanes
    assert "fired @54.0 ms" in text
    # every series gets exactly one lane
    lanes = [l for l in text.splitlines() if re.search(r"\|.*\|$", l)]
    assert len(lanes) >= len(pair[0].telemetry.sampler.series)
    full = render_slo(pair)
    assert "alert discrimination: PASS" in full


def test_compare_gates_alert_counts(pair):
    doc = slo_document(pair)
    same = compare_documents(doc, copy.deepcopy(doc))
    assert same.passed
    assert {d.metric for d in same.deltas} == {m.name for m in SLO_METRICS}
    # a new alert on a previously silent row fails the gate exactly
    noisy = copy.deepcopy(doc)
    noisy["results"][1]["alerts_total"] = 1
    noisy["results"][1]["fast_burn_alerts"] = 1
    report = compare_documents(doc, noisy)
    assert not report.passed
    regressed = {d.metric for d in report.regressions}
    assert "alerts_total" in regressed and "fast_burn_alerts" in regressed


def test_report_payload_is_machine_readable(pair):
    doc = slo_document(pair)
    noisy = copy.deepcopy(doc)
    noisy["results"][1]["alerts_total"] = 3
    report = compare_documents(doc, noisy)
    payload = report_payload(report)
    assert payload["schema"] == "repro.compare/1"
    assert payload["passed"] is False
    assert payload["regression_count"] == len(report.regressions)
    flagged = [d for d in payload["deltas"] if d["regressed"]]
    assert flagged and flagged[0]["metric"] == "alerts_total"
    assert json.loads(json.dumps(payload)) == payload


def test_soak_scenario_wires_store_probes():
    config = SloConfig(
        scenario="soak",
        interval_ms=2.0,
        soak=SoakConfig(arrival_rate=40_000.0, duration_s=0.05,
                        window_ms=10.0),
    )
    results = run_slo(config)
    assert [r.workload for r in results] == ["soak", "soak-tuned"]
    base, tuned = results
    series = base.telemetry.sampler.series
    assert "soak.put_ns.ops" in series
    assert "db.pressure" in series
    assert "db.debt_bytes" in series
    assert "slo.latency.burn" in series
    # the tuned twin runs with a rate limiter -> its token level appears
    assert "db.ratelimit_tokens" in tuned.telemetry.sampler.series
    # attaching telemetry must not change the soak outcome either
    from repro.bench.soak import run_soak

    plain = run_soak(
        SoakConfig(arrival_rate=40_000.0, duration_s=0.05, window_ms=10.0)
    )
    a, b = plain.to_dict(), base.base.to_dict()
    a.pop("host", None), b.pop("host", None)
    assert a == b


def test_run_slo_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        run_slo(SloConfig(scenario="parade"))


def test_telemetry_rig_wires_once():
    rig = Telemetry(small_config())
    registry = rig.registry
    rig._start(registry)
    with pytest.raises(RuntimeError):
        rig._start(registry)
