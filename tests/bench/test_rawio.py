"""Unit tests for the Figure 2a raw-I/O study."""

import pytest

from repro.bench.rawio import run_fig2a, run_rawio
from repro.sim.latency import GIB, MIB


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        run_rawio("mmap")


def test_async_is_page_cache_speed():
    result = run_rawio("async", total_bytes=256 * MIB)
    # ~5 GB/s memcpy: 256 MB in ~0.05 s
    assert result.seconds < 0.2


def test_direct_is_device_speed():
    result = run_rawio("direct", total_bytes=256 * MIB)
    # ~500 MB/s: 256 MB in ~0.5 s
    assert 0.3 < result.seconds < 1.0


def test_sync_slowest():
    async_r = run_rawio("async", total_bytes=128 * MIB)
    direct_r = run_rawio("direct", total_bytes=128 * MIB)
    sync_r = run_rawio("sync", total_bytes=128 * MIB)
    assert async_r.seconds < direct_r.seconds < sync_r.seconds


def test_times_scale_with_size():
    small = run_rawio("sync", total_bytes=128 * MIB)
    large = run_rawio("sync", total_bytes=256 * MIB)
    assert large.seconds == pytest.approx(2 * small.seconds, rel=0.15)


def test_paper_anchor_ratios():
    """The full-size run reproduces the paper's 9.5x and 13x ratios."""
    results = run_fig2a(sizes=[1 * GIB])
    async_s = results["async"][GIB].seconds
    direct_s = results["direct"][GIB].seconds
    sync_s = results["sync"][GIB].seconds
    assert 7 < direct_s / async_s < 13  # paper: 9.5x
    assert 10 < sync_s / async_s < 18  # paper: 13.0x
