"""Unit tests for the YCSB workload generator and suite runner."""

import pytest

from repro.bench.harness import ScaledConfig
from repro.bench.ycsb import PAPER_ORDER, YCSBWorkload, run_ycsb_suite, ycsb_key


def make(name, records=200, ops=300, seed=1):
    return YCSBWorkload(
        name, record_count=records, operation_count=ops, value_size=64, seed=seed
    )


def test_key_format():
    assert ycsb_key(7) == b"user000000000007"


def test_load_phase_generates_inserts():
    workload = make("load-a", records=150)
    ops = workload.operations()
    assert len(ops) == 150


def test_run_phase_generates_operation_count():
    for name in ("a", "b", "c", "d", "e", "f"):
        assert len(make(name).operations()) == 300


def test_paper_order_is_papers():
    assert PAPER_ORDER == ["load-a", "a", "b", "c", "f", "d", "load-e", "e"]


def test_mix_fractions_roughly_respected():
    """Workload A should be ~half updates, half reads (statistically)."""
    config = ScaledConfig(scale=10_000)
    stack, db = config.build_store("leveldb")
    workload = make("load-a", records=400)
    t = 0
    for op in workload.operations():
        t = op(db, t)
    puts_after_load = db.stats.puts
    workload = make("a", records=400, ops=600, seed=3)
    for op in workload.operations():
        t = op(db, t)
    updates = db.stats.puts - puts_after_load
    reads = db.stats.gets
    assert 0.35 < updates / 600 < 0.65
    assert 0.35 < reads / 600 < 0.65


def test_workload_e_scans():
    config = ScaledConfig(scale=10_000)
    stack, db = config.build_store("leveldb")
    t = 0
    for op in make("load-a", records=300).operations():
        t = op(db, t)
    for op in make("e", records=300, ops=100, seed=4).operations():
        t = op(db, t)
    assert db.stats.scans > 80  # 95% scans


def test_workload_d_inserts_extend_keyspace():
    workload = make("d", records=100, ops=400, seed=5)
    ops = workload.operations()
    assert workload.inserted_count > 100  # some inserts happened
    config = ScaledConfig(scale=10_000)
    stack, db = config.build_store("leveldb")
    t = 0
    for op in make("load-a", records=100, seed=5).operations():
        t = op(db, t)
    for op in ops:
        t = op(db, t)  # must not crash reading fresh keys


def test_inserted_count_is_the_public_record_contract():
    """Load phases report what they inserted; run phases grow with D/E
    inserts — the suite runner chains phases off this property."""
    load = make("load-a", records=150)
    load.operations()
    assert load.inserted_count == 150
    run = make("d", records=100, ops=400, seed=5)
    run.operations()
    assert run.inserted_count > 100
    read_only = make("c", records=120, ops=50)
    read_only.operations()
    assert read_only.inserted_count == 120


def test_suite_runs_all_phases():
    config = ScaledConfig(scale=50_000, value_size=256)
    results = run_ycsb_suite(
        "noblsm", config, record_count=300, operation_count=200
    )
    assert list(results) == PAPER_ORDER
    for phase, result in results.items():
        assert result.num_ops > 0
        assert result.virtual_ns >= 0


def test_suite_load_phases_reset_store():
    config = ScaledConfig(scale=50_000, value_size=256)
    results = run_ycsb_suite(
        "leveldb",
        config,
        workloads=["load-a", "a", "load-e"],
        record_count=200,
        operation_count=100,
    )
    # both loads insert the same number of records from scratch
    assert results["load-a"].num_ops == results["load-e"].num_ops


def test_multithreaded_suite_runs():
    config = ScaledConfig(scale=50_000, value_size=256, threads=4)
    results = run_ycsb_suite(
        "leveldb",
        config,
        workloads=["load-a", "c"],
        record_count=300,
        operation_count=200,
    )
    assert results["c"].num_ops == 200
