"""The soak target: windowed stability metrics, schema, and its gate.

Everything here is virtual-time deterministic, so the tests assert
exact run-to-run equality and real tuned-vs-untuned improvement, not
just structure.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.compare import SOAK_METRICS, compare_documents
from repro.bench.soak import (
    SOAK_SCHEMA,
    SoakConfig,
    render_soak,
    render_timeline,
    run_soak,
    run_soak_pair,
    soak_document,
    tuned_variant,
    write_soak_json,
)

#: small enough for the suite, long enough to reach the spike regime
SMALL = SoakConfig(duration_s=0.15, arrival_rate=40_000.0, window_ms=25.0)


@pytest.fixture(scope="module")
def pair():
    return run_soak_pair(replace(SMALL, duration_s=0.3))


def test_run_soak_is_deterministic():
    a = run_soak(SMALL).to_dict()
    b = run_soak(SMALL).to_dict()
    a.pop("host", None)
    b.pop("host", None)
    assert a == b


def test_result_shape_and_window_accounting():
    result = run_soak(SMALL)
    assert result.workload == "soak"
    assert result.store == "noblsm"
    assert result.num_ops > 0
    assert result.windows, "no latency windows recorded"
    assert sum(w.ops for w in result.windows) == result.num_ops
    assert result.windowed_p999_us >= result.median_p999_us > 0
    assert result.p999_ratio >= 1.0
    # stall spans were attributed: the cause totals tile the unified
    # blocked time exactly, and the per-window view never exceeds them
    # (a stall beginning after the last arrival window is only in the
    # totals)
    assert sum(result.stall_cause_ns.values()) == result.blocked_ns
    per_window = sum(sum(w.stall_ns.values()) for w in result.windows)
    assert per_window <= result.blocked_ns
    assert result.blocked_ns == result.stall_ns + result.slowdown_ns


def test_tuned_variant_enables_the_stability_machinery():
    tuned = tuned_variant(SMALL)
    assert tuned.tuned and tuned.variant == "soak-tuned"
    assert not SMALL.tuned and SMALL.variant == "soak"
    ingest = int(SMALL.arrival_rate * (SMALL.key_size + SMALL.value_size))
    assert tuned.compaction_rate_bytes_per_sec == 14 * ingest
    assert tuned.compaction_rate_burst_bytes == ingest // 10
    assert tuned.compaction_rate_fair and tuned.dynamic_slowdown
    # same workload, same seed: only the tuning knobs differ
    assert (tuned.seed, tuned.arrival_rate, tuned.duration_s) == (
        SMALL.seed,
        SMALL.arrival_rate,
        SMALL.duration_s,
    )


def test_tuned_strictly_improves_stability(pair):
    base, tuned = pair
    assert base.workload == "soak" and tuned.workload == "soak-tuned"
    # the PR's acceptance bar: both gated improvement metrics, strictly
    assert tuned.p999_ratio < base.p999_ratio
    assert tuned.max_stall_ns < base.max_stall_ns
    assert tuned.windowed_p999_us < base.windowed_p999_us
    assert tuned.blocked_ns < base.blocked_ns


def test_soak_document_schema(pair):
    doc = soak_document(pair, meta={"target": "soak"})
    assert doc["schema"] == SOAK_SCHEMA
    assert doc["meta"]["target"] == "soak"
    assert {r["workload"] for r in doc["results"]} == {"soak", "soak-tuned"}
    row = doc["results"][0]
    for key in (
        "store",
        "ops",
        "value_size",
        "windowed_p999_us",
        "p999_ratio",
        "max_stall_ns",
        "blocked_ns",
        "l0_stop_abandoned",
        "windows",
    ):
        assert key in row, key
    assert row["extras"]["num_channels"] == 1
    assert row["extras"]["background_threads"] == 1


def test_write_soak_json_roundtrip(pair, tmp_path):
    path = tmp_path / "soak.json"
    doc = write_soak_json(str(path), pair)
    assert json.loads(path.read_text()) == doc


def test_compare_gate_accepts_soak_documents(pair):
    doc = soak_document(pair)
    report = compare_documents(doc, doc)
    assert report.passed
    # the soak metric set is what actually ran
    gated = {d.metric for d in report.deltas}
    assert gated == {m.name for m in SOAK_METRICS}


def test_compare_gate_flags_stability_regressions(pair):
    base_doc = soak_document(pair)
    cur_doc = json.loads(json.dumps(base_doc))
    for row in cur_doc["results"]:
        row["windowed_p999_us"] = row["windowed_p999_us"] * 10 + 1000
        row["max_stall_ns"] = row["max_stall_ns"] * 10 + 10_000_000
    report = compare_documents(base_doc, cur_doc)
    assert not report.passed
    regressed = {d.metric for d in report.regressions}
    assert "windowed_p999_us" in regressed
    assert "max_stall_ns" in regressed


def test_compare_gate_rejects_schema_mismatch(pair):
    bench_doc = {"schema": "repro.bench/1", "results": []}
    with pytest.raises(ValueError, match="schema mismatch"):
        compare_documents(bench_doc, soak_document(pair))


def test_render_smoke(pair):
    text = render_soak(pair)
    assert "stability: tuned vs untuned" in text
    assert "windowed p99.9" in text
    timeline = render_timeline(pair[0])
    assert "soak" in timeline and "#" in timeline
