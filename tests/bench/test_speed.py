"""The ``speed`` target: wall-clock simulator throughput + its gate.

Wall-clock numbers are host-dependent, so these tests assert structure
and gating semantics (schema, warm-up discard, higher-is-better
comparison), never absolute throughput.
"""

import json

import pytest

from repro.bench.compare import compare_documents
from repro.bench.speed import (
    SPEED_SCHEMA,
    render_speed,
    run_speed,
    speed_document,
    write_speed_json,
)

SMALL = dict(scale=50000.0, repeats=2, warmup=1)


@pytest.fixture(scope="module")
def result():
    return run_speed(**SMALL)


def test_run_speed_discards_warmup(result):
    assert len(result.wall_seconds) == SMALL["repeats"]
    assert len(result.warmup_seconds) == SMALL["warmup"]
    assert result.ops_per_sec > 0
    assert result.best_ops_per_sec >= result.ops_per_sec
    assert result.num_ops >= 200


def test_speed_document_schema(result):
    doc = speed_document([result], meta={"target": "speed"})
    assert doc["schema"] == SPEED_SCHEMA
    assert doc["meta"]["target"] == "speed"
    assert "python" in doc["meta"] and "platform" in doc["meta"]
    row = doc["results"][0]
    assert row["store"] == "noblsm"
    assert row["workload"] == "fillrandom"
    assert row["ops_per_sec"] > 0
    assert row["extras"] == {"num_channels": 1, "background_threads": 1}


def test_write_speed_json_roundtrip(result, tmp_path):
    path = tmp_path / "speed.json"
    doc = write_speed_json(str(path), [result])
    assert json.loads(path.read_text()) == doc


def test_render_speed_mentions_throughput(result):
    text = render_speed([result])
    assert "ops/sec" in text
    assert "warm-up discarded" in text


def test_speed_gate_passes_against_itself(result):
    doc = speed_document([result])
    report = compare_documents(doc, doc)
    assert report.passed
    assert [d.metric for d in report.deltas] == ["ops_per_sec"]


def test_speed_gate_is_higher_is_better(result):
    base = speed_document([result])
    slow = json.loads(json.dumps(base))
    slow["results"][0]["ops_per_sec"] = base["results"][0]["ops_per_sec"] / 4
    # current 4x slower than baseline -> regression
    report = compare_documents(base, slow)
    assert not report.passed
    # current 4x faster than baseline -> improvement, never a regression
    report = compare_documents(slow, base)
    assert report.passed


def test_speed_gate_tolerates_generous_wobble(result):
    """Half-speed is the default cliff: 40% slower must still pass."""
    base = speed_document([result])
    wobble = json.loads(json.dumps(base))
    wobble["results"][0]["ops_per_sec"] = (
        base["results"][0]["ops_per_sec"] * 0.6
    )
    assert compare_documents(base, wobble).passed


def test_speed_and_bench_schemas_do_not_mix(result):
    speed = speed_document([result])
    bench = {"schema": "repro.bench/1", "meta": {}, "results": []}
    with pytest.raises(ValueError, match="schema mismatch"):
        compare_documents(bench, speed)


def test_run_speed_rejects_bad_protocol():
    with pytest.raises(ValueError):
        run_speed(repeats=0)
    with pytest.raises(ValueError):
        run_speed(warmup=-1)


def test_cli_speed_target(tmp_path, capsys):
    from repro.bench.cli import main

    code = main(
        [
            "speed",
            "--scale",
            "50000",
            "--repeats",
            "1",
            "--warmup",
            "0",
            "--json",
            str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "ops/sec" in out
    doc = json.loads((tmp_path / "speed.json").read_text())
    assert doc["schema"] == SPEED_SCHEMA
