"""Unit tests for the benchmark harness and workload generators."""

import pytest

from repro.bench.harness import BenchResult, ScaledConfig, ThreadedDriver
from repro.bench.report import format_table, series_by_store
from repro.bench.workloads import (
    ValueGenerator,
    fillrandom_indices,
    make_key,
    readrandom_indices,
)
from repro.lsm.db import DB


def test_scaled_config_defaults():
    config = ScaledConfig(scale=1000)
    assert config.num_ops == 10_000
    options = config.build_options()
    assert options.write_buffer_size == 64 * 1024 * 1024 // 1000
    assert options.block_size == 4096  # format size does not scale


def test_scaled_config_rejects_tiny_scale():
    with pytest.raises(ValueError):
        ScaledConfig(scale=0.5)


def test_scaled_stack_compresses_time():
    small = ScaledConfig(scale=100).build_stack()
    large = ScaledConfig(scale=10_000).build_stack()
    assert small.ssd.profile.flush_ns > large.ssd.profile.flush_ns
    assert (
        small.journal.config.commit_interval_ns
        > large.journal.config.commit_interval_ns
    )


def test_pagecache_covers_dataset():
    config = ScaledConfig(scale=10_000, value_size=1024)
    stack = config.build_stack()
    assert stack.pagecache.capacity_bytes >= 30 * config.dataset_bytes()


def test_build_store_by_name():
    config = ScaledConfig(scale=5000)
    stack, db = config.build_store("noblsm")
    assert db.store_name == "noblsm"
    assert db.fs is stack.fs


def test_bench_result_metrics():
    result = BenchResult(
        store="x",
        workload="w",
        num_ops=1000,
        value_size=1024,
        virtual_ns=2_000_000,
        sync_calls=5,
        bytes_synced=2**30,
        device_bytes_written=0,
        device_bytes_read=0,
        stall_ns=0,
        minor_compactions=0,
        major_compactions=0,
    )
    assert result.us_per_op == pytest.approx(2.0)
    assert result.gib_synced == pytest.approx(1.0)
    assert result.row()["store"] == "x"


def test_make_key_width():
    assert make_key(7) == b"0000000000000007"
    assert len(make_key(123, key_size=8)) == 8


def test_value_generator_size_and_uniqueness():
    gen = ValueGenerator(100)
    first = gen.next()
    second = gen.next()
    assert len(first) == len(second) == 100
    assert first != second


def test_value_generator_rejects_bad_size():
    with pytest.raises(ValueError):
        ValueGenerator(0)


def test_fillrandom_indices_deterministic():
    a = list(fillrandom_indices(100, seed=9))
    b = list(fillrandom_indices(100, seed=9))
    assert a == b
    assert all(0 <= i < 100 for i in a)


def test_readrandom_indices_in_keyspace():
    samples = list(readrandom_indices(200, key_space=50, seed=1))
    assert len(samples) == 200
    assert all(0 <= i < 50 for i in samples)


def test_threaded_driver_min_clock_first():
    config = ScaledConfig(scale=10_000)
    stack, db = config.build_store("leveldb")
    driver = ThreadedDriver(db, threads=4)

    def op(value):
        def run(store: DB, at: int) -> int:
            return store.put(f"k{value}".encode(), b"v", at)

        return run

    end = driver.run([op(i) for i in range(40)])
    assert end > 0
    # all threads advanced
    assert all(clock > 0 for clock in driver.clocks)


def test_threaded_driver_breaks_clock_ties_deterministically():
    # With every clock equal the driver must always pick the
    # lowest-indexed thread — ``min`` on equal keys — so a run is
    # reproducible regardless of how many threads happen to be tied.
    driver = ThreadedDriver(db=None, threads=3)
    picked = []

    def op(store, at):
        # All clocks start equal (0) and each op leaves its thread's
        # clock equal to the others again, keeping every step a tie.
        picked.append(driver.clocks.index(min(driver.clocks)))
        return at + 10

    driver.run([op] * 6)
    # ties resolve lowest-index first, round after round
    assert picked == [0, 1, 2, 0, 1, 2]
    assert driver.clocks == [20, 20, 20]


def test_threaded_driver_returns_max_clock_under_mixed_latency():
    # Two threads, three ops with latencies 5, 3, 4:
    #   op0 -> thread 0 (clock 5), op1 -> thread 1 (clock 3),
    #   op2 -> thread 1 again (lowest clock), clock 3 + 4 = 7.
    # run() must report when the *slowest* thread finished: max = 7,
    # not the last completion it happened to compute.
    driver = ThreadedDriver(db=None, threads=2)
    latencies = iter([5, 3, 4])

    def op(store, at):
        return at + next(latencies)

    end = driver.run([op] * 3)
    assert driver.clocks == [5, 7]
    assert end == 7


def test_threaded_driver_rejects_zero_threads():
    config = ScaledConfig(scale=10_000)
    _, db = config.build_store("leveldb")
    with pytest.raises(ValueError):
        ThreadedDriver(db, threads=0)


def test_format_table_basic():
    text = format_table("Title", ["a", "b"], [["x", 1], ["yy", 2.5]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "a" in lines[1] and "b" in lines[1]
    assert "2.500" in text


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table("T", ["a", "b"], [["only-one"]])


def test_series_by_store():
    text = series_by_store(
        {"noblsm": {256: 1.0, 1024: 2.0}},
        [256, 1024],
        "value size",
        "Figure X",
    )
    assert "noblsm" in text
    assert "Figure X" in text
