"""Unit tests for the db_bench workload runners (tiny scales)."""

import pytest

from repro.bench.db_bench import (
    WORKLOADS,
    run_deleterandom,
    run_fillrandom,
    run_fillseq,
    run_matrix,
    run_overwrite,
    run_readmissing,
    run_readrandom,
    run_readseq,
    run_seekrandom,
    run_workload,
)
from repro.bench.harness import ScaledConfig

SCALE = 20_000  # 500 ops per run: fast unit-test scale


@pytest.fixture()
def config():
    return ScaledConfig(scale=SCALE, value_size=256)


def test_fillrandom_reports_ops(config):
    result, stack, db = run_fillrandom("leveldb", config)
    assert result.num_ops == config.num_ops
    assert result.us_per_op > 0
    assert db.stats.puts == config.num_ops


def test_fillseq_writes_in_order(config):
    result, stack, db = run_fillseq("leveldb", config)
    assert result.workload == "fillseq"
    # sequential fill produces non-overlapping tables: no major churn
    assert db.stats.major_compactions <= db.stats.minor_compactions


def test_overwrite_resets_counters(config):
    result, stack, db = run_overwrite("noblsm", config)
    assert result.workload == "overwrite"
    # counters were reset between fill and measure
    assert result.sync_calls <= stack.sync_stats.sync_calls + 1


def test_readseq_counts_every_pair(config):
    result, _, _ = run_readseq("leveldb", config)
    # fillrandom over num_ops keys: unique count < num_ops
    assert 0 < result.num_ops <= config.num_ops


def test_readrandom_runs(config):
    result, _, _ = run_readrandom("leveldb", config)
    assert result.num_ops == config.num_ops


def test_readmissing_finds_nothing(config):
    result, stack, db = run_readmissing("leveldb", config)
    assert result.workload == "readmissing"
    assert db.stats.gets >= config.num_ops


def test_readmissing_cheaper_than_readrandom(config):
    """Bloom filters make missing-key lookups cheap."""
    hit, _, _ = run_readrandom("leveldb", config)
    miss, _, _ = run_readmissing("leveldb", config)
    assert miss.us_per_op <= hit.us_per_op * 1.5


def test_seekrandom_runs(config):
    result, _, db = run_seekrandom("leveldb", config)
    assert db.stats.scans == result.num_ops


def test_deleterandom_runs(config):
    result, _, db = run_deleterandom("leveldb", config)
    assert db.stats.deletes == config.num_ops


def test_run_workload_by_name(config):
    result = run_workload("fillrandom", "noblsm", config)
    assert result.store == "noblsm"
    with pytest.raises(ValueError):
        run_workload("nosuch", "noblsm", config)


def test_workload_registry_complete():
    assert set(WORKLOADS) == {
        "fillrandom",
        "overwrite",
        "readseq",
        "readrandom",
        "fillseq",
        "readmissing",
        "seekrandom",
        "deleterandom",
    }


def test_run_matrix_shares_fill(config):
    results = run_matrix(
        ["leveldb"], ["fillrandom", "readseq", "readrandom"], config
    )
    assert ("leveldb", "readseq") in results
    assert ("leveldb", "readrandom") in results
    assert results[("leveldb", "fillrandom")].us_per_op > 0
