"""Determinism golden test: same seed + config => byte-identical JSON.

The whole simulation is virtual-time deterministic, including the
multi-queue device and the parallel compaction scheduler: two in-process
runs of the same sweep must serialize to *byte-identical*
``repro.bench/1`` documents. This is the lock that keeps the parallel
paths honest — any hidden host-order or hash-order dependence shows up
here as a diff.
"""

import json

from repro.bench.harness import ScaledConfig
from repro.bench.db_bench import run_fillrandom
from repro.bench.parallelism import run_parallelism, sweep_points
from repro.bench.report import RESULTS_SCHEMA, results_document


def dump(results, meta):
    return json.dumps(
        results_document(results, meta), indent=2, sort_keys=True
    )


def test_sweep_points_are_deterministic():
    assert sweep_points([4, 1], [2, 1]) == [
        (1, 1),
        (1, 2),
        (4, 1),
        (4, 2),
    ]
    assert sweep_points([4], [2])[0] == (1, 1)  # baseline injected


def test_parallelism_sweep_json_is_byte_identical():
    kwargs = dict(
        store="noblsm",
        scale=20000.0,
        channels=(1, 4),
        threads=(1, 2),
        seed=321,
    )
    meta = {"target": "parallelism", "seed": 321}
    first = dump(run_parallelism(**kwargs), meta)
    second = dump(run_parallelism(**kwargs), meta)
    assert first == second


def test_parallelism_document_schema():
    results = run_parallelism(
        store="noblsm", scale=20000.0, channels=(4,), threads=(2,)
    )
    doc = results_document(results, meta={"target": "parallelism"})
    assert doc["schema"] == RESULTS_SCHEMA
    for row in doc["results"]:
        extras = row["extras"]
        assert {"num_channels", "background_threads", "bg_stall_ns",
                "speedup"} <= set(extras)
        assert "put" in row["latency_us"]


def test_fillrandom_document_byte_identical_serial_and_parallel():
    """Full ``repro.bench/1`` fillrandom documents are byte-identical
    across runs, at both 1 channel x 1 thread and 4 channels x 2
    threads — the acceptance lock for host-side hot-path work: any
    optimisation that leaks into virtual time diffs here."""
    for channels, threads in ((1, 1), (4, 2)):
        def run():
            config = ScaledConfig(
                scale=20000.0,
                observe=True,
                num_channels=channels,
                background_threads=threads,
                seed=1234,
            )
            result, _, _ = run_fillrandom("noblsm", config)
            return dump(
                [result],
                {"target": "fillrandom", "ch": channels, "thr": threads},
            )

        first, second = run(), run()
        assert first == second, f"diverged at {channels}ch x {threads}thr"


def test_single_run_repeatable_across_instances():
    """One observed parallel fillrandom, run twice, bit-for-bit equal —
    down to the full stats record and latency percentiles."""
    def run():
        config = ScaledConfig(
            scale=20000.0,
            observe=True,
            num_channels=4,
            background_threads=2,
            seed=77,
        )
        result, _, _ = run_fillrandom("noblsm", config)
        return result

    a, b = run(), run()
    assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
        b.to_dict(), sort_keys=True
    )


def test_kv_fillrandom_document_byte_identical():
    """The noblsm-kv ``repro.bench/1`` fillrandom document (separation
    on) is bit-for-bit repeatable, including vLog-driven timing."""
    def run():
        config = ScaledConfig(
            scale=20000.0,
            observe=True,
            seed=1234,
            value_threshold=64,
        )
        result, _, _ = run_fillrandom("noblsm-kv", config)
        return dump([result], {"target": "fillrandom", "store": "noblsm-kv"})

    first, second = run(), run()
    assert first == second


def test_kv_threshold_off_fillrandom_matches_noblsm_golden():
    """The seed configuration (threshold off) of noblsm-kv produces a
    fillrandom document byte-identical to plain noblsm's — same virtual
    timings, same stats record — modulo the store name."""
    def run(store):
        config = ScaledConfig(scale=20000.0, observe=True, seed=1234)
        result, _, _ = run_fillrandom(store, config)
        return dump([result], {"target": "fillrandom"})

    kv = run("noblsm-kv").replace('"noblsm-kv"', '"noblsm"')
    assert kv == run("noblsm")


def test_amplification_sweep_byte_identical():
    """The ``repro.amplification/1`` document — vLog accounting included
    — serializes bit-for-bit across runs."""
    from repro.bench.amplification import (
        amplification_document,
        run_amplification_sweep,
    )

    def run():
        rows = run_amplification_sweep(
            value_sizes=(1024,), scale=2000.0, num_ops=2000, seed=9
        )
        return json.dumps(
            amplification_document(rows, {"target": "amplification"}),
            indent=2,
            sort_keys=True,
        )

    first, second = run(), run()
    assert first == second


def test_kv_threshold_off_doc_matches_noblsm_golden():
    """noblsm-kv with separation off is byte-identical to plain noblsm:
    the whole amplification row — device bytes, compaction bytes, live
    bytes, probe counts — must match after renaming the store field."""
    from repro.bench.amplification import run_amplification_sweep

    rows = run_amplification_sweep(
        stores=("noblsm", "noblsm-kv"),
        value_sizes=(1024,),
        scale=2000.0,
        num_ops=2000,
        value_threshold=None,
        seed=9,
    )
    noblsm = [r for r in rows if r["store"] == "noblsm"]
    kv = [r for r in rows if r["store"] == "noblsm-kv"]
    assert len(noblsm) == len(kv) == 1
    renamed = json.dumps(kv[0], sort_keys=True).replace(
        '"store": "noblsm-kv"', '"store": "noblsm"'
    )
    assert renamed == json.dumps(noblsm[0], sort_keys=True)


def test_scaled_config_wires_parallelism_knobs():
    config = ScaledConfig(scale=1000.0, num_channels=4, background_threads=2)
    assert config.build_stack().ssd.num_channels == 4
    assert config.build_options().background_threads == 2


def test_scaled_config_defaults_stay_serial():
    config = ScaledConfig(scale=1000.0)
    stack = config.build_stack()
    assert stack.ssd.num_channels == 1
    assert "channel_busy_ns" not in stack.ssd.stats.snapshot()
    assert config.build_options().background_threads == 1
