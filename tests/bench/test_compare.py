"""The perf-regression gate: compare_documents and the CLI subcommand."""

import copy
import json

import pytest

from repro.bench import cli
from repro.bench.compare import (
    DEFAULT_METRICS,
    compare_documents,
    parse_thresholds,
    render_compare,
    row_key,
)


def make_doc(us_per_op=10.0, put_p99=40.0, stall_ns=0, syncs=100,
             device_bytes=1_000_000, rows=1):
    results = []
    for i in range(rows):
        results.append(
            {
                "store": "noblsm",
                "workload": "fillrandom",
                "value_size": 100,
                "ops": 5000,
                "us_per_op": us_per_op,
                "stall_ns": stall_ns,
                "syncs": syncs,
                "device_bytes_written": device_bytes,
                "latency_us": {"put": {"p99": put_p99}},
                "extras": {"num_channels": 1 + i, "background_threads": 1},
            }
        )
    return {"schema": "repro.bench/1", "meta": {"scale": 2000.0},
            "results": results}


def test_identical_documents_pass():
    doc = make_doc()
    report = compare_documents(doc, copy.deepcopy(doc))
    assert report.passed
    assert not report.regressions
    assert "PASS" in render_compare(report)


def test_ten_percent_throughput_regression_fails():
    base = make_doc(us_per_op=10.0)
    cur = make_doc(us_per_op=11.5)  # +15% > 10% threshold + 0.01 floor
    report = compare_documents(base, cur)
    assert not report.passed
    assert [d.metric for d in report.regressions] == ["us_per_op"]
    assert "REGRESSED" in render_compare(report)


def test_floor_absorbs_tiny_absolute_wobble():
    # syncs 2 -> 4 is +100% relative but within the absolute floor of 2
    base = make_doc(syncs=2)
    cur = make_doc(syncs=4)
    report = compare_documents(base, cur)
    assert report.passed


def test_p99_regression_fails():
    base = make_doc(put_p99=40.0)
    cur = make_doc(put_p99=60.0)  # +50% > 25% + 5us floor
    report = compare_documents(base, cur)
    assert any(d.metric == "put_p99_us" for d in report.regressions)


def test_missing_row_fails():
    base = make_doc(rows=2)
    cur = make_doc(rows=1)
    report = compare_documents(base, cur)
    assert not report.passed
    assert len(report.missing_rows) == 1
    assert "MISSING" in render_compare(report)


def test_new_rows_are_not_gated():
    base = make_doc(rows=1)
    cur = make_doc(rows=2)
    report = compare_documents(base, cur)
    assert report.passed
    assert len(report.new_rows) == 1


def test_threshold_override_loosens_gate():
    base = make_doc(us_per_op=10.0)
    cur = make_doc(us_per_op=11.5)
    assert not compare_documents(base, cur).passed
    report = compare_documents(base, cur, thresholds={"us_per_op": 0.25})
    assert report.passed


def test_improvements_never_regress():
    base = make_doc(us_per_op=10.0, put_p99=40.0, syncs=100)
    cur = make_doc(us_per_op=5.0, put_p99=20.0, syncs=50)
    report = compare_documents(base, cur)
    assert report.passed
    assert all(d.ratio <= 1.0 for d in report.deltas)


def test_parse_thresholds():
    assert parse_thresholds(None) is None
    assert parse_thresholds("") is None
    assert parse_thresholds("us_per_op=0.2") == {"us_per_op": 0.2}
    assert parse_thresholds("a=0.1, b=0.5") == {"a": 0.1, "b": 0.5}
    with pytest.raises(ValueError):
        parse_thresholds("us_per_op")


def test_schema_mismatch_rejected():
    with pytest.raises(ValueError):
        compare_documents({"schema": "other/1", "results": []}, make_doc())
    with pytest.raises(ValueError):
        compare_documents(make_doc(), {"schema": "repro.bench/1"})


def test_row_key_includes_parallelism_extras():
    doc = make_doc(rows=2)
    keys = {row_key(r) for r in doc["results"]}
    assert len(keys) == 2  # rows differ only in num_channels


def test_default_metrics_all_have_floors():
    assert all(m.floor > 0 for m in DEFAULT_METRICS)


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------


def write_doc(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


def test_cli_compare_identical_exits_zero(tmp_path, capsys):
    base = write_doc(tmp_path / "base.json", make_doc())
    cur = write_doc(tmp_path / "cur.json", make_doc())
    assert cli.main(["compare", base, cur]) == 0
    assert "PASS" in capsys.readouterr().out


def test_cli_compare_regression_exits_nonzero(tmp_path, capsys):
    base = write_doc(tmp_path / "base.json", make_doc(us_per_op=10.0))
    cur = write_doc(tmp_path / "cur.json", make_doc(us_per_op=11.5))
    assert cli.main(["compare", base, cur]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_cli_compare_honours_threshold_override(tmp_path):
    base = write_doc(tmp_path / "base.json", make_doc(us_per_op=10.0))
    cur = write_doc(tmp_path / "cur.json", make_doc(us_per_op=11.5))
    assert cli.main(
        ["compare", base, cur, "--thresholds", "us_per_op=0.25"]
    ) == 0


def test_cli_compare_needs_two_paths(capsys):
    assert cli.main(["compare"]) == 2
    assert cli.main(["compare", "one.json"]) == 2
