"""Unit tests for the figures entry points and the CLI (tiny scales)."""

import pytest

from repro.bench import figures
from repro.bench.cli import main


def test_fig4_subset_runs_fast():
    series = figures.fig4(
        "fillrandom",
        stores=["leveldb", "noblsm"],
        value_sizes=[256],
        scale=20_000,
    )
    assert set(series) == {"leveldb", "noblsm"}
    assert 256 in series["noblsm"]
    assert series["noblsm"][256] > 0


def test_fig4_unknown_workload_rejected():
    with pytest.raises(KeyError):
        figures.fig4("scanrandom")


def test_table1_subset():
    rows = figures.table1(stores=["leveldb", "noblsm"], scale=20_000)
    assert rows["noblsm"][0] < rows["leveldb"][0]


def test_render_helpers_produce_tables():
    text = figures.render_fig4(
        "readseq", stores=["noblsm"], value_sizes=[256], scale=20_000
    )
    assert "Figure 4c" in text
    assert "noblsm" in text


def test_fig5_subset():
    series = figures.fig5(
        1, stores=["noblsm"], scale=50_000, workloads=["load-a", "c"]
    )
    assert "load-a" in series["noblsm"]
    assert "c" in series["noblsm"]


def test_cli_runs_target(capsys):
    exit_code = main(["fig4c", "--scale", "20000", "--stores", "noblsm"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Figure 4c" in out
    assert "noblsm" in out


def test_cli_rejects_unknown_target():
    with pytest.raises(SystemExit):
        main(["fig9"])


def test_describe_snapshot():
    from repro.bench.harness import ScaledConfig

    config = ScaledConfig(scale=10_000)
    _, db = config.build_store("noblsm")
    t = 0
    for i in range(300):
        t = db.put(f"key{i % 200:05d}".encode(), b"v" * 200, at=t)
    info = db.describe()
    assert info["store"] == "noblsm"
    assert info["stats"]["puts"] == 300
    assert info["levels"]  # something got flushed
