"""Unit tests for the amplification analysis (tiny scale)."""

import pytest

from repro.bench.amplification import measure_amplification
from repro.bench.harness import ScaledConfig


def small_config():
    return ScaledConfig(scale=10_000, value_size=512)


def test_report_fields_sane():
    report = measure_amplification("leveldb", small_config())
    assert report.user_bytes > 0
    assert report.logical_bytes <= report.user_bytes
    assert report.wa_compaction >= 1.0
    assert report.wa_device >= report.wa_compaction * 0.5
    assert report.ra_point >= 1.0
    assert report.space_amplification >= 0.5
    row = report.row()
    assert set(row) == {"wa_device", "wa_compaction", "ra_point", "space_amp"}


def test_noblsm_matches_leveldb_compaction_wa():
    leveldb = measure_amplification("leveldb", small_config())
    noblsm = measure_amplification("noblsm", small_config())
    assert noblsm.wa_compaction == pytest.approx(
        leveldb.wa_compaction, rel=0.35
    )


def test_table_get_restored_after_probe():
    from repro.lsm.sstable import Table

    before = Table.get
    measure_amplification("leveldb", small_config())
    assert Table.get is before  # monkeypatch cleaned up


def test_dbbench_cli_runs(capsys):
    from repro.bench.dbbench_cli import main

    exit_code = main(
        ["--store", "noblsm", "--benchmarks", "fillseq", "--scale", "20000"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fillseq" in out
    assert "micros/op" in out


def test_dbbench_cli_rejects_unknown_benchmark(capsys):
    from repro.bench.dbbench_cli import main

    exit_code = main(
        ["--store", "noblsm", "--benchmarks", "nosuch", "--scale", "20000"]
    )
    assert exit_code == 2
