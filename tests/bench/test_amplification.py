"""Unit tests for the amplification analysis (tiny scale)."""

import pytest

from repro.bench.amplification import measure_amplification
from repro.bench.harness import ScaledConfig


def small_config():
    return ScaledConfig(scale=10_000, value_size=512)


def test_report_fields_sane():
    report = measure_amplification("leveldb", small_config())
    assert report.user_bytes > 0
    assert report.logical_bytes <= report.user_bytes
    assert report.wa_compaction >= 1.0
    assert report.wa_device >= report.wa_compaction * 0.5
    assert report.ra_point >= 1.0
    assert report.space_amplification >= 0.5
    row = report.row()
    assert set(row) == {"wa_device", "wa_compaction", "ra_point", "space_amp"}


def test_noblsm_matches_leveldb_compaction_wa():
    leveldb = measure_amplification("leveldb", small_config())
    noblsm = measure_amplification("noblsm", small_config())
    assert noblsm.wa_compaction == pytest.approx(
        leveldb.wa_compaction, rel=0.35
    )


def test_table_get_restored_after_probe():
    from repro.lsm.sstable import Table

    before = Table.get
    measure_amplification("leveldb", small_config())
    assert Table.get is before  # monkeypatch cleaned up


def test_kv_sweep_reduces_write_amplification():
    """The separation claim at honest accounting: noblsm-kv must write
    strictly fewer bytes per user byte than noblsm at 4 KiB values,
    even with vLog appends counted into WA(compaction) and the full
    (garbage-included) vLog footprint counted into SA."""
    from repro.bench.amplification import run_amplification_sweep

    rows = run_amplification_sweep(
        value_sizes=(4096,), scale=2000.0, num_ops=2500
    )
    by_store = {row["store"]: row for row in rows}
    kv, plain = by_store["noblsm-kv"], by_store["noblsm"]
    assert kv["wa_device"] < plain["wa_device"]
    assert kv["wa_compaction"] < plain["wa_compaction"]
    assert kv["vlog_bytes"] > 0
    assert kv["vlog"]["vlog_appended_bytes"] > 0


def test_amplification_document_compares_cleanly():
    from repro.bench.amplification import (
        AMPLIFICATION_SCHEMA,
        amplification_document,
        run_amplification_sweep,
    )
    from repro.bench.compare import compare_documents

    rows = run_amplification_sweep(
        value_sizes=(1024,), scale=2000.0, num_ops=1500
    )
    doc = amplification_document(rows, {"target": "amplification"})
    assert doc["schema"] == AMPLIFICATION_SCHEMA
    report = compare_documents(doc, doc)
    assert report.passed
    gated = {d.metric for d in report.deltas}
    assert gated == {"wa_device", "wa_compaction", "ra_point", "space_amp"}


def test_render_amplification_lists_stores():
    from repro.bench.amplification import (
        render_amplification,
        run_amplification_sweep,
    )

    rows = run_amplification_sweep(
        value_sizes=(1024,), scale=2000.0, num_ops=1000
    )
    text = render_amplification(rows)
    assert "noblsm" in text and "noblsm-kv" in text


def test_dbbench_cli_runs(capsys):
    from repro.bench.dbbench_cli import main

    exit_code = main(
        ["--store", "noblsm", "--benchmarks", "fillseq", "--scale", "20000"]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "fillseq" in out
    assert "micros/op" in out


def test_dbbench_cli_rejects_unknown_benchmark(capsys):
    from repro.bench.dbbench_cli import main

    exit_code = main(
        ["--store", "noblsm", "--benchmarks", "nosuch", "--scale", "20000"]
    )
    assert exit_code == 2
