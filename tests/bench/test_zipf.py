"""Unit tests for the YCSB request distributions."""

from collections import Counter

import pytest

from repro.bench.zipf import Latest, ScrambledZipfian, Uniform, Zipfian, fnv64


def test_uniform_range():
    gen = Uniform(100, seed=1)
    samples = [gen.next() for _ in range(5000)]
    assert min(samples) >= 0
    assert max(samples) < 100
    counts = Counter(samples)
    assert len(counts) > 90  # nearly every item seen


def test_uniform_rejects_nonpositive():
    with pytest.raises(ValueError):
        Uniform(0)


def test_zipfian_skew():
    gen = Zipfian(1000, seed=2)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    # rank 0 should be by far the most popular item
    assert counts[0] == max(counts.values())
    # zipf(0.99): item 0 takes a noticeable share
    assert counts[0] / len(samples) > 0.05
    assert all(0 <= s < 1000 for s in samples)


def test_zipfian_determinism():
    a = Zipfian(500, seed=7)
    b = Zipfian(500, seed=7)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_zipfian_handles_two_items():
    # count == 2 makes eta's denominator zero (zeta(n) == zeta(2));
    # the generator must still work — both ranks come from the early
    # branches of next(), which never touch eta.
    gen = Zipfian(2, seed=3)
    samples = [gen.next() for _ in range(2000)]
    counts = Counter(samples)
    assert set(counts) == {0, 1}
    assert counts[0] > counts[1]  # still skewed toward rank 0
    # growing away from (and back to) 2 items stays finite
    gen.set_count(10)
    assert all(0 <= gen.next() < 10 for _ in range(100))


def test_scrambled_zipfian_spreads_hotspots():
    gen = ScrambledZipfian(1000, seed=3)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    hottest = counts.most_common(1)[0][0]
    # the hottest item is hashed away from rank 0
    assert hottest == fnv64(0) % 1000
    assert all(0 <= s < 1000 for s in samples)


def test_latest_prefers_recent():
    gen = Latest(1000, seed=4)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    # the newest item (999) is the most popular
    assert counts[999] == max(counts.values())


def test_latest_tracks_inserts():
    gen = Latest(100, seed=5)
    gen.set_count(200)
    samples = [gen.next() for _ in range(5000)]
    assert max(samples) == 199  # newest item is now 199
    counts = Counter(samples)
    assert counts[199] == max(counts.values())


def test_zipfian_set_count_renormalizes_zeta_constants():
    """Growing the bound must extend the zeta sum, not just the range.

    The incremental extension is exact: zeta(n) is a prefix sum, so a
    generator grown 100 -> 5000 carries the same constants as one built
    at 5000 directly.
    """
    grown = Zipfian(100, seed=6)
    grown.set_count(5000)
    fresh = Zipfian(5000, seed=6)
    assert grown._zetan == pytest.approx(fresh._zetan, rel=1e-12)
    assert grown._eta == pytest.approx(fresh._eta, rel=1e-12)


def test_latest_growth_keeps_ycsb_skew():
    """Regression for the stale-zeta bug: after workload-D inserts grow
    the keyspace, rank frequencies must match a generator built at the
    new count. Pre-fix, ``set_count`` updated only the bound, so the
    hottest rank kept the *old* count's share — 1/zeta(100) instead of
    1/zeta(5000), roughly twice too hot."""
    grown = Latest(100, seed=7)
    grown.set_count(5000)
    fresh = Latest(5000, seed=8)
    n = 40_000
    newest = 4999
    freq_grown = sum(grown.next() == newest for _ in range(n)) / n
    freq_fresh = sum(fresh.next() == newest for _ in range(n)) / n
    expected = 1.0 / grown._zipf._zetan  # P(rank 0) = 1/zeta(count)
    stale = 1.0 / Zipfian(100)._zetan  # what the pre-fix generator gave
    assert stale > 1.5 * expected  # the bug is statistically visible
    # both the grown and the fresh generator sit at the true share,
    # far below the stale one (sampling noise here is ~0.002)
    assert abs(freq_grown - expected) < 0.02
    assert abs(freq_fresh - expected) < 0.02
    assert abs(freq_grown - freq_fresh) < 0.02


def test_latest_growth_rank_frequencies_before_and_after():
    """The *shape* survives growth: the newest item stays the hottest
    and the head-vs-tail ordering matches a fresh generator's."""
    gen = Latest(200, seed=9)
    before = Counter(gen.next() for _ in range(20_000))
    assert before[199] == max(before.values())
    gen.set_count(400)
    after = Counter(gen.next() for _ in range(20_000))
    assert after[399] == max(after.values())
    # newest item's share dropped when the keyspace doubled (a wider
    # rank space spreads the probability mass)
    assert after[399] < before[199]


def test_zipfian_set_count_rejects_nonpositive():
    gen = Zipfian(10, seed=1)
    with pytest.raises(ValueError):
        gen.set_count(0)


def test_fnv64_is_deterministic_and_spread():
    values = {fnv64(i) for i in range(1000)}
    assert len(values) == 1000  # no collisions over a small range
