"""Unit tests for the YCSB request distributions."""

from collections import Counter

import pytest

from repro.bench.zipf import Latest, ScrambledZipfian, Uniform, Zipfian, fnv64


def test_uniform_range():
    gen = Uniform(100, seed=1)
    samples = [gen.next() for _ in range(5000)]
    assert min(samples) >= 0
    assert max(samples) < 100
    counts = Counter(samples)
    assert len(counts) > 90  # nearly every item seen


def test_uniform_rejects_nonpositive():
    with pytest.raises(ValueError):
        Uniform(0)


def test_zipfian_skew():
    gen = Zipfian(1000, seed=2)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    # rank 0 should be by far the most popular item
    assert counts[0] == max(counts.values())
    # zipf(0.99): item 0 takes a noticeable share
    assert counts[0] / len(samples) > 0.05
    assert all(0 <= s < 1000 for s in samples)


def test_zipfian_determinism():
    a = Zipfian(500, seed=7)
    b = Zipfian(500, seed=7)
    assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]


def test_scrambled_zipfian_spreads_hotspots():
    gen = ScrambledZipfian(1000, seed=3)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    hottest = counts.most_common(1)[0][0]
    # the hottest item is hashed away from rank 0
    assert hottest == fnv64(0) % 1000
    assert all(0 <= s < 1000 for s in samples)


def test_latest_prefers_recent():
    gen = Latest(1000, seed=4)
    samples = [gen.next() for _ in range(20000)]
    counts = Counter(samples)
    # the newest item (999) is the most popular
    assert counts[999] == max(counts.values())


def test_latest_tracks_inserts():
    gen = Latest(100, seed=5)
    gen.set_count(200)
    samples = [gen.next() for _ in range(5000)]
    assert max(samples) == 199  # newest item is now 199
    counts = Counter(samples)
    assert counts[199] == max(counts.values())


def test_fnv64_is_deterministic_and_spread():
    values = {fnv64(i) for i in range(1000)}
    assert len(values) == 1000  # no collisions over a small range
