"""Unit tests for the terminal chart renderer."""

from repro.bench.ascii_plot import grouped_bars, line_series


def test_grouped_bars_renders_all_entries():
    text = grouped_bars(
        "Title",
        ["g1", "g2"],
        {"alpha": {"g1": 1.0, "g2": 2.0}, "beta": {"g1": 3.0}},
        unit="us",
    )
    assert "Title" in text
    assert text.count("alpha") == 2
    assert text.count("beta") == 1  # no g2 value for beta
    assert "us" in text


def test_grouped_bars_longest_bar_is_max():
    text = grouped_bars(
        "T", ["g"], {"small": {"g": 1.0}, "big": {"g": 10.0}}
    )
    lines = {line.split("|")[0].strip(): line for line in text.splitlines() if "|" in line}
    assert lines["big"].count("#") > lines["small"].count("#")


def test_grouped_bars_log_scale_note():
    text = grouped_bars("T", ["g"], {"a": {"g": 5.0}}, log=True)
    assert "log-scaled" in text


def test_line_series_renders_legend_and_axis():
    text = line_series(
        "Fig",
        [256, 1024],
        {"one": {256: 1.0, 1024: 2.0}, "two": {256: 3.0, 1024: 4.0}},
        x_label="bytes",
        unit="us/op",
    )
    assert "Fig" in text
    assert "legend:" in text
    assert "one" in text and "two" in text
    assert "256" in text and "1024" in text
    assert "bytes" in text


def test_line_series_log_scale():
    text = line_series(
        "Fig", [1, 2], {"s": {1: 1.0, 2: 1000.0}}, log=True
    )
    assert "log" in text


def test_line_series_empty():
    text = line_series("Fig", [1], {"s": {}})
    assert "no data" in text


def test_line_series_overlap_marker():
    text = line_series(
        "Fig", [1], {"a": {1: 5.0}, "b": {1: 5.0}}, height=4
    )
    assert "&" in text
