"""Integration tests for the serve benchmark and its gate wiring.

One small hot-tenant overload pair (untuned + fair) is run once per
module and every assertion reads from it: the untuned cluster must
actually hit backpressure, the fair-scheduled twin must beat it on the
worst tenant's tail, and the resulting ``repro.serve/1`` document must
be deterministic (modulo the host section) and gateable by
``repro.bench.compare``.
"""

import copy
import json

import pytest

from repro.bench.compare import SERVE_METRICS, compare_documents
from repro.serve.bench import (
    SERVE_SCHEMA,
    ServeConfig,
    fair_variant,
    render_serve,
    render_timeline,
    run_serve,
    run_serve_pair,
    serve_document,
    write_serve_json,
)

#: hot enough that the untuned hot shard queues *and* sheds, small
#: enough for a unit-test budget (~2.5 s for the pair)
SMALL = ServeConfig(
    num_shards=2,
    num_tenants=3,
    arrival_rate=90_000.0,
    duration_s=0.06,
    window_ms=10.0,
)

#: even smaller, for tests that need their own runs
TINY = ServeConfig(
    num_shards=2,
    num_tenants=3,
    arrival_rate=60_000.0,
    duration_s=0.03,
    window_ms=10.0,
)


@pytest.fixture(scope="module")
def pair():
    return run_serve_pair(SMALL)


def canonical(doc):
    """The byte-deterministic view: host wall-clock stripped."""
    doc = copy.deepcopy(doc)
    for row in doc["results"]:
        row.pop("host", None)
    return doc


def test_pair_runs_untuned_then_fair(pair):
    base, fair = pair
    assert base.workload == "serve"
    assert fair.workload == "serve-fair"
    # same open-loop stream: both variants face identical offered load
    assert base.num_ops == fair.num_ops > 0


def test_admission_control_engages_on_the_untuned_cluster(pair):
    base, _ = pair
    assert base.shed > 0
    assert base.queued > 0
    # shedding happens at the hot shard, attributed to a pressure cause
    sheds = {s.shard: s.admission["shed"] for s in base.shards}
    assert sum(sheds.values()) == base.shed
    causes = {}
    for shard in base.shards:
        for cause, count in shard.admission["shed_by_pressure"].items():
            causes[cause] = causes.get(cause, 0) + count
    assert sum(causes.values()) == base.shed
    assert causes, "sheds must carry a pressure cause"


def test_fair_scheduling_beats_untuned_on_worst_tenant_tail(pair):
    base, fair = pair
    assert fair.worst_tenant_p999_us < base.worst_tenant_p999_us
    assert fair.shed <= base.shed
    assert fair.blocked_ns <= base.blocked_ns


def test_accounting_adds_up(pair):
    for result in pair:
        assert result.served + result.shed == result.num_ops
        assert sum(t.served for t in result.tenants) == result.served
        assert sum(t.shed for t in result.tenants) == result.shed
        assert sum(s.served for s in result.shards) == result.served
        assert sum(s.shed for s in result.shards) == result.shed
        assert result.blocked_ns == sum(
            s.stalls["blocked_ns"] for s in result.shards
        )
        assert result.fairness_ratio >= 1.0
        assert result.worst_tenant_p999_us >= result.worst_tenant_p99_us
        assert result.windows, "timeline windows missing"
        if result.shed:
            assert 0 < sum(w["shed"] for w in result.windows) <= result.shed


def test_document_schema_and_shape(pair):
    doc = serve_document(pair, meta={"k": "v"})
    assert doc["schema"] == SERVE_SCHEMA
    assert doc["meta"] == {"k": "v"}
    rows = {r["workload"]: r for r in doc["results"]}
    assert set(rows) == {"serve", "serve-fair"}
    for row in rows.values():
        assert {"ops", "served", "shed", "queued", "fairness_ratio",
                "worst_tenant_p99_us", "worst_tenant_p999_us",
                "blocked_ns"} <= set(row)
        assert row["extras"] == {
            "num_shards": SMALL.num_shards,
            "num_tenants": SMALL.num_tenants,
        }
        tenants = {t["tenant"] for t in row["tenants"]}
        assert tenants == set(SMALL.load_config().tenant_ids())
        for tenant in row["tenants"]:
            assert {"p50_us", "p99_us", "p999_us",
                    "worst_window_p999_us"} <= set(tenant)
        assert len(row["shards"]) == SMALL.num_shards
    # the document round-trips through JSON
    assert json.loads(json.dumps(doc)) == doc


def test_serve_run_is_deterministic_modulo_host():
    a = serve_document([run_serve(TINY)])
    b = serve_document([run_serve(TINY)])
    assert canonical(a) == canonical(b)
    # only the host wall-clock may differ between identical runs
    assert json.dumps(canonical(a), sort_keys=True) == json.dumps(
        canonical(b), sort_keys=True
    )


def test_fair_variant_same_workload_different_tuning():
    fair = fair_variant(TINY)
    assert fair.variant == "serve-fair"
    assert TINY.variant == "serve"
    assert fair.compaction_rate_bytes_per_sec > 0
    assert fair.compaction_rate_fair and fair.dynamic_slowdown
    # the workload shape is untouched: same stream, same seed
    assert fair.load_config() == TINY.load_config()


def test_compare_gate_accepts_and_gates_serve_documents(pair):
    doc = serve_document(pair)
    report = compare_documents(doc, doc)
    assert report.passed
    gated = {d.metric for d in report.deltas}
    assert gated == {m.name for m in SERVE_METRICS}

    worse = canonical(doc)
    for row in worse["results"]:
        row["worst_tenant_p999_us"] = row["worst_tenant_p999_us"] * 10 + 1e4
    report = compare_documents(doc, worse)
    assert not report.passed
    assert all(
        d.metric == "worst_tenant_p999_us" for d in report.regressions
    )


def test_write_serve_json_round_trip(tmp_path, pair):
    path = tmp_path / "serve.json"
    doc = write_serve_json(str(path), pair, meta={"rate": 90_000})
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(doc))
    assert on_disk["schema"] == SERVE_SCHEMA


def test_renderers_tell_the_story(pair):
    base, fair = pair
    timeline = render_timeline(base)
    assert "shards x" in timeline and "tenants" in timeline
    assert "fairness (max/min tenant p99)" in timeline
    for tenant in SMALL.load_config().tenant_ids():
        assert tenant in timeline
    text = render_serve(pair)
    assert "multi-tenant stability: fair vs untuned" in text
    assert f"shed {base.shed} -> {fair.shed}" in text


def test_closed_loop_mode_runs():
    config = ServeConfig(
        num_shards=2,
        num_tenants=2,
        duration_s=0.005,
        mode="closed",
        clients_per_tenant=2,
        window_ms=5.0,
    )
    result = run_serve(config)
    assert result.mode == "closed"
    assert result.served > 0
    assert {t.tenant for t in result.tenants} == {"tenant0", "tenant1"}


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        run_serve(ServeConfig(duration_s=0.001, mode="bogus"))


def test_shard_registry_exposes_admission_source():
    """Each shard's stack registry carries its front-door stats, so a
    ``repro.obs/1`` snapshot of the shard sees admission alongside the
    fs/device metrics (PR 8 left these unregistered)."""
    from repro.serve.cluster import ServeCluster

    cluster = ServeCluster(TINY.cluster_config())
    from repro.serve.loadgen import open_loop

    for request in open_loop(TINY.load_config()):
        cluster.serve(request)
    for index, shard in enumerate(cluster.shards):
        snap = shard.stack.obs.snapshot()
        source = snap["sources"][f"serve.shard{index}.admission"]
        assert {"admitted", "queued", "shed", "queued_ns",
                "shed_by_pressure", "depth"} <= set(source)
        stats = shard.admission.stats
        assert source["admitted"] == stats.admitted
        assert source["shed"] == stats.shed
        # the snapshot's depth probe is the read-only view
        assert source["depth"] == shard.admission.peek_depth(shard.stack.now)


def test_cluster_without_telemetry_uses_null_front_door():
    """No cluster registry -> the shared null singletons, no accounting."""
    from repro.obs.metrics import NULL_COUNTER, NULL_REGISTRY
    from repro.serve.cluster import ServeCluster

    cluster = ServeCluster(TINY.cluster_config())
    assert cluster.obs is NULL_REGISTRY
    assert cluster._c_offered is NULL_COUNTER
    assert cluster._c_offered.value == 0
