"""Unit tests for the deterministic serving-layer router."""

import pytest

from repro.serve.router import NAMESPACE_SEPARATOR, Router

TENANTS = ["tenant0", "tenant1", "alpha", "a", "ab", "b"]
KEYS = [f"{i:016d}".encode() for i in range(64)] + [b"", b"x", b"b/c"]


def test_every_key_maps_to_exactly_one_shard():
    for spread in (1, 3, 8):
        router = Router(8, seed=7, spread=spread)
        for tenant in TENANTS:
            for key in KEYS:
                shard = router.shard_of(tenant, key)
                assert isinstance(shard, int)
                assert 0 <= shard < 8
                # same request, same router: always the same shard
                assert router.shard_of(tenant, key) == shard


def test_routing_is_deterministic_across_router_instances():
    a = Router(8, seed=42, spread=3)
    b = Router(8, seed=42, spread=3)
    for tenant in TENANTS:
        for key in KEYS:
            assert a.shard_of(tenant, key) == b.shard_of(tenant, key)


def test_resharding_same_n_same_seed_is_a_noop():
    # Rebuilding the cluster at the same (num_shards, seed, spread) must
    # reproduce the placement exactly — no key moves.
    before = Router(6, seed=99, spread=2)
    placement = {
        (tenant, key): before.shard_of(tenant, key)
        for tenant in TENANTS
        for key in KEYS
    }
    after = Router(6, seed=99, spread=2)
    for (tenant, key), shard in placement.items():
        assert after.shard_of(tenant, key) == shard


def test_seed_changes_move_keys():
    a = Router(8, seed=0, spread=8)
    b = Router(8, seed=1, spread=8)
    moved = sum(
        a.shard_of(tenant, key) != b.shard_of(tenant, key)
        for tenant in TENANTS
        for key in KEYS
    )
    assert moved > 0


def test_tenant_namespaces_never_collide():
    # Stored keys are <tenant>/<key>; tenant ids may not contain the
    # separator, so the mapping (tenant, key) -> storage key must be
    # injective even for adversarial pairs like ("a", b"b/c") vs
    # ("ab", b"c") vs ("a/b" — rejected outright).
    router = Router(4)
    seen = {}
    for tenant in TENANTS:
        for key in KEYS:
            stored = router.storage_key(tenant, key)
            assert stored.split(NAMESPACE_SEPARATOR, 1)[0] == tenant.encode()
            assert stored not in seen, (seen[stored], (tenant, key))
            seen[stored] = (tenant, key)


def test_tenant_affinity_uses_one_shard():
    router = Router(8, seed=3, spread=1)
    for tenant in TENANTS:
        home = router.shards_of_tenant(tenant)
        assert len(home) == 1
        assert {router.shard_of(tenant, key) for key in KEYS} == set(home)


def test_spread_keeps_keys_inside_the_home_group():
    router = Router(8, seed=3, spread=3)
    for tenant in TENANTS:
        group = set(router.shards_of_tenant(tenant))
        assert len(group) == 3
        used = {router.shard_of(tenant, key) for key in KEYS}
        assert used <= group
        # with 67 keys over 3 shards every group member should be hit
        assert used == group


def test_full_spread_stripes_tenants_over_the_cluster():
    router = Router(4, seed=11, spread=4)
    used = {router.shard_of("tenant0", key) for key in KEYS}
    assert used == {0, 1, 2, 3}


def test_rejects_bad_tenants_and_shapes():
    router = Router(4)
    with pytest.raises(ValueError):
        router.shard_of("", b"k")
    with pytest.raises(ValueError):
        router.shard_of("a/b", b"k")
    with pytest.raises(ValueError):
        router.storage_key("a/b", b"k")
    with pytest.raises(ValueError):
        Router(0)
    with pytest.raises(ValueError):
        Router(4, spread=0)
    with pytest.raises(ValueError):
        Router(4, spread=5)
