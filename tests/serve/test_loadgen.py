"""Unit tests for the multi-tenant virtual-time load generator."""

import pytest

from repro.serve.loadgen import (
    OP_GET,
    OP_PUT,
    ClosedLoopDriver,
    LoadConfig,
    diurnal_rate,
    open_loop,
)


def small_config(**overrides):
    defaults = dict(
        num_tenants=4,
        arrival_rate=50_000.0,
        duration_s=0.02,
        diurnal_amplitude=0.4,
        seed=7,
    )
    defaults.update(overrides)
    return LoadConfig(**defaults)


def test_open_loop_is_deterministic():
    a = list(open_loop(small_config()))
    b = list(open_loop(small_config()))
    assert a == b
    assert list(open_loop(small_config(seed=8))) != a


def test_open_loop_arrivals_ordered_and_inside_horizon():
    config = small_config()
    arrivals = [r.arrival for r in open_loop(config)]
    assert arrivals, "stream is empty"
    assert all(a < config.horizon_ns for a in arrivals)
    assert all(b > a for a, b in zip(arrivals, arrivals[1:]))


def test_open_loop_request_shape():
    config = small_config()
    tenants = set(config.tenant_ids())
    puts = gets = 0
    for request in open_loop(config):
        assert request.tenant in tenants
        assert len(request.key) == config.key_size
        if request.op == OP_PUT:
            assert len(request.value) == config.value_size
            puts += 1
        else:
            assert request.op == OP_GET
            assert request.value is None
            gets += 1
    total = puts + gets
    assert total > 100
    # write_fraction=0.9: puts dominate but reads exist
    assert puts / total == pytest.approx(0.9, abs=0.05)
    assert gets > 0


def test_tenant_zero_is_the_hot_tenant():
    config = small_config(tenant_theta=0.99)
    counts = {}
    for request in open_loop(config):
        counts[request.tenant] = counts.get(request.tenant, 0) + 1
    hot = max(counts, key=counts.get)
    assert hot == "tenant0"
    # zipf 0.99 over 4 tenants: the hot tenant takes a clear plurality
    assert counts[hot] > sum(counts.values()) / len(counts)


def test_diurnal_rate_trough_and_peak():
    config = small_config(diurnal_amplitude=0.4)
    base = config.arrival_rate
    horizon = config.horizon_ns
    assert diurnal_rate(config, 0) == pytest.approx(base)
    # sine phased so a run bottoms out at 1/4 and peaks at 3/4
    assert diurnal_rate(config, horizon // 4) == pytest.approx(
        base * 0.6, rel=1e-3
    )
    assert diurnal_rate(config, 3 * horizon // 4) == pytest.approx(
        base * 1.4, rel=1e-3
    )
    flat = small_config(diurnal_amplitude=0.0)
    assert diurnal_rate(flat, horizon // 4) == base


def test_mean_rate_matches_request_count():
    config = small_config(diurnal_amplitude=0.0)
    count = sum(1 for _ in open_loop(config))
    expected = config.arrival_rate * config.duration_s
    assert count == pytest.approx(expected, rel=0.15)


def test_tenant_ids_are_zero_padded_and_sortable():
    config = LoadConfig(num_tenants=12)
    ids = config.tenant_ids()
    assert ids[0] == "tenant00"
    assert ids[-1] == "tenant11"
    assert ids == sorted(ids)


def test_config_validation():
    with pytest.raises(ValueError):
        LoadConfig(num_tenants=0)
    with pytest.raises(ValueError):
        LoadConfig(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        LoadConfig(write_fraction=1.5)


def test_closed_loop_client_fleet_shape():
    config = small_config(clients_per_tenant=3)
    driver = ClosedLoopDriver(config)
    assert len(driver.clients) == 3 * config.num_tenants
    tenants = [c[2] for c in driver.clients]
    for tenant in config.tenant_ids():
        assert tenants.count(tenant) == 3


def test_closed_loop_waits_for_completions():
    # Each client's next request starts strictly after its previous
    # completion (+ think); a fixed service time serializes per client.
    config = small_config(
        duration_s=0.001, clients_per_tenant=1, num_tenants=2, think_ns=100
    )
    per_client_last = {}

    def execute(request):
        previous = per_client_last.get(request.tenant)
        if previous is not None:
            assert request.arrival > previous
        done = request.arrival + 5_000
        per_client_last[request.tenant] = done
        return done

    driver = ClosedLoopDriver(config)
    last = driver.run(execute)
    assert last > 0
    assert last == max(per_client_last.values())
    # both clients made progress
    assert set(per_client_last) == set(config.tenant_ids())


def test_closed_loop_shed_costs_only_think_time():
    config = small_config(
        duration_s=0.00002, clients_per_tenant=1, num_tenants=1, think_ns=0
    )

    arrivals = []

    def execute(request):
        arrivals.append(request.arrival)
        return None  # every request shed

    ClosedLoopDriver(config).run(execute)
    # a shed request costs the client no latency at all: it retries on
    # the next tick, so the lone client issues one request per ns
    assert arrivals == list(range(0, config.horizon_ns, 1))


def test_closed_loop_is_deterministic():
    config = small_config(duration_s=0.002)
    seen = []

    def execute(request):
        seen.append((request.arrival, request.tenant, request.op))
        return request.arrival + 2_000

    ClosedLoopDriver(config).run(execute)
    again = []

    def execute2(request):
        again.append((request.arrival, request.tenant, request.op))
        return request.arrival + 2_000

    ClosedLoopDriver(config).run(execute2)
    assert seen == again
