"""Unit tests for the per-shard admission controller."""

import pytest

from repro.lsm.db import PRESSURE_OK, PRESSURE_SLOWDOWN, PRESSURE_STOP
from repro.serve.admission import ADMIT, QUEUE, SHED, AdmissionController


def test_bound_shrinks_with_pressure():
    ctrl = AdmissionController(32, slowdown_fraction=0.5, stop_fraction=0.25)
    assert ctrl.bound(PRESSURE_OK) == 32
    assert ctrl.bound(PRESSURE_SLOWDOWN) == 16
    assert ctrl.bound(PRESSURE_STOP) == 8


def test_bound_never_drops_below_one():
    ctrl = AdmissionController(2, slowdown_fraction=0.5, stop_fraction=0.25)
    assert ctrl.bound(PRESSURE_STOP) == 1
    assert ctrl.bound(PRESSURE_SLOWDOWN) == 1


def test_idle_shard_admits():
    ctrl = AdmissionController(4)
    assert ctrl.decide(0, PRESSURE_OK) == ADMIT
    assert ctrl.stats.admitted == 1
    assert ctrl.stats.queued == 0
    assert ctrl.stats.shed == 0


def test_backlog_queues_then_sheds_at_the_bound():
    ctrl = AdmissionController(2)
    # two requests in flight, both completing far in the future
    assert ctrl.decide(0, PRESSURE_OK) == ADMIT
    ctrl.note_completion(0, 1_000_000)
    assert ctrl.decide(10, PRESSURE_OK) == QUEUE
    ctrl.note_completion(10, 2_000_000)
    # depth 2 == bound(ok): the third arrival is refused
    assert ctrl.decide(20, PRESSURE_OK) == SHED
    assert ctrl.stats.shed == 1
    assert ctrl.stats.shed_by_pressure == {PRESSURE_OK: 1}


def test_pressure_queues_even_an_idle_shard():
    ctrl = AdmissionController(8)
    assert ctrl.decide(0, PRESSURE_SLOWDOWN) == QUEUE
    assert ctrl.stats.queued == 1


def test_stop_pressure_sheds_sooner_than_ok():
    ctrl = AdmissionController(8, stop_fraction=0.25)  # stop bound = 2
    ctrl.note_completion(0, 1_000_000)
    ctrl.note_completion(0, 2_000_000)
    # depth 2 is fine under ok (bound 8) but over the stop bound (2)
    assert ctrl.decide(10, PRESSURE_OK) == QUEUE
    assert ctrl.decide(10, PRESSURE_STOP) == SHED
    assert ctrl.stats.shed_by_pressure == {PRESSURE_STOP: 1}


def test_depth_expires_completed_requests():
    ctrl = AdmissionController(4)
    ctrl.note_completion(0, 100)
    ctrl.note_completion(0, 200)
    assert ctrl.depth(50) == 2
    assert ctrl.depth(150) == 1
    assert ctrl.depth(250) == 0
    # once drained and pressure is off, arrivals admit again
    assert ctrl.decide(300, PRESSURE_OK) == ADMIT


def test_queued_ns_charges_wait_behind_the_backlog():
    ctrl = AdmissionController(4)
    ctrl.note_completion(0, 1_000)
    assert ctrl.decide(400, PRESSURE_OK) == QUEUE
    assert ctrl.stats.queued_ns == 600


def test_note_completion_clamps_out_of_order_reads():
    # A read that overtakes queued writes must not make the pending
    # deque non-monotone (depth would under-count the backlog).
    ctrl = AdmissionController(4)
    ctrl.note_completion(0, 1_000)
    ctrl.note_completion(0, 500)  # finished before the tail: clamped
    assert ctrl.depth(700) == 2
    assert ctrl.depth(1_000) == 0


def test_controller_is_pure_bookkeeping():
    # decide() never advances any clock: the decision for a given
    # (arrival, pressure) is independent of wall or virtual time flow.
    ctrl = AdmissionController(4)
    before = ctrl.depth(0)
    ctrl.decide(0, PRESSURE_OK)
    assert ctrl.depth(0) == before


def test_rejects_bad_shapes():
    with pytest.raises(ValueError):
        AdmissionController(0)
    with pytest.raises(ValueError):
        AdmissionController(4, slowdown_fraction=0.2, stop_fraction=0.5)
    with pytest.raises(ValueError):
        AdmissionController(4, stop_fraction=0.0)


def test_stats_to_dict_is_sorted_and_complete():
    ctrl = AdmissionController(1)
    ctrl.note_completion(0, 1_000_000)
    ctrl.decide(1, PRESSURE_STOP)
    ctrl.decide(2, PRESSURE_SLOWDOWN)
    data = ctrl.stats.to_dict()
    assert data["shed"] == 2
    assert list(data["shed_by_pressure"]) == sorted(data["shed_by_pressure"])
    assert set(data) == {
        "admitted", "queued", "shed", "queued_ns", "shed_by_pressure",
    }


def test_peek_depth_counts_without_expiring():
    """peek_depth is the observability view: same number, no mutation.

    depth() pops expired completions, so a probe timestamped after the
    next arrival would change what that arrival's decide() sees —
    peek_depth must leave the pending deque intact.
    """
    ctrl = AdmissionController(8)
    for done in (100, 200, 300):
        ctrl.note_completion(0, done)
    assert ctrl.peek_depth(0) == 3
    assert ctrl.peek_depth(150) == 2
    assert ctrl.peek_depth(250) == 1
    assert ctrl.peek_depth(999) == 0
    # nothing was popped: the mutating view still sees all three
    assert len(ctrl._pending) == 3
    assert ctrl.depth(150) == 2  # and agrees with the peek
    assert len(ctrl._pending) == 2  # ...but actually expired one
