"""Satellite: disabled observability is zero-cost on the hot path."""

import time

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import ScaledConfig
from repro.obs import metrics as metrics_module
from repro.obs import spans as spans_module


def run_once(**kwargs):
    config = ScaledConfig(scale=20000.0, seed=7, **kwargs)
    start = time.perf_counter()
    result, stack, db = run_fillrandom("noblsm", config)
    host = time.perf_counter() - start
    return result, host


def test_disabled_run_creates_no_spans(monkeypatch):
    """NULL_REGISTRY runs must not instantiate a single Span object."""
    created = []
    original = spans_module.Span.__init__

    def counting_init(self, *args, **kwargs):
        created.append(1)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(spans_module.Span, "__init__", counting_init)
    run_once()  # observe=False, trace=False -> NULL_REGISTRY everywhere
    assert not created


def test_disabled_run_creates_no_metric_instruments(monkeypatch):
    """NULL_REGISTRY runs must not instantiate any counter/gauge/histogram.

    The shared NULL_* singletons are created at import time, so any
    instantiation observed here would be a hot path allocating a real
    instrument despite observability being disabled.
    """
    created = []
    for cls in (
        metrics_module.Counter,
        metrics_module.Gauge,
        metrics_module.Histogram,
    ):
        original = cls.__init__

        def counting_init(self, *args, _original=original, **kwargs):
            created.append(type(self).__name__)
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "__init__", counting_init)
    run_once()  # observe=False, trace=False -> NULL_REGISTRY everywhere
    assert not created


def test_observability_never_changes_virtual_results():
    plain, _ = run_once()
    observed, _ = run_once(observe=True)
    traced, _ = run_once(trace=True)
    for other in (observed, traced):
        assert other.virtual_ns == plain.virtual_ns
        assert other.sync_calls == plain.sync_calls
        assert other.device_bytes_written == plain.device_bytes_written
        assert other.stall_ns == plain.stall_ns


def test_tracing_overhead_is_bounded():
    """Micro-bench: host cost of tracing stays within a generous bound.

    The bound is deliberately loose (50x) — the point is to catch an
    accidental O(n^2) or per-op I/O regression in the trace path, not to
    benchmark the host machine.
    """
    # warm up imports/caches so the first measured run isn't penalised
    run_once()
    _, base = run_once()
    _, traced = run_once(trace=True)
    assert traced < max(base, 0.05) * 50


def test_disabled_run_creates_no_timeseries_or_slo_objects(monkeypatch):
    """With no telemetry rig attached, the continuous-telemetry layer
    (PR 10) must never be constructed: no Series, no sampler, no SLO
    monitors — the disabled path stays allocation-free."""
    from repro.obs import slo as slo_module
    from repro.obs import timeseries as ts_module

    created = []
    for cls in (
        ts_module.Series,
        ts_module.TimeSeriesSampler,
        slo_module.SLOMonitor,
    ):
        original = cls.__init__

        def counting_init(self, *args, _original=original, **kwargs):
            created.append(type(self).__name__)
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(cls, "__init__", counting_init)
    run_once()
    assert not created


def test_pressure_gauge_only_exists_when_observed():
    """db.write_pressure() telemetry is gated on the observe flag."""
    config = ScaledConfig(scale=20000.0, seed=7)
    result, stack, db = run_fillrandom("noblsm", config)
    assert not hasattr(db, "_pressure_gauge")
    observed = ScaledConfig(scale=20000.0, seed=7, observe=True)
    result, stack, db = run_fillrandom("noblsm", observed)
    snap = stack.obs.snapshot()
    assert "db.write_pressure" in snap["gauges"]
    assert "db.write_pressure.transitions" in snap["counters"]
