"""End-to-end observability acceptance tests.

The tentpole's contract: an observed db_bench run reports per-layer
virtual-time breakdown, put/get percentiles and a valid JSON document —
and observing changes *nothing* about the simulated timing, because
recording never touches the virtual clock.
"""

import json

from repro.bench.db_bench import run_workload
from repro.bench.harness import ScaledConfig
from repro.bench.report import (
    RESULTS_SCHEMA,
    format_breakdown_table,
    format_latency_table,
    results_document,
    write_results_json,
)
from repro.obs.export import SCHEMA

SCALE = 2000.0
NUM_OPS = 1500


def _config(observe):
    return ScaledConfig(scale=SCALE, num_ops=NUM_OPS, observe=observe)


def test_observation_does_not_change_virtual_timing():
    plain = run_workload("fillrandom", "noblsm", _config(observe=False))
    observed = run_workload("fillrandom", "noblsm", _config(observe=True))
    assert observed.virtual_ns == plain.virtual_ns
    assert observed.sync_calls == plain.sync_calls
    assert observed.device_bytes_written == plain.device_bytes_written
    assert observed.stall_ns == plain.stall_ns
    # only the observed run carries the extra sections
    assert plain.latency_us == {} and plain.breakdown_ns == {}
    assert plain.obs_document is None
    assert observed.obs_document is not None


def test_observed_run_reports_breakdown_and_percentiles():
    result = run_workload("fillrandom", "noblsm", _config(observe=True))
    assert set(result.breakdown_ns) == {"device", "journal", "compaction", "stalls"}
    assert result.breakdown_ns["device"] > 0
    # the scaled run seals memtables, so compaction spans must exist
    assert result.minor_compactions > 0
    assert result.breakdown_ns["compaction"] > 0

    put = result.latency_us["put"]
    assert put["count"] == NUM_OPS
    assert 0 < put["p50"] <= put["p95"] <= put["p99"]


def test_obs_document_is_valid_and_serializable():
    result = run_workload("fillrandom", "noblsm", _config(observe=True))
    doc = result.obs_document
    assert doc["schema"] == SCHEMA
    assert doc["meta"]["workload"] == "fillrandom"
    assert doc["breakdown_ns"] == result.breakdown_ns
    assert doc["histograms"]["db.put_ns"]["count"] == NUM_OPS
    assert doc["spans"]["collected"] > 0
    roots = doc["spans"]["roots"]
    assert any(r["name"] == "db.compaction.minor" for r in roots)
    minor = next(r for r in roots if r["name"] == "db.compaction.minor")
    assert minor["attrs"]["input_bytes"] > 0
    assert "journal" in doc["sources"] and "device" in doc["sources"]
    json.dumps(doc)  # must not raise


def test_results_json_document(tmp_path):
    result = run_workload("fillrandom", "noblsm", _config(observe=True))
    path = tmp_path / "results.json"
    doc = write_results_json(str(path), [result], meta={"suite": "unit"})
    assert doc["schema"] == RESULTS_SCHEMA
    on_disk = json.loads(path.read_text())
    assert on_disk["meta"] == {"suite": "unit"}
    (row,) = on_disk["results"]
    assert row["store"] == "noblsm"
    assert row["breakdown_ns"]["device"] > 0
    assert row["latency_us"]["put"]["p99"] >= row["latency_us"]["put"]["p50"]
    # document builder matches the file
    assert results_document([result], meta={"suite": "unit"}) == doc


def test_report_tables_render_observed_columns():
    result = run_workload("fillrandom", "noblsm", _config(observe=True))
    latency = format_latency_table([result])
    assert "p99" in latency and "noblsm" in latency and "put" in latency
    breakdown = format_breakdown_table([result])
    assert "compaction" in breakdown and "noblsm" in breakdown
    # unobserved lists degrade gracefully
    assert "no observed runs" in format_latency_table([])
    assert "no observed runs" in format_breakdown_table([])


def test_journal_commit_spans_carry_transaction_attrs():
    config = _config(observe=True)
    stack, db = config.build_store("leveldb")
    t = stack.now
    for i in range(200):
        t = db.put(b"k%06d" % i, b"v" * 512, at=t)
    t = db.wait_for_background(t)
    stack.settle()
    commits = stack.obs.spans_named("journal.commit")
    assert commits, "journal should have committed at least once"
    span = commits[0]
    assert span.ended
    assert span.attrs["tid"] >= 1
    assert span.attrs["inodes"] >= 0
    assert "forced" in span.attrs
