"""Tests for the JSON export document and the per-layer breakdown."""

import json

from repro.obs.export import (
    SCHEMA,
    layer_breakdown,
    registry_document,
    to_json,
    write_json,
)
from repro.obs.metrics import MetricRegistry


def _populated_registry():
    reg = MetricRegistry()
    reg.register_source("device", lambda: {"busy_ns": 1_000})
    reg.start_span("journal.commit", at=0).end(200)
    reg.start_span("db.compaction.minor", at=0).end(300)
    reg.start_span("db.compaction.major", at=100).end(500)
    reg.counter("db.stall.l0_slowdown_ns").inc(50)
    reg.counter("db.stall.memtable_wait_ns").inc(20)
    reg.counter("db.stall.l0_stop_ns").inc(30)
    return reg


def test_layer_breakdown_from_well_known_names():
    breakdown = layer_breakdown(_populated_registry())
    assert breakdown == {
        "device": 1_000,
        "journal": 200,
        "compaction": 700,  # 300 minor + 400 major
        "stalls": 100,  # 50 + 20 + 30
    }


def test_layer_breakdown_of_empty_registry_is_zero():
    assert layer_breakdown(MetricRegistry()) == {
        "device": 0,
        "journal": 0,
        "compaction": 0,
        "stalls": 0,
    }


def test_registry_document_shape_and_schema():
    doc = registry_document(_populated_registry(), meta={"run": "unit"})
    assert doc["schema"] == SCHEMA == "repro.obs/1"
    assert doc["meta"] == {"run": "unit"}
    for key in ("counters", "gauges", "histograms", "sources", "breakdown_ns", "spans"):
        assert key in doc, key
    assert doc["spans"]["collected"] == 3
    assert doc["spans"]["dropped"] == 0
    assert len(doc["spans"]["roots"]) == 3
    assert doc["sources"]["device"] == {"busy_ns": 1_000}


def test_document_span_roots_are_bounded():
    reg = _populated_registry()
    doc = registry_document(reg, max_spans=1)
    assert doc["spans"]["collected"] == 3
    assert len(doc["spans"]["roots"]) == 1


def test_to_json_round_trips():
    text = to_json(_populated_registry(), meta={"k": "v"})
    parsed = json.loads(text)
    assert parsed["schema"] == SCHEMA
    assert parsed["breakdown_ns"]["compaction"] == 700


def test_write_json_creates_readable_file(tmp_path):
    path = tmp_path / "obs.json"
    doc = write_json(str(path), _populated_registry(), meta={"k": 1})
    on_disk = json.loads(path.read_text())
    assert on_disk == json.loads(json.dumps(doc))
    assert on_disk["meta"] == {"k": 1}
