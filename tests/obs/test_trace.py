"""Causal tracing: trace ids, tracks, flows, Chrome export round-trips."""

import json

import pytest

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import ScaledConfig
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.trace import (
    Tracer,
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)


def traced_registry():
    registry = MetricRegistry()
    tracer = Tracer(registry)
    return registry, tracer


# ----------------------------------------------------------------------
# tracer basics
# ----------------------------------------------------------------------


def test_tracer_requires_enabled_registry():
    with pytest.raises(ValueError):
        Tracer(NULL_REGISTRY)


def test_tracer_attaches_once():
    registry, _ = traced_registry()
    with pytest.raises(RuntimeError):
        Tracer(registry)


def test_root_spans_get_fresh_trace_ids():
    registry, _ = traced_registry()
    a = registry.start_span("db.write", 0)
    b = registry.start_span("db.write", 10)
    assert a.trace_id != 0
    assert b.trace_id == a.trace_id + 1


def test_children_inherit_trace_id():
    registry, _ = traced_registry()
    root = registry.start_span("db.write", 0)
    child = root.child("wal.append", 5)
    grandchild = child.child("inner", 6)
    assert child.trace_id == root.trace_id
    assert grandchild.trace_id == root.trace_id


def test_track_stack_stamps_spans():
    registry, tracer = traced_registry()
    root = registry.start_span("db.write", 0)
    assert root.track == "client"
    tracer.push_track("bg.db.t0")
    on_thread = registry.start_span("db.compaction.minor", 10)
    child = root.child("seg", 12)
    tracer.pop_track()
    assert on_thread.track == "bg.db.t0"
    # children take the track active at creation, not the parent's
    assert child.track == "bg.db.t0"
    assert registry.start_span("db.write", 20).track == "client"


def test_track_stack_underflow_raises():
    _, tracer = traced_registry()
    with pytest.raises(RuntimeError):
        tracer.pop_track()


def test_listener_collects_children_too():
    registry, tracer = traced_registry()
    root = registry.start_span("db.write", 0)
    root.child("wal.append", 1).end(2)
    root.end(3)
    assert sorted(s.name for s in tracer.spans) == ["db.write", "wal.append"]


def test_inode_bindings_and_commit_links():
    registry, tracer = traced_registry()
    produce = registry.start_span("db.compaction.minor", 0)
    produce.end(100)
    tracer.bind_inode(7, produce)
    commit = registry.start_span("journal.commit", 200)
    commit.end(250)
    tracer.note_commit({7, 99}, commit)  # 99 unknown: ignored
    assert tracer.commit_span_of(7) is commit
    assert tracer.commit_span_of(99) is None
    assert len(tracer.flows) == 1
    assert tracer.flows[0].name == "journal-commit"
    # a later commit must not re-link an already-committed inode
    tracer.note_commit({7}, registry.start_span("journal.commit", 300))
    assert len(tracer.flows) == 1
    tracer.drop_inode(7)
    assert tracer.commit_span_of(7) is None


def test_flow_src_clamped_to_dst():
    registry, tracer = traced_registry()
    src = registry.start_span("a", 0)
    src.end(500)
    dst = registry.start_span("b", 100)  # starts inside src
    dst.end(200)
    tracer.link(src, dst)
    assert tracer.flows[0].src_ts <= tracer.flows[0].dst_ts


def test_registry_reset_clears_tracer():
    registry, tracer = traced_registry()
    registry.start_span("db.write", 0).end(5)
    tracer.io_slice("write", 0, 0, 10, 64, None)
    registry.reset()
    assert not tracer.spans
    assert not tracer.io_slices


# ----------------------------------------------------------------------
# Chrome export
# ----------------------------------------------------------------------


def test_chrome_document_validates_and_has_tracks():
    registry, tracer = traced_registry()
    registry.start_span("db.write", 1000).end(2000)
    tracer.push_track("bg.db.t0")
    registry.start_span("db.compaction.minor", 1500).end(9000)
    tracer.pop_track()
    tracer.io_slice("write", 0, 2000, 4000, 4096, "jbd2")
    doc = chrome_trace_document(tracer)
    validate_chrome_trace(doc)
    names = {
        e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        if e["name"] == "thread_name"
    }
    assert {"client", "bg.db.t0", "dev.ch0"} <= names


def test_chrome_export_clip_and_limit():
    registry, tracer = traced_registry()
    for i in range(10):
        registry.start_span("db.write", i * 1000).end(i * 1000 + 100)
    doc = chrome_trace_document(tracer, clip=(5000, 7000))
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 3  # spans at 5000, 6000, 7000
    doc = chrome_trace_document(tracer, limit=2)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == 2
    assert xs[-1]["ts"] == 9.0  # keeps the LAST events


def test_validate_rejects_malformed():
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": "nope"})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    with pytest.raises(ValueError):
        validate_chrome_trace(
            {"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 1, "ts": -5, "dur": 1}
            ]}
        )


# ----------------------------------------------------------------------
# whole-stack round trips (multi-channel x multi-thread)
# ----------------------------------------------------------------------


def run_traced(**kwargs):
    config = ScaledConfig(scale=20000.0, seed=7, trace=True, **kwargs)
    result, stack, db = run_fillrandom("noblsm", config)
    return result, stack, db


def test_trace_survives_executor_handoff():
    _, stack, _ = run_traced(num_channels=4, background_threads=2)
    tracer = stack.obs.tracer
    minor_tracks = {
        s.track for s in tracer.spans if s.name == "db.compaction.minor"
    }
    assert minor_tracks  # dumps happened
    assert all(t.startswith("bg.") for t in minor_tracks)
    # causal arrows from client batches into background dumps exist
    kv_flows = [f for f in tracer.flows if f.name == "kv-batch"]
    assert kv_flows
    assert any(
        f.src_track == "client" and f.dst_track.startswith("bg.")
        for f in kv_flows
    )
    # journal commits run on the journal track and link to retirement
    assert any(s.track == "journal" for s in tracer.spans
               if s.name == "journal.commit")
    assert any(f.name == "journal-commit" for f in tracer.flows)


def test_per_thread_attribution_in_chrome_trace():
    _, stack, db = run_traced(num_channels=4, background_threads=2)
    doc = chrome_trace_document(stack.obs.tracer)
    validate_chrome_trace(doc)
    tracks = {
        e["args"]["name"] for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    # both background threads did work and appear as distinct tracks
    busy_threads = sum(1 for n in db.bg.thread_jobs if n)
    bg_tracks = {t for t in tracks if t.startswith("bg.")}
    assert len(bg_tracks) == busy_threads >= 2
    # several device channels saw I/O
    dev_tracks = {t for t in tracks if t.startswith("dev.ch")}
    assert len(dev_tracks) >= 2
    assert "dev.barrier" in tracks  # flushes happened
    # track -> tid mapping is injective
    tids = {}
    for e in doc["traceEvents"]:
        if e["ph"] == "M" and e["name"] == "thread_name":
            tids[e["args"]["name"]] = e["tid"]
    assert len(set(tids.values())) == len(tids)


def test_export_byte_deterministic(tmp_path):
    paths = []
    for i in range(2):
        _, stack, _ = run_traced(num_channels=4, background_threads=2)
        path = tmp_path / f"trace{i}.json"
        write_chrome_trace(str(path), stack.obs.tracer, meta={"run": "x"})
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_written_trace_is_valid_json_and_schema(tmp_path):
    _, stack, _ = run_traced()
    path = tmp_path / "t.json"
    write_chrome_trace(str(path), stack.obs.tracer)
    doc = json.loads(path.read_text())
    count = validate_chrome_trace(doc)
    assert count > 100
    # every db.write span links back to its trace id
    writes = [
        e for e in doc["traceEvents"]
        if e["ph"] == "X" and e["name"] == "db.write"
    ]
    assert writes and all(e["args"]["trace"] >= 1 for e in writes)


def test_tracing_never_moves_virtual_clock():
    config = dict(scale=20000.0, seed=7)
    plain, _, _ = run_fillrandom("noblsm", ScaledConfig(**config))
    observed, _, _ = run_fillrandom(
        "noblsm", ScaledConfig(observe=True, **config)
    )
    traced, _, _ = run_fillrandom(
        "noblsm", ScaledConfig(trace=True, **config)
    )
    assert plain.virtual_ns == observed.virtual_ns == traced.virtual_ns
    assert plain.sync_calls == traced.sync_calls


def test_noblsm_retirement_closes_causal_chain():
    _, stack, db = run_traced()
    db.close(stack.now)
    tracer = stack.obs.tracer
    retire_spans = [s for s in tracer.spans if s.name == "db.retire"]
    assert retire_spans  # shadows were reclaimed
    retire_flows = [f for f in tracer.flows if f.name == "retire"]
    assert retire_flows
    assert all(f.src_track == "journal" for f in retire_flows)
