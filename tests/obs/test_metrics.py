"""Unit tests for the metric registry and its instruments."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NULL_WINDOWED_HISTOGRAM,
    NullRegistry,
    WindowedHistogram,
    default_latency_buckets,
)


def test_counter_and_gauge_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0

    g = Gauge("y")
    g.set(10)
    g.add(-3)
    assert g.value == 7


def test_default_buckets_strictly_increasing():
    bounds = default_latency_buckets()
    assert list(bounds) == sorted(set(bounds))
    assert bounds[0] == 1_000  # 1 us
    assert bounds[-1] == 5 * 10**10  # 50 s


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(5, 2, 10))
    with pytest.raises(ValueError):
        Histogram("dup", buckets=(1, 1, 2))


def test_histogram_exact_aggregates():
    h = Histogram("lat")
    for v in (100, 200, 300, 400):
        h.record(v)
    assert h.count == 4
    assert h.sum == 1000
    assert h.min == 100
    assert h.max == 400
    assert h.mean == 250.0


def test_histogram_percentiles_clamped_and_ordered():
    h = Histogram("lat")
    for v in range(1, 101):
        h.record(v * 1000)
    assert h.min <= h.p50 <= h.p95 <= h.p99 <= h.max
    # p50 of a uniform 1..100k spread lands mid-range
    assert 20_000 < h.p50 < 80_000
    # percentile of an empty histogram is 0
    assert Histogram("empty").p99 == 0.0
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_single_value_percentiles_are_exact():
    h = Histogram("lat")
    h.record(12_345)
    assert h.p50 == 12_345
    assert h.p99 == 12_345


def test_registry_caches_instruments_by_name():
    reg = MetricRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert reg.find_histogram("c") is reg.histogram("c")
    assert reg.find_histogram("never-created") is None


def test_registry_snapshot_sections():
    reg = MetricRegistry()
    reg.counter("hits").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("lat").record(500)
    reg.register_source("component", lambda: {"k": 1})
    snap = reg.snapshot()
    assert snap["counters"] == {"hits": 3}
    assert snap["gauges"] == {"depth": 2}
    assert snap["histograms"]["lat"]["count"] == 1
    assert snap["sources"] == {"component": {"k": 1}}
    assert snap["spans"] == {"collected": 0, "dropped": 0}


def test_registry_reset_zeroes_instruments_keeps_sources():
    reg = MetricRegistry()
    reg.counter("hits").inc(3)
    reg.histogram("lat").record(500)
    span = reg.start_span("op", at=0)
    span.end(10)
    reg.register_source("component", lambda: {"k": 1})
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {"hits": 0}
    assert snap["histograms"]["lat"]["count"] == 0
    assert snap["spans"]["collected"] == 0
    assert snap["sources"] == {"component": {"k": 1}}


def test_null_registry_is_shared_noops():
    assert NULL_REGISTRY.enabled is False
    assert MetricRegistry.enabled is True
    assert NULL_REGISTRY.counter("a") is NULL_COUNTER
    assert NULL_REGISTRY.gauge("b") is NULL_GAUGE
    assert NULL_REGISTRY.histogram("c") is NULL_HISTOGRAM
    NULL_REGISTRY.counter("a").inc(100)
    NULL_REGISTRY.histogram("c").record(123)
    assert NULL_COUNTER.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_REGISTRY.snapshot() == {}
    # sources are dropped, not held
    NULL_REGISTRY.register_source("x", lambda: {})
    assert NULL_REGISTRY.snapshot() == {}
    assert isinstance(NULL_REGISTRY, NullRegistry)


def test_span_collection_bounded_by_max_spans():
    reg = MetricRegistry(max_spans=2)
    for i in range(5):
        reg.start_span("op", at=i).end(i + 1)
    assert len(reg.spans) == 2
    assert reg.spans_dropped == 3
    # every finished span still fed the duration histogram
    assert reg.find_histogram("span.op_ns").count == 5


def test_windowed_histogram_routes_values_by_window():
    wh = WindowedHistogram("lat", window_ns=1000)
    wh.record(0, 100)
    wh.record(999, 200)
    wh.record(1000, 5000)
    wh.record(2500, 300)
    assert wh.window_indices() == [0, 1, 2]
    assert wh.windows[0].count == 2
    assert wh.windows[1].count == 1
    assert wh.windows[2].count == 1
    assert wh.count == 4 and wh.total.count == 4


def test_windowed_histogram_rejects_bad_window():
    with pytest.raises(ValueError):
        WindowedHistogram("bad", window_ns=0)


def test_windowed_histogram_spike_statistics():
    wh = WindowedHistogram("lat", window_ns=1000)
    # four flat windows at ~2us, one spike window at ~5ms
    for index in range(5):
        value = 5_000_000 if index == 2 else 2_000
        for i in range(100):
            wh.record(index * 1000 + i, value)
    worst = wh.max_over_windows(99.9)
    median = wh.median_over_windows(99.9)
    assert worst > median > 0
    assert worst >= 5_000_000 * 0.9  # the spike window dominates
    series = wh.series(99.9)
    assert [index for index, _ in series] == [0, 1, 2, 3, 4]
    assert max(v for _, v in series) == worst
    # empty histogram degenerates to zero, not an error
    empty = WindowedHistogram("none", window_ns=10)
    assert empty.max_over_windows(99.9) == 0.0
    assert empty.median_over_windows(99.9) == 0.0


def test_windowed_histogram_snapshot_and_reset():
    wh = WindowedHistogram("lat", window_ns=1000)
    wh.record(10, 500)
    wh.record(1500, 700)
    snap = wh.snapshot()
    assert snap["window_ns"] == 1000
    assert snap["windows"] == 2
    assert snap["count"] == 2
    assert snap["max_windowed_p999"] >= snap["median_windowed_p999"] > 0
    wh.reset()
    assert wh.count == 0 and wh.window_indices() == []


def test_registry_windowed_histograms_cached_and_snapshotted():
    reg = MetricRegistry()
    wh = reg.windowed_histogram("soak.put_ns", 1000)
    assert reg.windowed_histogram("soak.put_ns", 1000) is wh
    assert reg.find_windowed_histogram("soak.put_ns") is wh
    assert reg.find_windowed_histogram("absent") is None
    wh.record(0, 100)
    snap = reg.snapshot()
    assert snap["windowed"]["soak.put_ns"]["count"] == 1
    reg.reset()
    assert reg.find_windowed_histogram("soak.put_ns").count == 0


def test_null_registry_windowed_histogram_is_noop():
    wh = NULL_REGISTRY.windowed_histogram("x", 1000)
    assert wh is NULL_WINDOWED_HISTOGRAM
    wh.record(0, 123)
    assert wh.count == 0
    assert wh.window_indices() == []


def test_count_over_is_exact_at_bucket_bounds():
    """count_over splits good/bad exactly when the bound is a bucket edge.

    Buckets hold ``(lo, hi]``, so a value equal to the bound counts as
    *within* it — meeting a 100 us objective at exactly 100 us is good.
    """
    h = Histogram("lat")
    h.record(50_000)
    h.record(100_000)   # == bound: within
    h.record(100_001)   # strictly over
    h.record(5_000_000)
    assert h.count_over(100_000) == 2
    assert h.count_over(50_000) == 3
    # over the top bucket bound nothing can be counted twice
    assert h.count_over(h.bounds[-1]) == 0
    # a non-bound threshold counts the whole enclosing bucket as over
    assert h.count_over(99_999) == 3
    # empty histogram: zero, not an error
    assert Histogram("empty").count_over(100_000) == 0


def test_windowed_histogram_single_sample_median():
    wh = WindowedHistogram("lat", window_ns=1000)
    wh.record(100, 500)
    assert wh.median_over_windows(99.9) == wh.max_over_windows(99.9) > 0


def test_windowed_histogram_gap_windows_do_not_dilute_median():
    """Only materialised windows enter the stats — gaps are not zeros."""
    wh = WindowedHistogram("lat", window_ns=1000)
    wh.record(100, 1_000_000)   # window 0: slow
    wh.record(5_500, 1_000_000)  # window 5: slow; 1-4 never existed
    assert wh.window_indices() == [0, 5]
    assert wh.median_over_windows(99.9) == wh.max_over_windows(99.9)


def test_null_windowed_histogram_record_allocates_nothing():
    assert NULL_WINDOWED_HISTOGRAM.windows == {}
    NULL_WINDOWED_HISTOGRAM.record(123, 456)
    NULL_WINDOWED_HISTOGRAM.record(999_999, 1)
    assert NULL_WINDOWED_HISTOGRAM.windows == {}  # no lazy Histogram made
    assert NULL_WINDOWED_HISTOGRAM.count == 0


def test_registry_iterators_are_sorted_and_null_is_empty():
    reg = MetricRegistry()
    reg.counter("b.ops")
    reg.counter("a.ops")
    reg.gauge("z.depth")
    reg.windowed_histogram("m.lat", 1000)
    assert [n for n, _ in reg.iter_counters()] == ["a.ops", "b.ops"]
    assert [n for n, _ in reg.iter_gauges()] == ["z.depth"]
    assert [n for n, _ in reg.iter_windowed()] == ["m.lat"]
    assert NULL_REGISTRY.iter_counters() == []
    assert NULL_REGISTRY.iter_gauges() == []
    assert NULL_REGISTRY.iter_windowed() == []
