"""Unit tests for the metric registry and its instruments."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
    default_latency_buckets,
)


def test_counter_and_gauge_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0

    g = Gauge("y")
    g.set(10)
    g.add(-3)
    assert g.value == 7


def test_default_buckets_strictly_increasing():
    bounds = default_latency_buckets()
    assert list(bounds) == sorted(set(bounds))
    assert bounds[0] == 1_000  # 1 us
    assert bounds[-1] == 5 * 10**10  # 50 s


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", buckets=(5, 2, 10))
    with pytest.raises(ValueError):
        Histogram("dup", buckets=(1, 1, 2))


def test_histogram_exact_aggregates():
    h = Histogram("lat")
    for v in (100, 200, 300, 400):
        h.record(v)
    assert h.count == 4
    assert h.sum == 1000
    assert h.min == 100
    assert h.max == 400
    assert h.mean == 250.0


def test_histogram_percentiles_clamped_and_ordered():
    h = Histogram("lat")
    for v in range(1, 101):
        h.record(v * 1000)
    assert h.min <= h.p50 <= h.p95 <= h.p99 <= h.max
    # p50 of a uniform 1..100k spread lands mid-range
    assert 20_000 < h.p50 < 80_000
    # percentile of an empty histogram is 0
    assert Histogram("empty").p99 == 0.0
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_single_value_percentiles_are_exact():
    h = Histogram("lat")
    h.record(12_345)
    assert h.p50 == 12_345
    assert h.p99 == 12_345


def test_registry_caches_instruments_by_name():
    reg = MetricRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    assert reg.find_histogram("c") is reg.histogram("c")
    assert reg.find_histogram("never-created") is None


def test_registry_snapshot_sections():
    reg = MetricRegistry()
    reg.counter("hits").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("lat").record(500)
    reg.register_source("component", lambda: {"k": 1})
    snap = reg.snapshot()
    assert snap["counters"] == {"hits": 3}
    assert snap["gauges"] == {"depth": 2}
    assert snap["histograms"]["lat"]["count"] == 1
    assert snap["sources"] == {"component": {"k": 1}}
    assert snap["spans"] == {"collected": 0, "dropped": 0}


def test_registry_reset_zeroes_instruments_keeps_sources():
    reg = MetricRegistry()
    reg.counter("hits").inc(3)
    reg.histogram("lat").record(500)
    span = reg.start_span("op", at=0)
    span.end(10)
    reg.register_source("component", lambda: {"k": 1})
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {"hits": 0}
    assert snap["histograms"]["lat"]["count"] == 0
    assert snap["spans"]["collected"] == 0
    assert snap["sources"] == {"component": {"k": 1}}


def test_null_registry_is_shared_noops():
    assert NULL_REGISTRY.enabled is False
    assert MetricRegistry.enabled is True
    assert NULL_REGISTRY.counter("a") is NULL_COUNTER
    assert NULL_REGISTRY.gauge("b") is NULL_GAUGE
    assert NULL_REGISTRY.histogram("c") is NULL_HISTOGRAM
    NULL_REGISTRY.counter("a").inc(100)
    NULL_REGISTRY.histogram("c").record(123)
    assert NULL_COUNTER.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert NULL_REGISTRY.snapshot() == {}
    # sources are dropped, not held
    NULL_REGISTRY.register_source("x", lambda: {})
    assert NULL_REGISTRY.snapshot() == {}
    assert isinstance(NULL_REGISTRY, NullRegistry)


def test_span_collection_bounded_by_max_spans():
    reg = MetricRegistry(max_spans=2)
    for i in range(5):
        reg.start_span("op", at=i).end(i + 1)
    assert len(reg.spans) == 2
    assert reg.spans_dropped == 3
    # every finished span still fed the duration histogram
    assert reg.find_histogram("span.op_ns").count == 5
