"""Critical-path attribution: segment math and the whole-stack table."""

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import ScaledConfig
from repro.obs.critical_path import (
    UNATTRIBUTED,
    WRITE_SEGMENTS,
    analyze_write_path,
    render_critical_path,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Tracer


def make_write(registry, start, segments):
    """One synthetic db.write with (name, duration) child segments."""
    span = registry.start_span("db.write", start)
    t = start
    for name, duration in segments:
        span.child(name, t).end(t + duration)
        t += duration
    span.end(t)
    return t


def test_empty_registry_reports_zero_ops():
    registry = MetricRegistry()
    Tracer(registry)
    report = analyze_write_path(registry)
    assert report.count == 0
    assert "(no traced operations)" in render_critical_path(report)


def test_segments_partition_latency():
    registry = MetricRegistry()
    Tracer(registry)
    t = 0
    for _ in range(49):
        t = make_write(
            registry, t, [("wal.append", 200), ("memtable.insert", 600)]
        )
    # one slow op dominated by a stall; with 50 samples the nearest-rank
    # p99 is the maximum, so this op IS the p99 tail
    make_write(
        registry,
        t,
        [("stall.memtable_full", 1_000_000), ("wal.append", 200),
         ("memtable.insert", 600)],
    )
    report = analyze_write_path(registry)
    assert report.count == 50
    assert report.total_p50_ns == 800
    assert report.total_p99_ns == 1_000_800
    assert report.coverage_p99 == 1.0
    stall = report.segment("stall.memtable_full")
    assert stall.count == 1
    assert stall.share_p99 > 0.99
    assert report.segment(UNATTRIBUTED).total_ns == 0


def test_unattributed_residual_is_visible():
    registry = MetricRegistry()
    Tracer(registry)
    span = registry.start_span("db.write", 0)
    span.child("wal.append", 0).end(300)
    span.end(1000)  # 700ns unexplained
    report = analyze_write_path(registry)
    assert report.segment(UNATTRIBUTED).total_ns == 700
    assert report.coverage_p99 == 0.3


def test_known_segments_always_listed():
    registry = MetricRegistry()
    Tracer(registry)
    make_write(registry, 0, [("wal.append", 100)])
    report = analyze_write_path(registry)
    names = [seg.name for seg in report.segments]
    for name in WRITE_SEGMENTS:
        assert name in names
    assert names[-1] == UNATTRIBUTED


def test_to_dict_round_trip():
    registry = MetricRegistry()
    Tracer(registry)
    make_write(registry, 0, [("wal.append", 100), ("memtable.insert", 50)])
    doc = analyze_write_path(registry).to_dict()
    assert doc["op"] == "db.write"
    assert doc["count"] == 1
    assert doc["coverage_p99"] == 1.0
    assert any(s["name"] == "wal.append" and s["total_ns"] == 100
               for s in doc["segments"])


def test_whole_stack_coverage_meets_bar():
    """Acceptance: >= 95% of p99 put latency lands in named segments."""
    config = ScaledConfig(scale=2000.0, seed=1234, trace=True)
    result, stack, _ = run_fillrandom("noblsm", config)
    report = analyze_write_path(stack.obs)
    assert report.count == config.num_ops
    assert report.coverage_p99 >= 0.95
    # the bench result carries the same attribution
    assert result.critical_path is not None
    assert result.critical_path["coverage_p99"] >= 0.95
    rendered = render_critical_path(report, stack.obs)
    assert "named-segment coverage" in rendered
    assert "background debt" in rendered


def test_stall_spans_carry_cause_labels():
    config = ScaledConfig(scale=2000.0, seed=1234, trace=True)
    _, stack, _ = run_fillrandom("noblsm", config)
    causes = {
        s.attrs.get("cause")
        for s in stack.obs.tracer.spans
        if s.name == "lsm.write_stall"
    }
    # the compaction-bound fill hits at least these two LevelDB stalls
    assert "l0_slowdown" in causes
    assert "memtable_full" in causes
