"""The virtual-time sampler: deltas, windows, probes, ring, re-arming."""

import json

import pytest

from repro.obs.metrics import NULL_REGISTRY, MetricRegistry
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    Series,
    TimeSeriesSampler,
    _percentile_label,
)
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue


def make_sampler(interval_ns=1000, **kwargs):
    registry = MetricRegistry()
    return registry, TimeSeriesSampler(registry, interval_ns, **kwargs)


def test_percentile_labels_match_repo_idiom():
    assert _percentile_label(50.0) == "p50"
    assert _percentile_label(99.0) == "p99"
    assert _percentile_label(99.9) == "p999"


def test_sampler_refuses_disabled_registry_and_bad_interval():
    with pytest.raises(ValueError):
        TimeSeriesSampler(NULL_REGISTRY, 1000)
    with pytest.raises(ValueError):
        TimeSeriesSampler(MetricRegistry(), 0)


def test_counter_series_records_per_tick_deltas():
    registry, sampler = make_sampler()
    ops = registry.counter("ops")
    ops.inc(5)
    sampler.sample(1000)
    ops.inc(2)
    sampler.sample(2000)
    sampler.sample(3000)  # no increments this tick
    series = sampler.series["ops.delta"]
    assert series.kind == "counter"
    assert series.points() == [(1000, 5), (2000, 2), (3000, 0)]


def test_gauge_series_records_levels():
    registry, sampler = make_sampler()
    depth = registry.gauge("depth")
    depth.set(3)
    sampler.sample(1000)
    depth.set(7)
    sampler.sample(2000)
    assert sampler.series["depth"].points() == [(1000, 3), (2000, 7)]


def test_windowed_series_emits_each_closed_window_exactly_once():
    registry, sampler = make_sampler(interval_ns=1000)
    lat = registry.windowed_histogram("lat", 1000)
    lat.record(100, 10)
    lat.record(200, 30)
    # window 0 not closed yet at t=999 (closed count = 999 // 1000 = 0)
    sampler.sample(999)
    assert "lat.ops" not in sampler.series
    lat.record(1100, 50)
    sampler.sample(1999)  # closes window 0 only
    ops = sampler.series["lat.ops"]
    assert ops.kind == "window"
    assert ops.points() == [(1000, 2)]  # stamped at the window *end*
    assert sampler.series["lat.p50"].points()[0][0] == 1000
    sampler.sample(2999)  # closes window 1
    assert ops.points() == [(1000, 2), (2000, 1)]
    # re-sampling never re-emits a consumed window
    sampler.sample(3999)
    assert ops.points() == [(1000, 2), (2000, 1)]


def test_windowed_series_skips_empty_gap_windows():
    registry, sampler = make_sampler()
    lat = registry.windowed_histogram("lat", 1000)
    lat.record(100, 10)
    lat.record(5100, 20)  # windows 0 and 5, nothing between
    sampler.sample(10_000)
    assert sampler.series["lat.ops"].points() == [(1000, 1), (6000, 1)]


def test_probes_sample_levels_and_none_skips_the_tick():
    registry, sampler = make_sampler()
    values = iter([4.0, None, 2.0])
    sampler.add_probe("queue", lambda at: next(values))
    sampler.sample(1000)
    sampler.sample(2000)
    sampler.sample(3000)
    series = sampler.series["queue"]
    assert series.kind == "probe"
    assert series.points() == [(1000, 4.0), (3000, 2.0)]


def test_ring_buffer_drops_oldest_and_counts_them():
    series = Series("x", "gauge", capacity=3)
    for i in range(5):
        series.append(i, float(i))
    assert series.dropped == 2
    assert series.points() == [(2, 2.0), (3, 3.0), (4, 4.0)]
    assert series.to_dict()["dropped"] == 2
    with pytest.raises(ValueError):
        Series("bad", "gauge", capacity=0)


def test_sampling_is_idempotent_per_timestamp():
    registry, sampler = make_sampler()
    ops = registry.counter("ops")
    ops.inc(3)
    sampler.sample(1000)
    sampler.sample(1000)  # same instant: no double-counted delta
    sampler.sample(500)  # the past: ignored
    assert sampler.samples == 1
    assert sampler.series["ops.delta"].points() == [(1000, 3)]


def test_attach_rearms_until_stop():
    registry, sampler = make_sampler(interval_ns=1000)
    clock = VirtualClock()
    events = EventQueue(clock)
    ops = registry.counter("ops")
    sampler.attach(events)
    ops.inc()
    events.run_until(3500)
    assert [t for t, _ in sampler.series["ops.delta"].points()] == [
        1000, 2000, 3000,
    ]
    sampler.finish(3500)  # final partial-interval sample + disarm
    assert sampler.last_sample_ns == 3500
    events.run_until(10_000)
    assert sampler.samples == 4  # no ticks after finish


def test_document_shape_and_json_round_trip():
    registry, sampler = make_sampler()
    registry.counter("ops").inc()
    registry.gauge("depth").set(2)
    sampler.add_probe("tokens", lambda at: 7.0)
    sampler.sample(1000)
    doc = sampler.document({"target": "test"})
    assert doc["schema"] == TIMESERIES_SCHEMA
    assert doc["meta"] == {"target": "test"}
    assert doc["samples"] == 1
    assert sorted(doc["series"]) == list(doc["series"])
    assert doc["series"]["tokens"]["points"] == [[1000, 7.0]]
    assert json.loads(json.dumps(doc)) == doc


def test_monitor_burn_series_follows_observe():
    class FakeSpec:
        name = "latency"

    class FakeMonitor:
        spec = FakeSpec()
        last_burn = 0.0

        def observe(self, at):
            self.last_burn = at / 1000.0

    registry, sampler = make_sampler()
    sampler.add_monitor(FakeMonitor())
    sampler.sample(1000)
    sampler.sample(2000)
    assert sampler.series["slo.latency.burn"].kind == "slo"
    assert sampler.series["slo.latency.burn"].points() == [
        (1000, 1.0), (2000, 2.0),
    ]
