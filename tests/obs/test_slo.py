"""SLO specs, error budgets, and multi-window burn-rate alerting."""

import pytest

from repro.obs.metrics import MetricRegistry, WindowedHistogram
from repro.obs.slo import (
    AVAILABILITY,
    LATENCY,
    BurnRateRule,
    CounterRatioSource,
    LatencyThresholdSource,
    SLOMonitor,
    SLOSpec,
    default_burn_rules,
)

RULES = (
    BurnRateRule("fast-burn", long_window_ns=10_000, short_window_ns=2_000,
                 burn_threshold=10.0),
)


class ScriptedSource:
    """Feeds a scripted sequence of (good, bad) deltas."""

    def __init__(self, deltas):
        self.deltas = list(deltas)

    def take(self, at):
        return self.deltas.pop(0) if self.deltas else (0, 0)


def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec("x", LATENCY, target=1.0, threshold_ns=100)
    with pytest.raises(ValueError):
        SLOSpec("x", "throughput", target=0.99)
    with pytest.raises(ValueError):
        SLOSpec("x", LATENCY, target=0.99)  # latency needs a threshold
    SLOSpec("x", AVAILABILITY, target=0.99)  # availability does not


def test_rule_validation_and_defaults():
    with pytest.raises(ValueError):
        BurnRateRule("bad", long_window_ns=100, short_window_ns=200,
                     burn_threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("bad", long_window_ns=100, short_window_ns=50,
                     burn_threshold=0.0)
    fast, slow = default_burn_rules(1_000_000)
    assert fast.name == "fast-burn"
    assert (fast.long_window_ns, fast.short_window_ns) == (100_000, 25_000)
    assert fast.burn_threshold == 14.4
    assert slow.name == "slow-burn"
    assert (slow.long_window_ns, slow.short_window_ns) == (333_333, 100_000)
    assert slow.burn_threshold == 6.0
    with pytest.raises(ValueError):
        default_burn_rules(0)


def test_counter_ratio_source_takes_deltas():
    registry = MetricRegistry()
    good, bad = registry.counter("served"), registry.counter("shed")
    source = CounterRatioSource(good, bad)
    good.inc(10)
    bad.inc(1)
    assert source.take(0) == (10, 1)
    good.inc(5)
    assert source.take(1) == (5, 0)


def test_latency_threshold_source_splits_on_exact_bucket_bound():
    hist = WindowedHistogram("lat", window_ns=1000)
    source = LatencyThresholdSource(hist, threshold_ns=100_000)
    hist.record(0, 50_000)   # good
    hist.record(0, 100_000)  # good: buckets hold (lo, hi], bound included
    hist.record(0, 100_001)  # bad: strictly over the threshold
    assert source.take(0) == (2, 1)
    hist.record(0, 99_999)
    assert source.take(1) == (1, 0)


def test_burn_rate_math_over_trailing_windows():
    spec = SLOSpec("avail", AVAILABILITY, target=0.999)
    monitor = SLOMonitor(spec, ScriptedSource([(99, 1), (100, 0)]), RULES)
    monitor.observe(1000)
    # 1 bad / 100 total = 1% bad; budget is 0.1% -> burn 10x
    assert monitor.burn_rate(1000, 10_000) == pytest.approx(10.0)
    monitor.observe(2000)
    # trailing 10us window now holds both samples: 1/200 -> 5x
    assert monitor.burn_rate(2000, 10_000) == pytest.approx(5.0)
    # a window covering only the clean sample burns 0
    assert monitor.burn_rate(2000, 1000) == pytest.approx(0.0)
    # empty window -> 0, not NaN
    assert monitor.burn_rate(50_000, 1000) == 0.0


def test_alert_fires_only_when_both_windows_burn():
    spec = SLOSpec("avail", AVAILABILITY, target=0.99)
    # long window 10us, short 2us, threshold 10x (= 10% bad at 1% budget)
    monitor = SLOMonitor(
        spec,
        ScriptedSource([(80, 20), (100, 0), (100, 0)]),
        RULES,
    )
    monitor.observe(1000)  # long 20x, short 20x -> fires
    assert len(monitor.alerts) == 1
    alert = monitor.alerts[0]
    assert (alert.slo, alert.rule) == ("avail", "fast-burn")
    assert alert.fired_at_ns == 1000
    assert alert.resolved_at_ns is None
    monitor.observe(3500)  # long still 10x, short (last 2us) clean -> resolves
    assert alert.resolved_at_ns == 3500
    monitor.observe(4000)
    assert len(monitor.alerts) == 1  # no re-fire while clean


def test_long_window_alone_does_not_fire():
    spec = SLOSpec("avail", AVAILABILITY, target=0.99)
    monitor = SLOMonitor(
        spec, ScriptedSource([(0, 20), (50, 0)]), RULES
    )
    monitor.observe(1000)
    fired = len(monitor.alerts)
    # second sample: the long window still burns hard (20 bad / 70 total
    # = 28.6x at a 1% budget) but the short window holds only the clean
    # sample — no new alert may fire
    monitor.observe(4000)
    assert monitor.burn_rate(4000, 10_000) > 10.0
    assert monitor.burn_rate(4000, 2_000) == 0.0
    assert len(monitor.alerts) == fired


def test_peak_burn_and_budget_accounting():
    spec = SLOSpec("avail", AVAILABILITY, target=0.999)
    monitor = SLOMonitor(
        spec, ScriptedSource([(999, 1), (998, 2), (1000, 0)]), RULES
    )
    for t in (1000, 2000, 3000):
        monitor.observe(t)
    assert monitor.good_total == 2997
    assert monitor.bad_total == 3
    assert monitor.total == 3000
    # allowed = 0.1% of 3000 = 3 bad -> exactly at budget
    assert monitor.budget_consumed == pytest.approx(1.0)
    assert monitor.peak_burn > 0.0
    snap = monitor.snapshot()
    assert snap["good"] == 2997 and snap["bad"] == 3
    assert snap["spec"]["name"] == "avail"
    assert [r["name"] for r in snap["rules"]] == ["fast-burn"]


def test_empty_monitor_is_calm():
    spec = SLOSpec("lat", LATENCY, target=0.999, threshold_ns=100_000)
    monitor = SLOMonitor(spec, ScriptedSource([]), RULES)
    monitor.observe(1000)
    assert monitor.last_burn == 0.0
    assert monitor.budget_consumed == 0.0
    assert not monitor.alerts
    with pytest.raises(ValueError):
        SLOMonitor(spec, ScriptedSource([]), ())


def test_alert_peak_tracks_while_active():
    spec = SLOSpec("avail", AVAILABILITY, target=0.99)
    monitor = SLOMonitor(
        spec,
        ScriptedSource([(50, 50), (20, 80), (100, 0)]),
        RULES,
    )
    monitor.observe(1000)
    monitor.observe(2000)  # worse while active: peak rises, same alert
    assert len(monitor.alerts) == 1
    alert = monitor.alerts[0]
    assert alert.peak_burn > alert.burn_long
    assert monitor.alerts_for("fast-burn") == [alert]
    assert alert.to_dict()["peak_burn"] == round(alert.peak_burn, 3)
