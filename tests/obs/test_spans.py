"""Unit tests for virtual-time spans."""

from repro.obs.metrics import MetricRegistry
from repro.obs.spans import NULL_SPAN, Span


def test_span_duration_and_attrs():
    span = Span("commit", 100, tid=7)
    assert not span.ended
    assert span.duration_ns == 0
    span.annotate(inodes=3)
    span.end(400)
    assert span.ended
    assert span.duration_ns == 300
    assert span.attrs == {"tid": 7, "inodes": 3}


def test_span_end_is_idempotent():
    span = Span("op", 0)
    assert span.end(50) == 50
    assert span.end(999) == 999  # returns at, but keeps first end time
    assert span.end_ns == 50


def test_span_end_never_before_start():
    span = Span("op", 100)
    span.end(40)
    assert span.end_ns == 100
    assert span.duration_ns == 0


def test_child_spans_nest_and_serialize():
    root = Span("parent", 0)
    child = root.child("inner", 10, step=1)
    child.end(20)
    root.end(30)
    assert child.parent is root
    assert root.children == [child]
    doc = root.to_dict()
    assert doc["name"] == "parent"
    assert doc["duration_ns"] == 30
    assert doc["children"][0]["name"] == "inner"
    assert doc["children"][0]["attrs"] == {"step": 1}


def test_registry_collects_only_roots_but_times_all():
    reg = MetricRegistry()
    root = reg.start_span("outer", at=0)
    child = reg.start_span("inner", at=5, parent=root)
    child.end(15)
    root.end(40)
    assert [s.name for s in reg.spans] == ["outer"]
    assert reg.spans_named("outer") == [root]
    assert reg.find_histogram("span.inner_ns").count == 1
    assert reg.find_histogram("span.outer_ns").sum == 40


def test_unfinished_spans_are_not_collected():
    reg = MetricRegistry()
    reg.start_span("open", at=0)
    assert reg.spans == []
    assert reg.find_histogram("span.open_ns") is None


def test_null_span_absorbs_everything():
    assert NULL_SPAN.child("x", 5) is NULL_SPAN
    assert NULL_SPAN.annotate(a=1) is NULL_SPAN
    assert NULL_SPAN.end(123) == 123
    assert NULL_SPAN.to_dict() == {}
    assert NULL_SPAN.duration_ns == 0


def test_span_listeners_see_every_finished_span():
    reg = MetricRegistry()
    seen = []
    reg.add_span_listener(seen.append)
    root = reg.start_span("outer", at=0)
    child = root.child("inner", 10)
    child.end(20)
    root.end(30)
    # children fire too, in finish order — not just collected roots
    assert [s.name for s in seen] == ["inner", "outer"]


def test_removed_span_listener_stops_firing():
    reg = MetricRegistry()
    seen = []
    reg.add_span_listener(seen.append)
    reg.start_span("a", at=0).end(1)
    reg.remove_span_listener(seen.append)
    reg.start_span("b", at=2).end(3)
    assert [s.name for s in seen] == ["a"]
