# Convenience targets for the NobLSM reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/property

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.bench all

artifacts: test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results/*.txt .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
