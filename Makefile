# Convenience targets for the NobLSM reproduction.

PYTHON ?= python

# Every repro invocation — tests, benches, gates — runs with the source
# tree on PYTHONPATH through this one variable. Targets must not spell
# PYTHONPATH out by hand; tests/test_makefile_pythonpath.py enforces it.
RUN = PYTHONPATH=src $(PYTHON)

.PHONY: install test test-fast bench bench-full figures refresh-baselines \
	perf-gate profile speed speed-gate refresh-speed-baseline \
	soak soak-gate refresh-soak-baseline \
	serve serve-gate refresh-serve-baseline \
	amplification amplification-gate refresh-amplification-baseline \
	slo slo-gate refresh-slo-baseline \
	artifacts clean

# CI-sized soak: short enough for a gate job, long enough for the tree
# to reach the bursty-compaction regime. refresh-soak-baseline MUST use
# the same parameters or the gate compares different experiments.
SOAK_GATE_ARGS = --rate 40000 --duration 0.3 --window-ms 25

# CI-sized serve run: hot enough that the untuned cluster's hot shard
# sheds and queues, short enough for a gate job. These match the serve
# CLI defaults; refresh-serve-baseline MUST use the same parameters or
# the gate compares different experiments.
SERVE_GATE_ARGS = --rate 90000 --duration 0.3 --window-ms 25

# CI-sized flight-recorder run: the serve pair with continuous
# telemetry and SLO burn-rate alerting; the untuned cluster's shed
# burst must fire a fast-burn alert while the fair twin stays silent.
# refresh-slo-baseline MUST use the same parameters or the gate
# compares different experiments.
SLO_GATE_ARGS = --rate 90000 --duration 0.3 --window-ms 25 --interval-ms 5

# CI-sized amplification sweep: noblsm vs noblsm-kv at 1 KiB and 4 KiB
# values (the amplification CLI defaults). refresh-amplification-baseline
# MUST use the same parameters or the gate compares different experiments.
AMP_GATE_ARGS =

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(RUN) -m pytest tests/

test-fast:
	$(RUN) -m pytest tests/ -x -q --ignore=tests/property

bench:
	$(RUN) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 $(RUN) -m pytest benchmarks/ --benchmark-only

figures:
	$(RUN) -m repro.bench all

# Re-record the perf-gate baselines after a deliberate behaviour change.
# The simulation is deterministic, so these only move when the code does;
# commit the refreshed JSONs together with the change that explains them.
refresh-baselines:
	$(RUN) -m repro.bench.cli fillrandom --observe --json benchmarks/baselines
	$(RUN) -m repro.bench.cli parallelism --json benchmarks/baselines

# Run the same comparison CI runs: current numbers vs recorded baselines.
perf-gate:
	rm -rf results/perf-gate && mkdir -p results/perf-gate
	$(RUN) -m repro.bench.cli fillrandom --observe \
		--trace-out results/perf-gate/fillrandom-trace.json \
		--json results/perf-gate
	$(RUN) -m repro.bench.cli parallelism --json results/perf-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/fillrandom.json results/perf-gate/fillrandom.json
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/parallelism.json results/perf-gate/parallelism.json

# Profile the fillrandom hot path: writes a cProfile dump and prints
# the top frames by cumulative time. Start here before optimising.
profile:
	mkdir -p results/profile
	$(RUN) -m cProfile -o results/profile/fillrandom.pstats \
		-m repro.bench.cli fillrandom --scale 2000
	$(RUN) -c "import pstats; \
		pstats.Stats('results/profile/fillrandom.pstats') \
		.sort_stats('cumulative').print_stats(30)"

# Wall-clock simulator throughput (ops/sec real time, median of repeats).
speed:
	$(RUN) -m repro.bench.cli speed

# CI's speed gate: current wall-clock throughput vs the recorded
# baseline, with the generous higher-is-better threshold.
speed-gate:
	rm -rf results/speed-gate && mkdir -p results/speed-gate
	$(RUN) -m repro.bench.cli speed --json results/speed-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/speed.json results/speed-gate/speed.json

# Re-record the wall-clock baseline on the machine that runs the gate.
refresh-speed-baseline:
	$(RUN) -m repro.bench.cli speed --json benchmarks/baselines

# Long-horizon stability soak: untuned vs rate-limited + dynamic
# slowdown, windowed p50/p99/p99.9 + stall timeline (repro.soak/1).
soak:
	mkdir -p results
	$(RUN) -m repro.bench.cli soak --json results

# CI's stability gate: the CI-sized soak pair vs the recorded baseline.
# Both rows (soak, soak-tuned) are gated, so a change that destroys the
# tuned variant's stability fails even if the untuned row is unchanged.
soak-gate:
	rm -rf results/soak-gate && mkdir -p results/soak-gate
	$(RUN) -m repro.bench.cli soak $(SOAK_GATE_ARGS) \
		--json results/soak-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/soak.json results/soak-gate/soak.json

# Re-record the stability baseline after a deliberate behaviour change.
refresh-soak-baseline:
	$(RUN) -m repro.bench.cli soak $(SOAK_GATE_ARGS) \
		--json benchmarks/baselines

# Multi-tenant serving run: sharded cluster, untuned vs fair-scheduled,
# per-tenant tails + fairness + admission counts (repro.serve/1).
serve:
	mkdir -p results
	$(RUN) -m repro.bench.cli serve --json results

# CI's serving gate: the CI-sized serve pair vs the recorded baseline.
# Both rows (serve, serve-fair) are gated, so a change that destroys
# the fair variant's isolation fails even if the untuned row holds.
serve-gate:
	rm -rf results/serve-gate && mkdir -p results/serve-gate
	$(RUN) -m repro.bench.cli serve $(SERVE_GATE_ARGS) \
		--json results/serve-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/serve.json results/serve-gate/serve.json

# Re-record the serving baseline after a deliberate behaviour change.
refresh-serve-baseline:
	$(RUN) -m repro.bench.cli serve $(SERVE_GATE_ARGS) \
		--json benchmarks/baselines

# Write/read/space amplification: noblsm vs noblsm-kv (repro.amplification/1).
amplification:
	mkdir -p results
	$(RUN) -m repro.bench.cli amplification --json results

# CI's amplification gate: the kv-separation claim (kv writes strictly
# fewer bytes per user byte at 4 KiB values) plus both stores' rows
# gated against the recorded baseline.
amplification-gate:
	rm -rf results/amplification-gate && mkdir -p results/amplification-gate
	$(RUN) -m repro.bench.cli amplification $(AMP_GATE_ARGS) \
		--json results/amplification-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/amplification.json \
		results/amplification-gate/amplification.json

# Re-record the amplification baseline after a deliberate behaviour change.
refresh-amplification-baseline:
	$(RUN) -m repro.bench.cli amplification $(AMP_GATE_ARGS) \
		--json benchmarks/baselines

# Flight recorder: serve pair with continuous telemetry, SLO burn-rate
# alerts, and the ascii dashboard (repro.slo/1 + repro.timeseries/1).
slo:
	mkdir -p results
	$(RUN) -m repro.bench.cli slo --json results

# CI's alerting gate, two assertions in one run: --gate checks alert
# *discrimination* (untuned fires a fast-burn alert, tuned fires none),
# then compare checks the alert counts/burn levels against the recorded
# baseline so alerts cannot silently appear or vanish.
slo-gate:
	rm -rf results/slo-gate && mkdir -p results/slo-gate
	$(RUN) -m repro.bench.cli slo $(SLO_GATE_ARGS) --gate \
		--json results/slo-gate
	$(RUN) -m repro.bench.cli compare \
		benchmarks/baselines/slo.json results/slo-gate/slo.json \
		--json results/slo-gate

# Re-record the alerting baseline after a deliberate behaviour change.
refresh-slo-baseline:
	$(RUN) -m repro.bench.cli slo $(SLO_GATE_ARGS) --gate \
		--json benchmarks/baselines

artifacts: test bench
	$(RUN) -m pytest tests/ 2>&1 | tee test_output.txt
	$(RUN) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf results/*.txt .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
