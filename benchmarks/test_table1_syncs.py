"""Table 1: number of syncs and size of data synced (fillrandom, 1 KB).

Paper row (10 M ops):

============== ======= =====
store          syncs   GB
============== ======= =====
LevelDB        1,061   61.55
BoLT             659   55.15
L2SM           1,046   60.98
RocksDB          606   35.82
HyperLevelDB   2,684   47.43
PebblesDB        713   42.61
NobLSM           160    9.82
============== ======= =====

NobLSM calls 84.9% fewer syncs than LevelDB and flushes ~6x less data.
"""

from conftest import bench_scale, write_result

from repro.bench.figures import render_table1, table1

PAPER_TABLE1 = {
    "leveldb": (1061, 61.55),
    "bolt": (659, 55.15),
    "l2sm": (1046, 60.98),
    "rocksdb": (606, 35.82),
    "hyperleveldb": (2684, 47.43),
    "pebblesdb": (713, 42.61),
    "noblsm": (160, 9.82),
}


def test_table1_sync_counts(benchmark, record_result):
    scale = bench_scale(500.0)
    data = benchmark.pedantic(table1, kwargs={"scale": scale}, rounds=1, iterations=1)
    record_result(
        "table1_syncs",
        render_table1(scale),
        payload={
            "schema": "repro.figure/1",
            "figure": "table1",
            "title": "number of syncs and paper-equivalent GB synced",
            "scale": scale,
            "stores": {
                store: {"syncs": syncs, "gb_equiv": round(gb, 3)}
                for store, (syncs, gb) in data.items()
            },
            "paper": {
                store: {"syncs": syncs, "gb": gb}
                for store, (syncs, gb) in PAPER_TABLE1.items()
            },
        },
    )

    ldb_syncs, ldb_gb = data["leveldb"]
    nob_syncs, nob_gb = data["noblsm"]

    # NobLSM syncs the least and flushes the least (paper's claim)
    for store, (syncs, gb) in data.items():
        if store == "noblsm":
            continue
        assert nob_syncs < syncs, f"NobLSM should sync less than {store}"
        assert nob_gb < gb, f"NobLSM should flush less than {store}"

    # the ~85% sync-count reduction vs LevelDB
    reduction = 1 - nob_syncs / ldb_syncs
    assert reduction > 0.75, f"sync reduction only {reduction:.0%}"
    # the ~6x data-volume reduction
    assert ldb_gb / nob_gb > 3.5

    # HyperLevelDB syncs the most often (hardcoded small tables)
    assert data["hyperleveldb"][0] == max(s for s, _ in data.values())

    benchmark.extra_info["noblsm_syncs"] = nob_syncs
    benchmark.extra_info["leveldb_syncs"] = ldb_syncs
    benchmark.extra_info["noblsm_gb_equiv"] = round(nob_gb, 2)
    benchmark.extra_info["leveldb_gb_equiv"] = round(ldb_gb, 2)
    benchmark.extra_info["paper"] = str(PAPER_TABLE1)
