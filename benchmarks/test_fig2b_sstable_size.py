"""Figure 2b: SSTable size and syncs vs execution time.

Paper: fillrandom/overwrite of 10 M x 1 KB pairs. With 2 MB SSTables,
disabling syncs cuts execution time by 53.2% / 51.4%; moving from 2 MB
to 64 MB SSTables cuts the synced runs by 62.4% / 56.2%; yet even with
64 MB tables syncs still cost 45.6% / 59.4% — "large SSTables alone
cannot fully mitigate the cost of syncs".
"""

from conftest import bench_scale, write_result

from repro.bench.figures import fig2b
from repro.bench.report import format_table


def _render_from(data):
    rows = []
    for workload in ("fillrand", "overwrt"):
        for label in ("2MB", "64MB"):
            rows.append(
                [
                    f"{workload} {label}",
                    round(data[f"{workload}-{label}-sync"], 1),
                    round(data[f"{workload}-{label}-nosync"], 1),
                ]
            )
    return format_table(
        "Figure 2b: paper-equivalent execution time (s), Sync vs No-Sync",
        ["workload/table", "Sync", "No-Sync"],
        rows,
    )


def test_fig2b_sstable_size_and_syncs(benchmark, record_result):
    scale = bench_scale(1000.0)
    data = benchmark.pedantic(
        fig2b, args=(scale,), rounds=1, iterations=1
    )
    record_result(
        "fig2b_sstable_size",
        _render_from(data),
        payload={
            "schema": "repro.figure/1",
            "figure": "2b",
            "title": "paper-equivalent execution time (s), Sync vs No-Sync",
            "scale": scale,
            "points": {key: round(value, 3) for key, value in data.items()},
        },
    )

    for workload in ("fillrand", "overwrt"):
        small_sync = data[f"{workload}-2MB-sync"]
        small_nosync = data[f"{workload}-2MB-nosync"]
        large_sync = data[f"{workload}-64MB-sync"]
        large_nosync = data[f"{workload}-64MB-nosync"]
        # removing syncs helps at both table sizes
        assert small_nosync < small_sync
        assert large_nosync < large_sync
        # larger tables help the synced configuration substantially
        assert large_sync < small_sync
        # ... but even 64 MB tables leave a large sync penalty
        reduction = 1 - large_nosync / large_sync
        assert reduction > 0.25, (
            f"{workload}: sync penalty at 64MB only {reduction:.0%}"
        )

    benchmark.extra_info["fillrand_2mb_sync_s"] = round(
        data["fillrand-2MB-sync"], 3
    )
    benchmark.extra_info["paper"] = (
        "fillrand 2MB: 601s sync vs 281s no-sync; 64MB: 226s vs 123s"
    )
