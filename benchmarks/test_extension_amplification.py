"""Extension experiment: amplification profile of every store.

Section 6 of the paper: "NobLSM's minimum use of syncs complements
research of reducing write amplifications". This quantifies it — NobLSM
should have the *same* compaction write amplification as LevelDB (it
changes when data is persisted, not how much is rewritten), while
PebblesDB trades read amplification for lower write amplification.
"""

from conftest import bench_scale, write_result

from repro.baselines.registry import PAPER_STORES
from repro.bench.amplification import measure_amplification
from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table


def sweep(scale):
    reports = {}
    for store in PAPER_STORES:
        config = ScaledConfig(scale=scale, value_size=1024)
        reports[store] = measure_amplification(store, config)
    return reports


def test_extension_amplification(benchmark, record_result):
    scale = bench_scale(1000.0)
    reports = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    rows = [
        [
            store,
            report.row()["wa_compaction"],
            report.row()["wa_device"],
            report.row()["ra_point"],
            report.row()["space_amp"],
        ]
        for store, report in reports.items()
    ]
    record_result(
        "extension_amplification",
        format_table(
            "Extension: amplification profile (fillrandom, 1KB)",
            ["store", "WA(compaction)", "WA(device)", "RA(point)", "SA"],
            rows,
        ),
    )
    leveldb = reports["leveldb"]
    noblsm = reports["noblsm"]
    pebbles = reports["pebblesdb"]
    # NobLSM rewrites the same data as LevelDB (same compaction schedule)
    assert noblsm.wa_compaction == (
        __import__("pytest").approx(leveldb.wa_compaction, rel=0.30)
    )
    # PebblesDB: lower write amplification, higher read amplification
    assert pebbles.wa_compaction < leveldb.wa_compaction
    assert pebbles.ra_point > leveldb.ra_point * 0.9
    # every store keeps space amplification sane after settling
    for store, report in reports.items():
        assert report.space_amplification < 4.0, (
            f"{store}: SA {report.space_amplification:.2f}"
        )
    benchmark.extra_info["rows"] = {
        store: report.row() for store, report in reports.items()
    }
