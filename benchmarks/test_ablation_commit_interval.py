"""Ablation: NobLSM's sensitivity to Ext4's commit interval.

DESIGN.md section 5. NobLSM's write path does not block on commits, so
its throughput should be largely insensitive to the commit period (1 s /
5 s / 30 s paper-equivalent). What the interval *does* control is how
long shadow SSTables linger: longer commit periods mean later
``is_committed`` and more transient disk-space overhead — the paper's
temporal-uncertainty argument for the global dependency sets.
"""

from conftest import bench_scale, write_result

from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table
from repro.bench.workloads import ValueGenerator, fillrandom_indices, make_key
from repro.core.noblsm import NobLSM
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.latency import GIB, PM883
from repro.sim.clock import seconds

INTERVALS_S = (1.0, 5.0, 30.0)


def run_with_interval(interval_s, scale):
    config = ScaledConfig(scale=scale, value_size=1024)
    stack = StorageStack(
        StackConfig(
            device=PM883.time_compressed(scale),
            pagecache_bytes=max(
                int(16 * GIB / scale), 30 * config.dataset_bytes()
            ),
            writeback_interval_ns=max(int(seconds(1.0) / scale), 1000),
            journal=JournalConfig(
                commit_interval_ns=max(int(seconds(interval_s) / scale), 1000)
            ),
        )
    )
    options = config.build_options()
    options.reclaim_interval_ns = max(int(seconds(interval_s) / scale), 1000)
    db = NobLSM(stack, options=options)
    values = ValueGenerator(config.value_size, seed=config.seed)
    t = 0
    peak_shadows = 0
    for index in fillrandom_indices(config.num_ops, config.seed):
        t = db.put(make_key(index), values.next(), at=t)
        if db.stats.puts % 500 == 0:
            peak_shadows = max(peak_shadows, db.shadow_count)
    us_per_op = t / 1000 / config.num_ops
    return us_per_op, peak_shadows


def sweep(scale):
    return {
        interval: run_with_interval(interval, scale) for interval in INTERVALS_S
    }


def test_ablation_commit_interval(benchmark, record_result):
    scale = bench_scale(1000.0)
    results = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    rows = [
        [f"{interval:g}s", round(us, 3), shadows]
        for interval, (us, shadows) in results.items()
    ]
    record_result(
        "ablation_commit_interval",
        format_table(
            "Ablation: NobLSM vs Ext4 commit interval (paper-equivalent)",
            ["commit interval", "fillrandom us/op", "peak shadow tables"],
            rows,
        ),
    )
    times = [us for us, _ in results.values()]
    shadows = [s for _, s in results.values()]
    # throughput is insensitive to the commit period (within 35%)
    assert max(times) < 1.35 * min(times), (
        f"NobLSM throughput should not depend on the commit period: {times}"
    )
    # but shadow-space overhead grows with it
    assert shadows[-1] >= shadows[0], f"shadow counts: {shadows}"
    benchmark.extra_info["us_per_op"] = {
        f"{k:g}s": round(v[0], 2) for k, v in results.items()
    }
    benchmark.extra_info["peak_shadows"] = {
        f"{k:g}s": v[1] for k, v in results.items()
    }
