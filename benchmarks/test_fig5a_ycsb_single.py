"""Figure 5a: YCSB with a single client thread.

Paper: on the write-intensive phases NobLSM is 48.0% (Load-A), 50.1% (A),
12.1% (F) and 49.4% (Load-E) under LevelDB, and on A it is 54.6% / 51.2%
/ 57.9% / 64.9% / 67.5% under BoLT / L2SM / RocksDB / HyperLevelDB /
PebblesDB. On read-intensive phases it is comparable or better.
"""

from conftest import bench_scale, full_matrix, series_payload, write_result

from repro.baselines.registry import PAPER_STORES
from repro.bench.figures import fig5
from repro.bench.report import series_by_store
from repro.bench.ycsb import PAPER_ORDER

WRITE_HEAVY = ("load-a", "a", "load-e")


def _stores():
    return PAPER_STORES if full_matrix() else ["leveldb", "bolt", "noblsm"]


def test_fig5a_ycsb_single_thread(benchmark, record_result):
    scale = bench_scale(2000.0)
    series = benchmark.pedantic(
        fig5,
        args=(1,),
        kwargs={"scale": scale, "stores": _stores()},
        rounds=1,
        iterations=1,
    )
    phases = [p for p in PAPER_ORDER if p in next(iter(series.values()))]
    record_result(
        "fig5a_ycsb_single",
        series_by_store(series, phases, "workload",
                        "Figure 5a: YCSB time/op (us, virtual), 1 thread"),
        payload=series_payload(
            "5a", "YCSB time/op (us, virtual), 1 thread", "workload",
            series, threads=1, scale=scale,
        ),
    )

    for phase in WRITE_HEAVY:
        assert series["noblsm"][phase] < series["leveldb"][phase], (
            f"NobLSM should beat LevelDB on write-heavy {phase}"
        )
        assert series["noblsm"][phase] < series["bolt"][phase], (
            f"NobLSM should beat BoLT on write-heavy {phase}"
        )

    load_a_reduction = 1 - series["noblsm"]["load-a"] / series["leveldb"]["load-a"]
    assert load_a_reduction > 0.2, f"Load-A reduction {load_a_reduction:.0%}"

    # read-heavy C: comparable (within 2x either way)
    assert series["noblsm"]["c"] < 2 * series["leveldb"]["c"]

    benchmark.extra_info["load_a_reduction"] = f"-{load_a_reduction:.0%}"
    benchmark.extra_info["paper"] = "Load-A -48.0%, A -50.1%, F -12.1%, Load-E -49.4%"
