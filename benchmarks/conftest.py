"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_SCALE``  — override the scale factor (default: per-bench)
- ``REPRO_BENCH_FULL=1`` — run the full store x value-size matrices
  instead of the representative subsets.

Each benchmark writes the table/series it regenerated to
``results/<name>.txt`` so a full run leaves the paper-comparable output
on disk; benchmarks that pass a structured payload also leave a
machine-readable ``results/<name>.json`` next to it.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale(default: float) -> float:
    value = os.environ.get("REPRO_BENCH_SCALE")
    return float(value) if value else default


def full_matrix() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def write_result(name: str, text: str, payload=None) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if payload is not None:
        with open(RESULTS_DIR / f"{name}.json", "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


def series_payload(figure: str, title: str, x_label: str, series, **extra):
    """Machine-readable payload for one figure's series-by-store data."""
    payload = {
        "schema": "repro.figure/1",
        "figure": figure,
        "title": title,
        "x_label": x_label,
        "series": {
            store: {str(x): value for x, value in points.items()}
            for store, points in series.items()
        },
    }
    payload.update(extra)
    return payload


@pytest.fixture()
def record_result():
    return write_result
