"""Shared benchmark configuration.

Environment knobs:

- ``REPRO_BENCH_SCALE``  — override the scale factor (default: per-bench)
- ``REPRO_BENCH_FULL=1`` — run the full store x value-size matrices
  instead of the representative subsets.

Each benchmark writes the table/series it regenerated to
``results/<name>.txt`` so a full run leaves the paper-comparable output
on disk.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_scale(default: float) -> float:
    value = os.environ.get("REPRO_BENCH_SCALE")
    return float(value) if value else default


def full_matrix() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture()
def record_result():
    return write_result
