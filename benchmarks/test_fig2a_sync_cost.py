"""Figure 2a: the cost of syncs on the SSD (Async vs Direct vs Sync).

Paper anchors (4 GB / 8 GB in 2 MB files on the PM883):
Async 0.83 / 1.72 s, Direct 8.18 / 16.42 s, Sync 10.06 / 22.44 s —
a 9.5x Async-to-Direct jump, +36.7% Direct-to-Sync, 13.0x overall.
"""

from conftest import write_result

from repro.bench.figures import fig2a
from repro.bench.report import format_table
from repro.sim.latency import GIB


def _render_from(data):
    sizes = sorted(next(iter(data.values())))
    rows = [
        [strategy.capitalize()] + [round(data[strategy][s], 2) for s in sizes]
        for strategy in ("async", "direct", "sync")
    ]
    header = ["strategy"] + [f"{s // GIB}GB" for s in sizes]
    return format_table(
        "Figure 2a: execution time (s) of Async, Direct and Sync writing",
        header,
        rows,
    )


def test_fig2a_sync_cost(benchmark, record_result):
    data = benchmark.pedantic(fig2a, rounds=1, iterations=1)
    record_result(
        "fig2a_sync_cost",
        _render_from(data),
        payload={
            "schema": "repro.figure/1",
            "figure": "2a",
            "title": "execution time (s) of Async, Direct and Sync writing",
            "x_label": "total_bytes",
            "series": {
                strategy: {str(size): value for size, value in points.items()}
                for strategy, points in data.items()
            },
        },
    )

    for size in (4 * GIB, 8 * GIB):
        async_s = data["async"][size]
        direct_s = data["direct"][size]
        sync_s = data["sync"][size]
        # shape: Async << Direct < Sync
        assert async_s < direct_s < sync_s
        # magnitude: the paper reports ~9.5x and ~13.0x
        assert 6.0 < direct_s / async_s < 15.0
        assert 9.0 < sync_s / async_s < 20.0
        # sync penalty over direct is tens of percent, not integer factors
        assert 1.05 < sync_s / direct_s < 1.8

    benchmark.extra_info["async_4gb_s"] = round(data["async"][4 * GIB], 3)
    benchmark.extra_info["direct_4gb_s"] = round(data["direct"][4 * GIB], 3)
    benchmark.extra_info["sync_4gb_s"] = round(data["sync"][4 * GIB], 3)
    benchmark.extra_info["paper"] = "async 0.83s, direct 8.18s, sync 10.06s"
