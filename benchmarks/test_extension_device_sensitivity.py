"""Extension experiment: NobLSM's gain vs the device's barrier cost.

Not in the paper, but implied by its conclusion ("there are studies
integrating LSM-trees with SSDs... promising areas we can explore"):
NobLSM removes flush barriers and blocking writeback from the critical
path, so its advantage over LevelDB should *grow* as syncs get more
expensive. We sweep the device's FLUSH cost from PM883-like to
HDD-like and report the fillrandom reduction at each point.
"""

from dataclasses import replace

from conftest import bench_scale, write_result

from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table
from repro.bench.workloads import ValueGenerator, fillrandom_indices, make_key
from repro.baselines.registry import make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import micros, seconds
from repro.sim.latency import GIB, PM883

FLUSH_COSTS_US = (300, 900, 4000, 15000)  # paper device is ~900 us


def run_store(store_name, flush_us, scale):
    config = ScaledConfig(scale=scale, value_size=1024)
    device = replace(
        PM883,
        name=f"flush-{flush_us}us",
        flush_ns=micros(flush_us),
        barrier_extra_ns=micros(flush_us) // 10,
    ).time_compressed(scale)
    stack = StorageStack(
        StackConfig(
            device=device,
            pagecache_bytes=max(
                int(16 * GIB / scale), 30 * config.dataset_bytes()
            ),
            writeback_interval_ns=max(int(seconds(1.0) / scale), 1000),
            journal=JournalConfig(
                commit_interval_ns=max(int(seconds(5.0) / scale), 1000)
            ),
        )
    )
    db = make_store(store_name, stack, options=config.build_options())
    values = ValueGenerator(config.value_size, seed=config.seed)
    t = 0
    for index in fillrandom_indices(config.num_ops, config.seed):
        t = db.put(make_key(index), values.next(), at=t)
    return t / 1000 / config.num_ops


def sweep(scale):
    rows = {}
    for flush_us in FLUSH_COSTS_US:
        leveldb = run_store("leveldb", flush_us, scale)
        noblsm = run_store("noblsm", flush_us, scale)
        rows[flush_us] = (leveldb, noblsm, 1 - noblsm / leveldb)
    return rows


def test_extension_device_sensitivity(benchmark, record_result):
    scale = bench_scale(1000.0)
    rows = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    record_result(
        "extension_device_sensitivity",
        format_table(
            "Extension: NobLSM's fillrandom gain vs device FLUSH cost",
            ["flush (us)", "leveldb us/op", "noblsm us/op", "reduction"],
            [
                [f, round(l, 2), round(n, 2), f"{r:.0%}"]
                for f, (l, n, r) in rows.items()
            ],
        ),
    )
    reductions = [r for _, _, r in rows.values()]
    # NobLSM always wins...
    assert all(r > 0 for r in reductions)
    # ...and its advantage grows with the barrier cost
    assert reductions[-1] > reductions[0]
    benchmark.extra_info["reductions"] = {
        f"{f}us": f"{r:.0%}" for f, (_, _, r) in rows.items()
    }
