"""Extension experiment: client-thread scaling (beyond Figure 5b).

The paper only contrasts one and four threads. This sweep runs YCSB
Load-A (write-only) and C (read-only) at 1/2/4/8 client threads and
checks the two mechanisms Figure 5b's analysis rests on:

- writes serialize on the single writer queue — thread count buys
  nothing on Load-A, for every store;
- cache-resident reads have no shared lock — workload C scales
  near-linearly until the op stream runs out.
"""

from conftest import bench_scale, write_result

from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table
from repro.bench.ycsb import run_ycsb_suite

THREADS = (1, 2, 4, 8)


def sweep(scale):
    rows = {}
    for store in ("leveldb", "noblsm"):
        for threads in THREADS:
            config = ScaledConfig(scale=scale, value_size=1024, threads=threads)
            results = run_ycsb_suite(
                store, config, workloads=["load-a", "c"]
            )
            rows[(store, threads)] = (
                results["load-a"].us_per_op,
                results["c"].us_per_op,
            )
    return rows


def test_extension_thread_scaling(benchmark, record_result):
    scale = bench_scale(4000.0)
    rows = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    record_result(
        "extension_thread_scaling",
        format_table(
            "Extension: YCSB us/op vs client threads",
            ["store", "threads", "load-a us/op", "c us/op"],
            [
                [store, threads, round(load, 3), round(read, 3)]
                for (store, threads), (load, read) in rows.items()
            ],
        ),
    )
    for store in ("leveldb", "noblsm"):
        load_1 = rows[(store, 1)][0]
        load_8 = rows[(store, 8)][0]
        # writes serialize: 8 threads gain under 25%
        assert load_8 > 0.75 * load_1, (
            f"{store}: loads should not scale with threads "
            f"({load_1:.2f} -> {load_8:.2f})"
        )
        read_1 = rows[(store, 1)][1]
        read_4 = rows[(store, 4)][1]
        # reads scale: 4 threads at least halve time/op
        assert read_4 < 0.6 * read_1, (
            f"{store}: reads should scale with threads "
            f"({read_1:.2f} -> {read_4:.2f})"
        )
    # NobLSM keeps its write advantage at every thread count
    for threads in THREADS:
        assert rows[("noblsm", threads)][0] < rows[("leveldb", threads)][0]
    benchmark.extra_info["load_a"] = {
        f"{s}x{n}": round(v[0], 2) for (s, n), v in rows.items()
    }
