"""Figure 4: db_bench across the seven stores and five value sizes.

Paper shapes to reproduce:

- 4a/4b (fillrandom/overwrite): NobLSM is the fastest consistency-
  preserving store — up to 47.1% under LevelDB, roughly half of BoLT;
- 4c (readseq): all stores within a few us/op of each other;
- 4d (readrandom): NobLSM comparable-or-better (24.0% under LevelDB at
  1 KB via cheaper seek compactions).
"""

from conftest import bench_scale, full_matrix, series_payload, write_result

from repro.baselines.registry import PAPER_STORES
from repro.bench.figures import fig4
from repro.bench.report import series_by_store


def _render_from(series, workload, label):
    sizes = sorted(next(iter(series.values())))
    return series_by_store(
        series, sizes, "value size (B)",
        f"Figure {label}: {workload} time/op (us, virtual)",
    )


def _payload_from(series, workload, label):
    return series_payload(
        label,
        f"{workload} time/op (us, virtual)",
        "value_size_bytes",
        series,
        workload=workload,
        scale=bench_scale(500.0),
    )


def _sizes():
    return (256, 512, 1024, 2048, 4096) if full_matrix() else (256, 1024, 4096)


def _stores():
    return PAPER_STORES if full_matrix() else [
        "leveldb", "bolt", "rocksdb", "pebblesdb", "noblsm",
    ]


def _run(workload):
    return fig4(
        workload,
        stores=_stores(),
        value_sizes=_sizes(),
        scale=bench_scale(500.0),
    )


def test_fig4a_fillrandom(benchmark, record_result):
    series = benchmark.pedantic(_run, args=("fillrandom",), rounds=1, iterations=1)
    record_result(
        "fig4a_fillrandom",
        _render_from(series, "fillrandom", "4a"),
        payload=_payload_from(series, "fillrandom", "4a"),
    )
    for size in _sizes():
        assert series["noblsm"][size] < series["leveldb"][size], (
            f"NobLSM should beat LevelDB on fillrandom at {size}B"
        )
        assert series["noblsm"][size] < series["bolt"][size], (
            f"NobLSM should beat BoLT on fillrandom at {size}B"
        )
    # the paper's headline: up to ~44-47% under LevelDB at 1-2 KB values
    reduction = 1 - series["noblsm"][1024] / series["leveldb"][1024]
    assert reduction > 0.25, f"NobLSM reduction only {reduction:.0%} at 1KB"
    benchmark.extra_info["noblsm_vs_leveldb_1kb"] = f"-{reduction:.0%}"
    benchmark.extra_info["paper"] = "-43.6% at 1KB, up to -47.1% at 2KB"


def test_fig4b_overwrite(benchmark, record_result):
    series = benchmark.pedantic(_run, args=("overwrite",), rounds=1, iterations=1)
    record_result(
        "fig4b_overwrite",
        _render_from(series, "overwrite", "4b"),
        payload=_payload_from(series, "overwrite", "4b"),
    )
    for size in _sizes():
        assert series["noblsm"][size] < series["leveldb"][size]
    reduction = 1 - series["noblsm"][4096] / series["leveldb"][4096]
    assert reduction > 0.2
    benchmark.extra_info["noblsm_vs_leveldb_4kb"] = f"-{reduction:.0%}"
    benchmark.extra_info["paper"] = "overwrite: -47.5% at 4KB"


def test_fig4c_readseq(benchmark, record_result):
    series = benchmark.pedantic(_run, args=("readseq",), rounds=1, iterations=1)
    record_result(
        "fig4c_readseq",
        _render_from(series, "readseq", "4c"),
        payload=_payload_from(series, "readseq", "4c"),
    )
    # readseq is cheap and close across stores (paper: 0-3 us/op)
    for size in _sizes():
        assert series["noblsm"][size] < 4 * series["leveldb"][size]
        assert series["leveldb"][size] < 4 * series["noblsm"][size]
    benchmark.extra_info["paper"] = "all stores within ~0-3 us/op"


def test_fig4d_readrandom(benchmark, record_result):
    series = benchmark.pedantic(_run, args=("readrandom",), rounds=1, iterations=1)
    record_result(
        "fig4d_readrandom",
        _render_from(series, "readrandom", "4d"),
        payload=_payload_from(series, "readrandom", "4d"),
    )
    # NobLSM comparable-or-better than LevelDB (paper: -24% at 1KB)
    for size in _sizes():
        assert series["noblsm"][size] <= 1.5 * series["leveldb"][size]
    benchmark.extra_info["paper"] = "NobLSM -24.0% vs LevelDB at 1KB"
