"""Ablation: reclamation poll period vs shadow-space overhead.

DESIGN.md section 5. The paper matches the reclamation poll to Ext4's
5 s commit interval "to reduce unnecessary checks across the user- and
kernel-spaces". Polling faster only burns syscalls (commits have not
happened yet); polling slower retains shadows longer. This bench sweeps
the poll period and reports syscall counts and peak shadow residency.
"""

from conftest import bench_scale, write_result

from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table
from repro.bench.workloads import ValueGenerator, fillrandom_indices, make_key
from repro.core.noblsm import NobLSM
from repro.sim.clock import seconds

POLL_PERIODS_S = (1.0, 5.0, 25.0)


def run_with_poll(poll_s, scale):
    config = ScaledConfig(scale=scale, value_size=1024)
    stack = config.build_stack()
    options = config.build_options()
    options.reclaim_interval_ns = max(int(seconds(poll_s) / scale), 1000)
    db = NobLSM(stack, options=options)
    values = ValueGenerator(config.value_size, seed=config.seed)
    t = 0
    peak_shadows = 0
    for index in fillrandom_indices(config.num_ops, config.seed):
        t = db.put(make_key(index), values.next(), at=t)
        if db.stats.puts % 500 == 0:
            peak_shadows = max(peak_shadows, db.shadow_count)
    return {
        "us_per_op": t / 1000 / config.num_ops,
        "is_committed_calls": stack.syscalls.is_committed_calls,
        "peak_shadows": peak_shadows,
        "reclaim_runs": db.reclaim_runs,
    }


def sweep(scale):
    return {poll: run_with_poll(poll, scale) for poll in POLL_PERIODS_S}


def test_ablation_reclaim_period(benchmark, record_result):
    scale = bench_scale(1000.0)
    results = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    rows = [
        [
            f"{poll:g}s",
            round(r["us_per_op"], 3),
            r["is_committed_calls"],
            r["peak_shadows"],
            r["reclaim_runs"],
        ]
        for poll, r in results.items()
    ]
    record_result(
        "ablation_reclaim",
        format_table(
            "Ablation: NobLSM reclamation poll period (paper-equivalent)",
            ["poll", "us/op", "is_committed calls", "peak shadows", "polls"],
            rows,
        ),
    )
    fast, paper, slow = (results[p] for p in POLL_PERIODS_S)
    # faster polling issues more syscalls...
    assert fast["is_committed_calls"] >= paper["is_committed_calls"]
    # ...while slower polling retains more shadows
    assert slow["peak_shadows"] >= paper["peak_shadows"]
    # and none of it matters for foreground throughput (background work)
    times = [r["us_per_op"] for r in results.values()]
    assert max(times) < 1.35 * min(times)
    benchmark.extra_info["summary"] = {
        f"{k:g}s": {"calls": v["is_committed_calls"], "shadows": v["peak_shadows"]}
        for k, v in results.items()
    }
