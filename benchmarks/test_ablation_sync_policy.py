"""Ablation: the sync-policy spectrum between LevelDB and volatile.

DESIGN.md section 5. Decompose NobLSM's gain: starting from stock
LevelDB, remove the manifest sync, then the major-output syncs (i.e.
NobLSM), then the minor sync too (volatile). Each step should be
monotonically faster, and the major-output syncs should be the biggest
single contributor — that is the paper's central claim.
"""

from conftest import bench_scale, write_result

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import ScaledConfig
from repro.bench.report import format_table
from repro.baselines.registry import make_store
from repro.lsm.options import Options


def run_policy(sync_minor, sync_major, sync_manifest, scale):
    config = ScaledConfig(scale=scale, value_size=1024)
    stack = config.build_stack()
    options = config.build_options()
    options.sync.sync_minor = sync_minor
    options.sync.sync_major = sync_major
    options.sync.sync_manifest = sync_manifest
    from repro.lsm.db import DB
    from repro.bench.db_bench import _fill

    db = DB(stack, options=options)
    start = stack.now
    end = _fill(db, config, seed_offset=0, at=start)
    return (end - start) / 1000 / config.num_ops  # us/op


def sweep(scale):
    return {
        "leveldb (all syncs)": run_policy(True, True, True, scale),
        "no manifest sync": run_policy(True, True, False, scale),
        "noblsm (minor only)": run_policy(True, False, False, scale),
        "volatile (none)": run_policy(False, False, False, scale),
    }


def test_ablation_sync_policy(benchmark, record_result):
    scale = bench_scale(1000.0)
    results = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    rows = [[name, round(us, 3)] for name, us in results.items()]
    record_result(
        "ablation_sync_policy",
        format_table(
            "Ablation: fillrandom us/op across the sync-policy spectrum",
            ["policy", "us/op"],
            rows,
        ),
    )
    ordered = list(results.values())
    # each removed sync class helps (monotone non-increasing, small slack)
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier * 1.05
    # removing major-output syncs is the dominant step
    major_gain = results["no manifest sync"] - results["noblsm (minor only)"]
    manifest_gain = results["leveldb (all syncs)"] - results["no manifest sync"]
    minor_gain = results["noblsm (minor only)"] - results["volatile (none)"]
    assert major_gain >= manifest_gain
    assert major_gain >= minor_gain
    benchmark.extra_info["results_us_per_op"] = {
        k: round(v, 2) for k, v in results.items()
    }
