"""Figure 5b: YCSB with four client threads.

Paper: NobLSM stays 30.3% / 40.7% / 34.4% / 38.8% under LevelDB on
Load-A / A / Load-E / F (LevelDB's single background thread limits all
LevelDB-derived stores), and on the read-only workload C NobLSM's time
is about *half* of LevelDB's — seek compactions without syncs don't
stall the concurrent readers.
"""

from conftest import bench_scale, full_matrix, series_payload, write_result

from repro.baselines.registry import PAPER_STORES
from repro.bench.figures import fig5
from repro.bench.report import series_by_store
from repro.bench.ycsb import PAPER_ORDER


def _stores():
    return PAPER_STORES if full_matrix() else ["leveldb", "rocksdb", "noblsm"]


def test_fig5b_ycsb_four_threads(benchmark, record_result):
    scale = bench_scale(2000.0)
    series = benchmark.pedantic(
        fig5,
        args=(4,),
        kwargs={"scale": scale, "stores": _stores()},
        rounds=1,
        iterations=1,
    )
    phases = [p for p in PAPER_ORDER if p in next(iter(series.values()))]
    record_result(
        "fig5b_ycsb_multi",
        series_by_store(series, phases, "workload",
                        "Figure 5b: YCSB time/op (us, virtual), 4 threads"),
        payload=series_payload(
            "5b", "YCSB time/op (us, virtual), 4 threads", "workload",
            series, threads=4, scale=scale,
        ),
    )

    # write-heavy: NobLSM still beats LevelDB under four threads
    for phase in ("load-a", "a", "load-e"):
        assert series["noblsm"][phase] < series["leveldb"][phase], (
            f"NobLSM should beat LevelDB on {phase} with 4 threads"
        )

    # read-only C: NobLSM at least comparable (paper: about half)
    assert series["noblsm"]["c"] <= 1.2 * series["leveldb"]["c"]

    load_a_reduction = 1 - series["noblsm"]["load-a"] / series["leveldb"]["load-a"]
    benchmark.extra_info["load_a_reduction"] = f"-{load_a_reduction:.0%}"
    benchmark.extra_info["paper"] = "Load-A -30.3%, A -40.7%, C about half of LevelDB"
