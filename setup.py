"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` needs bdist_wheel; this setup.py
lets `python setup.py develop` install the package the legacy way.
"""

from setuptools import setup

setup()
