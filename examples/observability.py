#!/usr/bin/env python3
"""Observability walkthrough: metrics, spans and the layer breakdown.

Threads a MetricRegistry through the whole stack, runs a write-heavy
NobLSM workload, then asks the registry where the virtual time went:
per-op latency percentiles, journal-commit and compaction spans with
their structured attributes, the per-layer breakdown, and the versioned
JSON export. Recording never touches the virtual clock, so the same run
with the default no-op registry produces identical timing.

Run:  python examples/observability.py
"""

from repro import NobLSM, Options, StorageStack
from repro.fs.stack import StackConfig
from repro.obs import MetricRegistry, layer_breakdown, to_json
from repro.sim.clock import to_seconds


def main() -> None:
    # One registry per simulated machine, injected at construction.
    obs = MetricRegistry()
    stack = StorageStack(StackConfig(obs=obs))

    options = Options().scaled(2000)  # tiny tables -> lots of compactions
    db = NobLSM(stack, options=options)

    t = 0
    for i in range(5000):
        key = f"user{(i * 7919) % 2500:08d}".encode()
        value = f"profile-{i:06d}".encode() * 8
        t = db.put(key, value, at=t)
    for i in range(500):
        _, t = db.get(f"user{i * 5:08d}".encode(), at=t)
    t = db.close(t)
    stack.settle()

    # --- per-op latency percentiles (virtual ns -> us) ----------------
    print(f"run finished at t={to_seconds(t):.4f} virtual s\n")
    for op in ("put", "get"):
        hist = obs.find_histogram(f"db.{op}_ns")
        print(f"  {op:4s}: n={hist.count:5d}  p50={hist.p50 / 1000:8.2f} us  "
              f"p95={hist.p95 / 1000:8.2f} us  p99={hist.p99 / 1000:8.2f} us")

    # --- spans: journal commits and compactions, with attributes ------
    commits = obs.spans_named("journal.commit")
    print(f"\n  journal commits: {len(commits)}")
    for span in commits[:3]:
        print(f"    tid={span.attrs['tid']} inodes={span.attrs['inodes']} "
              f"bytes={span.attrs['journal_bytes']} "
              f"took {span.duration_ns} ns")

    minors = obs.spans_named("db.compaction.minor")
    majors = obs.spans_named("db.compaction.major")
    print(f"  compactions: {len(minors)} minor, {len(majors)} major")
    if majors:
        span = majors[0]
        print(f"    first major: L{span.attrs['level']}->"
              f"L{span.attrs['output_level']}, "
              f"{span.attrs['input_bytes']} bytes in, "
              f"{span.attrs.get('shadow_retained', 0)} inputs kept as shadows")

    # --- stall attribution (counters) ---------------------------------
    snap = obs.snapshot()
    stalls = {
        name.rsplit(".", 1)[-1]: value
        for name, value in snap["counters"].items()
        if name.startswith("db.stall.")
    }
    print(f"\n  stall attribution (ns): {stalls}")

    # --- the per-layer breakdown --------------------------------------
    print("\n  where the virtual time went (layers overlap by design):")
    for layer, ns in layer_breakdown(obs).items():
        print(f"    {layer:10s} {ns / 1e6:10.3f} ms")

    # --- versioned JSON export ----------------------------------------
    doc = to_json(obs, meta={"example": "observability"})
    print(f"\n  repro.obs/1 JSON export: {len(doc)} bytes "
          f"(write_json(path, obs) saves it)")


if __name__ == "__main__":
    main()
