#!/usr/bin/env python3
"""Disaster recovery with RepairDB.

Simulates the worst case LevelDB's repairer exists for: the MANIFEST and
CURRENT files are destroyed. The normal open path cannot start, but
``repair_db`` salvages every intact SSTable, converts the surviving WAL
into a table, and rebuilds a fresh MANIFEST — after which the store
opens and serves all durable data.

Run:  python examples/repair_tool.py
"""

import random

from repro import DB, Options, StorageStack
from repro.lsm.filenames import current_file_name
from repro.lsm.repair import repair_db


def main() -> None:
    stack = StorageStack()
    options = Options().scaled(4000)
    db = DB(stack, options=options)

    rng = random.Random(7)
    expected = {}
    t = 0
    for _ in range(3000):
        key = f"key{rng.randrange(2000):06d}".encode()
        value = f"value-{rng.randrange(10**9):09d}".encode() * 4
        t = db.put(key, value, at=t)
        expected[key] = value
    t = db.close(t)
    print(f"filled store: {len(expected)} live keys, "
          f"{db.stats.minor_compactions} minor / "
          f"{db.stats.major_compactions} major compactions")

    # disaster: metadata wiped
    for path in list(stack.fs.list_dir("db/")):
        if "MANIFEST" in path or path.endswith("CURRENT"):
            t = stack.fs.unlink(path, at=t)
    print("destroyed MANIFEST and CURRENT")

    result, t = repair_db(stack.fs, "db", Options().scaled(4000), at=t)
    print(f"repair: {result}")

    db = DB(stack, options=Options().scaled(4000))
    missing = 0
    for key, value in sorted(expected.items()):
        got, t = db.get(key, at=t)
        if got != value:
            missing += 1
    print(f"after repair + reopen: {len(expected) - missing}/{len(expected)} "
          f"keys intact ({missing} lost)")
    assert missing == 0, "repair lost data!"
    print("all data recovered.")


if __name__ == "__main__":
    main()
