#!/usr/bin/env python3
"""Run a YCSB head-to-head between the seven stores (Figure 5a, scaled).

Run:  python examples/ycsb_comparison.py [scale]

The default scale (5000) keeps the whole comparison under ~2 minutes of
host time; pass a smaller scale (e.g. 2000) for results closer to the
paper's operating point.
"""

import sys

from repro.baselines.registry import PAPER_STORES
from repro.bench.harness import ScaledConfig
from repro.bench.ycsb import PAPER_ORDER, run_ycsb_suite


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 5000.0
    print(f"YCSB, single thread, scale={scale:g} "
          f"(paper: 50M records loaded, 10M ops per phase)\n")
    header = ["store".ljust(13)] + [p.rjust(8) for p in PAPER_ORDER]
    print("  ".join(header) + "   (us/op, virtual)")
    by_store = {}
    for store in PAPER_STORES:
        config = ScaledConfig(scale=scale, value_size=1024)
        by_store[store] = run_ycsb_suite(store, config)
        row = [store.ljust(13)] + [
            f"{by_store[store][p].us_per_op:8.2f}" for p in PAPER_ORDER
        ]
        print("  ".join(row))
    print()
    baseline, nob = by_store["leveldb"], by_store["noblsm"]
    for phase in ("load-a", "a", "f", "load-e"):
        reduction = 1 - nob[phase].us_per_op / baseline[phase].us_per_op
        print(f"NobLSM vs LevelDB on {phase:7s}: {reduction:+.1%} "
              f"(paper: -48.0% / -50.1% / -12.1% / -49.4%)")


if __name__ == "__main__":
    main()
