#!/usr/bin/env python3
"""Reproduce the paper's motivation (Section 3) end to end.

1. Figure 2a — write 4 GB / 8 GB in 2 MB files with Async, Direct and
   Sync strategies and compare against the paper's measurements.
2. Figure 2b — LevelDB with and without syncs, 2 MB vs 64 MB SSTables.

Run:  python examples/sync_cost_study.py
"""

from repro.bench.figures import fig2b, render_fig2a, render_fig2b

PAPER_FIG2A = {
    ("async", 4): 0.83,
    ("async", 8): 1.72,
    ("direct", 4): 8.18,
    ("direct", 8): 16.42,
    ("sync", 4): 10.06,
    ("sync", 8): 22.44,
}


def main() -> None:
    print(render_fig2a())
    print("\npaper measured:", PAPER_FIG2A)
    print("=> Async -> Direct ~9.5x, Direct -> Sync +~37%, overall ~13x\n")

    scale = 1000.0
    print(render_fig2b(scale))
    data = fig2b(scale)
    for workload in ("fillrand", "overwrt"):
        small = 1 - data[f"{workload}-2MB-nosync"] / data[f"{workload}-2MB-sync"]
        large = 1 - data[f"{workload}-64MB-nosync"] / data[f"{workload}-64MB-sync"]
        shrink = 1 - data[f"{workload}-64MB-sync"] / data[f"{workload}-2MB-sync"]
        print(
            f"{workload}: no-sync saves {small:.0%} at 2MB tables, "
            f"{large:.0%} at 64MB; 2MB->64MB itself saves {shrink:.0%}"
        )
    print(
        "paper: 53.2%/51.4% at 2MB; 45.6%/59.4% at 64MB; 62.4%/56.2% from size"
    )
    print(
        "=> large SSTables alone cannot fully mitigate the cost of syncs"
    )


if __name__ == "__main__":
    main()
