#!/usr/bin/env python3
"""Consistent online backups with snapshots.

A writer keeps updating the store while a backup job iterates a pinned
snapshot. The backup must be a frozen, self-consistent image — no torn
updates, no post-snapshot writes — even though compactions rewrite the
tree underneath it.

Run:  python examples/snapshot_backup.py
"""

import random

from repro import NobLSM, Options, StorageStack


def main() -> None:
    stack = StorageStack()
    db = NobLSM(stack, options=Options().scaled(4000))
    rng = random.Random(11)

    # generation 1: the state the backup should capture
    t = 0
    generation1 = {}
    for i in range(2500):
        key = f"acct{rng.randrange(1200):06d}".encode()
        value = f"gen1-balance-{rng.randrange(10**6):06d}".encode() * 3
        t = db.put(key, value, at=t)
        generation1[key] = value
    print(f"generation 1 written: {len(generation1)} accounts")

    snapshot = db.get_snapshot()
    print(f"backup snapshot pinned at sequence {snapshot.sequence}")

    # generation 2 races with the backup
    for i in range(2500):
        key = f"acct{rng.randrange(1200):06d}".encode()
        value = f"gen2-balance-{rng.randrange(10**6):06d}".encode() * 3
        t = db.put(key, value, at=t)
    t = db.compact_range(t)  # aggressive rewriting under the snapshot
    print("generation 2 written and the whole tree manually compacted")

    # the backup job reads through the snapshot
    backup = {}
    iterator = db.iterate(at=t, snapshot=snapshot)
    while iterator.valid:
        backup[iterator.key] = iterator.value
        iterator.next()
    t = max(t, iterator.time)

    assert backup == generation1, "backup saw torn or post-snapshot data!"
    print(f"backup captured {len(backup)} accounts — exactly generation 1")

    db.release_snapshot(snapshot)
    value, t = db.get(sorted(generation1)[0], at=t)
    assert value.startswith((b"gen1", b"gen2"))
    print("snapshot released; live reads see the newest generation")


if __name__ == "__main__":
    main()
