#!/usr/bin/env python3
"""The paper's consistency test (Section 5.2), as a runnable demo.

The paper types ``halt -f -p -n`` during fillrandom to power off the
machine without flushing dirty data, three times in a row, and checks
that KV pairs stored in SSTables are intact while some pairs in the
(unsynced) logs are broken. This script does the same against both
LevelDB and NobLSM on the simulated stack.

Run:  python examples/crash_consistency.py
"""

import random

from repro import DB, NobLSM, Options, StorageStack
from repro.fs.stack import StackConfig
from repro.fs.jbd2 import JournalConfig
from repro.sim.clock import millis


def build(store_cls):
    stack = StorageStack(
        StackConfig(journal=JournalConfig(commit_interval_ns=millis(50)))
    )
    options = Options().scaled(4000)
    options.reclaim_interval_ns = millis(50)
    return stack, store_cls(stack, options=options)


def run_trial(store_cls, rounds=3, ops_per_round=2000, seed=2022):
    rng = random.Random(seed)
    stack, db = build(store_cls)
    expected = {}
    t = 0
    total_lost_wal = 0
    for round_number in range(1, rounds + 1):
        for _ in range(ops_per_round):
            key = f"key{rng.randrange(4000):08d}".encode()
            value = f"r{round_number}-{rng.randrange(10**9):09d}".encode() * 4
            t = db.put(key, value, at=t)
            expected[key] = value

        # which keys only live in the memtable + unsynced WAL right now?
        volatile = {
            k
            for k in expected
            if db.mem.get(k) is not None
            or (
                db._pending_imm is not None
                and db._pending_imm[0].get(k) is not None
            )
        }

        stack.crash()  # halt -f -p -n
        db = store_cls.__new__(store_cls)
        db.__init__(stack, options=Options().scaled(4000))
        t = stack.now

        stale, lost_durable, lost_wal = 0, 0, 0
        for key, value in sorted(expected.items()):
            got, t = db.get(key, at=t)
            if key in volatile:
                if got != value:
                    lost_wal += 1
                    if got is None:
                        del_value = expected.pop(key)
                    else:
                        expected[key] = got
            else:
                if got is None:
                    lost_durable += 1
                elif got != value:
                    stale += 1
        total_lost_wal += lost_wal
        print(
            f"  crash #{round_number}: {len(expected)} keys tracked, "
            f"SSTable-resident lost={lost_durable} stale={stale}, "
            f"log-tail pairs broken={lost_wal}"
        )
        assert lost_durable == 0, "durable data lost — consistency violated!"
        assert stale == 0, "stale data returned — consistency violated!"
    return total_lost_wal


def main() -> None:
    for name, cls in (("LevelDB", DB), ("NobLSM", NobLSM)):
        print(f"{name}: three sudden power-offs during fillrandom")
        broken = run_trial(cls)
        print(
            f"  => same conclusion as the paper: SSTable data intact, "
            f"{broken} log-tail pairs broken across 3 crashes\n"
        )


if __name__ == "__main__":
    main()
