#!/usr/bin/env python3
"""Quickstart: a NobLSM store on the simulated Ext4/SSD stack.

Creates a store, writes and reads some data, shows the sync counters
(NobLSM syncs KV data exactly once, at minor compactions) and the
dependency tracker at work, then power-fails the machine and recovers.

Run:  python examples/quickstart.py
"""

from repro import NobLSM, Options, StorageStack
from repro.sim.clock import to_micros, to_seconds


def main() -> None:
    # One StorageStack is one simulated machine: virtual clock, SSD,
    # page cache, Ext4 with JBD2 journaling, and the two NobLSM syscalls.
    stack = StorageStack()

    # Scale the paper's 64 MB SSTables down so this demo compacts a lot.
    options = Options().scaled(2000)
    db = NobLSM(stack, options=options)

    # Every operation is time-explicit: pass the submission time, get the
    # completion time back (virtual nanoseconds).
    t = 0
    for i in range(5000):
        key = f"user{(i * 7919) % 2500:08d}".encode()
        value = f"profile-{i:06d}".encode() * 8
        t = db.put(key, value, at=t)

    value, t = db.get(b"user00000000", at=t)
    print(f"get(user00000000) -> {value[:20]!r}... at t={to_seconds(t):.4f}s")

    print(f"\nafter {db.stats.puts} puts in {to_seconds(t):.4f} virtual s "
          f"({to_micros(t) / db.stats.puts:.2f} us/op):")
    print(f"  minor compactions : {db.stats.minor_compactions}")
    print(f"  major compactions : {db.stats.major_compactions}")
    print(f"  sync calls        : {stack.sync_stats.sync_calls} "
          f"(reasons: {dict(stack.sync_stats.by_reason)})")
    print(f"  dependency groups : {db.tracker.groups_registered} registered, "
          f"{db.tracker.groups_resolved} resolved")
    print(f"  shadow SSTables   : {db.shadow_count} retained right now")

    # Let Ext4's asynchronous commits catch up, then reclaim shadows.
    t = db.close(t)
    print(f"\nafter close (journal settled): {db.shadows_deleted} shadows "
          f"deleted, {db.shadow_count} remain")

    # Power failure + recovery: nothing durable is lost.
    stack.crash()
    db = NobLSM(stack, options=options)
    value, t = db.get(b"user00000000", at=stack.now)
    assert value is not None, "durable key lost!"
    print(f"\nafter power failure + recovery: get(user00000000) -> "
          f"{value[:20]!r}... (intact)")


if __name__ == "__main__":
    main()
