#!/usr/bin/env python3
"""Causal tracing walkthrough: trace ids, flows and the critical path.

Attaches a Tracer to the observability registry, runs a compaction-heavy
NobLSM workload on a multi-channel device with two background threads,
then follows one KV batch causally through the stack — client write →
background minor-compaction dump → SSTable inode → JBD2 journal commit →
dependency-group retirement — prints the critical-path attribution table
for put latency, and exports a Perfetto-loadable Chrome trace. Tracing
never moves the virtual clock: the traced timeline is bit-identical to
an untraced run of the same seed.

Run:  python examples/tracing.py [trace.json]
"""

import sys

from repro import NobLSM, Options, StorageStack
from repro.fs.stack import StackConfig
from repro.obs import (
    MetricRegistry,
    Tracer,
    analyze_write_path,
    render_critical_path,
    write_chrome_trace,
)
from repro.sim.clock import to_seconds


def main() -> None:
    # A tracer attaches to an enabled registry BEFORE the stack is built.
    obs = MetricRegistry()
    tracer = Tracer(obs)
    stack = StorageStack(StackConfig(obs=obs, num_channels=4))

    options = Options().scaled(2000)
    options.background_threads = 2
    db = NobLSM(stack, options=options)

    t = 0
    for i in range(5000):
        key = f"user{(i * 7919) % 2500:08d}".encode()
        value = f"profile-{i:06d}".encode() * 8
        t = db.put(key, value, at=t)
    t = db.close(t)
    stack.settle()
    print(f"run finished at t={to_seconds(t):.4f} virtual s")
    print(f"  spans={len(tracer.spans)} io_slices={len(tracer.io_slices)} "
          f"flows={len(tracer.flows)}\n")

    # --- follow one batch through the pipeline ------------------------
    # kv-batch: an acked client write flowing into the background dump
    # that persisted it; journal-commit: the dump's SSTable inode flowing
    # into the JBD2 commit that made it durable; retire: that commit
    # flowing into NobLSM's dependency-group retirement.
    for name in ("kv-batch", "journal-commit", "retire"):
        flows = [f for f in tracer.flows if f.name == name]
        sample = flows[0]
        print(f"  {name:14s} x{len(flows):<5d} e.g. "
              f"[{sample.src_track}] -> [{sample.dst_track}]")

    # --- which thread did the work ------------------------------------
    tracks = {}
    for span in tracer.spans:
        if span.name == "db.compaction.minor":
            tracks[span.track] = tracks.get(span.track, 0) + 1
    print(f"\n  minor dumps per background thread: {tracks}")

    # --- critical-path attribution for puts ---------------------------
    report = analyze_write_path(obs)
    print()
    print(render_critical_path(report, obs))

    # --- Perfetto export ----------------------------------------------
    out = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    doc = write_chrome_trace(out, tracer, meta={"example": "tracing"})
    print(f"\n  wrote {out} ({len(doc['traceEvents'])} events) — "
          f"open at ui.perfetto.dev")


if __name__ == "__main__":
    main()
