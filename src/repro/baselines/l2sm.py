"""L2SM-like store: log-assisted hot/cold separation (ICDE '21).

L2SM ("Less is more: de-amplifying I/Os for key-value stores with a
log-assisted LSM-tree") keeps frequently-updated (hot) KV pairs out of
the main LSM-tree: they live in append-only logs with an in-memory
index, so repeated updates never ride through compactions. Cold data
takes LevelDB's normal path. Under skewed updates this de-amplifies
write I/O; under uniform workloads it behaves like LevelDB (Table 1
shows nearly identical sync counts/volumes).

Behavioural model:

- an update-frequency map decides, at memtable-dump time, which entries
  are hot (seen >= HOT_THRESHOLD times recently);
- hot entries go to a hot log (synced once per dump, preserving the
  same crash guarantee as an L0 table) indexed in memory;
- when the hot log outgrows its budget it is garbage-collected: still-hot
  entries move to a fresh log, the rest are demoted into the main tree
  as a regular SSTable;
- reads check memtable -> hot index -> levels; scans merge the hot
  entries in.

Invariant: the hot index always holds the globally newest version of its
keys (dumping a key through the cold path removes any staler hot entry),
so reads and demotions stay correct under any interleaving.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.format import TYPE_DELETION
from repro.lsm.iterator import MemTableIterator
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options
from repro.lsm.wal import LogReader, LogWriter

#: a key is hot once it has been dumped this many times recently
HOT_THRESHOLD = 2
#: hot log budget, as a multiple of the write buffer
HOT_LOG_BUDGET_FACTOR = 4
#: decay the frequency map once it holds this many keys
FREQ_MAP_LIMIT = 100_000


class _HotEntry:
    __slots__ = ("sequence", "value_type", "value")

    def __init__(self, sequence: int, value_type: int, value: bytes) -> None:
        self.sequence = sequence
        self.value_type = value_type
        self.value = value


class L2SMLike(DB):
    """Hot/cold-separated LSM-tree with a log-assisted hot store."""

    store_name = "l2sm"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        options = options if options is not None else Options()
        options.sync.sync_minor = True
        options.sync.sync_major = True
        options.sync.sync_manifest = True
        self._freq: Dict[bytes, int] = {}
        self._hot_index: Dict[bytes, _HotEntry] = {}
        self._hot_log: Optional[LogWriter] = None
        self._hot_log_seq = 0
        self._hot_bytes = 0
        self.hot_dumps = 0
        self.hot_gcs = 0
        self.demoted_keys = 0
        super().__init__(stack, dbname, options=options)
        self._recover_hot_logs(stack.now)

    # ------------------------------------------------------------------
    # hot log plumbing
    # ------------------------------------------------------------------

    def _hot_log_path(self, seq: int) -> str:
        return f"{self.dbname}/hot-{seq:06d}.hlog"

    def _hot_budget(self) -> int:
        return HOT_LOG_BUDGET_FACTOR * self.options.write_buffer_size

    def _open_hot_log(self, at: int) -> int:
        self._hot_log_seq += 1
        handle, t = self.fs.create(self._hot_log_path(self._hot_log_seq), at=at)
        self._hot_log = LogWriter(handle)
        return t

    def _recover_hot_logs(self, at: int) -> None:
        """Rebuild the hot index by replaying surviving hot logs."""
        t = at
        paths = [
            path
            for path in self.fs.list_dir(self.dbname + "/")
            if path.endswith(".hlog")
        ]
        for path in sorted(paths):
            handle, t = self.fs.open(path, at=t)
            reader = LogReader(handle)
            for sequence, entries in reader.records(at=t):
                for offset, (value_type, key, value) in enumerate(entries):
                    self._note_hot(key, sequence + offset, value_type, value)
            seq = int(path.rsplit("-", 1)[1].split(".")[0])
            self._hot_log_seq = max(self._hot_log_seq, seq)
            self._hot_bytes += handle.size

    def _note_hot(
        self, key: bytes, sequence: int, value_type: int, value: bytes
    ) -> None:
        existing = self._hot_index.get(key)
        if existing is None or existing.sequence <= sequence:
            self._hot_index[key] = _HotEntry(sequence, value_type, value)

    # ------------------------------------------------------------------
    # dump path: split hot from cold
    # ------------------------------------------------------------------

    def _compact_memtable(self, imm: MemTable, at: int) -> int:
        if imm.empty:
            return at
        hot: List[Tuple[bytes, int, int, bytes]] = []
        cold = MemTable()
        for user_key, sequence, value_type, value in imm.sorted_entries():
            count = self._freq.get(user_key, 0) + 1
            self._freq[user_key] = count
            if count >= HOT_THRESHOLD:
                hot.append((user_key, sequence, value_type, value))
            else:
                cold.add(sequence, value_type, user_key, value)
        if len(self._freq) > FREQ_MAP_LIMIT:
            self._freq = {
                key: count // 2
                for key, count in self._freq.items()
                if count > 1
            }
        t = at
        if hot:
            t = self._dump_hot(hot, t)
        if not cold.empty:
            for user_key, _, _, _ in cold.sorted_entries():
                stale = self._hot_index.get(user_key)
                if stale is not None:
                    del self._hot_index[user_key]
            t = super()._compact_memtable(cold, t)
        return t

    def _dump_hot(
        self, entries: List[Tuple[bytes, int, int, bytes]], at: int
    ) -> int:
        self.hot_dumps += 1
        t = at
        if self._hot_log is None:
            t = self._open_hot_log(t)
        sequence = entries[0][1]
        batch = [
            (value_type, key, value)
            for key, _, value_type, value in entries
        ]
        t = self._hot_log.add_record(sequence, batch, at=t)
        t = self._hot_log.handle.fsync(at=t, reason="minor")
        for key, seq, value_type, value in entries:
            self._note_hot(key, seq, value_type, value)
            self._hot_bytes += len(key) + len(value) + 16
        if self._hot_bytes > self._hot_budget():
            t = self._gc_hot_log(t)
        return t

    def _gc_hot_log(self, at: int) -> int:
        """Rewrite live hot entries; demote cooled keys to the main tree."""
        self.hot_gcs += 1
        t = at
        still_hot: List[Tuple[bytes, _HotEntry]] = []
        demote: List[Tuple[bytes, _HotEntry]] = []
        for key in sorted(self._hot_index):
            entry = self._hot_index[key]
            if self._freq.get(key, 0) >= HOT_THRESHOLD:
                still_hot.append((key, entry))
            else:
                demote.append((key, entry))
        # demote cooled entries as a regular SSTable
        if demote:
            self.demoted_keys += len(demote)
            demoted = MemTable()
            for key, entry in demote:
                demoted.add(entry.sequence, entry.value_type, key, entry.value)
                del self._hot_index[key]
            t = super()._compact_memtable(demoted, t)
        # rewrite survivors into a fresh log
        old_paths = [
            path
            for path in self.fs.list_dir(self.dbname + "/")
            if path.endswith(".hlog")
        ]
        t = self._open_hot_log(t)
        self._hot_bytes = 0
        if still_hot:
            batch = [
                (entry.value_type, key, entry.value)
                for key, entry in still_hot
            ]
            t = self._hot_log.add_record(still_hot[0][1].sequence, batch, at=t)
            t = self._hot_log.handle.fsync(at=t, reason="minor")
            for key, entry in still_hot:
                self._hot_bytes += len(key) + len(entry.value) + 16
        for path in old_paths:
            if path != self._hot_log.handle.path and self.fs.exists(path):
                t = self.fs.unlink(path, at=t)
        # decay frequencies so heat is recent, not historical
        self._freq = {
            key: count // 2 for key, count in self._freq.items() if count > 1
        }
        return t

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, key: bytes, at: int, snapshot=None):
        from repro.lsm.format import MAX_SEQUENCE

        self.stats.gets += 1
        bound = self._bound_of(snapshot)
        table_bound = bound if bound is not None else MAX_SEQUENCE
        t = at + self.cpu.memtable_lookup_ns
        self.events.run_until(t)
        self._advance_background(t)
        hit = self.mem.get(key, sequence_bound=bound)
        if hit is not None:
            found, value = hit
            return (value if found else None), t
        if self._pending_imm is not None:
            hit = self._pending_imm[0].get(key, sequence_bound=bound)
            if hit is not None:
                t += self.cpu.memtable_lookup_ns
                found, value = hit
                return (value if found else None), t
        entry = self._hot_index.get(key)
        if entry is not None and (bound is None or entry.sequence <= bound):
            t += self.cpu.memtable_lookup_ns
            if entry.value_type == TYPE_DELETION:
                return None, t
            return entry.value, t
        first_probe = None
        probes = 0
        for level, meta in self._files_for_get(key):
            table, t = self.table_cache.get_table(meta.number, at=t)
            result, t = table.get(key, at=t, sequence_bound=table_bound)
            probes += 1
            if probes == 1:
                first_probe = (level, meta)
            if result is not None:
                if probes > 1:
                    self._charge_seek(first_probe, t)
                found, value = result
                return (value if found else None), t
        if probes > 1:
            self._charge_seek(first_probe, t)
        return None, t

    def _iterator_sources(self, at: int):
        """Merge the hot store into the normal iterator sources."""
        hot = MemTable()
        for key, entry in self._hot_index.items():
            hot.add(entry.sequence, entry.value_type, key, entry.value)
        sources = super()._iterator_sources(at)
        sources.append(MemTableIterator(hot, at))
        return sources
