"""BoLT (Middleware '20): barrier-optimized LSM-tree.

BoLT bundles all the KV pairs a compaction produces into one large
*factual* SSTable and flushes it with a single sync, so each compaction
pays one barrier instead of one per output file. Logical SSTables inside
the factual file keep LevelDB's level geometry, at some bookkeeping cost.

Behavioural model on our substrate:

- the outputs of a major compaction are written as usual, then persisted
  by a *single* fsync (Ext4's ordered commit writes back every output's
  data and commits all their inodes in that one transaction — exactly
  the one-barrier effect of BoLT's single large file);
- a fixed logical-SSTable maintenance cost is charged per compaction and
  a small indirection cost per table read;
- unlike NobLSM, the sync still sits on the compaction's critical path,
  and KV pairs are re-synced every time they are compacted again — the
  two behaviours the paper contrasts (Sections 1 and 5.2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.filenames import table_file_name
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData
from repro.sim.clock import micros

#: bookkeeping for the logical->factual mapping, charged per compaction
LOGICAL_TABLE_MAINTENANCE_NS = micros(150)
#: per-read indirection through the logical SSTable map
LOGICAL_LOOKUP_NS = 400


class BoLT(DB):
    """Barrier-optimized LSM-tree (one sync per compaction)."""

    store_name = "bolt"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        options = options if options is not None else Options()
        options.sync.sync_minor = True
        options.sync.sync_major = True
        options.sync.sync_manifest = True
        super().__init__(stack, dbname, options=options)
        self.factual_tables = 0

    def _persist_major_outputs(
        self, outputs: List[FileMetaData], at: int
    ) -> int:
        """One sync persists the whole factual SSTable (all outputs)."""
        t = at + LOGICAL_TABLE_MAINTENANCE_NS
        if not outputs or not self.options.sync.sync_major:
            return t
        self.factual_tables += 1
        # Write back every output's data explicitly (the factual file is
        # flushed as one unit), then a single fsync supplies the barrier
        # and commits all the inodes in one transaction.
        for meta in outputs[:-1]:
            handle, t = self.fs.open(
                table_file_name(self.dbname, meta.number), at=t
            )
            dirty = handle._inode.dirty_bytes
            if dirty:
                _, t = self.fs.writeback_inode(handle.ino, t)
                stats = self.fs.sync_stats
                stats.bytes_synced += dirty
                stats.bytes_by_reason["major"] = (
                    stats.bytes_by_reason.get("major", 0) + dirty
                )
        handle, t = self.fs.open(
            table_file_name(self.dbname, outputs[-1].number), at=t
        )
        t = handle.fsync(at=t, reason="major")
        return t

    def get(self, key, at):
        value, t = super().get(key, at)
        return value, t + LOGICAL_LOOKUP_NS
