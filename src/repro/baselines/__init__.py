"""Behavioural models of the stores the paper compares against.

Each baseline keeps the shared LSM substrate and changes only what its
real counterpart changes: the sync schedule, the compaction shape, or
the parallelism. See DESIGN.md for the fidelity notes per store.
"""

from repro.baselines.bolt import BoLT
from repro.baselines.hyperleveldb import HyperLevelDBLike
from repro.baselines.l2sm import L2SMLike
from repro.baselines.pebblesdb import PebblesDBLike
from repro.baselines.registry import PAPER_STORES, STORE_CLASSES, make_store
from repro.baselines.rocksdb import RocksDBLike
from repro.baselines.volatile import VolatileLevelDB

__all__ = [
    "BoLT",
    "HyperLevelDBLike",
    "L2SMLike",
    "PebblesDBLike",
    "RocksDBLike",
    "VolatileLevelDB",
    "PAPER_STORES",
    "STORE_CLASSES",
    "make_store",
]
