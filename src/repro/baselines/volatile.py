"""The 'volatile' LevelDB of Section 3: every sync disabled.

It loses crash consistency entirely but marks the performance ceiling
NobLSM tries to approach (the paper measures a 53.2 % execution-time
reduction for fillrandom with 2 MB SSTables).
"""

from __future__ import annotations

from typing import Optional

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.options import Options


def volatile_options(base: Optional[Options] = None) -> Options:
    options = base if base is not None else Options()
    options.sync.sync_minor = False
    options.sync.sync_major = False
    options.sync.sync_manifest = False
    options.sync.sync_wal = False
    options.sync.nob_commit = False
    return options


class VolatileLevelDB(DB):
    """LevelDB with all syncs removed (no consistency guarantee)."""

    store_name = "volatile"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        super().__init__(stack, dbname, options=volatile_options(options))
