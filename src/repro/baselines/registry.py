"""Factory for every store the paper evaluates (and the volatile one)."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.core.noblsm import NobLSM
from repro.core.noblsm_kv import NobLSMKV
from repro.baselines.bolt import BoLT
from repro.baselines.hyperleveldb import HyperLevelDBLike
from repro.baselines.l2sm import L2SMLike
from repro.baselines.pebblesdb import PebblesDBLike
from repro.baselines.rocksdb import RocksDBLike
from repro.baselines.volatile import VolatileLevelDB
from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.options import Options

#: the seven stores of Figures 4 and 5, plus the volatile baseline and
#: the key-value-separated NobLSM variant (inert unless the options set
#: ``value_threshold``)
STORE_CLASSES: Dict[str, Type[DB]] = {
    "leveldb": DB,
    "bolt": BoLT,
    "l2sm": L2SMLike,
    "rocksdb": RocksDBLike,
    "hyperleveldb": HyperLevelDBLike,
    "pebblesdb": PebblesDBLike,
    "noblsm": NobLSM,
    "noblsm-kv": NobLSMKV,
    "volatile": VolatileLevelDB,
}

#: the order the paper plots them in
PAPER_STORES: List[str] = [
    "leveldb",
    "bolt",
    "l2sm",
    "rocksdb",
    "hyperleveldb",
    "pebblesdb",
    "noblsm",
]


def make_store(
    name: str,
    stack: StorageStack,
    dbname: str = "db",
    options: Optional[Options] = None,
) -> DB:
    """Instantiate a store by its paper name."""
    try:
        cls = STORE_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(STORE_CLASSES))
        raise ValueError(f"unknown store {name!r}; known: {known}") from None
    return cls(stack, dbname, options=options)
