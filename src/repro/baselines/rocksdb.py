"""RocksDB-like store: multi-threaded flushes and compactions.

The paper uses RocksDB as the representative of fine-grained,
parallelised engineering: a pool of background threads compacts several
levels concurrently and flushes never wait behind a running compaction.
It still syncs every new SSTable, so its sync volume stays high — the
behaviour Table 1 and Figure 5b attribute to it.

Behavioural model: LevelDB's structure with

- four background threads (``max_background_jobs``-style parallelism);
- RocksDB's default L0 pacing (slowdown 20, stop 36), which trades write
  stalls for read amplification;
- a slightly heavier per-operation CPU path (write batching, statistics,
  version handling), reflecting the larger codebase.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.options import Options

#: extra per-write CPU of the heavier write path
WRITE_PATH_OVERHEAD_NS = 4000
#: extra per-read CPU (version refs, statistics)
READ_PATH_OVERHEAD_NS = 500
#: write-controller pacing: delay per unit of excess compaction score
WRITE_CONTROLLER_DELAY_NS = 25_000
#: the controller never delays a single write longer than this
WRITE_CONTROLLER_CAP_NS = 60_000


def rocksdb_options(base: Optional[Options] = None) -> Options:
    options = base if base is not None else Options()
    options.background_threads = 4
    options.l0_compaction_trigger = 4
    options.l0_slowdown_writes_trigger = 20
    options.l0_stop_writes_trigger = 36
    # RocksDB's default level sizing is much coarser than LevelDB's
    # (max_bytes_for_level_base 256 MB vs 10 MB): one fewer level of
    # rewriting, hence its lower sync volume in Table 1.
    options.max_bytes_for_level_base *= 8
    options.sync.sync_minor = True
    options.sync.sync_major = True
    options.sync.sync_manifest = True
    return options


class RocksDBLike(DB):
    """Multi-threaded, leveled store in the style of RocksDB."""

    store_name = "rocksdb"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        super().__init__(stack, dbname, options=rocksdb_options(options))

    def write(self, entries, at):
        """Heavier write path plus RocksDB's write controller.

        RocksDB paces foreground writes when compaction debt builds up
        (pending-compaction-bytes / L0 triggers), trading latency for
        smoother background progress; the delay grows with the worst
        level's compaction score.
        """
        t = at + WRITE_PATH_OVERHEAD_NS
        _, score = self.versions.pick_compaction_level()
        if score > 1.0:
            delay = int((score - 1.0) * WRITE_CONTROLLER_DELAY_NS)
            t += min(delay, WRITE_CONTROLLER_CAP_NS)
        return super().write(entries, t)

    def get(self, key, at):
        return super().get(key, at + READ_PATH_OVERHEAD_NS)
