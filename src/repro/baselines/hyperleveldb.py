"""HyperLevelDB-like store: parallel compactions, smaller tables.

HyperLevelDB forked LevelDB to improve parallelism (concurrent
compactions, finer locking). Its table size is hardcoded in the source —
the paper notes it could not be raised to 64 MB — so it writes many more,
smaller SSTables and ends up calling syncs far more often (2,684 syncs in
Table 1, 2.5x LevelDB) while moving somewhat less data per sync. It also
compacts eagerly toward lower levels, which Figure 5b's analysis blames
for syncing twice the data of LevelDB under the read-heavy workload C.

Behavioural model:

- two compaction threads;
- a table size fixed at 1/16 of whatever the benchmark configures
  (HyperLevelDB's 4 MB vs the paper's 64 MB setting);
- an eager compaction trigger (levels compact at 75 % of their limit),
  producing the extra background churn the paper observes.
"""

from __future__ import annotations

from typing import Optional

from repro.fs.stack import StorageStack
from repro.lsm.db import DB
from repro.lsm.options import Options

#: HyperLevelDB hardcodes its table size; relative to the paper's 64 MB
#: configuration it writes smaller files and, per Table 1, ends up
#: issuing ~2.5x LevelDB's sync count — the divisor is calibrated to
#: that measured ratio (its optimistic compaction picks larger units
#: than its raw file size would suggest).
TABLE_SIZE_DIVISOR = 3
#: compact levels at 75% of their nominal limit (eager data movement)
EAGER_SCORE_FACTOR = 0.75


def hyperleveldb_options(base: Optional[Options] = None) -> Options:
    options = base if base is not None else Options()
    options.background_threads = 2
    options.max_file_size = max(options.max_file_size // TABLE_SIZE_DIVISOR, 2048)
    options.max_bytes_for_level_base = int(
        options.max_bytes_for_level_base * EAGER_SCORE_FACTOR
    )
    options.sync.sync_minor = True
    options.sync.sync_major = True
    options.sync.sync_manifest = True
    return options


class HyperLevelDBLike(DB):
    """Parallel-compaction LevelDB fork with hardcoded small tables."""

    store_name = "hyperleveldb"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        super().__init__(stack, dbname, options=hyperleveldb_options(options))
