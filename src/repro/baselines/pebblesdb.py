"""PebblesDB-like store: a fragmented LSM-tree (FLSM) with guards.

PebblesDB (SOSP '17) divides each level into non-overlapping key ranges
bounded by *guards*. A compaction of level n partitions its merged
entries by level n+1's guards and appends the pieces as new files —
without rewriting the files already inside each guard. A KV pair is thus
written once per level, cutting write amplification; the price is that
files *within* a guard overlap, so reads probe several files per level.
A guard is fully merged (its files rewritten) only when it accumulates
too many files.

This subclass implements those mechanics on the shared substrate:

- per-level guard keys, grown from sampled compaction output keys;
- a custom major compaction that appends guard partitions and only
  merges overfull guards;
- a read path that probes every overlapping file in a level,
  newest first.

Sync policy is stock LevelDB's (every new table + manifest), as in the
paper: PebblesDB lowers sync *volume* through lower write amplification
(Table 1: 42.61 GB vs LevelDB's 61.55 GB) but keeps syncs on the
critical path.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.fs.stack import StorageStack
from repro.lsm.compaction import Compaction
from repro.lsm.db import DB
from repro.lsm.filenames import table_file_name
from repro.lsm.format import TYPE_DELETION
from repro.lsm.options import Options
from repro.lsm.sstable import TableBuilder
from repro.lsm.version import FileMetaData, VersionEdit

#: merge (rewrite) a guard once it holds this many files; FLSM tolerates
#: several overlapping files per guard before paying a rewrite
GUARD_MERGE_THRESHOLD = 8

#: per-write CPU of the fragmented write path (guard routing, the extra
#: memtable/guard bookkeeping PebblesDB layers over LevelDB). PebblesDB
#: trades CPU for I/O: it syncs ~30% less data than LevelDB (Table 1)
#: yet the paper measures it slower on the write workloads (Fig. 4a/5a)
#: — this constant is calibrated to that observation.
WRITE_PATH_OVERHEAD_NS = 4_000
#: extra per-entry compaction CPU (guard bisect + partition append)
PARTITION_ENTRY_NS = 350


def pebblesdb_options(base: Optional[Options] = None) -> Options:
    options = base if base is not None else Options()
    options.sync.sync_minor = True
    options.sync.sync_major = True
    options.sync.sync_manifest = True
    options.seek_compaction = False  # FLSM relies on size triggers
    return options


class PebblesDBLike(DB):
    """Fragmented LSM-tree with per-level guards."""

    store_name = "pebblesdb"

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        #: level -> sorted guard keys (range i is [guard[i-1], guard[i]))
        self._guards: Dict[int, List[bytes]] = {}
        self.guard_merges = 0
        self.guard_appends = 0
        super().__init__(stack, dbname, options=pebblesdb_options(options))

    def write(self, entries, at):
        return super().write(entries, at + WRITE_PATH_OVERHEAD_NS)

    # ------------------------------------------------------------------
    # read path: every overlapping file per level, newest first
    # ------------------------------------------------------------------

    def _files_for_get(self, key: bytes) -> List[Tuple[int, FileMetaData]]:
        version = self.versions.current
        candidates: List[Tuple[int, FileMetaData]] = []
        for level in range(self.options.num_levels):
            hits = [
                meta
                for meta in version.files[level]
                if not meta.shadow
                and meta.smallest[:-8] <= key <= meta.largest[:-8]
            ]
            hits.sort(key=lambda f: f.number, reverse=True)
            candidates.extend((level, meta) for meta in hits)
        return candidates

    def _iterator_sources(self, at: int):
        """FLSM levels overlap, so scans need one source per file."""
        from repro.lsm.iterator import MemTableIterator

        sources = [MemTableIterator(self.mem, at)]
        if self._pending_imm is not None:
            sources.append(MemTableIterator(self._pending_imm[0], at))
        t = at
        version = self.versions.current
        for level in range(self.options.num_levels):
            for meta in sorted(
                version.files[level], key=lambda f: f.number, reverse=True
            ):
                if meta.shadow:
                    continue
                table, t = self.table_cache.get_table(meta.number, at=t)
                sources.append(table.iterate(t))
        return sources

    # ------------------------------------------------------------------
    # guards
    # ------------------------------------------------------------------

    def _guard_target(self, level: int) -> int:
        """Guards sized so a guard's files stay around ``max_file_size``.

        PebblesDB samples guards so that guard granularity tracks level
        capacity; tying the target to capacity / file size keeps output
        partitions at sensible file sizes instead of exploding a level
        into per-guard slivers.
        """
        capacity = self.options.max_bytes_for_level(max(level, 1))
        return max(2, int(capacity / (2 * self.options.max_file_size)))

    def _ensure_guards(self, level: int, sample_keys: List[bytes]) -> List[bytes]:
        """Grow the guard set of a level from sampled user keys."""
        guards = self._guards.setdefault(level, [])
        target = self._guard_target(level)
        if len(guards) >= target or not sample_keys:
            return guards
        want = target - len(guards)
        stride = max(len(sample_keys) // (want + 1), 1)
        for pos in range(stride, len(sample_keys), stride):
            key = sample_keys[pos]
            idx = bisect.bisect_left(guards, key)
            if idx >= len(guards) or guards[idx] != key:
                guards.insert(idx, key)
            if len(guards) >= target:
                break
        return guards

    def _partition(
        self, guards: List[bytes], entries: List[Tuple[bytes, bytes]]
    ) -> List[List[Tuple[bytes, bytes]]]:
        """Split internal-key entries into guard ranges."""
        buckets: List[List[Tuple[bytes, bytes]]] = [
            [] for _ in range(len(guards) + 1)
        ]
        for internal_key, value in entries:
            idx = bisect.bisect_right(guards, internal_key[:-8])
            buckets[idx].append((internal_key, value))
        return buckets

    def _guard_range_files(
        self, level: int, lo: Optional[bytes], hi: Optional[bytes]
    ) -> List[FileMetaData]:
        """Files of ``level`` fully inside the guard range [lo, hi)."""
        files = []
        for meta in self.versions.current.files[level]:
            begin, end = meta.user_range()
            if lo is not None and begin < lo:
                continue
            if hi is not None and end >= hi:
                continue
            files.append(meta)
        return files

    # ------------------------------------------------------------------
    # FLSM compaction
    # ------------------------------------------------------------------

    def _pick_size_compaction(self) -> Optional[Compaction]:
        """Pick a whole guard's worth of overlapping same-level files.

        FLSM levels overlap, so compacting a subset of an overlap cluster
        could let an older version at level n shadow a newer one pushed to
        level n+1. Inputs therefore expand to a fixed point within the
        level (the way LevelDB expands level-0 inputs).
        """
        level, _ = self.versions.pick_compaction_level()
        if level is None:
            return None
        version = self.versions.current
        files = version.files[level]
        if not files:
            return None
        pointer = self.versions.compact_pointer.get(level)
        seed = None
        for meta in files:
            if pointer is None or meta.largest[:-8] > pointer:
                seed = meta
                break
        if seed is None:
            seed = files[0]
        # expand to a fixed point among the level's overlapping files
        inputs = [seed]
        changed = True
        while changed:
            changed = False
            lo = min(f.smallest[:-8] for f in inputs)
            hi = max(f.largest[:-8] for f in inputs)
            chosen = {f.number for f in inputs}
            for meta in files:
                if meta.number in chosen:
                    continue
                begin, end = meta.user_range()
                if end >= lo and begin <= hi:
                    inputs.append(meta)
                    changed = True
        self.versions.compact_pointer[level] = max(
            f.largest[:-8] for f in inputs
        )
        return Compaction(level=level, inputs=inputs, overlaps=[])

    def _major_compaction_work(self, compaction: Compaction, at: int) -> int:
        """Partition level-n data into level-(n+1) guards; append, don't merge.

        The level n+1 files LevelDB would have merged (compaction.overlaps)
        are left untouched unless their guard is overfull.
        """
        self.stats.major_compactions += 1
        t = at
        level = compaction.level
        output_level = compaction.output_level

        entries: List[Tuple[bytes, bytes]] = []
        for meta in compaction.inputs:
            table, t = self.table_cache.get_table(meta.number, at=t)
            file_entries, t = table.all_entries(at=t)
            entries.extend(file_entries)
        self.stats.bytes_compacted_in += sum(
            f.file_size for f in compaction.inputs
        )
        entries.sort(
            key=lambda kv: (kv[0][:-8], ~int.from_bytes(kv[0][-8:], "little"))
        )
        t += len(entries) * (self.cpu.merge_entry_ns + PARTITION_ENTRY_NS)

        guards = self._ensure_guards(
            output_level, [e[0][:-8] for e in entries]
        )
        buckets = self._partition(guards, entries)

        edit = VersionEdit()
        for meta in compaction.inputs:
            edit.delete_file(level, meta.number)
        outputs: List[FileMetaData] = []
        merged_away: List[FileMetaData] = []

        # One builder is shared across adjacent append-only buckets so a
        # sliver per guard does not become a file per guard; it is cut at
        # a guard boundary once it reaches half the target file size, and
        # always flushed around a guard merge.
        builder: Optional[TableBuilder] = None
        for idx, bucket in enumerate(buckets):
            if not bucket:
                continue
            lo = guards[idx - 1] if idx > 0 else None
            hi = guards[idx] if idx < len(guards) else None
            resident = self._guard_range_files(output_level, lo, hi)
            if len(resident) + 1 > GUARD_MERGE_THRESHOLD:
                # guard overfull: full merge of the guard's files + bucket
                if builder is not None:
                    builder, t = self._finish_output(builder, outputs, t)
                self.guard_merges += 1
                for meta in resident:
                    table, t = self.table_cache.get_table(meta.number, at=t)
                    file_entries, t = table.all_entries(at=t)
                    bucket.extend(file_entries)
                    edit.delete_file(output_level, meta.number)
                    merged_away.append(meta)
                self.stats.bytes_compacted_in += sum(
                    f.file_size for f in resident
                )
                bucket.sort(
                    key=lambda kv: (
                        kv[0][:-8],
                        ~int.from_bytes(kv[0][-8:], "little"),
                    )
                )
                t += len(bucket) * self.cpu.merge_entry_ns
                drop_tombstones = output_level >= self._deepest_level()
                builder, t = self._write_bucket(
                    bucket, output_level, drop_tombstones, outputs, t, None
                )
                if builder is not None:
                    builder, t = self._finish_output(builder, outputs, t)
            else:
                self.guard_appends += 1
                if (
                    builder is not None
                    and builder.current_size >= self.options.max_file_size // 2
                ):
                    builder, t = self._finish_output(builder, outputs, t)
                builder, t = self._write_bucket(
                    bucket, output_level, False, outputs, t, builder
                )
        if builder is not None:
            builder, t = self._finish_output(builder, outputs, t)

        t = self._persist_major_outputs(outputs, t)
        for meta in outputs:
            edit.add_file(output_level, meta)
        if compaction.inputs:
            edit.compact_pointers.append(
                (level, max(f.largest[:-8] for f in compaction.inputs))
            )
        t = self.versions.log_and_apply(edit, t)
        disposed = Compaction(
            level=level,
            inputs=list(compaction.inputs),
            overlaps=merged_away,
        )
        t = self._dispose_inputs(disposed, outputs, t)
        return t

    def _write_bucket(
        self,
        bucket: List[Tuple[bytes, bytes]],
        output_level: int,
        drop_tombstones: bool,
        outputs: List[FileMetaData],
        at: int,
        builder: Optional[TableBuilder],
    ) -> Tuple[Optional[TableBuilder], int]:
        """Append a bucket's entries, reusing/returning an open builder."""
        from repro.lsm.compaction import VersionKeeper

        t = at
        keeper = VersionKeeper(self._smallest_snapshot(), drop_tombstones)
        for internal_key, value in bucket:
            user_key = internal_key[:-8]
            tag = int.from_bytes(internal_key[-8:], "little")
            if not keeper.keep(user_key, tag >> 8, tag & 0xFF):
                continue
            if (
                builder is not None
                and builder.current_size >= self.options.max_file_size
            ):
                builder, t = self._finish_output(builder, outputs, t)
            if builder is None:
                number = self.versions.new_file_number()
                builder = TableBuilder(
                    self.fs,
                    table_file_name(self.dbname, number),
                    self.options,
                    t,
                    number=number,
                )
            builder.add(internal_key, value)
        if builder is not None and builder.num_entries == 0:
            t = builder.abandon(t)
            builder = None
        return builder, t

    def _deepest_level(self) -> int:
        deepest = 0
        for level in range(self.options.num_levels):
            if self.versions.current.files[level]:
                deepest = level
        return deepest
