"""``repro.serve`` — the sharded multi-tenant serving layer.

Turns the single-store benchmark into a service-shaped system: N
independent store shards (each a full
:class:`~repro.fs.stack.StorageStack` + store slice) behind a
deterministic hash :class:`~repro.serve.router.Router` with per-tenant
key namespaces, per-shard
:class:`~repro.serve.admission.AdmissionController` backpressure driven
by the store's live :meth:`~repro.lsm.db.DB.write_pressure`, and the
:mod:`~repro.serve.loadgen` open/closed-loop multi-tenant load
generator. :mod:`~repro.serve.bench` measures it all — per-tenant and
per-shard p50/p99/p99.9, the fairness ratio, and admission counts — in
the versioned ``repro.serve/1`` document gated in CI.
"""

from repro.serve.admission import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionController,
    AdmissionStats,
)
from repro.serve.bench import (
    SERVE_SCHEMA,
    ServeConfig,
    ServeResult,
    fair_variant,
    render_serve,
    render_timeline,
    run_serve,
    run_serve_pair,
    serve_document,
    write_serve_json,
)
from repro.serve.cluster import ClusterConfig, ServeCluster, Shard, TenantStats
from repro.serve.loadgen import (
    ClosedLoopDriver,
    LoadConfig,
    Request,
    RequestFactory,
    diurnal_rate,
    open_loop,
)
from repro.serve.router import NAMESPACE_SEPARATOR, Router

__all__ = [
    "ADMIT",
    "QUEUE",
    "SHED",
    "AdmissionController",
    "AdmissionStats",
    "SERVE_SCHEMA",
    "ServeConfig",
    "ServeResult",
    "fair_variant",
    "render_serve",
    "render_timeline",
    "run_serve",
    "run_serve_pair",
    "serve_document",
    "write_serve_json",
    "ClusterConfig",
    "ServeCluster",
    "Shard",
    "TenantStats",
    "ClosedLoopDriver",
    "LoadConfig",
    "Request",
    "RequestFactory",
    "diurnal_rate",
    "open_loop",
    "NAMESPACE_SEPARATOR",
    "Router",
]
