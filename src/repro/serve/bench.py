"""The serve benchmark: multi-tenant load against the sharded cluster.

Drives a :class:`~repro.serve.cluster.ServeCluster` with the
:mod:`~repro.serve.loadgen` request stream — by default the hot-tenant
overload scenario: an open-loop Poisson process with a diurnal rate
curve, tenants drawn Zipf-hot, tenant-affine placement, so the hot
tenant's home shard builds compaction debt while the rest of the
cluster idles along. Reported per tenant *and* per shard:

- p50 / p99 / p99.9 over the run plus the worst windowed p99.9
  (:class:`~repro.obs.metrics.WindowedHistogram`, arrival-time keyed);
- a **fairness ratio** — worst tenant p99 / best tenant p99 (1.0 means
  every tenant gets the same tail, the number a multi-tenant SLA is
  written against);
- admission-control counts (admitted / queued / shed, shed by pressure
  cause) and each shard's stall breakdown (``blocked_ns`` and the PR 7
  cause counters).

Documents use the versioned ``repro.serve/1`` schema and are gated by
:mod:`repro.bench.compare` like the soak and throughput baselines. The
``serve-fair`` variant applies the per-shard stability machinery — the
compaction rate limiter in fair mode plus dynamic slowdown — and the
serve gate asserts it beats the untuned cluster on worst-tenant p99.9.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import WindowedHistogram
from repro.serve.cluster import ClusterConfig, ServeCluster
from repro.serve.loadgen import (
    ClosedLoopDriver,
    LoadConfig,
    open_loop,
)
from repro.sim.clock import to_micros

SERVE_SCHEMA = "repro.serve/1"


@dataclass
class ServeConfig:
    """One serve run: cluster shape + workload shape + tuning."""

    store: str = "noblsm"
    num_shards: int = 4
    num_tenants: int = 6
    scale: float = 2000.0
    seed: int = 1234
    value_size: int = 1024
    key_size: int = 16
    #: total open-loop arrival rate, requests per virtual second. The
    #: default overloads the hot tenant's home shard at the diurnal
    #: peak (the untuned cluster queues and sheds there) while the
    #: cluster-wide average stays serviceable — the scenario admission
    #: control exists for.
    arrival_rate: float = 90_000.0
    duration_s: float = 0.3
    window_ms: float = 25.0
    diurnal_amplitude: float = 0.4
    tenant_theta: float = 0.99
    write_fraction: float = 0.9
    keys_per_tenant: int = 2_000
    spread: int = 1
    max_queue: int = 32
    mode: str = "open"  # "open" | "closed"
    clients_per_tenant: int = 4
    num_channels: int = 1
    background_threads: int = 1
    # --- per-shard stability tuning (the "serve-fair" variant) ---
    compaction_rate_bytes_per_sec: int = 0
    compaction_rate_burst_bytes: int = 0
    compaction_rate_fair: bool = False
    dynamic_slowdown: bool = False

    @property
    def window_ns(self) -> int:
        return max(int(self.window_ms * 1_000_000), 1)

    @property
    def expected_ops(self) -> int:
        return max(int(self.arrival_rate * self.duration_s), 1)

    @property
    def fair(self) -> bool:
        return self.compaction_rate_bytes_per_sec > 0 or self.dynamic_slowdown

    @property
    def variant(self) -> str:
        return "serve-fair" if self.fair else "serve"

    def load_config(self) -> LoadConfig:
        return LoadConfig(
            num_tenants=self.num_tenants,
            arrival_rate=self.arrival_rate,
            duration_s=self.duration_s,
            diurnal_amplitude=self.diurnal_amplitude,
            tenant_theta=self.tenant_theta,
            write_fraction=self.write_fraction,
            keys_per_tenant=self.keys_per_tenant,
            key_size=self.key_size,
            value_size=self.value_size,
            seed=self.seed,
            clients_per_tenant=self.clients_per_tenant,
        )

    def cluster_config(self) -> ClusterConfig:
        # with tenant-affine placement the hot tenant concentrates on
        # one shard; size each shard's cache for that worst case
        return ClusterConfig(
            store=self.store,
            num_shards=self.num_shards,
            scale=self.scale,
            seed=self.seed,
            value_size=self.value_size,
            key_size=self.key_size,
            spread=self.spread,
            max_queue=self.max_queue,
            expected_shard_ops=self.expected_ops,
            window_ns=self.window_ns,
            num_channels=self.num_channels,
            background_threads=self.background_threads,
            compaction_rate_bytes_per_sec=self.compaction_rate_bytes_per_sec,
            compaction_rate_burst_bytes=self.compaction_rate_burst_bytes,
            compaction_rate_fair=self.compaction_rate_fair,
            dynamic_slowdown=self.dynamic_slowdown,
        )


def fair_variant(config: ServeConfig) -> ServeConfig:
    """The stability-tuned twin: same cluster, same workload, same seed.

    Sized like the soak harness's tuned variant, per shard: sustained
    user-data ingest at the *hot* shard is the total write ingest times
    the hot tenant's share (with tenant-affine placement and zipf 0.99
    over a handful of tenants, roughly half the traffic lands on one
    shard), and leveling write amplification multiplies that
    several-fold. A 14x-ingest cap with a shallow burst bucket spreads
    deep-major bursts without ever starving steady-state demand; fair
    mode exempts and prioritizes the L0 drain; dynamic slowdown replaces
    the fixed 1 ms writer delay with a debt-scaled ramp.
    """
    ingest = int(
        config.arrival_rate
        * config.write_fraction
        * (config.key_size + config.value_size)
        * 0.5  # hot shard's share of the total
    )
    return replace(
        config,
        compaction_rate_bytes_per_sec=14 * ingest,
        compaction_rate_burst_bytes=ingest // 10,
        compaction_rate_fair=True,
        dynamic_slowdown=True,
    )


@dataclass
class TenantReport:
    """One tenant's row in the serve document."""

    tenant: str
    served: int
    shed: int
    queued: int
    p50_us: float
    p99_us: float
    p999_us: float
    worst_window_p999_us: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "served": self.served,
            "shed": self.shed,
            "queued": self.queued,
            "p50_us": round(self.p50_us, 3),
            "p99_us": round(self.p99_us, 3),
            "p999_us": round(self.p999_us, 3),
            "worst_window_p999_us": round(self.worst_window_p999_us, 3),
        }


@dataclass
class ShardReport:
    """One shard's row in the serve document."""

    shard: int
    served: int
    shed: int
    p50_us: float
    p99_us: float
    p999_us: float
    admission: Dict[str, object]
    stalls: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "served": self.served,
            "shed": self.shed,
            "p50_us": round(self.p50_us, 3),
            "p99_us": round(self.p99_us, 3),
            "p999_us": round(self.p999_us, 3),
            "admission": dict(self.admission),
            "stalls": dict(self.stalls),
        }


@dataclass
class ServeResult:
    """Outcome of one serve run (one row of the ``repro.serve/1`` gate)."""

    store: str
    workload: str  # "serve" | "serve-fair"
    num_ops: int  # requests *offered* (stable row identity under shedding)
    value_size: int
    num_shards: int
    num_tenants: int
    arrival_rate: float
    duration_s: float
    window_ns: int
    mode: str
    served: int = 0
    shed: int = 0
    queued: int = 0
    virtual_ns: int = 0
    tenants: List[TenantReport] = field(default_factory=list)
    shards: List[ShardReport] = field(default_factory=list)
    # headline metrics (lower is better)
    fairness_ratio: float = 0.0  # worst tenant p99 / best tenant p99
    worst_tenant_p99_us: float = 0.0
    worst_tenant_p999_us: float = 0.0
    overall_p999_us: float = 0.0
    windowed_p999_us: float = 0.0  # worst windowed cluster p99.9
    blocked_ns: int = 0  # summed over shards
    #: per-window (ops, p99.9, shed) for the ascii timeline
    windows: List[Dict[str, object]] = field(default_factory=list)
    wall_seconds: float = 0.0

    def row(self) -> Dict[str, object]:
        return {
            "store": self.store,
            "workload": self.workload,
            "ops": self.num_ops,
            "value_size": self.value_size,
            "served": self.served,
            "shed": self.shed,
            "queued": self.queued,
            "fairness_ratio": round(self.fairness_ratio, 4),
            "worst_tenant_p99_us": round(self.worst_tenant_p99_us, 3),
            "worst_tenant_p999_us": round(self.worst_tenant_p999_us, 3),
            "blocked_ns": self.blocked_ns,
        }

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.row())
        data.update(
            {
                "virtual_ns": self.virtual_ns,
                "overall_p999_us": round(self.overall_p999_us, 3),
                "windowed_p999_us": round(self.windowed_p999_us, 3),
                "arrival_rate": self.arrival_rate,
                "duration_s": self.duration_s,
                "window_ns": self.window_ns,
                "mode": self.mode,
                "extras": {
                    "num_shards": self.num_shards,
                    "num_tenants": self.num_tenants,
                },
                "tenants": [t.to_dict() for t in self.tenants],
                "shards": [s.to_dict() for s in self.shards],
                "windows": list(self.windows),
            }
        )
        if self.wall_seconds > 0.0:
            data["host"] = {"wall_seconds": round(self.wall_seconds, 4)}
        return data


def _percentiles(hist: WindowedHistogram) -> Dict[str, float]:
    total = hist.total
    return {
        "p50": to_micros(total.p50),
        "p99": to_micros(total.p99),
        "p999": to_micros(total.percentile(99.9)),
    }


def run_serve(config: ServeConfig, telemetry=None) -> ServeResult:
    """Run one serve benchmark; returns its multi-tenant record.

    ``telemetry`` is an optional continuous-telemetry rig (duck-typed;
    see :class:`repro.bench.slo.Telemetry`): its ``registry`` becomes
    the cluster-level registry, ``on_cluster(cluster)`` wires probes
    once shards exist, and ``advance(at)`` is driven to every open-loop
    arrival so the sampler ticks fire at deterministic virtual times
    *between* requests. The rig runs on its own event queue and never
    touches shard stacks, so results are identical with or without it.
    """
    if telemetry is not None and config.mode != "open":
        raise ValueError("continuous telemetry needs the open-loop mode")
    cluster = ServeCluster(
        config.cluster_config(),
        obs=telemetry.registry if telemetry is not None else None,
    )
    if telemetry is not None:
        telemetry.on_cluster(cluster)
    offered = 0
    last_done = 0
    wall_start = time.perf_counter()
    if config.mode == "closed":
        driver = ClosedLoopDriver(config.load_config())

        def execute(request):
            nonlocal offered
            offered += 1
            return cluster.serve(request)

        last_done = driver.run(execute)
    elif config.mode == "open":
        for request in open_loop(config.load_config()):
            offered += 1
            if telemetry is not None:
                telemetry.advance(request.arrival)
            done = cluster.serve(request)
            if done is not None:
                last_done = max(last_done, done)
    else:
        raise ValueError(f"unknown mode {config.mode!r}")
    if telemetry is not None:
        telemetry.finish(max(int(config.duration_s * 1e9), last_done))
    wall_seconds = time.perf_counter() - wall_start

    result = ServeResult(
        store=config.store,
        workload=config.variant,
        num_ops=offered,
        value_size=config.value_size,
        num_shards=config.num_shards,
        num_tenants=config.num_tenants,
        arrival_rate=config.arrival_rate,
        duration_s=config.duration_s,
        window_ns=config.window_ns,
        mode=config.mode,
        virtual_ns=last_done,
        wall_seconds=wall_seconds,
    )
    for tenant in sorted(cluster.tenants):
        stats = cluster.tenants[tenant]
        hist = cluster.tenant_latency[tenant]
        ps = _percentiles(hist)
        result.tenants.append(
            TenantReport(
                tenant=tenant,
                served=stats.served,
                shed=stats.shed,
                queued=stats.queued,
                p50_us=ps["p50"],
                p99_us=ps["p99"],
                p999_us=ps["p999"],
                worst_window_p999_us=to_micros(hist.max_over_windows(99.9)),
            )
        )
        result.served += stats.served
        result.shed += stats.shed
        result.queued += stats.queued
    for shard in cluster.shards:
        ps = _percentiles(shard.latency)
        result.shards.append(
            ShardReport(
                shard=shard.index,
                served=shard.served,
                shed=shard.shed,
                p50_us=ps["p50"],
                p99_us=ps["p99"],
                p999_us=ps["p999"],
                admission=shard.admission.stats.to_dict(),
                stalls=shard.stall_snapshot(),
            )
        )
        result.blocked_ns += shard.db.stats.blocked_ns
    served_tenants = [t for t in result.tenants if t.served > 0]
    if served_tenants:
        p99s = [t.p99_us for t in served_tenants]
        result.worst_tenant_p99_us = max(p99s)
        best = min(p99s)
        result.fairness_ratio = (
            result.worst_tenant_p99_us / best if best > 0 else 0.0
        )
        result.worst_tenant_p999_us = max(t.p999_us for t in served_tenants)
    result.overall_p999_us = to_micros(
        cluster.latency.total.percentile(99.9)
    )
    result.windowed_p999_us = to_micros(cluster.latency.max_over_windows(99.9))
    for index in cluster.latency.window_indices():
        hist = cluster.latency.windows[index]
        result.windows.append(
            {
                "index": index,
                "ops": hist.count,
                "p50_us": round(to_micros(hist.p50), 3),
                "p999_us": round(to_micros(hist.percentile(99.9)), 3),
                "shed": cluster.shed_by_window.get(index, 0),
            }
        )
    return result


def run_serve_pair(config: ServeConfig) -> List[ServeResult]:
    """Run the untuned cluster and its fair-scheduled twin (same seed)."""
    untuned = replace(
        config,
        compaction_rate_bytes_per_sec=0,
        compaction_rate_burst_bytes=0,
        compaction_rate_fair=False,
        dynamic_slowdown=False,
    )
    return [run_serve(untuned), run_serve(fair_variant(config))]


def serve_document(
    results: Sequence[ServeResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The versioned ``repro.serve/1`` document for a set of runs."""
    return {
        "schema": SERVE_SCHEMA,
        "meta": dict(meta) if meta else {},
        "results": [r.to_dict() for r in results],
    }


def write_serve_json(
    path: str,
    results: Sequence[ServeResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write ``serve_document`` to ``path``; returns the document."""
    doc = serve_document(results, meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def render_timeline(result: ServeResult, width: int = 40) -> str:
    """Ascii timeline: per-window cluster p99.9 bar + shed counts."""
    title = (
        f"{result.store}/{result.workload}: {result.num_ops} requests "
        f"({result.served} served, {result.shed} shed) @ "
        f"{result.arrival_rate:,.0f}/s over {result.duration_s:g} virtual s, "
        f"{result.num_shards} shards x {result.num_tenants} tenants "
        f"({result.mode} loop, window = {result.window_ns / 1e6:g} ms)"
    )
    lines = [title, "-" * min(len(title), 78)]
    peak = max((w["p999_us"] for w in result.windows), default=0.0)
    lines.append(
        f"{'win':>4} {'ops':>6} {'shed':>5} {'p50us':>8} {'p999us':>9}  p99.9"
    )
    for w in result.windows:
        bar = "#" * (
            max(int(w["p999_us"] / peak * width), 1) if peak > 0 else 0
        )
        lines.append(
            f"{w['index']:>4} {w['ops']:>6} {w['shed']:>5} "
            f"{w['p50_us']:>8.1f} {w['p999_us']:>9.1f}  {bar}"
        )
    lines.append("")
    lines.append(
        f"{'tenant':<10} {'served':>7} {'shed':>5} {'queued':>6} "
        f"{'p50us':>8} {'p99us':>9} {'p999us':>9} {'worstWp999':>11}"
    )
    for t in result.tenants:
        lines.append(
            f"{t.tenant:<10} {t.served:>7} {t.shed:>5} {t.queued:>6} "
            f"{t.p50_us:>8.1f} {t.p99_us:>9.1f} {t.p999_us:>9.1f} "
            f"{t.worst_window_p999_us:>11.1f}"
        )
    lines.append("")
    lines.append(
        f"{'shard':<6} {'served':>7} {'shed':>5} {'p999us':>9} "
        f"{'blocked_ms':>10} {'queue':>18}"
    )
    for s in result.shards:
        adm = s.admission
        lines.append(
            f"{s.shard:<6} {s.served:>7} {s.shed:>5} {s.p999_us:>9.1f} "
            f"{s.stalls['blocked_ns'] / 1e6:>10.2f} "
            f"{adm['queued']:>7}q/{adm['shed']:>4}s/"
            f"{adm['queued_ns'] / 1e6:>4.1f}ms"
        )
    lines.append("")
    lines.append(
        f"fairness (max/min tenant p99): {result.fairness_ratio:.2f}x; "
        f"worst tenant p99.9 {result.worst_tenant_p999_us:,.1f} us; "
        f"cluster blocked {result.blocked_ns / 1e6:.2f} ms"
    )
    return "\n".join(lines)


def render_serve(results: Sequence[ServeResult], width: int = 40) -> str:
    """Timelines for every run plus an untuned-vs-fair verdict."""
    blocks = [render_timeline(r, width=width) for r in results]
    by_variant = {r.workload: r for r in results}
    if "serve" in by_variant and "serve-fair" in by_variant:
        base, fair = by_variant["serve"], by_variant["serve-fair"]
        blocks.append(
            "multi-tenant stability: fair vs untuned — "
            f"worst tenant p99.9 {base.worst_tenant_p999_us:,.1f} -> "
            f"{fair.worst_tenant_p999_us:,.1f} us, "
            f"fairness {base.fairness_ratio:.2f}x -> "
            f"{fair.fairness_ratio:.2f}x, "
            f"shed {base.shed} -> {fair.shed}"
        )
    return "\n\n".join(blocks)
