"""Per-shard admission control: queue under pressure, shed past a bound.

An open-loop workload does not slow down when a shard does — requests
keep arriving while the store is mid-stall, and *something* has to
absorb the difference. Without admission control that something is the
writer mutex: every queued client parks on a stalled shard and the
tenant sees the full stall in its tail. The controller moves the
decision to the front door, using the store's own write-path triggers
(:meth:`repro.lsm.db.DB.write_pressure`, the same L0/memtable state
``_make_room`` stalls on — the PR 7 stall machinery read without
writing):

- a bounded **backpressure queue** models the requests already
  dispatched to the shard but not yet completed (their virtual
  completion time lies in the future). Depth is measured at each
  arrival by expiring completed entries;
- while the shard reports ``slowdown``/``stop`` pressure the queue
  *shrinks*: under ``stop`` a shard is one compaction away from
  blocking every queued client for milliseconds, so only
  ``stop_fraction`` of the bound may wait; under ``slowdown`` the
  admitted depth is ``slowdown_fraction`` of the bound;
- anything past the applicable bound is **shed**: counted, charged to
  no histogram (the tenant got an immediate pushback, not a latency),
  and reported per cause so a serve run shows *why* it refused work.

Decisions and counters are pure virtual-time bookkeeping — the
controller never advances any clock, so a cluster with admission
control disabled is byte-identical to one that was never wrapped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.lsm.db import PRESSURE_OK, PRESSURE_SLOWDOWN, PRESSURE_STOP

#: admission decisions
ADMIT = "admit"
QUEUE = "queue"
SHED = "shed"


@dataclass
class AdmissionStats:
    """Everything one shard's controller did, for the serve document."""

    admitted: int = 0
    queued: int = 0
    shed: int = 0
    #: time admitted requests spent waiting behind the shard's backlog
    queued_ns: int = 0
    #: shed counts by the pressure state that caused them
    shed_by_pressure: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "queued": self.queued,
            "shed": self.shed,
            "queued_ns": self.queued_ns,
            "shed_by_pressure": dict(sorted(self.shed_by_pressure.items())),
        }


class AdmissionController:
    """Bounded backpressure queue in front of one shard."""

    __slots__ = ("max_queue", "slowdown_fraction", "stop_fraction",
                 "stats", "_pending", "_busy_until")

    def __init__(
        self,
        max_queue: int,
        slowdown_fraction: float = 0.5,
        stop_fraction: float = 0.25,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if not 0.0 < stop_fraction <= slowdown_fraction <= 1.0:
            raise ValueError(
                "need 0 < stop_fraction <= slowdown_fraction <= 1, got "
                f"{stop_fraction}/{slowdown_fraction}"
            )
        self.max_queue = max_queue
        self.slowdown_fraction = slowdown_fraction
        self.stop_fraction = stop_fraction
        self.stats = AdmissionStats()
        #: completion times of in-flight requests, ascending
        self._pending: Deque[int] = deque()
        self._busy_until = 0

    def depth(self, at: int) -> int:
        """In-flight requests whose completion lies after ``at``."""
        pending = self._pending
        while pending and pending[0] <= at:
            pending.popleft()
        return len(pending)

    def peek_depth(self, at: int) -> int:
        """Read-only :meth:`depth`: count without expiring entries.

        Observability (the admission snapshot source, sampler probes)
        must use this one — ``depth`` pops expired completions, and a
        probe timestamped *after* the next arrival would expire entries
        that arrival's ``decide`` should still have counted, turning a
        shed into a queue and changing the run.
        """
        pending = self._pending
        count = len(pending)
        for done in pending:
            if done > at:
                break
            count -= 1
        return count

    def bound(self, pressure: str) -> int:
        """The admitted queue depth under the given pressure state."""
        if pressure == PRESSURE_STOP:
            return max(int(self.max_queue * self.stop_fraction), 1)
        if pressure == PRESSURE_SLOWDOWN:
            return max(int(self.max_queue * self.slowdown_fraction), 1)
        return self.max_queue

    def decide(self, at: int, pressure: str) -> str:
        """ADMIT (idle shard), QUEUE (waits behind backlog), or SHED."""
        depth = self.depth(at)
        if depth >= self.bound(pressure):
            self.stats.shed += 1
            by = self.stats.shed_by_pressure
            by[pressure] = by.get(pressure, 0) + 1
            return SHED
        if depth > 0 or pressure != PRESSURE_OK:
            self.stats.queued += 1
            if self._busy_until > at:
                self.stats.queued_ns += self._busy_until - at
            return QUEUE
        self.stats.admitted += 1
        return ADMIT

    def note_completion(self, at: int, done: int) -> None:
        """Record a served request's completion for later depth checks.

        Completions are appended in arrival order; a request that
        finishes *earlier* than the current backlog tail (a read
        overtaking queued writes) must not extend the deque out of
        order, so it is clamped into place — depth is a conservative
        (monotone) view of the backlog.
        """
        if self._pending and done < self._pending[-1]:
            done = self._pending[-1]
        self._pending.append(done)
        if done > self._busy_until:
            self._busy_until = done
