"""Deterministic key routing for the sharded serving layer.

The cluster holds N independent stores; the router decides, for every
``(tenant, key)`` request, which shard serves it — a pure function of
the request, the shard count, and the router seed, so the same cluster
layout always produces the same placement (replaying a workload is
byte-deterministic, and rebuilding a router N->N is a guaranteed
no-op).

Two concerns are kept separate:

- **Namespacing.** Every tenant lives in its own key namespace: the
  stored key is ``<tenant>/<user key>``. Tenant ids may not contain the
  separator, so namespaces are prefix-free — two tenants can never
  collide on a stored key, no matter which shard either lands on.
- **Placement.** A tenant hashes (FNV-1a over the seed and the tenant
  id) to a *home group* of ``spread`` consecutive shards; the key hash
  picks the shard within the group. ``spread=1`` is tenant affinity —
  all of a tenant's keys on one shard, the layout that turns a hot
  tenant into a hot shard and gives admission control something to
  protect. ``spread=num_shards`` is pure key hashing — every tenant
  striped over the whole cluster.
"""

from __future__ import annotations

from typing import List

from repro.bench.zipf import fnv64

#: separates the tenant namespace from the user key in stored keys
NAMESPACE_SEPARATOR = b"/"


def _hash_bytes(seed: int, data: bytes) -> int:
    """FNV-1a over ``data``, chained from a seeded state."""
    result = fnv64(seed)
    prime = 0x100000001B3
    for octet in data:
        result ^= octet
        result = (result * prime) & 0xFFFFFFFFFFFFFFFF
    return result


class Router:
    """Maps ``(tenant, key)`` to exactly one of ``num_shards`` shards."""

    __slots__ = ("num_shards", "seed", "spread")

    def __init__(self, num_shards: int, seed: int = 0, spread: int = 1) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= spread <= num_shards:
            raise ValueError(
                f"spread must be in [1, {num_shards}], got {spread}"
            )
        self.num_shards = num_shards
        self.seed = seed
        self.spread = spread

    def storage_key(self, tenant: str, key: bytes) -> bytes:
        """The namespaced key stored in the shard: ``<tenant>/<key>``."""
        encoded = self._tenant_bytes(tenant)
        return encoded + NAMESPACE_SEPARATOR + key

    def shard_of(self, tenant: str, key: bytes) -> int:
        """The single shard serving this request.

        The tenant hash anchors a home group of ``spread`` consecutive
        shards (wrapping); the key hash picks within the group. Both
        hashes chain the router seed, so two routers agree iff their
        ``(num_shards, seed, spread)`` agree.
        """
        encoded = self._tenant_bytes(tenant)
        home = _hash_bytes(self.seed, encoded) % self.num_shards
        if self.spread == 1:
            return home
        offset = _hash_bytes(self.seed + 1, encoded + NAMESPACE_SEPARATOR + key)
        return (home + offset % self.spread) % self.num_shards

    def shards_of_tenant(self, tenant: str) -> List[int]:
        """Every shard this tenant's keys can land on (its home group)."""
        encoded = self._tenant_bytes(tenant)
        home = _hash_bytes(self.seed, encoded) % self.num_shards
        return [(home + i) % self.num_shards for i in range(self.spread)]

    def _tenant_bytes(self, tenant: str) -> bytes:
        encoded = tenant.encode()
        if not encoded:
            raise ValueError("tenant id must be non-empty")
        if NAMESPACE_SEPARATOR in encoded:
            raise ValueError(
                f"tenant id may not contain "
                f"{NAMESPACE_SEPARATOR.decode()!r}: {tenant!r}"
            )
        return encoded

    def __repr__(self) -> str:
        return (
            f"Router(num_shards={self.num_shards}, seed={self.seed}, "
            f"spread={self.spread})"
        )
