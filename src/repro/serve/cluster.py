"""The serving cluster: N independent shards behind the router.

Each shard is a full vertical slice — its own
:class:`~repro.fs.stack.StorageStack` (device, page cache, journal,
file system) and its own store — so shards share *nothing*: one shard's
compaction debt cannot stall another's writers, exactly like N stores
on N machines. All shards live on one cluster-wide virtual timeline
(every stack's clock starts at zero and requests carry absolute
arrival times), so per-tenant latency windows are comparable across
shards.

The serve path for one request:

1. the :class:`~repro.serve.router.Router` picks the shard and builds
   the namespaced storage key;
2. the shard's :class:`~repro.serve.admission.AdmissionController`
   reads the store's :meth:`~repro.lsm.db.DB.write_pressure` and either
   admits, queues (the request waits behind the shard's backlog — its
   wait shows up in latency), or sheds (the request is refused and only
   counted);
3. served requests execute against the shard's store at their arrival
   time — the store's writer mutex and stall machinery charge any
   queueing to the completion time — and the latency is recorded in the
   tenant's and the shard's windowed histograms
   (:class:`~repro.obs.metrics.WindowedHistogram`), keyed by *arrival*
   so a delayed op is charged to the window whose load delayed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.registry import make_store
from repro.bench.harness import ScaledConfig
from repro.lsm.db import DB
from repro.lsm.options import Options
from repro.obs.metrics import NULL_REGISTRY, MetricRegistry, WindowedHistogram
from repro.serve.admission import QUEUE, SHED, AdmissionController
from repro.serve.loadgen import OP_GET, OP_PUT, Request
from repro.serve.router import Router


@dataclass
class TenantStats:
    """Per-tenant serving outcome (one tenant row of ``repro.serve/1``)."""

    tenant: str
    served: int = 0
    shed: int = 0
    queued: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "served": self.served,
            "shed": self.shed,
            "queued": self.queued,
        }


class Shard:
    """One store plus its front door."""

    __slots__ = ("index", "stack", "db", "admission", "latency", "served",
                 "shed")

    def __init__(self, index: int, stack, db: DB,
                 admission: AdmissionController, window_ns: int) -> None:
        self.index = index
        self.stack = stack
        self.db = db
        self.admission = admission
        self.latency = WindowedHistogram(f"shard{index}.latency_ns", window_ns)
        self.served = 0
        self.shed = 0

    def stall_snapshot(self) -> Dict[str, object]:
        stats = self.db.stats
        return {
            "blocked_ns": stats.blocked_ns,
            "stall_ns": stats.stall_ns,
            "slowdown_ns": stats.slowdown_ns,
            "stall_memtable_ns": stats.stall_memtable_ns,
            "stall_l0_stop_ns": stats.stall_l0_stop_ns,
            "l0_stop_abandoned": stats.l0_stop_abandoned,
            "minor_compactions": stats.minor_compactions,
            "major_compactions": stats.major_compactions,
        }


@dataclass
class ClusterConfig:
    """How to build a serving cluster."""

    store: str = "noblsm"
    num_shards: int = 4
    scale: float = 2000.0
    seed: int = 1234
    value_size: int = 1024
    key_size: int = 16
    #: router key spread per tenant (1 = tenant-affine placement)
    spread: int = 1
    #: admission queue bound per shard; 0 disables admission control
    max_queue: int = 32
    #: expected requests per shard, sizing each shard's page cache the
    #: way :class:`ScaledConfig` sizes a single-store bench (the paper
    #: host's cache never evicts; keep that ratio per shard)
    expected_shard_ops: int = 0
    window_ns: int = 25_000_000
    num_channels: int = 1
    background_threads: int = 1
    # --- per-shard stability tuning (the "fair" cluster variant) ---
    compaction_rate_bytes_per_sec: int = 0
    compaction_rate_burst_bytes: int = 0
    compaction_rate_fair: bool = False
    dynamic_slowdown: bool = False

    def build_options(self, scaled: ScaledConfig) -> Options:
        options = scaled.build_options()
        options.compaction_rate_bytes_per_sec = (
            self.compaction_rate_bytes_per_sec
        )
        options.compaction_rate_burst_bytes = self.compaction_rate_burst_bytes
        options.compaction_rate_fair = self.compaction_rate_fair
        options.dynamic_slowdown = self.dynamic_slowdown
        return options


class ServeCluster:
    """N shards, one router, per-tenant accounting.

    ``obs`` is an optional *cluster-level* registry (distinct from each
    shard's own stack registry) for front-door telemetry: offered /
    served / queued / shed counters and the cluster latency windowed
    histogram live there so a :class:`~repro.obs.timeseries
    .TimeSeriesSampler` can scrape them continuously. Without it the
    counters are the shared null singletons and nothing changes — the
    disabled path stays allocation-free and byte-identical.
    """

    def __init__(
        self, config: ClusterConfig, obs: Optional[MetricRegistry] = None
    ) -> None:
        self.config = config
        self.obs = obs if obs is not None else NULL_REGISTRY
        self.router = Router(
            config.num_shards, seed=config.seed, spread=config.spread
        )
        self.shards: List[Shard] = []
        for index in range(config.num_shards):
            scaled = ScaledConfig(
                scale=config.scale,
                num_ops=max(config.expected_shard_ops, 200),
                value_size=config.value_size,
                key_size=config.key_size,
                seed=config.seed + index,
                observe=True,
                num_channels=config.num_channels,
                background_threads=config.background_threads,
            )
            stack = scaled.build_stack()
            db = make_store(
                config.store, stack, f"shard{index}",
                options=config.build_options(scaled),
            )
            admission = AdmissionController(max(config.max_queue, 1))
            # the shard's own registry carries its front-door stats, so
            # a repro.obs/1 snapshot of the stack sees admission too
            stack.obs.register_source(
                f"serve.shard{index}.admission",
                lambda a=admission, s=stack: dict(
                    a.stats.to_dict(), depth=a.peek_depth(s.now)
                ),
            )
            self.shards.append(
                Shard(index, stack, db, admission, config.window_ns)
            )
        self.tenants: Dict[str, TenantStats] = {}
        self.tenant_latency: Dict[str, WindowedHistogram] = {}
        #: cluster-wide latency, for the run timeline; lives on the
        #: cluster registry when telemetry is on so the sampler sees it
        if self.obs.enabled:
            self.latency = self.obs.windowed_histogram(
                "serve.latency_ns", config.window_ns
            )
        else:
            self.latency = WindowedHistogram(
                "serve.latency_ns", config.window_ns
            )
        #: front-door counters (null singletons when telemetry is off)
        self._c_offered = self.obs.counter("serve.offered")
        self._c_served = self.obs.counter("serve.served")
        self._c_queued = self.obs.counter("serve.queued")
        self._c_shed = self.obs.counter("serve.shed")
        #: shed counts per window index, for the timeline
        self.shed_by_window: Dict[int, int] = {}

    def _tenant(self, tenant: str) -> TenantStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            stats = self.tenants[tenant] = TenantStats(tenant)
            self.tenant_latency[tenant] = WindowedHistogram(
                f"tenant.{tenant}.latency_ns", self.config.window_ns
            )
        return stats

    def serve(self, request: Request) -> Optional[int]:
        """Serve one request; returns its completion time, None if shed."""
        shard = self.shards[
            self.router.shard_of(request.tenant, request.key)
        ]
        tenant = self._tenant(request.tenant)
        at = request.arrival
        self._c_offered.inc()
        if self.config.max_queue > 0:
            decision = shard.admission.decide(
                at, shard.db.write_pressure()
            )
            if decision == SHED:
                tenant.shed += 1
                shard.shed += 1
                self._c_shed.inc()
                window = at // self.config.window_ns
                self.shed_by_window[window] = (
                    self.shed_by_window.get(window, 0) + 1
                )
                return None
            if decision == QUEUE:
                tenant.queued += 1
                self._c_queued.inc()
        key = self.router.storage_key(request.tenant, request.key)
        if request.op == OP_PUT:
            done = shard.db.put(key, request.value, at=at)
        elif request.op == OP_GET:
            _, done = shard.db.get(key, at=at)
        else:
            raise ValueError(f"unknown op {request.op!r}")
        if self.config.max_queue > 0:
            shard.admission.note_completion(at, done)
        latency = done - at
        tenant.served += 1
        shard.served += 1
        self._c_served.inc()
        self.tenant_latency[request.tenant].record(at, latency)
        shard.latency.record(at, latency)
        self.latency.record(at, latency)
        return done
