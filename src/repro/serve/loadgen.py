"""Virtual-time load generation: who asks for what, when.

Generalizes the soak harness's arrival machinery
(:mod:`repro.bench.soak`) from "one store, one tenant, constant-rate
puts" to a multi-tenant request stream:

- **Open loop**: Poisson arrivals whose instantaneous rate follows a
  diurnal curve — ``rate(t) = base * (1 + amplitude * sin(...))`` with
  the peak mid-horizon, so a run sweeps through trough, ramp, and peak
  load like a day of traffic compressed into the horizon. Arrivals do
  not care whether the cluster is keeping up; queueing delay lands in
  latency (or in shed counts), exactly the regime where write stalls
  reach tenants ("On Performance Stability in LSM-based Storage
  Systems").
- **Closed loop**: a fixed fleet of clients, each issuing its next
  request when the previous one completes plus think time — the
  classical YCSB shape, which *hides* stalls by slowing down with the
  store. Offered both so the serve bench can show the difference.
- **Hot tenants**: each arrival's tenant is drawn from a Zipfian over
  the tenant ids (theta configurable), so tenant 0 is the hot one; keys
  are uniform over each tenant's private keyspace; the op mix is a
  write fraction (puts) with the rest point reads.

Every stream is a pure function of its config and seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.bench.workloads import ValueGenerator, make_key
from repro.bench.zipf import ZIPFIAN_CONSTANT, Zipfian

NS_PER_SEC = 1_000_000_000

OP_PUT = "put"
OP_GET = "get"


@dataclass(frozen=True)
class Request:
    """One generated request, in cluster-wide virtual time."""

    __slots__ = ("arrival", "tenant", "op", "key", "value")

    arrival: int  # ns since the run's start
    tenant: str
    op: str  # OP_PUT | OP_GET
    key: bytes
    value: Optional[bytes]


@dataclass
class LoadConfig:
    """Shape of one generated request stream."""

    num_tenants: int = 6
    #: mean arrival rate over the whole horizon, requests per virtual
    #: second (open loop); the diurnal curve modulates around this mean
    arrival_rate: float = 40_000.0
    duration_s: float = 0.5
    #: diurnal modulation depth in [0, 1): 0 = flat, 0.6 = peak rate is
    #: 1.6x the mean while the trough is 0.4x
    diurnal_amplitude: float = 0.0
    #: zipf theta over tenant ids; higher = hotter tenant 0
    tenant_theta: float = ZIPFIAN_CONSTANT
    #: fraction of requests that are puts (the rest are point reads)
    write_fraction: float = 0.9
    #: per-tenant keyspace size (keys are uniform within a tenant)
    keys_per_tenant: int = 2_000
    key_size: int = 16
    value_size: int = 1024
    seed: int = 1234
    # --- closed loop only ---
    #: clients per tenant; each waits for its previous completion
    clients_per_tenant: int = 4
    #: think time between a completion and the client's next request
    think_ns: int = 0

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")

    @property
    def horizon_ns(self) -> int:
        return int(self.duration_s * NS_PER_SEC)

    def tenant_ids(self) -> List[str]:
        width = len(str(self.num_tenants - 1))
        return [f"tenant{i:0{width}d}" for i in range(self.num_tenants)]


def diurnal_rate(config: LoadConfig, at_ns: int) -> float:
    """Instantaneous arrival rate at ``at_ns`` into the horizon.

    One full sine period over the horizon, phased so the run starts at
    the mean on the way down, bottoms out at a quarter, peaks at three
    quarters — the gate-sized runs end on the hardest stretch.
    """
    if config.diurnal_amplitude == 0.0:
        return config.arrival_rate
    phase = 2.0 * math.pi * at_ns / max(config.horizon_ns, 1)
    return config.arrival_rate * (
        1.0 - config.diurnal_amplitude * math.sin(phase)
    )


class RequestFactory:
    """Draws (tenant, op, key, value) tuples; shared by both loops."""

    def __init__(self, config: LoadConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.tenants = config.tenant_ids()
        self.chooser = (
            Zipfian(config.num_tenants, seed=config.seed + 1,
                    theta=config.tenant_theta)
            if config.num_tenants > 1
            else None
        )
        self.values = ValueGenerator(config.value_size, seed=config.seed + 2)

    def next_tenant(self) -> str:
        if self.chooser is None:
            return self.tenants[0]
        return self.tenants[self.chooser.next() % len(self.tenants)]

    def make(self, arrival: int, tenant: Optional[str] = None) -> Request:
        config = self.config
        if tenant is None:
            tenant = self.next_tenant()
        key = make_key(self.rng.randrange(config.keys_per_tenant),
                       config.key_size)
        if self.rng.random() < config.write_fraction:
            return Request(arrival, tenant, OP_PUT, key, self.values.next())
        return Request(arrival, tenant, OP_GET, key, None)


def open_loop(config: LoadConfig) -> Iterator[Request]:
    """Poisson arrivals with the diurnal rate curve, in arrival order."""
    rng = random.Random(config.seed)
    factory = RequestFactory(config, rng)
    horizon = config.horizon_ns
    at = 0
    while True:
        rate = diurnal_rate(config, at)
        at += max(int(rng.expovariate(rate) * NS_PER_SEC), 1)
        if at >= horizon:
            return
        yield factory.make(at)


class ClosedLoopDriver:
    """Fixed client fleet: each request starts when the last finished.

    ``run(execute)`` pumps every client until the horizon, always
    advancing the client with the smallest clock (ties broken by client
    index, like :class:`repro.bench.harness.ThreadedDriver`).
    ``execute(request) -> completion`` is the cluster's serve function;
    a shed request costs only think time.
    """

    def __init__(self, config: LoadConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.factory = RequestFactory(config, self.rng)
        tenants = config.tenant_ids()
        #: (clock, client index, tenant) per client; tenants round-robin
        self.clients = [
            [0, i, tenants[i % len(tenants)]]
            for i in range(config.clients_per_tenant * len(tenants))
        ]

    def run(self, execute) -> int:
        horizon = self.config.horizon_ns
        think = self.config.think_ns
        last = 0
        while True:
            client = min(self.clients, key=lambda c: (c[0], c[1]))
            at = client[0]
            if at >= horizon:
                return last
            request = self.factory.make(at, tenant=client[2])
            done = execute(request)
            if done is None:  # shed: immediate pushback
                done = at
            client[0] = done + think + 1
            last = max(last, done)
