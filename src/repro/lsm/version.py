"""Versions, version edits and the MANIFEST.

A :class:`Version` is an immutable snapshot of which SSTable files make
up each level. Compactions produce :class:`VersionEdit` deltas which the
:class:`VersionSet` logs to the MANIFEST file and applies to produce the
next current version — exactly LevelDB's scheme. The MANIFEST append is
what makes a compaction's outcome durable; whether it is *synced* or left
to Ext4's asynchronous commit is the difference between LevelDB and
NobLSM.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fs.ext4 import Ext4, File
from repro.lsm.filenames import current_file_name, manifest_file_name
from repro.lsm.format import (
    CorruptionError,
    crc32,
    get_fixed32,
    get_length_prefixed,
    get_varint,
    put_fixed32,
    put_length_prefixed,
    put_varint,
)
from repro.lsm.options import Options

# VersionEdit field tags (subset of LevelDB's)
_TAG_LOG_NUMBER = 2
_TAG_NEXT_FILE = 3
_TAG_LAST_SEQ = 4
_TAG_COMPACT_POINTER = 5
_TAG_DELETED_FILE = 6
_TAG_NEW_FILE = 7


@dataclass
class FileMetaData:
    """One SSTable file in some level."""

    number: int
    file_size: int
    smallest: bytes  # internal key
    largest: bytes  # internal key
    ino: int = -1  # simulated inode, used by NobLSM's check_commit
    allowed_seeks: int = 100
    shadow: bool = False  # NobLSM: compacted, retained as backup only

    def user_range(self) -> Tuple[bytes, bytes]:
        return self.smallest[:-8], self.largest[:-8]


@dataclass
class VersionEdit:
    """A delta between two versions."""

    log_number: Optional[int] = None
    next_file_number: Optional[int] = None
    last_sequence: Optional[int] = None
    compact_pointers: List[Tuple[int, bytes]] = field(default_factory=list)
    deleted_files: List[Tuple[int, int]] = field(default_factory=list)
    new_files: List[Tuple[int, FileMetaData]] = field(default_factory=list)

    def add_file(self, level: int, meta: FileMetaData) -> None:
        self.new_files.append((level, meta))

    def delete_file(self, level: int, number: int) -> None:
        self.deleted_files.append((level, number))

    def encode(self) -> bytes:
        parts: List[bytes] = []
        if self.log_number is not None:
            parts.append(put_varint(_TAG_LOG_NUMBER))
            parts.append(put_varint(self.log_number))
        if self.next_file_number is not None:
            parts.append(put_varint(_TAG_NEXT_FILE))
            parts.append(put_varint(self.next_file_number))
        if self.last_sequence is not None:
            parts.append(put_varint(_TAG_LAST_SEQ))
            parts.append(put_varint(self.last_sequence))
        for level, key in self.compact_pointers:
            parts.append(put_varint(_TAG_COMPACT_POINTER))
            parts.append(put_varint(level))
            parts.append(put_length_prefixed(key))
        for level, number in self.deleted_files:
            parts.append(put_varint(_TAG_DELETED_FILE))
            parts.append(put_varint(level))
            parts.append(put_varint(number))
        for level, meta in self.new_files:
            parts.append(put_varint(_TAG_NEW_FILE))
            parts.append(put_varint(level))
            parts.append(put_varint(meta.number))
            parts.append(put_varint(meta.file_size))
            parts.append(put_length_prefixed(meta.smallest))
            parts.append(put_length_prefixed(meta.largest))
            parts.append(put_varint(max(meta.ino, 0)))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "VersionEdit":
        edit = cls()
        pos = 0
        while pos < len(data):
            tag, pos = get_varint(data, pos)
            if tag == _TAG_LOG_NUMBER:
                edit.log_number, pos = get_varint(data, pos)
            elif tag == _TAG_NEXT_FILE:
                edit.next_file_number, pos = get_varint(data, pos)
            elif tag == _TAG_LAST_SEQ:
                edit.last_sequence, pos = get_varint(data, pos)
            elif tag == _TAG_COMPACT_POINTER:
                level, pos = get_varint(data, pos)
                key, pos = get_length_prefixed(data, pos)
                edit.compact_pointers.append((level, key))
            elif tag == _TAG_DELETED_FILE:
                level, pos = get_varint(data, pos)
                number, pos = get_varint(data, pos)
                edit.deleted_files.append((level, number))
            elif tag == _TAG_NEW_FILE:
                level, pos = get_varint(data, pos)
                number, pos = get_varint(data, pos)
                size, pos = get_varint(data, pos)
                smallest, pos = get_length_prefixed(data, pos)
                largest, pos = get_length_prefixed(data, pos)
                ino, pos = get_varint(data, pos)
                edit.new_files.append(
                    (level, FileMetaData(number, size, smallest, largest, ino))
                )
            else:
                raise CorruptionError(f"unknown version-edit tag {tag}")
        return edit


class Version:
    """Immutable per-level file lists. Levels >= 1 are sorted, disjoint."""

    def __init__(self, num_levels: int) -> None:
        self.files: List[List[FileMetaData]] = [[] for _ in range(num_levels)]

    def level_bytes(self, level: int) -> int:
        return sum(f.file_size for f in self.files[level])

    def num_files(self, level: int) -> int:
        return len(self.files[level])

    def all_file_numbers(self) -> List[int]:
        return [f.number for level in self.files for f in level]

    def overlapping_inputs(
        self, level: int, begin: Optional[bytes], end: Optional[bytes]
    ) -> List[FileMetaData]:
        """Files in ``level`` whose user-key range intersects [begin, end].

        For level 0 (overlapping files), the range is expanded until it is
        stable, as LevelDB does.
        """
        inputs: List[FileMetaData] = []
        user_begin, user_end = begin, end
        i = 0
        files = self.files[level]
        while i < len(files):
            f = files[i]
            f_begin, f_end = f.user_range()
            i += 1
            if user_end is not None and f_begin > user_end:
                continue
            if user_begin is not None and f_end < user_begin:
                continue
            inputs.append(f)
            if level == 0:
                if user_begin is not None and f_begin < user_begin:
                    user_begin = f_begin
                    inputs = []
                    i = 0
                elif user_end is not None and f_end > user_end:
                    user_end = f_end
                    inputs = []
                    i = 0
        return inputs

    def pick_level_for_memtable_output(
        self, smallest_user: bytes, largest_user: bytes, options: Options
    ) -> int:
        """Push a new L0 table deeper when nothing overlaps (LevelDB)."""
        level = 0
        if not self._overlaps(0, smallest_user, largest_user):
            max_level = min(2, options.num_levels - 2)
            while level < max_level:
                if self._overlaps(level + 1, smallest_user, largest_user):
                    break
                overlaps = self.overlapping_inputs(
                    level + 2, smallest_user, largest_user
                ) if level + 2 < len(self.files) else []
                if sum(f.file_size for f in overlaps) > (
                    options.grandparent_overlap_limit()
                ):
                    break
                level += 1
        return level

    def _overlaps(self, level: int, begin: bytes, end: bytes) -> bool:
        return bool(self.overlapping_inputs(level, begin, end))

    def files_for_get(self, user_key: bytes) -> List[Tuple[int, FileMetaData]]:
        """Files that may hold ``user_key``, in LevelDB search order.

        Level-0 files newest-first, then one candidate per deeper level.
        Shadow files are skipped — they no longer serve reads
        (Section 4.3 of the paper).
        """
        candidates: List[Tuple[int, FileMetaData]] = []
        level0 = [
            f
            for f in self.files[0]
            if not f.shadow
            and f.smallest[:-8] <= user_key <= f.largest[:-8]
        ]
        level0.sort(key=lambda f: f.number, reverse=True)
        candidates.extend((0, f) for f in level0)
        for level in range(1, len(self.files)):
            files = self.files[level]
            if not files:
                continue
            pos = bisect.bisect_left(
                [f.largest[:-8] for f in files], user_key
            )
            if pos < len(files):
                f = files[pos]
                if not f.shadow and f.smallest[:-8] <= user_key:
                    candidates.append((level, f))
        return candidates

    def clone(self) -> "Version":
        copy = Version(len(self.files))
        for level, files in enumerate(self.files):
            copy.files[level] = list(files)
        return copy


class VersionSet:
    """Tracks the current version and logs edits to the MANIFEST."""

    def __init__(self, fs: Ext4, dbname: str, options: Options) -> None:
        self.fs = fs
        self.dbname = dbname
        self.options = options
        self.current = Version(options.num_levels)
        self.next_file_number = 2
        self.last_sequence = 0
        self.log_number = 0
        self.manifest_file_number = 1
        self.compact_pointer: Dict[int, bytes] = {}
        self._manifest: Optional[File] = None
        self.manifest_writes = 0
        #: recovery hook: returns False for a referenced file that did not
        #: survive the crash (NobLSM's async-committed successors)
        self.validate_new_file: Optional[Callable[[FileMetaData], bool]] = None
        self.skipped_edits = 0

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def new_file_number(self) -> int:
        number = self.next_file_number
        self.next_file_number += 1
        return number

    def reuse_file_number(self, number: int) -> None:
        if number == self.next_file_number - 1:
            self.next_file_number = number

    # ------------------------------------------------------------------
    # manifest persistence
    # ------------------------------------------------------------------

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return put_fixed32(crc32(payload)) + put_fixed32(len(payload)) + payload

    def create_manifest(self, at: int) -> int:
        """Write a fresh MANIFEST holding a full snapshot, point CURRENT."""
        number = self.new_file_number()
        self.manifest_file_number = number
        path = manifest_file_name(self.dbname, number)
        handle, t = self.fs.create(path, at=at)
        self._manifest = handle
        snapshot = VersionEdit(
            log_number=self.log_number,
            next_file_number=self.next_file_number,
            last_sequence=self.last_sequence,
        )
        for level, files in enumerate(self.current.files):
            for meta in files:
                snapshot.add_file(level, meta)
        for level, key in self.compact_pointer.items():
            snapshot.compact_pointers.append((level, key))
        t = handle.append(self._frame(snapshot.encode()), at=t)
        t = self._set_current(number, t)
        return t

    def _set_current(self, manifest_number: int, at: int) -> int:
        tmp_path = f"{self.dbname}/CURRENT.dbtmp"
        if self.fs.exists(tmp_path):
            self.fs.unlink(tmp_path, at=at)
        tmp, t = self.fs.create(tmp_path, at=at)
        t = tmp.append(
            f"MANIFEST-{manifest_number:06d}\n".encode(), at=t
        )
        if self.options.sync.sync_manifest:
            t = tmp.fsync(at=t, reason="current")
        current = current_file_name(self.dbname)
        if self.fs.exists(current):
            self.fs.unlink(current, at=t)
        return self.fs.rename(tmp_path, current, at=t)

    def log_and_apply(self, edit: VersionEdit, at: int) -> int:
        """LevelDB's LogAndApply: persist the edit, install the version."""
        if edit.log_number is None:
            edit.log_number = self.log_number
        else:
            self.log_number = edit.log_number
        edit.next_file_number = self.next_file_number
        edit.last_sequence = self.last_sequence
        t = at
        if self._manifest is None:
            t = self.create_manifest(t)
        for level, key in edit.compact_pointers:
            self.compact_pointer[level] = key
        t = self._manifest.append(self._frame(edit.encode()), at=t)
        if self.options.sync.sync_manifest:
            t = self._manifest.fsync(at=t, reason="manifest")
        self.manifest_writes += 1
        self.current = self._apply(self.current, edit)
        return t

    def _apply(self, base: Version, edit: VersionEdit) -> Version:
        version = base.clone()
        for level, number in edit.deleted_files:
            version.files[level] = [
                f for f in version.files[level] if f.number != number
            ]
        for level, meta in edit.new_files:
            version.files[level].append(meta)
            if level > 0:
                version.files[level].sort(key=lambda f: f.smallest)
            else:
                version.files[level].sort(key=lambda f: f.number)
        return version

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(self, at: int) -> int:
        """Rebuild state from CURRENT + MANIFEST after open/crash."""
        current_path = current_file_name(self.dbname)
        handle, t = self.fs.open(current_path, at=at)
        name, t2 = handle.read(0, handle.size, at=t)
        t = t2
        manifest_name = name.decode().strip()
        manifest_path = f"{self.dbname}/{manifest_name}"
        manifest, t = self.fs.open(manifest_path, at=t)
        self.manifest_file_number = int(manifest_name.split("-")[1])
        # First pass: decode every intact record.
        edits: List[VersionEdit] = []
        offset = 0
        size = manifest.size
        while offset + 8 <= size:
            header, t = manifest.read(offset, 8, at=t)
            expected = get_fixed32(header, 0)
            length = get_fixed32(header, 4)
            if offset + 8 + length > size:
                break  # torn tail: ignore, like LevelDB's reader
            payload, t = manifest.read(offset + 8, length, at=t)
            if crc32(payload) != expected:
                break
            edits.append(VersionEdit.decode(payload))
            offset += 8 + length

        # A file deleted by some later edit was *consumed* by a further
        # compaction; NobLSM only deletes consumed files after their
        # successors committed, so absence from disk is expected and not
        # a sign of a lost compaction.
        deleted_later: "set[int]" = set()
        for edit in edits:
            deleted_later.update(number for _, number in edit.deleted_files)

        # Second pass: apply, rolling back edits whose outputs were lost.
        version = Version(self.options.num_levels)
        invalid_numbers: "set[int]" = set()
        for edit in edits:
            # scalar metadata is always safe to absorb
            if edit.log_number is not None:
                self.log_number = edit.log_number
            if edit.next_file_number is not None:
                self.next_file_number = edit.next_file_number
            if edit.last_sequence is not None:
                self.last_sequence = edit.last_sequence
            for level, key in edit.compact_pointers:
                self.compact_pointer[level] = key
            if self._edit_invalid(edit, invalid_numbers, deleted_later):
                # This compaction's outputs did not survive the crash (or
                # it consumed outputs that didn't): skip it, keeping its
                # inputs live — they were retained on disk exactly for
                # this fallback (NobLSM Section 4.4).
                invalid_numbers.update(
                    meta.number for _, meta in edit.new_files
                )
                self.skipped_edits += 1
                continue
            version = self._apply(version, edit)
        self.current = version
        # the recovered manifest's own number was allocated before some
        # of the edits recorded next_file_number (MarkFileNumberUsed)
        self.next_file_number = max(
            self.next_file_number, self.manifest_file_number + 1, self.log_number + 1
        )
        # LevelDB starts a fresh MANIFEST (full snapshot) on open rather
        # than appending to the recovered one; the old manifest becomes
        # obsolete once CURRENT points at the new file.
        self._manifest = None
        t = self.create_manifest(t)
        return t

    def _edit_invalid(
        self,
        edit: VersionEdit,
        invalid_numbers: "set[int]",
        deleted_later: "set[int]",
    ) -> bool:
        """True when a recovered edit must be rolled back.

        An edit is invalid if any SSTable it adds fails validation (and
        was not legitimately consumed by a later edit), or — cascading —
        if it consumed a file added by an earlier invalid edit: its
        outputs were derived from data that never became durable, and
        applying it would let the restored inputs of the earlier edit
        shadow newer versions.
        """
        if self.validate_new_file is None:
            return False
        if any(number in invalid_numbers for _, number in edit.deleted_files):
            return True
        return any(
            meta.number not in deleted_later
            and not self.validate_new_file(meta)
            for _, meta in edit.new_files
        )

    def level_score(self, level: int) -> float:
        """LevelDB's compaction score (>= 1.0 means 'needs compaction')."""
        if level == 0:
            live = [f for f in self.current.files[0] if not f.shadow]
            return len(live) / float(self.options.l0_compaction_trigger)
        return self.current.level_bytes(level) / self.options.max_bytes_for_level(
            level
        )

    def pick_compaction_level(self) -> Tuple[Optional[int], float]:
        """The level with the highest score, if any reaches 1.0."""
        best_level, best_score = None, 0.999999
        for level in range(0, self.options.num_levels - 1):
            score = self.level_score(level)
            if score > best_score:
                best_level, best_score = level, score
        return best_level, best_score
