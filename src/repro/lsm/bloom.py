"""Bloom filter, LevelDB-style double hashing."""

from __future__ import annotations

import zlib
from typing import Iterable


def _base_hash(key: bytes) -> int:
    # crc32 of the key and of its reverse give two independent-enough
    # 32-bit hashes for Kirsch-Mitzenmacher double hashing.
    h1 = zlib.crc32(key) & 0xFFFFFFFF
    h2 = zlib.crc32(key[::-1], 0x9747B28C) & 0xFFFFFFFF
    return h1 | (h2 << 32)


class BloomFilter:
    """Immutable bloom filter over a set of keys."""

    __slots__ = ("_bits", "k")

    def __init__(self, bits: bytearray, k: int) -> None:
        self._bits = bits
        self.k = k

    @property
    def size_bytes(self) -> int:
        return len(self._bits) + 1

    @classmethod
    def build(cls, keys: Iterable[bytes], bits_per_key: int) -> "BloomFilter":
        keys = list(keys)
        k = max(1, min(30, int(bits_per_key * 0.69)))  # ln 2 factor
        nbits = max(64, len(keys) * bits_per_key)
        nbytes = (nbits + 7) // 8
        nbits = nbytes * 8
        bits = bytearray(nbytes)
        crc32 = zlib.crc32
        k_range = range(k)
        for key in keys:
            h = crc32(key)
            delta = crc32(key[::-1], 0x9747B28C)
            for _ in k_range:
                pos = h % nbits
                bits[pos >> 3] |= 1 << (pos & 7)
                h = (h + delta) & 0xFFFFFFFF
        return cls(bits, k)

    def may_contain(self, key: bytes) -> bool:
        bits = self._bits
        nbits = len(bits) * 8
        if nbits == 0:
            return False
        crc32 = zlib.crc32
        h = crc32(key)
        delta = crc32(key[::-1], 0x9747B28C)
        for _ in range(self.k):
            pos = h % nbits
            if not bits[pos >> 3] & (1 << (pos & 7)):
                return False
            h = (h + delta) & 0xFFFFFFFF
        return True

    def encode(self) -> bytes:
        return bytes(self._bits) + bytes([self.k])

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        if not data:
            return cls(bytearray(), 1)
        return cls(bytearray(data[:-1]), data[-1])
