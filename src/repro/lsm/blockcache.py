"""Global block cache (LevelDB's 8 MB Cache, scaled with the run)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.lsm.block import Block

CacheKey = Tuple[int, int]  # (table number, block position)


class BlockCache:
    """LRU over decoded data blocks, bounded by their encoded size.

    A hit skips the page-cache read *and* the decode cost; everything
    else (bloom checks, binary search) is still charged. LevelDB defaults
    to 8 MB, far below a data set's size, so most random reads decode.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[CacheKey, Tuple[Block, int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def get(self, table_number: int, block_pos: int) -> Optional[Block]:
        entry = self._entries.get((table_number, block_pos))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((table_number, block_pos))
        self.hits += 1
        return entry[0]

    def put(
        self, table_number: int, block_pos: int, block: Block, nbytes: int
    ) -> None:
        key = (table_number, block_pos)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (block, nbytes)
        self._bytes += nbytes
        while self._bytes > self.capacity_bytes and self._entries:
            _, (_, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes

    def evict_table(self, table_number: int) -> None:
        stale = [key for key in self._entries if key[0] == table_number]
        for key in stale:
            self._bytes -= self._entries.pop(key)[1]

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
