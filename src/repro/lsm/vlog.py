"""WiscKey-style value log for the ``noblsm-kv`` store variant.

Large values leave the LSM at flush time and live in append-only
*segment* files (``NNNNNN.vlg``); the tree keeps a small pointer in the
value slot instead. Stored values carry a one-byte marker so readers can
tell the two apart without a new internal-key type:

- inline:  ``b"\\x00" + raw_value``
- pointer: ``b"\\x01" + varint(segment) + varint(offset) + varint(length)``

Separation is decided when a memtable is dumped, not when the write
arrives — the WAL and memtable hold the full (inline-marked) value, so
log replay and the durability oracle are untouched.

Durability invariant: a table whose pointers may become visible is only
made durable *after* the head segment holding those values is
fdatasync'd (minor dumps), or its pointers are re-validated at recovery
and the table rolled back to its shadow predecessors (major outputs, the
NobLSM way). Segment reclamation is commit-gated exactly like shadow
retirement: a segment is unlinked only once every table that dropped or
relocated references into it has passed ``is_committed``.

Pointer decode goes through a content-keyed bypass cache mirroring the
block-decode cache in :mod:`repro.lsm.block`: hits are correct by
content equality, and virtual-time charges are identical on hit and miss
(decoding is host-side CPU the simulation never bills for).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.fs.ext4 import Ext4, File
from repro.lsm.filenames import parse_file_name, vlog_file_name
from repro.lsm.format import CorruptionError, get_varint, put_varint
from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.spans import NULL_SPAN

INLINE_PREFIX = b"\x00"
POINTER_PREFIX = b"\x01"


def encode_inline(raw: bytes) -> bytes:
    """Mark a value as stored directly in the LSM."""
    return INLINE_PREFIX + raw


def encode_pointer(segment: int, offset: int, length: int) -> bytes:
    """Encode a ``<segment, offset, length>`` vLog pointer."""
    return (
        POINTER_PREFIX
        + put_varint(segment)
        + put_varint(offset)
        + put_varint(length)
    )


def is_pointer(stored: bytes) -> bool:
    return stored[:1] == POINTER_PREFIX


#: content-keyed pointer-decode bypass: pointer byte strings repeat on
#: every read of a hot key, so decode each distinct encoding once
_POINTER_CACHE: "OrderedDict[bytes, Tuple[int, int, int]]" = OrderedDict()
_POINTER_CACHE_CAPACITY = 4096


def decode_pointer(stored: bytes) -> Tuple[int, int, int]:
    """Decode a pointer value; returns (segment, offset, length)."""
    key = bytes(stored)
    cached = _POINTER_CACHE.get(key)
    if cached is not None:
        _POINTER_CACHE.move_to_end(key)
        return cached
    if not is_pointer(key):
        raise CorruptionError("not a vlog pointer")
    segment, pos = get_varint(key, 1)
    offset, pos = get_varint(key, pos)
    length, pos = get_varint(key, pos)
    if pos != len(key):
        raise CorruptionError("trailing bytes after vlog pointer")
    decoded = (segment, offset, length)
    if len(_POINTER_CACHE) >= _POINTER_CACHE_CAPACITY:
        _POINTER_CACHE.popitem(last=False)
    _POINTER_CACHE[key] = decoded
    return decoded


def decode_stored(stored: bytes) -> bytes:
    """Strip the inline marker (pointer values need a vLog read)."""
    if stored[:1] != INLINE_PREFIX:
        raise CorruptionError("expected an inline-marked value")
    return stored[1:]


class VLog:
    """Segmented append-only value log bound to one database directory.

    Tracks, per segment: appended bytes (``size``), live referenced
    bytes (maintained by the store's compaction hooks), and the commit
    barrier — the inodes that must pass ``is_committed`` before the
    segment may be unlinked.
    """

    def __init__(
        self,
        fs: Ext4,
        dbname: str,
        segment_bytes: int,
        gc_garbage_ratio: float,
        obs: Optional[MetricRegistry] = None,
    ) -> None:
        self.fs = fs
        self.dbname = dbname
        self.segment_bytes = segment_bytes
        self.gc_garbage_ratio = gc_garbage_ratio
        self.obs = obs if obs is not None else NULL_REGISTRY
        self._observe = self.obs.enabled
        if self._observe:
            self._append_counter = self.obs.counter("vlog.append")
            self._append_bytes = self.obs.counter("vlog.append_bytes")
            self._relocated_bytes = self.obs.counter("vlog.gc.relocated_bytes")
            self._reclaimed_counter = self.obs.counter("vlog.reclaimed_segments")
        self._sizes: Dict[int, int] = {}
        self._live: Dict[int, int] = {}
        self._sealed: Set[int] = set()
        self._retiring: Set[int] = set()
        self._barriers: Dict[int, List[int]] = {}
        self._head: Optional[File] = None
        self._head_number: Optional[int] = None
        #: segments with appends not yet fdatasync'd — the head may roll
        #: mid-dump, so this can hold more than the current head
        self._dirty: Dict[int, File] = {}
        self._readers: Dict[int, File] = {}
        self.appends = 0
        self.appended_bytes = 0
        self.relocated_bytes = 0
        self.reclaimed_segments = 0
        # adopt segments already on disk (reopen after close or crash);
        # live counts are rebuilt by the store from the recovered version
        next_number = 0
        for path in fs.list_dir(dbname + "/"):
            kind, number = parse_file_name(dbname, path)
            if kind == "vlog" and number is not None:
                self._sizes[number] = fs.stat_size(path)
                self._live[number] = 0
                self._sealed.add(number)
                next_number = max(next_number, number + 1)
        self._next_number = next_number

    # ------------------------------------------------------------------
    # head segment and the append path
    # ------------------------------------------------------------------

    @property
    def head_number(self) -> Optional[int]:
        return self._head_number

    @property
    def head_ino(self) -> Optional[int]:
        return self._head.ino if self._head is not None else None

    def _ensure_head(self, at: int) -> int:
        if self._head is not None:
            return at
        number = self._next_number
        self._next_number += 1
        handle, t = self.fs.create(vlog_file_name(self.dbname, number), at)
        self._head = handle
        self._head_number = number
        self._sizes[number] = 0
        self._live[number] = 0
        self._readers[number] = handle
        return t

    def _seal_head(self) -> None:
        if self._head_number is not None:
            self._sealed.add(self._head_number)
        self._head = None
        self._head_number = None

    def append(self, raw: bytes, at: int) -> Tuple[bytes, int]:
        """Append one value to the head segment; returns (pointer, t)."""
        t = self._ensure_head(at)
        number = self._head_number
        offset = self._sizes[number]
        span = NULL_SPAN
        if self._observe:
            span = self.obs.start_span("db.vlog.append", t)
        assert self._head is not None
        t = self._head.append(raw, t)
        nbytes = len(raw)
        self._sizes[number] = offset + nbytes
        self._live[number] += nbytes
        self._dirty[number] = self._head
        self.appends += 1
        self.appended_bytes += nbytes
        if self._observe:
            self._append_counter.inc()
            self._append_bytes.inc(nbytes)
            span.annotate(segment=number, bytes=nbytes)
        span.end(t)
        if self._sizes[number] >= self.segment_bytes:
            self._seal_head()
        return encode_pointer(number, offset, nbytes), t

    def sync_dirty(self, at: int) -> int:
        """fdatasync every segment with unsynced appends.

        Minor dumps call this *before* syncing the L0 table, so a durable
        table's pointers always resolve (commits are ordered).
        """
        if not self._dirty:
            return at
        t = at
        for number in sorted(self._dirty):
            t = self._dirty[number].fdatasync(t, reason="vlog")
        self._dirty.clear()
        return t

    def segment_ino(self, segment: int) -> Optional[int]:
        handle = self._readers.get(segment)
        return handle.ino if handle is not None else None

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def read(self, segment: int, offset: int, length: int, at: int) -> Tuple[bytes, int]:
        handle = self._readers.get(segment)
        t = at
        if handle is None:
            handle, t = self.fs.open(vlog_file_name(self.dbname, segment), t)
            self._readers[segment] = handle
        data, t = handle.read(offset, length, t)
        if len(data) != length:
            raise CorruptionError(
                f"dangling vlog pointer: segment {segment} "
                f"[{offset}, {offset + length}) beyond size {handle.size}"
            )
        return data, t

    def resolve(self, stored: bytes, at: int) -> Tuple[bytes, int]:
        """Turn a marked stored value back into the user value."""
        if stored[:1] == INLINE_PREFIX:
            return stored[1:], at
        segment, offset, length = decode_pointer(stored)
        return self.read(segment, offset, length, at)

    # ------------------------------------------------------------------
    # garbage accounting, GC and commit-gated reclamation
    # ------------------------------------------------------------------

    def note_dead(self, segment: int, nbytes: int) -> None:
        """A pointer into ``segment`` was dropped by compaction."""
        live = self._live.get(segment)
        if live is not None:
            self._live[segment] = max(live - nbytes, 0)

    def relocate(self, segment: int, offset: int, length: int, at: int) -> Tuple[bytes, int]:
        """GC: copy a live value to the head, kill the old reference."""
        span = NULL_SPAN
        if self._observe:
            span = self.obs.start_span("db.vlog.gc", at)
        data, t = self.read(segment, offset, length, at)
        pointer, t = self.append(data, t)
        self.note_dead(segment, length)
        self.relocated_bytes += length
        if self._observe:
            self._relocated_bytes.inc(length)
            span.annotate(segment=segment, bytes=length)
        span.end(t)
        return pointer, t

    def gc_candidates(self) -> Set[int]:
        """Sealed segments garbage-heavy enough to relocate out of."""
        candidates = set()
        for segment in self._sealed:
            if segment in self._retiring:
                continue
            size = self._sizes.get(segment, 0)
            if size <= 0:
                continue
            if self._live.get(segment, 0) <= size * (1.0 - self.gc_garbage_ratio):
                candidates.add(segment)
        return candidates

    def note_barrier(self, segment: int, inos: List[int]) -> None:
        """Record inodes that must commit before ``segment`` may go."""
        barrier = self._barriers.setdefault(segment, [])
        for ino in inos:
            if ino not in barrier:
                barrier.append(ino)

    def dead_segments(self) -> List[int]:
        """Sealed segments with no live references, not yet retiring."""
        return sorted(
            segment
            for segment in self._sealed
            if segment not in self._retiring
            and self._live.get(segment, 0) == 0
        )

    def take_retirement(self, segment: int) -> List[int]:
        """Move a dead segment to the retiring set; returns its barrier."""
        self._retiring.add(segment)
        return self._barriers.pop(segment, [])

    def reclaim_segment(self, segment: int, at: int) -> int:
        """Unlink a retired segment (its barrier has fully committed)."""
        span = NULL_SPAN
        if self._observe:
            span = self.obs.start_span("db.vlog.reclaim", at)
            span.annotate(segment=segment, bytes=self._sizes.get(segment, 0))
        t = self.fs.unlink(vlog_file_name(self.dbname, segment), at)
        span.end(t)
        self._sizes.pop(segment, None)
        self._live.pop(segment, None)
        self._sealed.discard(segment)
        self._retiring.discard(segment)
        self._barriers.pop(segment, None)
        self._readers.pop(segment, None)
        self._dirty.pop(segment, None)
        self.reclaimed_segments += 1
        if self._observe:
            self._reclaimed_counter.inc()
        return t

    # ------------------------------------------------------------------
    # recovery and introspection
    # ------------------------------------------------------------------

    def reset_live(self, live: Dict[int, int]) -> None:
        """Replace live counts with ones rebuilt from the version set."""
        for segment in self._sizes:
            self._live[segment] = live.get(segment, 0)
        self._barriers.clear()
        self._retiring.clear()

    def segments(self) -> List[int]:
        return sorted(self._sizes)

    def live_bytes(self, segment: int) -> int:
        return self._live.get(segment, 0)

    def total_bytes(self) -> int:
        """On-disk vLog footprint, garbage included (space amp input)."""
        return sum(self._sizes.values())

    def snapshot(self) -> Dict[str, object]:
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "segments": len(self._sizes),
            "appends": self.appends,
            "appended_bytes": self.appended_bytes,
            "relocated_bytes": self.relocated_bytes,
            "reclaimed_segments": self.reclaimed_segments,
            "total_bytes": self.total_bytes(),
            "live_bytes": sum(self._live.values()),
        }
