"""Data and index blocks.

A block is a flat sequence of ``[klen varint | vlen varint | key | value]``
entries in key order, followed by a fixed32 entry count. (LevelDB adds
prefix compression and restart points; flat entries keep decode simple
while preserving sizes to within a few percent, which is all the device
model consumes.)

Hot-path note — the decode bypass cache: compactions read back blocks
the simulation itself just built, so :meth:`BlockBuilder.finish`
registers its (encoded bytes -> decoded lists) pair in a bounded
content-keyed cache and :meth:`Block.decode` consults it before parsing.
The key is the full encoded payload, so a hit is correct by *content
equality* regardless of which file the bytes came from; virtual-time
charges (``block_decode_ns``, device reads) are made by the callers and
are identical on hit and miss. Misses (WAL-replayed blocks, recovery
reads, corrupt data) fall through to the real parser.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.lsm.format import (
    CorruptionError,
    get_fixed32,
    get_varint,
    put_fixed32,
    put_varint,
)

#: encoded block bytes -> decoded Block; bounded FIFO (recently built
#: blocks are the ones compactions read back)
_DECODE_CACHE: "OrderedDict[bytes, Block]" = OrderedDict()
_DECODE_CACHE_CAPACITY = 8192


class BlockBuilder:
    """Accumulates sorted (key, value) entries into one block.

    Entries are encoded as they arrive — ``add`` appends the varint
    length prefixes alongside key and value, so ``finish`` is a single
    ``join`` instead of a second pass over every entry.
    """

    __slots__ = ("_keys", "_values", "_parts", "_bytes")

    def __init__(self) -> None:
        self._keys: List[bytes] = []
        self._values: List[bytes] = []
        self._parts: List[bytes] = []
        self._bytes = 0

    @property
    def empty(self) -> bool:
        return not self._keys

    @property
    def _count(self) -> int:
        return len(self._keys)

    @property
    def size_estimate(self) -> int:
        return self._bytes + 4

    @property
    def last_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    def add(self, key: bytes, value: bytes) -> int:
        """Append an entry; returns the new :attr:`size_estimate`.

        Ordering is the caller's contract: data blocks hold *internal*
        keys, whose order (user key asc, sequence desc) differs from raw
        byte order, so the table builder validates with the internal
        comparator before calling here. The returned size lets hot
        callers check their block-cut condition without a second call.
        """
        klen_enc = put_varint(len(key))
        vlen_enc = put_varint(len(value))
        self._keys.append(key)
        self._values.append(value)
        parts = self._parts
        parts.append(klen_enc)
        parts.append(vlen_enc)
        parts.append(key)
        parts.append(value)
        size = (
            self._bytes
            + len(klen_enc) + len(vlen_enc) + len(key) + len(value)
        )
        self._bytes = size
        return size + 4

    def finish(self) -> bytes:
        keys = self._keys
        self._parts.append(put_fixed32(len(keys)))
        block = b"".join(self._parts)
        # register the decode bypass: the simulation will read this very
        # payload back during compaction
        cache = _DECODE_CACHE
        cache[block] = Block(keys, self._values)
        if len(cache) > _DECODE_CACHE_CAPACITY:
            cache.popitem(last=False)
        self.reset()
        return block

    def reset(self) -> None:
        self._keys = []
        self._values = []
        self._parts = []
        self._bytes = 0


class Block:
    """A decoded block: parallel key/value lists, binary-searchable."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: List[bytes], values: List[bytes]) -> None:
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        cached = _DECODE_CACHE.get(data)
        if cached is not None:
            return cached
        data_len = len(data)
        if data_len < 4:
            raise CorruptionError("block shorter than its trailer")
        count = get_fixed32(data, data_len - 4)
        body_len = data_len - 4
        keys: List[bytes] = []
        values: List[bytes] = []
        append_key = keys.append
        append_value = values.append
        pos = 0
        for _ in range(count):
            # inline varint decode, single-byte fast path
            if pos < body_len:
                klen = data[pos]
                if klen < 0x80:
                    pos += 1
                else:
                    klen, pos = get_varint(data, pos)
            else:
                raise CorruptionError("block entry truncated")
            if pos < body_len:
                vlen = data[pos]
                if vlen < 0x80:
                    pos += 1
                else:
                    vlen, pos = get_varint(data, pos)
            else:
                raise CorruptionError("block entry truncated")
            end_key = pos + klen
            end_val = end_key + vlen
            if end_val > body_len:
                raise CorruptionError("block entry truncated")
            append_key(data[pos:end_key])
            append_value(data[end_key:end_val])
            pos = end_val
        if pos != body_len:
            raise CorruptionError("trailing garbage in block")
        return cls(keys, values)

    def entries(self) -> List[Tuple[bytes, bytes]]:
        return list(zip(self.keys, self.values))


def clear_decode_cache() -> None:
    """Drop every cached (bytes -> Block) pair (tests, memory pressure)."""
    _DECODE_CACHE.clear()
