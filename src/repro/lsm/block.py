"""Data and index blocks.

A block is a flat sequence of ``[klen varint | vlen varint | key | value]``
entries in key order, followed by a fixed32 entry count. (LevelDB adds
prefix compression and restart points; flat entries keep decode simple
while preserving sizes to within a few percent, which is all the device
model consumes.)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lsm.format import (
    CorruptionError,
    get_fixed32,
    get_varint,
    put_fixed32,
    put_varint,
)


class BlockBuilder:
    """Accumulates sorted (key, value) entries into one block."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []
        self._count = 0
        self._bytes = 0
        self.last_key: Optional[bytes] = None

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def size_estimate(self) -> int:
        return self._bytes + 4

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry.

        Ordering is the caller's contract: data blocks hold *internal*
        keys, whose order (user key asc, sequence desc) differs from raw
        byte order, so the table builder validates with the internal
        comparator before calling here.
        """
        entry = put_varint(len(key)) + put_varint(len(value)) + key + value
        self._parts.append(entry)
        self._bytes += len(entry)
        self._count += 1
        self.last_key = key

    def finish(self) -> bytes:
        self._parts.append(put_fixed32(self._count))
        block = b"".join(self._parts)
        self.reset()
        return block

    def reset(self) -> None:
        self._parts = []
        self._count = 0
        self._bytes = 0
        self.last_key = None


class Block:
    """A decoded block: parallel key/value lists, binary-searchable."""

    __slots__ = ("keys", "values")

    def __init__(self, keys: List[bytes], values: List[bytes]) -> None:
        self.keys = keys
        self.values = values

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def decode(cls, data: bytes) -> "Block":
        if len(data) < 4:
            raise CorruptionError("block shorter than its trailer")
        count = get_fixed32(data, len(data) - 4)
        body = data[:-4]
        keys: List[bytes] = []
        values: List[bytes] = []
        pos = 0
        for _ in range(count):
            klen, pos = get_varint(body, pos)
            vlen, pos = get_varint(body, pos)
            end_key = pos + klen
            end_val = end_key + vlen
            if end_val > len(body):
                raise CorruptionError("block entry truncated")
            keys.append(bytes(body[pos:end_key]))
            values.append(bytes(body[end_key:end_val]))
            pos = end_val
        if pos != len(body):
            raise CorruptionError("trailing garbage in block")
        return cls(keys, values)

    def entries(self) -> List[Tuple[bytes, bytes]]:
        return list(zip(self.keys, self.values))
