"""A LevelDB-like LSM-tree running on the simulated Ext4/SSD stack.

The store reproduces the structure the paper builds on (LevelDB 1.23):
skiplist-equivalent memtable, write-ahead log, SSTables with data blocks,
index and bloom filters, a MANIFEST-backed version set, minor/major/seek
compactions, L0 slowdown/stop write stalls and a background compaction
thread — all in virtual time.
"""

from repro.lsm.db import DB, Snapshot
from repro.lsm.options import Options
from repro.lsm.write_batch import WriteBatch

__all__ = ["DB", "Options", "Snapshot", "WriteBatch"]
