"""RepairDB: rebuild a database from whatever files survive.

LevelDB ships a repairer for the worst case — CURRENT or MANIFEST lost
or corrupt. It scans the directory, salvages every intact SSTable,
converts leftover WALs into tables, and writes a fresh MANIFEST placing
all tables at level 0 (point lookups there go newest-file-first, which
preserves LevelDB's best-effort semantics). This module reproduces that
tool on the simulated stack; ``examples``/tests use it to demonstrate
recovery beyond what the store's normal open path handles.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.fs.ext4 import Ext4
from repro.lsm.filenames import (
    log_file_name,
    parse_file_name,
    table_file_name,
)
from repro.lsm.format import CorruptionError, make_internal_key
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options
from repro.lsm.sstable import Table, TableBuilder
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.lsm.wal import LogReader


class RepairResult:
    """What the repairer salvaged."""

    def __init__(self) -> None:
        self.tables_salvaged = 0
        self.tables_dropped = 0
        self.logs_converted = 0
        self.records_recovered = 0
        self.last_sequence = 0
        #: WALs whose corrupt/truncated tail was discarded while salvaging
        self.tail_drops = 0

    def __repr__(self) -> str:
        return (
            f"RepairResult(tables={self.tables_salvaged}, "
            f"dropped={self.tables_dropped}, logs={self.logs_converted}, "
            f"records={self.records_recovered}, "
            f"tail_drops={self.tail_drops})"
        )


def repair_db(
    fs: Ext4, dbname: str, options: Optional[Options] = None, at: int = 0
) -> Tuple[RepairResult, int]:
    """Rebuild ``dbname`` from its surviving files; returns (result, t).

    After repair the directory holds a fresh MANIFEST + CURRENT that
    reference every salvaged table at level 0; a normal
    :class:`~repro.lsm.db.DB` open then succeeds.
    """
    options = options if options is not None else Options()
    result = RepairResult()
    t = at

    tables: List[Tuple[int, FileMetaData]] = []
    logs: List[int] = []
    max_number = 1
    for path in list(fs.list_dir(dbname + "/")):
        kind, number = parse_file_name(dbname, path)
        if number is not None:
            max_number = max(max_number, number)
        if kind == "log":
            logs.append(number)
        elif kind == "table":
            # single pass per table: one open yields the metadata *and*
            # the true max sequence (index keys are only a lower bound)
            meta, max_seq, t = _salvage_table(fs, dbname, number, t)
            if meta is None:
                result.tables_dropped += 1
                t = fs.unlink(path, at=t)
            else:
                tables.append((number, meta))
                result.tables_salvaged += 1
                result.last_sequence = max(result.last_sequence, max_seq)
        elif kind in ("manifest", "current", "temp"):
            t = fs.unlink(path, at=t)

    # convert surviving WALs into tables (one per log)
    for number in sorted(logs):
        memtable = MemTable()
        handle, t = fs.open(log_file_name(dbname, number), at=t)
        reader = LogReader(handle)
        for sequence, entries in reader.records(at=t):
            for offset, (value_type, key, value) in enumerate(entries):
                memtable.add(sequence + offset, value_type, key, value)
                result.records_recovered += 1
            result.last_sequence = max(
                result.last_sequence, sequence + len(entries) - 1
            )
        if reader.dropped_tail:
            result.tail_drops += 1
            fs.obs.counter("wal.tail_dropped").inc()
        if not memtable.empty:
            max_number += 1
            meta, t = _build_table_from_memtable(
                fs, dbname, max_number, memtable, options, t
            )
            tables.append((max_number, meta))
            result.logs_converted += 1
        t = fs.unlink(log_file_name(dbname, number), at=t)

    # a fresh manifest with everything at level 0
    versions = VersionSet(fs, dbname, options)
    versions.next_file_number = max_number + 1
    edit = VersionEdit()
    for number, meta in sorted(tables):
        edit.add_file(0, meta)
    versions.last_sequence = result.last_sequence
    t = versions.log_and_apply(edit, t)
    manifest = versions._manifest
    if manifest is not None:
        t = manifest.fsync(at=t, reason="repair")
    return result, t


def _salvage_table(
    fs: Ext4, dbname: str, number: int, at: int
) -> Tuple[Optional[FileMetaData], int, int]:
    """Open a table once; return (meta, max_sequence, t) or (None, 0, t)."""
    path = table_file_name(dbname, number)
    try:
        table, t = Table.open(fs, path, at=at)
        if not table.index.keys:
            return None, 0, t
        smallest, t = table.smallest_key(t)
        max_seq, t = table.max_sequence(t)
        handle, t = fs.open(path, at=t)
        return (
            FileMetaData(
                number=number,
                file_size=handle.size,
                smallest=smallest,
                largest=table.largest_key(),
                ino=handle.ino,
            ),
            max_seq,
            t,
        )
    except CorruptionError:
        return None, 0, at


def _build_table_from_memtable(
    fs: Ext4,
    dbname: str,
    number: int,
    memtable: MemTable,
    options: Options,
    at: int,
) -> Tuple[FileMetaData, int]:
    path = table_file_name(dbname, number)
    builder = TableBuilder(fs, path, options, at, number=number)
    for user_key, sequence, value_type, value in memtable.sorted_entries():
        builder.add(make_internal_key(user_key, sequence, value_type), value)
    size, t = builder.finish(at)
    handle = builder.handle
    t = handle.fdatasync(at=t, reason="repair")
    return (
        FileMetaData(
            number=number,
            file_size=size,
            smallest=builder.smallest,
            largest=builder.largest,
            ino=handle.ino,
        ),
        t,
    )
