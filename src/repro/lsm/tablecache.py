"""Cache of open SSTable readers, keyed by file number."""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.fs.ext4 import Ext4
from repro.lsm.blockcache import BlockCache
from repro.lsm.filenames import table_file_name
from repro.lsm.sstable import Table


class TableCache:
    """LRU of open :class:`Table` readers (LevelDB's max_open_files).

    All tables opened through one cache share one bounded
    :class:`BlockCache` (LevelDB's options.block_cache).
    """

    def __init__(
        self,
        fs: Ext4,
        dbname: str,
        capacity: int = 1000,
        block_cache_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.fs = fs
        self.dbname = dbname
        self.capacity = capacity
        self.block_cache = BlockCache(block_cache_bytes)
        self._tables: "OrderedDict[int, Table]" = OrderedDict()
        self.opens = 0

    def get_table(self, number: int, at: int) -> Tuple[Table, int]:
        table = self._tables.get(number)
        if table is not None:
            self._tables.move_to_end(number)
            return table, at
        table, t = Table.open(
            self.fs,
            table_file_name(self.dbname, number),
            at,
            block_cache=self.block_cache,
            number=number,
        )
        self.opens += 1
        self._tables[number] = table
        while len(self._tables) > self.capacity:
            self._tables.popitem(last=False)
        return table, t

    def evict(self, number: int) -> None:
        self._tables.pop(number, None)
        self.block_cache.evict_table(number)

    def clear(self) -> None:
        self._tables.clear()
        self.block_cache.clear()
