"""LevelDB-style file naming inside a database directory."""

from __future__ import annotations

from typing import Optional, Tuple


def table_file_name(dbname: str, number: int) -> str:
    return f"{dbname}/{number:06d}.ldb"


def log_file_name(dbname: str, number: int) -> str:
    return f"{dbname}/{number:06d}.log"


def manifest_file_name(dbname: str, number: int) -> str:
    return f"{dbname}/MANIFEST-{number:06d}"


def current_file_name(dbname: str) -> str:
    return f"{dbname}/CURRENT"


def temp_file_name(dbname: str, number: int) -> str:
    return f"{dbname}/{number:06d}.dbtmp"


def vlog_file_name(dbname: str, number: int) -> str:
    return f"{dbname}/{number:06d}.vlg"


def parse_file_name(dbname: str, path: str) -> Tuple[str, Optional[int]]:
    """Classify a path inside ``dbname``.

    Returns (kind, number) where kind is one of 'table', 'log',
    'manifest', 'current', 'temp', 'vlog' or 'unknown'.
    """
    prefix = dbname + "/"
    if not path.startswith(prefix):
        return "unknown", None
    name = path[len(prefix):]
    if name == "CURRENT":
        return "current", None
    if name.startswith("MANIFEST-"):
        try:
            return "manifest", int(name[len("MANIFEST-"):])
        except ValueError:
            return "unknown", None
    for suffix, kind in (
        (".ldb", "table"),
        (".log", "log"),
        (".dbtmp", "temp"),
        (".vlg", "vlog"),
    ):
        if name.endswith(suffix):
            try:
                return kind, int(name[: -len(suffix)])
            except ValueError:
                return "unknown", None
    return "unknown", None
