"""The key-value store: LevelDB's architecture on the simulated stack.

``DB`` implements the stock-LevelDB behaviour the paper compares against:

- Put/Delete append to the WAL (unsynced, LevelDB's default) and insert
  into the memtable;
- a full memtable is sealed and dumped to an L0 SSTable by a *minor
  compaction* on the background thread, synced per the store's
  :class:`~repro.lsm.options.SyncPolicy`;
- level scores trigger *major compactions* (merge-sort inputs, write new
  tables, log a version edit); read misses trigger *seek compactions*;
- writers observe LevelDB's stalls: the 1 ms L0 slowdown, the sealed-
  memtable wait, and the L0 stop trigger.

Background work is pulled lazily (see :mod:`repro.lsm.background`): the
memtable dump always has priority, size compactions run as virtual time
passes, and whatever backlog remains when a benchmark window closes is
only executed by an explicit ``wait_for_background`` — matching how a
real timed run leaves deep-level compactions for later.

Subclasses (NobLSM, the baselines) override the small persistence hooks
``_persist_major_outputs`` and ``_dispose_inputs`` to change *when and
how* new SSTables are made durable — which is the entire design space
the paper explores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.fs.stack import StorageStack
from repro.lsm.background import LazyExecutor
from repro.lsm.compaction import (
    Compaction,
    CompactionSchedule,
    OutputCutter,
    VersionKeeper,
    pick_seek_compaction,
    pick_size_compaction,
)
from repro.lsm.filenames import (
    current_file_name,
    log_file_name,
    parse_file_name,
    table_file_name,
)
from repro.lsm.format import (
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    make_internal_key,
)
from repro.lsm.iterator import (
    DBIterator,
    LevelIterator,
    MemTableIterator,
    MergingIterator,
    ResolvingIterator,
)
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options
from repro.lsm.ratelimit import CompactionRateLimiter
from repro.lsm.sstable import TableBuilder
from repro.obs.spans import NULL_SPAN, Span
from repro.lsm.tablecache import TableCache
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet
from repro.lsm.wal import BatchEntry, LogReader, LogWriter

MILLISECOND = 1_000_000

#: :meth:`DB.write_pressure` states, in increasing severity — the
#: admission-control view of LevelDB's write-path triggers.
PRESSURE_OK = "ok"
PRESSURE_SLOWDOWN = "slowdown"
PRESSURE_STOP = "stop"

#: numeric encoding of the pressure states for the ``db.write_pressure``
#: gauge (monotone in severity, so a sampled series is readable)
PRESSURE_CODES = {PRESSURE_OK: 0, PRESSURE_SLOWDOWN: 1, PRESSURE_STOP: 2}

#: (ready_time, work_fn) — a pulled background job
BackgroundJob = Tuple[int, Callable[[int], int]]


def _key_fraction(lo: bytes, hi: bytes, begin: bytes, end: bytes) -> float:
    """Fraction of the key span [lo, hi] covered by [begin, end].

    Keys are treated as base-256 fractions over their first 8 bytes —
    coarse, but GetApproximateSizes is an estimate by contract.
    """

    def as_number(key: bytes) -> int:
        return int.from_bytes(key[:8].ljust(8, b"\x00"), "big")

    span = as_number(hi) - as_number(lo)
    if span <= 0:
        return 1.0
    covered = max(as_number(end) - as_number(begin), 0)
    return min(covered / span, 1.0)


class Snapshot:
    """A pinned read view: sees everything up to its sequence number.

    Obtain with :meth:`DB.get_snapshot`; pass to ``get``/``scan``/
    ``make_iterator``; release with :meth:`DB.release_snapshot` so
    compactions may drop the versions it pinned.
    """

    __slots__ = ("sequence", "_released")

    def __init__(self, sequence: int) -> None:
        self.sequence = sequence
        self._released = False

    def __repr__(self) -> str:
        state = "released" if self._released else "live"
        return f"Snapshot(seq={self.sequence}, {state})"


@dataclass
class DBStats:
    """Store-level counters for the evaluation harness.

    Stall accounting contract: ``stall_ns`` is the total *hard* write-
    stall time — the writer fully blocked — and is exactly attributed
    into ``stall_memtable_ns`` (writer waiting for the sealed memtable's
    dump) and ``stall_l0_stop_ns`` (the L0 stop trigger), so
    ``stall_ns == stall_memtable_ns + stall_l0_stop_ns`` always holds.
    The L0 slowdown (LevelDB's 1 ms sleep, or the dynamic delay when
    ``Options.dynamic_slowdown`` is on) is a *soft* delay and is kept
    separate in ``slowdown_ns`` — LevelDB itself distinguishes the two.
    Consumers that want "time the writer was not making progress" must
    use the unified :attr:`blocked_ns` total (= stall + slowdown); the
    soak harness and the compare gate do.

    ``l0_stop_abandoned`` counts the times a writer blocked on the L0
    stop trigger was released with L0 *still* at/above the trigger
    because no runnable background job could drain it (see
    :meth:`DB._wait_for_l0_drain`).
    """

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    scans: int = 0
    minor_compactions: int = 0
    major_compactions: int = 0
    trivial_moves: int = 0
    seek_compactions: int = 0
    stall_ns: int = 0
    stall_memtable_ns: int = 0
    stall_l0_stop_ns: int = 0
    slowdown_ns: int = 0
    l0_stop_abandoned: int = 0
    bytes_flushed: int = 0
    bytes_compacted_in: int = 0
    bytes_compacted_out: int = 0
    wal_records: int = 0
    recovered_records: int = 0
    #: WAL files whose tail was corrupt/truncated and silently discarded
    #: during recovery (the paper: "some pairs in the logs are broken")
    wal_tail_drops: int = 0
    extras: Dict[str, int] = field(default_factory=dict)

    @property
    def blocked_ns(self) -> int:
        """Total time writers were not making progress: stalls + slowdowns."""
        return self.stall_ns + self.slowdown_ns

    def reset(self) -> None:
        extras = self.extras
        self.__init__()
        extras.clear()
        self.extras = extras

    def snapshot(self) -> Dict[str, object]:
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "scans": self.scans,
            "minor_compactions": self.minor_compactions,
            "major_compactions": self.major_compactions,
            "trivial_moves": self.trivial_moves,
            "seek_compactions": self.seek_compactions,
            "stall_ns": self.stall_ns,
            "stall_memtable_ns": self.stall_memtable_ns,
            "stall_l0_stop_ns": self.stall_l0_stop_ns,
            "slowdown_ns": self.slowdown_ns,
            "blocked_ns": self.blocked_ns,
            "l0_stop_abandoned": self.l0_stop_abandoned,
            "bytes_flushed": self.bytes_flushed,
            "bytes_compacted_in": self.bytes_compacted_in,
            "bytes_compacted_out": self.bytes_compacted_out,
            "wal_records": self.wal_records,
            "recovered_records": self.recovered_records,
            "wal_tail_drops": self.wal_tail_drops,
            "extras": dict(self.extras),
        }


class DB:
    """A LevelDB-like store bound to one :class:`StorageStack`."""

    #: short name used by benchmark tables
    store_name = "leveldb"

    #: key-value separation hooks, bound as instance attributes by the
    #: noblsm-kv variant; ``None`` (the class default) keeps every hot
    #: path on the plain-store behaviour at the cost of one identity
    #: check, so stores without a vLog stay byte-identical
    _kv_separate: Optional[Callable[[bytes, int], Tuple[bytes, int]]] = None
    _kv_rewrite: Optional[Callable[[bytes, int], Tuple[bytes, int]]] = None
    _kv_drop: Optional[Callable[[bytes], None]] = None
    _kv_resolve: Optional[Callable[[bytes, int], Tuple[bytes, int]]] = None

    def __init__(
        self,
        stack: StorageStack,
        dbname: str = "db",
        options: Optional[Options] = None,
    ) -> None:
        self.stack = stack
        self.fs = stack.fs
        self.events = stack.events
        self.cpu = stack.fs.cpu
        self.dbname = dbname
        self.options = options if options is not None else Options()
        self.options.validate()
        self.stats = DBStats()
        self.obs = stack.obs
        self._observe = self.obs.enabled
        #: causal tracer, when one is attached to the registry; per-op
        #: spans and stall spans are created only when tracing is on, so
        #: observe-only runs keep their exact per-op cost profile
        self._tracer = self.obs.tracer if self._observe else None
        #: bounded sample of traced db.write spans still in the live
        #: memtable (the dump links them to its minor-compaction span)
        self._mem_trace_spans: List[Span] = []
        self._mem_trace_count = 0
        self._imm_trace_spans: List[Span] = []
        self._imm_trace_count = 0
        self._wal_bytes_total = 0
        self._wal_records_total = 0
        #: last write_pressure() state, for the transition counters
        self._last_pressure = PRESSURE_OK
        if self._observe:
            self.obs.register_source(f"db.{dbname}", self._obs_snapshot)
            self._put_hist = self.obs.histogram("db.put_ns")
            self._get_hist = self.obs.histogram("db.get_ns")
            self._stall_slowdown = self.obs.counter("db.stall.l0_slowdown_ns")
            self._stall_memtable = self.obs.counter("db.stall.memtable_wait_ns")
            self._stall_l0_stop = self.obs.counter("db.stall.l0_stop_ns")
            self._pressure_gauge = self.obs.gauge("db.write_pressure")
            self._pressure_transitions = self.obs.counter(
                "db.write_pressure.transitions"
            )
        self.table_cache = TableCache(
            self.fs, dbname, block_cache_bytes=self.options.block_cache_bytes
        )
        self.versions = VersionSet(self.fs, dbname, self.options)
        self.versions.validate_new_file = self._recovery_validator()
        self.bg = LazyExecutor(
            self.options.background_threads,
            obs=self.obs,
            name=f"bg.{dbname}",
        )
        #: open virtual-time spans of concurrent compactions (threads > 1)
        self._schedule = CompactionSchedule()
        #: token-bucket shaping of major-compaction bandwidth; ``None``
        #: (the default) keeps the seed's unthrottled behaviour
        self._ratelimiter: Optional[CompactionRateLimiter] = None
        if self.options.compaction_rate_bytes_per_sec > 0:
            self._ratelimiter = CompactionRateLimiter(
                self.options.compaction_rate_bytes_per_sec,
                self.options.compaction_rate_burst_bytes,
                fair=self.options.compaction_rate_fair,
            )
            if self._observe:
                self.obs.register_source(
                    f"db.{dbname}.ratelimit", self._ratelimiter.snapshot
                )
        self.mem = MemTable()
        self._wal: Optional[LogWriter] = None
        self._wal_number = 0
        self._writer_free_at = 0
        #: sealed memtable awaiting its dump: (memtable, old_log, ready_at)
        self._pending_imm: Optional[Tuple[MemTable, int, int]] = None
        #: a dump is executing; keeps the sealed memtable readable until
        #: its L0 table is in the version, without re-dispatching the dump
        self._imm_dump_running = False
        self._pending_seek: Optional[Tuple[int, FileMetaData, int]] = None
        self._snapshots: List[Snapshot] = []
        self.closed = False
        self._open(stack.now)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def get_snapshot(self) -> Snapshot:
        """Pin the current state; reads through it never see later writes."""
        snapshot = Snapshot(self.versions.last_sequence)
        self._snapshots.append(snapshot)
        return snapshot

    def release_snapshot(self, snapshot: Snapshot) -> None:
        snapshot._released = True
        self._snapshots = [s for s in self._snapshots if not s._released]

    def _smallest_snapshot(self) -> int:
        """The oldest sequence any reader may still need."""
        if self._snapshots:
            return min(s.sequence for s in self._snapshots)
        return self.versions.last_sequence

    @staticmethod
    def _bound_of(snapshot: Optional[Snapshot]) -> Optional[int]:
        if snapshot is None:
            return None
        if snapshot._released:
            raise ValueError("snapshot was already released")
        return snapshot.sequence

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------

    def _open(self, at: int) -> None:
        t = at
        if self.fs.exists(current_file_name(self.dbname)):
            t = self.versions.recover(t)
            t = self._adopt_orphan_tables(t)
            t = self._replay_logs(t)
            self._delete_obsolete_files(t)
        t = self._new_wal(t)
        edit = VersionEdit(log_number=self._wal_number)
        t = self.versions.log_and_apply(edit, t)

    def _new_wal(self, at: int) -> int:
        number = self.versions.new_file_number()
        handle, t = self.fs.create(log_file_name(self.dbname, number), at=at)
        if self._wal is not None:
            self._wal_records_total += self._wal.records_written
            self._wal_bytes_total += self._wal.bytes_written
        self._wal = LogWriter(handle)
        self._wal_number = number
        return t

    def _obs_snapshot(self) -> Dict[str, object]:
        """Registry source: store counters plus aggregated WAL volume."""
        doc = self.stats.snapshot()
        records = self._wal_records_total
        nbytes = self._wal_bytes_total
        if self._wal is not None:
            records += self._wal.records_written
            nbytes += self._wal.bytes_written
        doc["wal"] = {"records_written": records, "bytes_written": nbytes}
        return doc

    def _replay_logs(self, at: int) -> int:
        """Rebuild the memtable from logs newer than the version's log."""
        t = at
        logs: List[int] = []
        for path in self.fs.list_dir(self.dbname + "/"):
            kind, number = parse_file_name(self.dbname, path)
            if kind == "log" and number >= self.versions.log_number:
                logs.append(number)
        for number in sorted(logs):
            handle, t = self.fs.open(log_file_name(self.dbname, number), at=t)
            reader = LogReader(handle)
            for sequence, entries in reader.records(at=t):
                for offset, (value_type, key, value) in enumerate(entries):
                    self.mem.add(sequence + offset, value_type, key, value)
                    self.stats.recovered_records += 1
                last = sequence + len(entries) - 1
                if last > self.versions.last_sequence:
                    self.versions.last_sequence = last
                if (
                    self.mem.approximate_memory_usage
                    >= self.options.write_buffer_size
                ):
                    t = self._compact_memtable(self.mem, t)
                    self.mem = MemTable()
            if reader.dropped_tail:
                # The log's tail was corrupt or truncated (a crash mid
                # WAL-append): the discarded bytes are data loss and must
                # be visible in recovery stats, not silent.
                self.stats.wal_tail_drops += 1
                self.obs.counter("wal.tail_dropped").inc()
        if not self.mem.empty:
            t = self._compact_memtable(self.mem, t)
            self.mem = MemTable()
        for number in sorted(logs):
            t = self.fs.unlink(log_file_name(self.dbname, number), at=t)
        return t

    def _delete_obsolete_files(self, at: int) -> None:
        """Drop files the recovered version does not reference."""
        live = set(self.versions.current.all_file_numbers())
        live |= self._protected_table_numbers()
        for path in list(self.fs.list_dir(self.dbname + "/")):
            kind, number = parse_file_name(self.dbname, path)
            delete = False
            if kind == "table" and number not in live:
                delete = True
                self.table_cache.evict(number)
            elif kind == "temp":
                delete = True
            elif kind == "manifest" and (
                number != self.versions.manifest_file_number
            ):
                delete = True
            if delete:
                self.fs.unlink(path, at=at)

    def _protected_table_numbers(self) -> "set[int]":
        """Table numbers to keep even when unreferenced (NobLSM shadows)."""
        return set()

    def _recovery_validator(self):
        """Hook: per-file validation during MANIFEST recovery.

        Stock LevelDB syncs tables before the MANIFEST references them,
        so no validation is needed; NobLSM overrides this because its
        async-committed tables can be lost behind a durable MANIFEST.
        """
        return None

    def _adopt_orphan_tables(self, at: int) -> int:
        """Hook: rescue durable tables the MANIFEST lost (NobLSM only)."""
        return at

    # ------------------------------------------------------------------
    # background scheduling (pull model)
    # ------------------------------------------------------------------

    def _l0_live_count(self) -> int:
        return sum(1 for f in self.versions.current.files[0] if not f.shadow)

    def write_pressure(self) -> str:
        """Admission-control view of the write path, without writing.

        Returns one of :data:`PRESSURE_OK` / :data:`PRESSURE_SLOWDOWN` /
        :data:`PRESSURE_STOP` — the state ``_make_room`` *would* put the
        next writer into, derived from the same triggers (live L0 count
        vs the slowdown/stop thresholds, plus a sealed memtable still
        awaiting its dump). A serving layer consults this before
        dispatching a request, so it can queue or shed at the front door
        instead of parking every client on a stalled writer; the
        distinction matters because an L0 *stop* blocks the writer for a
        compaction's worth of virtual time while a *slowdown* only
        injects a bounded delay.
        """
        l0_count = self._l0_live_count()
        if l0_count >= self.options.l0_stop_writes_trigger:
            state = PRESSURE_STOP
        elif (
            l0_count >= self.options.l0_slowdown_writes_trigger
            or self._pending_imm is not None
        ):
            state = PRESSURE_SLOWDOWN
        else:
            state = PRESSURE_OK
        if self._observe:
            self._pressure_gauge.set(PRESSURE_CODES[state])
            if state != self._last_pressure:
                self._pressure_transitions.inc()
                self.obs.counter(f"db.write_pressure.enter_{state}").inc()
        self._last_pressure = state
        return state

    def compaction_debt_bytes(self) -> int:
        """Bytes of compaction work currently owed by the tree.

        The health signal behind the pressure states, as a magnitude:
        L0 owes its whole live pile once the file count reaches the
        compaction trigger (all of it must move to L1 before the
        triggers relax), and every deeper level owes whatever it holds
        beyond its target size — the same quantities
        :meth:`~repro.lsm.version.Version.level_score` scores, in bytes
        so a sampled series is comparable across levels.
        """
        version = self.versions.current
        debt = 0
        live_l0 = [f for f in version.files[0] if not f.shadow]
        if len(live_l0) >= self.options.l0_compaction_trigger:
            debt += sum(f.file_size for f in live_l0)
        for level in range(1, self.options.num_levels - 1):
            over = version.level_bytes(level) - int(
                self.options.max_bytes_for_level(level)
            )
            if over > 0:
                debt += over
        return debt

    def _pick_background_work(
        self, horizon: Optional[int] = None
    ) -> Optional[BackgroundJob]:
        """Next background job, LevelDB priority: dump, size, seek.

        ``horizon`` is the caller's current virtual time when it only
        wants work that may start by then: a rate-limited major whose
        admitted start lies beyond the horizon is *held back* (no tokens
        consumed) rather than dispatched with a far-future start — a
        dispatched job occupies its worker's whole timeline, so an
        eagerly dispatched throttled major would make every later
        memtable dump queue behind it.
        """
        if self._pending_imm is not None and not self._imm_dump_running:
            imm, old_log, ready = self._pending_imm
            return ready, (
                lambda start: self._minor_compaction_work(imm, old_log, start)
            )
        job = self._pick_major_job(horizon)
        if job is not None:
            return job
        if self._pending_seek is not None:
            level, meta, ready = self._pending_seek
            seek = pick_seek_compaction(self.versions, self.options, level, meta)
            if seek is None:
                self._pending_seek = None
                return None
            ready = self._deferred_ready(seek, ready)
            admitted = self._admit_major(seek, ready, horizon)
            if admitted is None:
                return None  # throttled past the horizon; retry later
            self._pending_seek = None
            return admitted, (
                lambda start, c=seek: self._major_compaction_work(c, start)
            )
        return None

    def _pick_major_job(
        self, horizon: Optional[int] = None
    ) -> Optional[BackgroundJob]:
        """The next size compaction as a schedulable job.

        Single-threaded stores keep LevelDB's exact behaviour: the one
        highest-score compaction, ready immediately. With several
        background threads the scheduler becomes conflict-aware: it
        walks the candidate compactions best-score-first and dispatches
        the first one that is *disjoint* from every in-flight compaction
        (different levels or non-overlapping key ranges), so independent
        majors overlap in virtual time on distinct threads. If every
        candidate conflicts, the least-delayed one is dispatched with
        its ready time pushed to the conflict's clearance — never
        dropped, never reordered past the dependency.
        """
        if self.bg.num_threads == 1:
            compaction = self._fair_override(self._pick_size_compaction())
            if compaction is None:
                return None
            ready = 0
            if self._ratelimiter is not None:
                admitted = self._admit_major(
                    compaction, self.bg.next_start(0), horizon
                )
                if admitted is None:
                    return None
                ready = admitted
            return ready, (
                lambda start, c=compaction: self._major_compaction_work(c, start)
            )
        start_hint = self.bg.next_start(0)
        self._schedule.prune(start_hint)
        best: Optional[Tuple[int, Compaction]] = None
        for compaction in self._size_compaction_candidates():
            begin, end = compaction.user_range()
            clearance = self._schedule.clearance(
                compaction.touched_levels(), begin, end, start_hint
            )
            if clearance is None:
                ready = 0
                if self._ratelimiter is not None:
                    admitted = self._admit_major(
                        compaction, start_hint, horizon
                    )
                    if admitted is None:
                        continue  # throttled past the horizon; next candidate
                    ready = admitted
                return ready, (
                    lambda start, c=compaction: self._major_compaction_work(
                        c, start
                    )
                )
            if best is None or clearance < best[0]:
                best = (clearance, compaction)
        if best is None:
            return None
        clearance, compaction = best
        admitted = self._admit_major(compaction, clearance, horizon)
        if admitted is None:
            return None  # throttled past the horizon; retry later
        self._schedule.note_deferral()
        if self._observe and clearance > start_hint:
            self.obs.start_span(
                "lsm.write_stall",
                start_hint,
                cause="major_deferred",
                level=compaction.level,
                output_level=compaction.output_level,
            ).end(clearance)
        return admitted, (
            lambda start, c=compaction: self._major_compaction_work(c, start)
        )

    def _size_compaction_candidates(self):
        """Candidate size compactions in priority order (parallel picker).

        Subclasses that override :meth:`_pick_size_compaction` keep
        their policy — their single pick is the only candidate. The
        default store yields one candidate per compaction-worthy level,
        best score first, so the scheduler can fall through to the
        second-best level when the best conflicts.
        """
        if type(self)._pick_size_compaction is not DB._pick_size_compaction:
            compaction = self._pick_size_compaction()
            if compaction is not None:
                yield compaction
            return
        levels = sorted(
            (
                level
                for level in range(self.options.num_levels - 1)
                if self.versions.level_score(level) > 0.999999
            ),
            key=lambda level: (-self.versions.level_score(level), level),
        )
        if self._fair_l0_pressure() and 0 in levels:
            # fair mode: the L0 drain goes first even when a deeper
            # level's score is higher — it is what unblocks writers
            levels.remove(0)
            levels.insert(0, 0)
        for level in levels:
            compaction = pick_size_compaction(
                self.versions, self.options, level=level
            )
            if compaction is not None:
                yield compaction

    def _deferred_ready(self, compaction: Compaction, ready: int) -> int:
        """Push a job's ready time past conflicting in-flight spans."""
        if self.bg.num_threads == 1:
            return ready
        start_hint = self.bg.next_start(ready)
        begin, end = compaction.user_range()
        clearance = self._schedule.clearance(
            compaction.touched_levels(), begin, end, start_hint
        )
        if clearance is None:
            return ready
        if clearance > ready:
            self._schedule.note_deferral()
            if self._observe and clearance > start_hint:
                self.obs.start_span(
                    "lsm.write_stall",
                    start_hint,
                    cause="major_deferred",
                    level=compaction.level,
                    output_level=compaction.output_level,
                ).end(clearance)
        return max(ready, clearance)

    def _fair_l0_pressure(self) -> bool:
        """True when fair-mode scheduling should prioritize the L0 drain."""
        limiter = self._ratelimiter
        return (
            limiter is not None
            and limiter.fair
            and self._l0_live_count() >= self.options.l0_compaction_trigger
        )

    def _fair_override(self, compaction: Optional[Compaction]) -> Optional[Compaction]:
        """Fair mode: swap a deeper pick for the L0 drain under pressure.

        LevelDB's picker chooses the single highest-score level, which
        under bursty debt is often L1+ while L0 climbs toward the
        slowdown trigger; with a fair-mode rate limiter the L0->L1
        compaction preempts that pick, so bandwidth shaping never
        leaves the writer-unblocking work sitting behind deep majors.
        """
        if compaction is not None and compaction.level == 0:
            return compaction
        if not self._fair_l0_pressure():
            return compaction
        l0 = pick_size_compaction(self.versions, self.options, level=0)
        return l0 if l0 is not None else compaction

    def _admit_major(
        self,
        compaction: Compaction,
        ready: int,
        horizon: Optional[int] = None,
    ) -> Optional[int]:
        """Consult the compaction rate limiter for a major's start time.

        Without a limiter this is the identity. With one, the job's
        ready time is pushed until the token bucket covers its input
        bytes; in fair mode an L0->L1 compaction bypasses the delay
        whenever ``l0_live_count`` has reached the compaction trigger —
        i.e. whenever L0 is on its way toward the slowdown trigger —
        because shaping deep-level bandwidth must never starve the work
        that unblocks writers (urgent jobs still debit the bucket, so
        deep-level work pays for them).

        With a ``horizon``, a job whose admitted start would land beyond
        it returns ``None`` — *held back*, tokens untouched — so eager
        dispatch never parks a throttled major on a worker's timeline
        ahead of unthrottled work. Throttle time is attributed on the
        executor (``bg.throttle_ns``) and, when observing, the
        ``db.compaction.throttle_ns`` counter.
        """
        limiter = self._ratelimiter
        if limiter is None:
            return ready
        urgent = (
            limiter.fair
            and compaction.level == 0
            and self._l0_live_count() >= self.options.l0_compaction_trigger
        )
        if horizon is not None:
            start = limiter.peek(ready, compaction.input_bytes, urgent=urgent)
            if start > horizon:
                limiter.note_held()
                return None
        admitted = limiter.admit(
            ready, compaction.input_bytes, urgent=urgent
        )
        if admitted > ready:
            self.bg.note_throttle(admitted - ready)
            if self._observe:
                self.obs.counter("db.compaction.throttle_ns").inc(
                    admitted - ready
                )
        return admitted

    def _note_inflight(
        self,
        levels: "frozenset[int]",
        begin: Optional[bytes],
        end: Optional[bytes],
        done: int,
    ) -> None:
        """Record an executed job's span for later conflict checks."""
        if self.bg.num_threads > 1:
            self._schedule.add(levels, begin, end, done)

    def _pick_size_compaction(self) -> Optional[Compaction]:
        """Hook: choose the next size-triggered compaction."""
        return pick_size_compaction(self.versions, self.options)

    def _advance_background(self, t: int) -> None:
        """Run pending background jobs whose start falls at or before ``t``.

        The horizon ``t`` is passed to the picker so rate-limited majors
        that cannot start by now stay queued (they are retried on the
        next poll, once the clock has reached their admitted start)
        instead of eagerly occupying a worker's future timeline.
        """
        while self.bg.earliest_free() <= t:
            picked = self._pick_background_work(horizon=t)
            if picked is None:
                return
            ready, work = picked
            self.bg.execute(ready, work)

    def _run_one_background_job(self) -> Optional[int]:
        picked = self._pick_background_work()
        if picked is None:
            return None
        ready, work = picked
        return self.bg.execute(ready, work)

    def compact_range(self, at: int) -> int:
        """Manual full compaction (LevelDB's CompactRange over everything).

        Dumps the memtable, then repeatedly compacts the shallowest
        populated level down until each level's data sits as deep as it
        can — db_bench's ``compact`` step between fill and read phases.
        """
        t = at
        if not self.mem.empty:
            t = self._switch_memtable(t)
        t = self.wait_for_background(t)
        for level in range(0, self.options.num_levels - 1):
            for _ in range(10_000):
                files = [
                    f for f in self.versions.current.files[level] if not f.shadow
                ]
                if not files:
                    break
                compaction = pick_seek_compaction(
                    self.versions, self.options, level, files[0]
                )
                if compaction is None:
                    break
                compaction.is_seek = False
                ready = self._deferred_ready(compaction, t)
                done = self.bg.execute(
                    ready,
                    lambda start, c=compaction: self._major_compaction_work(
                        c, start
                    ),
                )
                t = max(t, done)
            t = self.wait_for_background(t)
        return t

    def wait_for_background(self, at: int) -> int:
        """Drain every pending background job; returns the drain time."""
        t = at
        for _ in range(1_000_000):
            done = self._run_one_background_job()
            if done is None:
                break
            t = max(t, done)
        t = max(t, self.bg.latest_free())
        self.events.run_until(t)
        return t

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def put(self, key: bytes, value: bytes, at: int) -> int:
        self.stats.puts += 1
        done = self.write([(TYPE_VALUE, key, value)], at)
        if self._observe:
            self._put_hist.record(done - at)
        return done

    def delete(self, key: bytes, at: int) -> int:
        self.stats.deletes += 1
        done = self.write([(TYPE_DELETION, key, b"")], at)
        if self._observe:
            self.obs.histogram("db.delete_ns").record(done - at)
        return done

    def apply(self, batch, at: int) -> int:
        """Apply a :class:`~repro.lsm.write_batch.WriteBatch` atomically."""
        if len(batch) == 0:
            return at
        return self.write(batch.entries, at)

    def write(self, entries: List[BatchEntry], at: int) -> int:
        """Apply a write batch; returns the caller's completion time.

        When a tracer is attached, the whole batch runs under one
        ``db.write`` root span whose child segments exactly partition
        its latency — writer-lock wait, stalls, memtable switch, WAL
        append, WAL sync, memtable insert — feeding the critical-path
        attribution table.
        """
        if self.closed:
            raise RuntimeError("DB is closed")
        span = None
        if self._tracer is not None:
            span = self.obs.start_span("db.write", at, entries=len(entries))
        t = max(at, self._writer_free_at)
        if span is not None and t > at:
            span.child("writer_lock", at).end(t)
        self.events.run_until(t)
        self._advance_background(t)
        t = self._make_room(t, span=span)
        sequence = self.versions.last_sequence + 1
        self.versions.last_sequence += len(entries)
        seg = t
        t = self._wal.add_record(sequence, entries, at=t)
        self.stats.wal_records += 1
        if span is not None and t > seg:
            span.child("wal.append", seg).end(t)
        if self.options.sync.sync_wal:
            seg = t
            t = self._wal.handle.fsync(at=t, reason="wal")
            if span is not None and t > seg:
                span.child("wal.sync", seg).end(t)
        seg = t
        mem_add = self.mem.add
        for offset, (value_type, key, value) in enumerate(entries):
            mem_add(sequence + offset, value_type, key, value)
        t += self.cpu.memtable_insert_ns * len(entries)
        if span is not None:
            if t > seg:
                span.child("memtable.insert", seg).end(t)
            span.end(t)
            self._note_batch_trace(span)
        self._writer_free_at = t
        return t

    def _note_batch_trace(self, span: Span) -> None:
        """Remember a traced batch now resident in the live memtable."""
        self._mem_trace_count += 1
        if len(self._mem_trace_spans) < 32:
            self._mem_trace_spans.append(span)

    def _note_stall(
        self, cause: str, start: int, end: int, parent: Optional[Span] = None
    ) -> None:
        """Emit one ``lsm.write_stall`` span with its cause label.

        The cause-labelled span is emitted for *every* observed run
        (``--observe`` alone suffices); only the per-op ``stall.<cause>``
        child segment additionally requires a tracer, because its parent
        ``db.write`` span exists only when tracing.
        """
        if end <= start or not self._observe:
            return
        self.obs.start_span("lsm.write_stall", start, cause=cause).end(end)
        if parent is not None:
            parent.child("stall." + cause, start).end(end)

    def _make_room(self, at: int, span: Optional[Span] = None) -> int:
        """LevelDB's MakeRoomForWrite: stalls, switches, triggers."""
        t = at
        allow_delay = True
        while True:
            l0_count = self._l0_live_count()
            if (
                allow_delay
                and l0_count >= self.options.l0_slowdown_writes_trigger
                and l0_count < self.options.l0_stop_writes_trigger
            ):
                if self.options.dynamic_slowdown:
                    delay = self._dynamic_slowdown_ns(l0_count)
                else:
                    delay = MILLISECOND
                t += delay
                self.stats.slowdown_ns += delay
                if self._observe:
                    self._stall_slowdown.inc(delay)
                self._note_stall("l0_slowdown", t - delay, t, span)
                allow_delay = False
                self._advance_background(t)
                continue
            if (
                self.mem.approximate_memory_usage
                < self.options.write_buffer_size
            ):
                return t
            if self._pending_imm is not None:
                # previous memtable not dumped yet: the writer stalls
                # until the background thread gets to it (dump first)
                resumed = t
                while self._pending_imm is not None:
                    done = self._run_one_background_job()
                    if done is None:
                        break
                    resumed = max(resumed, done)
                self.stats.stall_ns += resumed - t
                self.stats.stall_memtable_ns += resumed - t
                if self._observe:
                    self._stall_memtable.inc(resumed - t)
                self._note_stall("memtable_full", t, resumed, span)
                t = resumed
                continue
            if l0_count >= self.options.l0_stop_writes_trigger:
                resumed = self._wait_for_l0_drain(t)
                self.stats.stall_ns += resumed - t
                self.stats.stall_l0_stop_ns += resumed - t
                if self._observe:
                    self._stall_l0_stop.inc(resumed - t)
                self._note_stall("l0_stop", t, resumed, span)
                t = resumed
                continue
            seg = t
            t = self._switch_memtable(t)
            if span is not None and t > seg:
                span.child("memtable.switch", seg).end(t)

    def _dynamic_slowdown_ns(self, l0_count: int) -> int:
        """RocksDB-style slowdown delay scaled to L0 debt.

        The delay ramps quadratically from ``dynamic_slowdown_min_ns``
        at the first file over the slowdown trigger to
        ``dynamic_slowdown_max_ns`` just below the stop trigger: gentle
        back-pressure early (cheap writes keep flowing) and aggressive
        back-pressure late (background work gets virtual time *before*
        the writer hits the hard L0 stop — the p99.9 killer).
        """
        opts = self.options
        span_files = (
            opts.l0_stop_writes_trigger - opts.l0_slowdown_writes_trigger
        )
        debt = l0_count - opts.l0_slowdown_writes_trigger + 1  # 1..span
        lo = opts.dynamic_slowdown_min_ns
        hi = opts.dynamic_slowdown_max_ns
        return lo + (hi - lo) * debt * debt // (span_files * span_files)

    def _wait_for_l0_drain(self, at: int) -> int:
        """Blocked writer: run background jobs until L0 falls below stop.

        Intended semantics: the writer stays blocked while background
        jobs drain L0 below ``l0_stop_writes_trigger``. Two escapes
        exist so the simulation cannot livelock: the background picker
        may return no runnable job (``None`` — e.g. a subclass picker
        declines while L0 is full of shadows), and a 100 000-iteration
        cap bounds the loop against a picker that keeps yielding jobs
        that never reduce L0. Either way the writer *proceeds with L0
        still at/above the stop trigger*; that escape must be visible,
        not silent — it is counted in ``stats.l0_stop_abandoned`` and
        the ``db.stall.l0_stop_abandoned`` counter. The cap itself is
        asserted unreachable for every in-tree store by the stall-
        accounting tests.
        """
        t = at
        for _ in range(100_000):
            if self._l0_live_count() < self.options.l0_stop_writes_trigger:
                return t
            done = self._run_one_background_job()
            if done is None:
                break
            t = max(t, done)
        if self._l0_live_count() >= self.options.l0_stop_writes_trigger:
            self.stats.l0_stop_abandoned += 1
            if self._observe:
                self.obs.counter("db.stall.l0_stop_abandoned").inc()
        return t

    def _switch_memtable(self, at: int) -> int:
        """Seal the memtable, open a new WAL, leave the dump to the bg.

        If a previously sealed memtable is still awaiting its dump, the
        caller waits for it here — overwriting ``_pending_imm`` would
        silently lose data.
        """
        t = at
        while self._pending_imm is not None:
            done = self._run_one_background_job()
            if done is None:
                raise RuntimeError("sealed memtable pending but no job runnable")
            t = max(t, done)
        imm = self.mem
        old_log = self._wal_number
        self.mem = MemTable()
        if self._tracer is not None:
            # the sealed memtable carries its batches' trace spans; the
            # minor dump will link them to its own span
            self._imm_trace_spans = self._mem_trace_spans
            self._imm_trace_count = self._mem_trace_count
            self._mem_trace_spans = []
            self._mem_trace_count = 0
        t = self._new_wal(t)
        self._pending_imm = (imm, old_log, t)
        self._advance_background(t)  # dump immediately if a thread is free
        return t

    # ------------------------------------------------------------------
    # minor compaction
    # ------------------------------------------------------------------

    def _minor_compaction_work(
        self, imm: MemTable, old_log_number: int, at: int
    ) -> int:
        # LevelDB drops imm_ only after the L0 table is in the version:
        # while the dump runs, the sealed memtable must stay readable and
        # must survive an abort (crash injection) intact.
        self._imm_dump_running = True
        try:
            t = self._compact_memtable(imm, at)
        finally:
            self._imm_dump_running = False
        self._pending_imm = None
        t = self.fs.unlink(log_file_name(self.dbname, old_log_number), at=t)
        return t

    def _compact_memtable(self, imm: MemTable, at: int) -> int:
        """Dump a sealed memtable to an L0 (or pushed-down) SSTable."""
        if imm.empty:
            return at
        self.stats.minor_compactions += 1
        span = NULL_SPAN
        if self._observe:
            span = self.obs.start_span(
                "db.compaction.minor",
                at,
                input_bytes=imm.approximate_memory_usage,
            )
        if self._tracer is not None and self._imm_trace_spans:
            # causal arrows: every traced batch in this memtable flows
            # into the dump that persists it
            for batch_span in self._imm_trace_spans:
                self._tracer.link(batch_span, span, name="kv-batch")
            span.annotate(carries=self._imm_trace_count)
            self._imm_trace_spans = []
            self._imm_trace_count = 0
        number = self.versions.new_file_number()
        path = table_file_name(self.dbname, number)
        builder = TableBuilder(self.fs, path, self.options, at, number=number)
        t = at
        count = 0
        separate = self._kv_separate
        if separate is None:
            for user_key, sequence, value_type, value in imm.sorted_entries():
                builder.add(
                    make_internal_key(user_key, sequence, value_type), value
                )
                count += 1
        else:
            for user_key, sequence, value_type, value in imm.sorted_entries():
                if value_type == TYPE_VALUE:
                    value, t = separate(value, t)
                builder.add(
                    make_internal_key(user_key, sequence, value_type), value
                )
                count += 1
        t += count * self.cpu.merge_entry_ns
        size, t = builder.finish(t)
        self.stats.bytes_flushed += size
        handle = builder.handle
        t = self._prepare_minor_sync(t)
        if self.options.sync.sync_minor:
            t = handle.fdatasync(at=t, reason="minor")
        meta = FileMetaData(
            number=number,
            file_size=size,
            smallest=builder.smallest,
            largest=builder.largest,
            ino=handle.ino,
        )
        level = self.versions.current.pick_level_for_memtable_output(
            meta.smallest[:-8], meta.largest[:-8], self.options
        )
        if self._tracer is not None:
            # the journal commit covering this inode closes the chain
            self._tracer.bind_inode(handle.ino, span)
        t = self._persist_minor_output(meta, t)
        edit = VersionEdit(log_number=self._wal_number)
        edit.add_file(level, meta)
        t = self.versions.log_and_apply(edit, t)
        # Majors must not consume this table at a virtual time before the
        # dump that produced it has completed.
        self._note_inflight(
            frozenset((level,)), meta.smallest[:-8], meta.largest[:-8], t
        )
        span.annotate(
            table=number, level=level, output_bytes=size, entries=count
        )
        span.end(t)
        return t

    def _prepare_minor_sync(self, at: int) -> int:
        """Hook: durability work that must precede the L0 table's sync.

        noblsm-kv fdatasyncs the vLog head segment here, so commit
        ordering guarantees a durable table's pointers always resolve.
        """
        return at

    def _persist_minor_output(self, meta: FileMetaData, at: int) -> int:
        """Hook: extra durability work for a fresh L0 table (NobLSM: none,
        the fdatasync above is the single per-KV sync)."""
        return at

    # ------------------------------------------------------------------
    # major / seek compactions
    # ------------------------------------------------------------------

    def _major_compaction_work(self, compaction: Compaction, at: int) -> int:
        if compaction.is_trivial_move(self.options):
            t = self._trivial_move(compaction, at)
            begin, end = compaction.user_range()
            self._note_inflight(compaction.touched_levels(), begin, end, t)
            return t
        self.stats.major_compactions += 1
        if compaction.is_seek:
            self.stats.seek_compactions += 1
        span = NULL_SPAN
        if self._observe:
            span = self.obs.start_span(
                "db.compaction.major", at, **compaction.span_attrs()
            )
        t = at
        entries: List[Tuple[bytes, bytes]] = []
        for meta in compaction.all_inputs:
            table, t = self.table_cache.get_table(meta.number, at=t)
            file_entries, t = table.all_entries(at=t)
            entries.extend(file_entries)
        self.stats.bytes_compacted_in += compaction.input_bytes
        # Decorated sort (user key asc, sequence desc): building the sort
        # key once per entry and sorting tuples directly beats calling a
        # key lambda per comparison, and the decoration carries the
        # (user_key, tag) pair the merge loop below needs anyway. Ties
        # beyond (user, ~tag) only occur for byte-identical entries, so
        # tuple comparison cannot reorder distinct ones.
        from_bytes = int.from_bytes
        decorated = [
            (ik[:-8], ~from_bytes(ik[-8:], "little"), ik, value)
            for ik, value in entries
        ]
        decorated.sort()
        t += len(decorated) * self.cpu.merge_entry_ns

        keeper = VersionKeeper(
            self._smallest_snapshot(), self._is_base_level(compaction)
        )
        cutter = OutputCutter(compaction, self.options)
        outputs: List[FileMetaData] = []
        builder: Optional[TableBuilder] = None
        keeper_keep = keeper.keep
        should_stop_before = cutter.should_stop_before
        kv_drop = self._kv_drop
        kv_rewrite = self._kv_rewrite
        for user_key, neg_tag, internal_key, value in decorated:
            tag = ~neg_tag
            if not keeper_keep(user_key, tag >> 8, tag & 0xFF):
                if kv_drop is not None and tag & 0xFF == TYPE_VALUE:
                    kv_drop(value)
                continue
            if kv_rewrite is not None and tag & 0xFF == TYPE_VALUE:
                value, t = kv_rewrite(value, t)
            if builder is not None and should_stop_before(
                user_key, builder.current_size
            ):
                builder, t = self._finish_output(builder, outputs, t)
                cutter.reset_for_new_output()
            if builder is None:
                number = self.versions.new_file_number()
                builder = TableBuilder(
                    self.fs,
                    table_file_name(self.dbname, number),
                    self.options,
                    t,
                    number=number,
                )
            builder.add(internal_key, value)
        if builder is not None and builder.num_entries:
            builder, t = self._finish_output(builder, outputs, t)
        elif builder is not None:
            t = builder.abandon(t)

        if self._tracer is not None:
            for meta in outputs:
                self._tracer.bind_inode(meta.ino, span)
        t = self._persist_major_outputs(outputs, t)
        edit = compaction.make_delete_edit()
        for meta in outputs:
            edit.add_file(compaction.output_level, meta)
        if compaction.inputs:
            edit.compact_pointers.append(
                (
                    compaction.level,
                    max(f.largest[:-8] for f in compaction.inputs),
                )
            )
        t = self.versions.log_and_apply(edit, t)
        t = self._dispose_inputs(compaction, outputs, t)
        begin, end = compaction.user_range()
        self._note_inflight(compaction.touched_levels(), begin, end, t)
        span.annotate(
            output_bytes=sum(m.file_size for m in outputs),
            outputs=len(outputs),
            shadow_retained=sum(
                1 for m in compaction.all_inputs if m.shadow
            ),
        )
        span.end(t)
        return t

    def _finish_output(
        self,
        builder: TableBuilder,
        outputs: List[FileMetaData],
        at: int,
    ) -> Tuple[None, int]:
        size, t = builder.finish(at)
        self.stats.bytes_compacted_out += size
        outputs.append(
            FileMetaData(
                number=builder.number,
                file_size=size,
                smallest=builder.smallest,
                largest=builder.largest,
                ino=builder.handle.ino,
            )
        )
        return None, t

    def _trivial_move(self, compaction: Compaction, at: int) -> int:
        self.stats.trivial_moves += 1
        meta = compaction.inputs[0]
        edit = VersionEdit()
        edit.delete_file(compaction.level, meta.number)
        edit.add_file(compaction.output_level, meta)
        return self.versions.log_and_apply(edit, at)

    def _is_base_level(self, compaction: Compaction) -> bool:
        """True when no level deeper than the output overlaps the range."""
        begin = min(
            (f.smallest[:-8] for f in compaction.all_inputs), default=None
        )
        end = max((f.largest[:-8] for f in compaction.all_inputs), default=None)
        for level in range(
            compaction.output_level + 1, self.options.num_levels
        ):
            if self.versions.current.overlapping_inputs(level, begin, end):
                return False
        return True

    # ------------------------------------------------------------------
    # persistence hooks (overridden by NobLSM / baselines)
    # ------------------------------------------------------------------

    def _persist_major_outputs(
        self, outputs: List[FileMetaData], at: int
    ) -> int:
        """Stock LevelDB: fdatasync every new SSTable before installing."""
        t = at
        if self.options.sync.sync_major:
            for meta in outputs:
                handle, t = self.fs.open(
                    table_file_name(self.dbname, meta.number), at=t
                )
                t = handle.fdatasync(at=t, reason="major")
        return t

    def _dispose_inputs(
        self,
        compaction: Compaction,
        outputs: List[FileMetaData],
        at: int,
    ) -> int:
        """Stock LevelDB: old SSTables are deleted immediately."""
        t = at
        for meta in compaction.all_inputs:
            self.table_cache.evict(meta.number)
            path = table_file_name(self.dbname, meta.number)
            if self.fs.exists(path):
                t = self.fs.unlink(path, at=t)
        return t

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(
        self,
        key: bytes,
        at: int,
        snapshot: Optional[Snapshot] = None,
    ) -> Tuple[Optional[bytes], int]:
        """Point lookup; returns (value or None, completion_time).

        With a ``snapshot``, the lookup sees the newest version at or
        below the snapshot's sequence number.
        """
        span = None
        if self._tracer is not None:
            span = self.obs.start_span("db.get", at)
        value, t = self._get_inner(key, at, snapshot)
        if value is not None and self._kv_resolve is not None:
            value, t = self._kv_resolve(value, t)
        if span is not None:
            span.annotate(hit=value is not None)
            span.end(t)
        if self._observe:
            self._get_hist.record(t - at)
        return value, t

    def _get_inner(
        self,
        key: bytes,
        at: int,
        snapshot: Optional[Snapshot] = None,
    ) -> Tuple[Optional[bytes], int]:
        if self.closed:
            raise RuntimeError("DB is closed")
        self.stats.gets += 1
        bound = self._bound_of(snapshot)
        table_bound = bound if bound is not None else MAX_SEQUENCE
        t = at + self.cpu.memtable_lookup_ns
        self.events.run_until(t)
        self._advance_background(t)
        hit = self.mem.get(key, sequence_bound=bound)
        if hit is not None:
            found, value = hit
            return (value if found else None), t
        if self._pending_imm is not None:
            hit = self._pending_imm[0].get(key, sequence_bound=bound)
            if hit is not None:
                t += self.cpu.memtable_lookup_ns
                found, value = hit
                return (value if found else None), t
        first_probe: Optional[Tuple[int, FileMetaData]] = None
        probes = 0
        for level, meta in self._files_for_get(key):
            table, t = self.table_cache.get_table(meta.number, at=t)
            result, t = table.get(key, at=t, sequence_bound=table_bound)
            probes += 1
            if probes == 1:
                first_probe = (level, meta)
            if result is not None:
                if probes > 1:
                    self._charge_seek(first_probe, t)
                found, value = result
                return (value if found else None), t
        if probes > 1:
            self._charge_seek(first_probe, t)
        return None, t

    def _files_for_get(self, key: bytes) -> List[Tuple[int, FileMetaData]]:
        """Hook: candidate files in search order (PebblesDB overrides)."""
        return self.versions.current.files_for_get(key)

    def _charge_seek(
        self, probe: Optional[Tuple[int, FileMetaData]], at: int
    ) -> None:
        if probe is None or not self.options.seek_compaction:
            return
        level, meta = probe
        meta.allowed_seeks -= 1
        if meta.allowed_seeks <= 0 and self._pending_seek is None:
            meta.allowed_seeks = max(meta.file_size // 16384, 100)
            self._pending_seek = (level, meta, at)

    def _iterator_sources(self, at: int) -> List[object]:
        """Merge sources: memtables, L0 tables, one iterator per level."""
        sources: List[object] = [MemTableIterator(self.mem, at)]
        if self._pending_imm is not None:
            sources.append(MemTableIterator(self._pending_imm[0], at))
        t = at
        version = self.versions.current
        for meta in sorted(
            version.files[0], key=lambda f: f.number, reverse=True
        ):
            if meta.shadow:
                continue
            table, t = self.table_cache.get_table(meta.number, at=t)
            sources.append(table.iterate(t))
        for level in range(1, self.options.num_levels):
            files = [f for f in version.files[level] if not f.shadow]
            if files:
                sources.append(LevelIterator(self, files, t))
        return sources

    def make_iterator(
        self, at: int, snapshot: Optional[Snapshot] = None
    ) -> DBIterator:
        """An unpositioned iterator; seek it before reading."""
        self._advance_background(at)
        merger = MergingIterator(
            self._iterator_sources(at), self.cpu.iter_next_ns
        )
        iterator = DBIterator(merger, sequence_bound=self._bound_of(snapshot))
        resolve = self._kv_resolve
        if resolve is not None:
            return ResolvingIterator(iterator, resolve)
        return iterator

    def iterate(
        self, at: int, snapshot: Optional[Snapshot] = None
    ) -> DBIterator:
        """Full-store iterator positioned at the first key (readseq)."""
        iterator = self.make_iterator(at, snapshot=snapshot)
        iterator.seek_to_first()
        return iterator

    def scan(
        self,
        start_key: bytes,
        count: int,
        at: int,
        snapshot: Optional[Snapshot] = None,
    ) -> Tuple[List[Tuple[bytes, bytes]], int]:
        """Range scan of up to ``count`` pairs from ``start_key``."""
        self.stats.scans += 1
        iterator = self.make_iterator(at, snapshot=snapshot)
        iterator.seek(start_key)
        results: List[Tuple[bytes, bytes]] = []
        while iterator.valid and len(results) < count:
            results.append((iterator.key, iterator.value))
            iterator.next()
        done = max(iterator.time, at)
        if self._observe:
            self.obs.histogram("db.scan_ns").record(done - at)
        return results, done

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self, at: int) -> int:
        """Wait out background work and close (memtable stays in the WAL)."""
        t = self.wait_for_background(at)
        self.closed = True
        return t

    def get_property(self, name: str) -> Optional[str]:
        """LevelDB's GetProperty: stringly-typed introspection.

        Supported: ``leveldb.num-files-at-level<N>``, ``leveldb.stats``,
        ``leveldb.sstables``, ``leveldb.approximate-memory-usage``.
        """
        prefix = "leveldb."
        if not name.startswith(prefix):
            return None
        name = name[len(prefix):]
        if name.startswith("num-files-at-level"):
            try:
                level = int(name[len("num-files-at-level"):])
            except ValueError:
                return None
            if not 0 <= level < self.options.num_levels:
                return None
            return str(len(self.versions.current.files[level]))
        if name == "approximate-memory-usage":
            usage = self.mem.approximate_memory_usage
            if self._pending_imm is not None:
                usage += self._pending_imm[0].approximate_memory_usage
            usage += self.table_cache.block_cache.used_bytes
            return str(usage)
        if name == "stats":
            lines = ["Compactions", "Level  Files Size(KB)", "-" * 24]
            for level, files in enumerate(self.versions.current.files):
                if files:
                    size_kb = sum(f.file_size for f in files) // 1024
                    lines.append(f"{level:5d} {len(files):6d} {size_kb:8d}")
            return "\n".join(lines)
        if name == "sstables":
            lines = []
            for level, files in enumerate(self.versions.current.files):
                for meta in files:
                    lines.append(
                        f"level {level}: {meta.number} "
                        f"[{meta.smallest[:-8]!r} .. {meta.largest[:-8]!r}]"
                    )
            return "\n".join(lines)
        return None

    def get_approximate_sizes(
        self, ranges: List[Tuple[bytes, bytes]]
    ) -> List[int]:
        """LevelDB's GetApproximateSizes: on-disk bytes per key range.

        Approximates each file's contribution by linear interpolation of
        the range overlap over the file's key span.
        """
        results = []
        for begin, end in ranges:
            if begin > end:
                raise ValueError(f"inverted range {begin!r} > {end!r}")
            total = 0
            for files in self.versions.current.files:
                for meta in files:
                    if meta.shadow:
                        continue
                    lo, hi = meta.user_range()
                    if hi < begin or lo > end:
                        continue
                    if begin <= lo and hi <= end:
                        total += meta.file_size
                    else:
                        # partial overlap: pro-rate by key-space fraction
                        span = _key_fraction(lo, hi, max(begin, lo), min(end, hi))
                        total += int(meta.file_size * span)
            results.append(total)
        return results

    def describe(self) -> Dict[str, object]:
        """Human-readable snapshot of the store's structure and stats."""
        version = self.versions.current
        levels = {
            f"L{level}": {
                "files": len(files),
                "bytes": sum(f.file_size for f in files),
            }
            for level, files in enumerate(version.files)
            if files
        }
        return {
            "store": self.store_name,
            "levels": levels,
            "memtable_bytes": self.mem.approximate_memory_usage,
            "pending_imm": self._pending_imm is not None,
            "last_sequence": self.versions.last_sequence,
            "stats": {
                "puts": self.stats.puts,
                "gets": self.stats.gets,
                "minor_compactions": self.stats.minor_compactions,
                "major_compactions": self.stats.major_compactions,
                "trivial_moves": self.stats.trivial_moves,
                "seek_compactions": self.stats.seek_compactions,
                "stall_ms": self.stats.stall_ns / 1e6,
                "bytes_flushed": self.stats.bytes_flushed,
                "bytes_compacted_out": self.stats.bytes_compacted_out,
            },
        }

    # convenience for tests ------------------------------------------------

    def get_str(self, key: str, at: int) -> Tuple[Optional[bytes], int]:
        return self.get(key.encode(), at)

    def put_str(self, key: str, value: str, at: int) -> int:
        return self.put(key.encode(), value.encode(), at)
