"""Merging iterators over memtable + SSTables.

Sources yield entries in internal-key order (user key ascending, newer
sequence first). The DB-level iterator collapses versions: the first
entry seen for a user key wins, tombstones suppress the key entirely.
All sources and the merger carry virtual time, so a full ``readseq``
sweep charges realistic CPU and any cold block reads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lsm.format import (
    TYPE_DELETION,
    internal_compare,
    make_internal_key,
    MAX_SEQUENCE,
    TYPE_VALUE,
)
from repro.lsm.memtable import MemTable


class MemTableIterator:
    """Iterates a memtable's entries as internal keys (sorted once)."""

    __slots__ = ("_entries", "_pos", "time")

    def __init__(self, memtable: MemTable, at: int) -> None:
        # internal key = user_key + fixed64(seq << 8 | type), inlined
        # from make_internal_key (whose range checks always pass here —
        # the memtable only ever stored validated entries)
        self._entries: List[Tuple[bytes, bytes]] = [
            (
                user_key + ((sequence << 8) | value_type).to_bytes(8, "little"),
                value,
            )
            for user_key, sequence, value_type, value in memtable.sorted_entries()
        ]
        self._pos = 0
        self.time = at

    def seek_to_first(self) -> None:
        self._pos = 0

    @property
    def valid(self) -> bool:
        return self._pos < len(self._entries)

    @property
    def key(self) -> bytes:
        return self._entries[self._pos][0]

    @property
    def value(self) -> bytes:
        return self._entries[self._pos][1]

    def seek(self, target: bytes) -> None:
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if internal_compare(self._entries[mid][0], target) < 0:
                lo = mid + 1
            else:
                hi = mid
        self._pos = lo

    def next(self) -> None:
        self._pos += 1


class LevelIterator:
    """Concatenating iterator over one sorted, disjoint level.

    Only the file currently under the cursor is open; a seek bisects the
    file list and opens a single table (LevelDB's two-level iterator),
    so scans over stores with many files stay cheap.
    """

    __slots__ = ("_db", "_files", "time", "_file_pos", "_iter")

    def __init__(self, db, files: List[object], at: int) -> None:
        self._db = db
        self._files = files
        self.time = at
        self._file_pos = len(files)  # unpositioned == exhausted
        self._iter = None

    def _open_file(self, pos: int) -> None:
        self._file_pos = pos
        if pos >= len(self._files):
            self._iter = None
            return
        table, self.time = self._db.table_cache.get_table(
            self._files[pos].number, at=self.time
        )
        self._iter = table.iterate(self.time)

    @property
    def valid(self) -> bool:
        return self._iter is not None and self._iter.valid

    @property
    def key(self) -> bytes:
        return self._iter.key

    @property
    def value(self) -> bytes:
        return self._iter.value

    def seek_to_first(self) -> None:
        self._open_file(0)
        if self._iter is not None:
            self.time = max(self.time, self._iter.time)
            self._iter.time = self.time
            self._iter.seek_to_first()
            self.time = self._iter.time

    def seek(self, target: bytes) -> None:
        user_target = target[:-8]
        lo, hi = 0, len(self._files)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._files[mid].largest[:-8] < user_target:
                lo = mid + 1
            else:
                hi = mid
        self._open_file(lo)
        if self._iter is not None:
            self._iter.seek(target)
            self.time = self._iter.time
            if not self._iter.valid:
                self._advance_file()

    def _advance_file(self) -> None:
        self._open_file(self._file_pos + 1)
        if self._iter is not None:
            self._iter.seek_to_first()
            self.time = self._iter.time

    def next(self) -> None:
        if self._iter is None:
            raise StopIteration("level iterator exhausted")
        self._iter.next()
        self.time = self._iter.time
        if not self._iter.valid:
            self._advance_file()


class MergingIterator:
    """K-way merge of memtable/table iterators in internal-key order.

    The merger carries its own serial clock: one reader thread performs
    every advance, so per-entry CPU and each source's block-read costs
    accumulate on ``self.time`` rather than parallelising across sources.
    """

    __slots__ = ("_sources", "_iter_next_ns", "_current", "_time")

    def __init__(self, sources: List[object], cpu_iter_next_ns: int) -> None:
        self._sources = sources
        self._iter_next_ns = cpu_iter_next_ns
        self._current: Optional[object] = None
        self._time = max((s.time for s in sources), default=0)

    def seek_to_first(self) -> None:
        for source in self._sources:
            before = source.time
            source.seek_to_first()
            self._time += max(source.time - before, 0)
        self._find_smallest()

    @property
    def time(self) -> int:
        return self._time

    @property
    def valid(self) -> bool:
        return self._current is not None

    @property
    def key(self) -> bytes:
        return self._current.key

    @property
    def value(self) -> bytes:
        return self._current.value

    def _find_smallest(self) -> None:
        smallest = None
        for source in self._sources:
            if source.valid and (
                smallest is None
                or internal_compare(source.key, smallest.key) < 0
            ):
                smallest = source
        self._current = smallest

    def seek(self, target: bytes) -> None:
        for source in self._sources:
            before = source.time
            source.seek(target)
            self._time += max(source.time - before, 0)
        self._find_smallest()

    def next(self) -> None:
        if self._current is None:
            raise StopIteration("merging iterator exhausted")
        before = self._current.time
        self._current.next()
        self._time += self._iter_next_ns + max(self._current.time - before, 0)
        self._find_smallest()


class DBIterator:
    """User-facing iterator: latest version per key, tombstones skipped.

    Construction is lazy: call :meth:`seek` or :meth:`seek_to_first`
    before reading (a fresh iterator is not ``valid`` until positioned).
    With a ``sequence_bound`` (snapshot reads), versions newer than the
    bound are invisible.
    """

    __slots__ = ("_merger", "_seq_bound", "_key", "_value")

    def __init__(
        self,
        merger: MergingIterator,
        sequence_bound: Optional[int] = None,
    ) -> None:
        self._merger = merger
        self._seq_bound = sequence_bound
        self._key: Optional[bytes] = None
        self._value: Optional[bytes] = None

    def seek_to_first(self) -> None:
        self._merger.seek_to_first()
        self._skip_to_live()

    @property
    def time(self) -> int:
        return self._merger.time

    @property
    def valid(self) -> bool:
        return self._key is not None

    @property
    def key(self) -> bytes:
        return self._key

    @property
    def value(self) -> bytes:
        return self._value

    def _skip_to_live(self) -> None:
        last_user: Optional[bytes] = None
        while self._merger.valid:
            internal = self._merger.key
            user_key = internal[:-8]
            tag = int.from_bytes(internal[-8:], "little")
            value_type = tag & 0xFF
            if self._seq_bound is not None and (tag >> 8) > self._seq_bound:
                self._merger.next()  # invisible to this snapshot
                continue
            if user_key == last_user:
                self._merger.next()
                continue
            last_user = user_key
            if value_type == TYPE_DELETION:
                self._merger.next()
                continue
            self._key = user_key
            self._value = self._merger.value
            return
        self._key = None
        self._value = None

    def seek(self, user_key: bytes) -> None:
        self._merger.seek(make_internal_key(user_key, MAX_SEQUENCE, TYPE_VALUE))
        self._skip_to_live()

    def next(self) -> None:
        if self._key is None:
            raise StopIteration("iterator exhausted")
        current = self._key
        # advance past every version of the current key, then find the
        # next live one
        while self._merger.valid and self._merger.key[:-8] == current:
            self._merger.next()
        self._skip_to_live()


class ResolvingIterator:
    """DBIterator wrapper that maps stored values to user values.

    The noblsm-kv store wraps its iterators here: ``resolve`` strips the
    inline marker or follows a vLog pointer (charging the read's virtual
    time). Resolution happens once per positioning, so repeated ``value``
    accesses neither re-read the vLog nor re-bill its latency.
    """

    __slots__ = ("_inner", "_resolve", "_value", "_time")

    def __init__(self, inner: DBIterator, resolve) -> None:
        self._inner = inner
        self._resolve = resolve
        self._value: Optional[bytes] = None
        self._time = inner.time

    def _refresh(self) -> None:
        inner = self._inner
        t = max(self._time, inner.time)
        if inner.valid:
            self._value, t = self._resolve(inner.value, t)
        else:
            self._value = None
        self._time = t

    def seek_to_first(self) -> None:
        self._inner.seek_to_first()
        self._refresh()

    def seek(self, user_key: bytes) -> None:
        self._inner.seek(user_key)
        self._refresh()

    def next(self) -> None:
        self._inner.next()
        self._refresh()

    @property
    def time(self) -> int:
        return self._time

    @property
    def valid(self) -> bool:
        return self._inner.valid

    @property
    def key(self) -> bytes:
        return self._inner.key

    @property
    def value(self) -> bytes:
        return self._value
