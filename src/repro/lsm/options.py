"""Store configuration.

``Options`` captures both LevelDB's tuning knobs and the sync-policy
switches that distinguish the systems the paper compares. The paper's
setup (64 MB SSTables, 10 M x 1 KB requests on a 960 GB SSD) is scaled
down by a single ``scale`` factor via :func:`Options.scaled` — all byte
sizes shrink together so the tree keeps the same depth and the same
compaction dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

KIB = 1024
MIB = 1024 * 1024


@dataclass
class SyncPolicy:
    """Which code paths call fsync/fdatasync.

    Stock LevelDB syncs new SSTables at minor and major compactions and
    the MANIFEST on every version edit. NobLSM keeps only the minor-
    compaction sync and tracks everything else through the journal's
    asynchronous commits (``nob_commit``). The 'volatile' baseline of
    Section 3 disables everything.
    """

    sync_minor: bool = True
    sync_major: bool = True
    sync_manifest: bool = True
    sync_wal: bool = False  # LevelDB default WriteOptions.sync=false
    nob_commit: bool = False  # use check_commit/is_committed + shadows


@dataclass
class Options:
    """All knobs of the LSM-tree."""

    # sizes (paper-scale defaults; call .scaled() before simulating)
    write_buffer_size: int = 64 * MIB
    max_file_size: int = 64 * MIB
    block_size: int = 4 * KIB
    max_bytes_for_level_base: int = 10 * MIB
    level_multiplier: int = 10
    num_levels: int = 7
    bloom_bits_per_key: int = 10
    block_cache_bytes: int = 8 * MIB  # LevelDB's default Cache size

    # compaction triggers (LevelDB constants)
    l0_compaction_trigger: int = 4
    l0_slowdown_writes_trigger: int = 8
    l0_stop_writes_trigger: int = 12
    seek_compaction: bool = True

    # background execution
    background_threads: int = 1

    # performance stability (all default OFF: stock-LevelDB behaviour)
    #: major-compaction token-bucket rate, bytes of compaction input per
    #: virtual second; 0 disables rate limiting entirely
    compaction_rate_bytes_per_sec: int = 0
    #: burst capacity of the token bucket in bytes; 0 = one virtual
    #: second's worth of tokens
    compaction_rate_burst_bytes: int = 0
    #: "fair" mode: L0->L1 compactions bypass the limiter while
    #: ``l0_live_count`` is within one file of the slowdown trigger, so
    #: bandwidth shaping never starves the work that unblocks writers
    compaction_rate_fair: bool = False
    #: replace the fixed 1 ms L0 slowdown with a delay scaled to L0 debt
    #: (RocksDB-style): gentle at the slowdown trigger, escalating
    #: quadratically toward the stop trigger
    dynamic_slowdown: bool = False
    #: dynamic slowdown delay at the first file over the trigger
    dynamic_slowdown_min_ns: int = 100_000
    #: dynamic slowdown delay just below the stop trigger
    dynamic_slowdown_max_ns: int = 4_000_000

    # key-value separation (WiscKey-style vLog; used by the noblsm-kv
    # store variant, all default OFF: plain stores never consult these)
    #: separate values of at least this many bytes into the vLog at
    #: flush time; ``None`` disables separation entirely (the seed
    #: configuration — byte-identical to a store without a vLog)
    value_threshold: Optional[int] = None
    #: roll the vLog head segment once it reaches this many bytes
    vlog_segment_bytes: int = 1 * MIB
    #: relocate a sealed segment's live values during major compaction
    #: once its garbage fraction reaches this ratio
    vlog_gc_garbage_ratio: float = 0.5

    # durability
    sync: SyncPolicy = field(default_factory=SyncPolicy)

    # NobLSM reclamation poll period, virtual ns (5 s like Ext4's commit)
    reclaim_interval_ns: int = 5_000_000_000

    def validate(self) -> None:
        """Raise ``ValueError`` for incoherent settings (checked by DB)."""
        if self.write_buffer_size <= 0:
            raise ValueError("write_buffer_size must be positive")
        if self.max_file_size <= 0:
            raise ValueError("max_file_size must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.num_levels < 2:
            raise ValueError("need at least two levels")
        if self.level_multiplier < 2:
            raise ValueError("level_multiplier must be >= 2")
        if not (
            0
            < self.l0_compaction_trigger
            <= self.l0_slowdown_writes_trigger
            <= self.l0_stop_writes_trigger
        ):
            raise ValueError(
                "L0 triggers must satisfy 0 < compaction <= slowdown <= stop"
            )
        if self.background_threads < 1:
            raise ValueError("background_threads must be >= 1")
        if self.compaction_rate_bytes_per_sec < 0:
            raise ValueError("compaction_rate_bytes_per_sec must be >= 0")
        if self.compaction_rate_burst_bytes < 0:
            raise ValueError("compaction_rate_burst_bytes must be >= 0")
        if self.dynamic_slowdown:
            if self.dynamic_slowdown_min_ns <= 0:
                raise ValueError("dynamic_slowdown_min_ns must be positive")
            if self.dynamic_slowdown_max_ns < self.dynamic_slowdown_min_ns:
                raise ValueError(
                    "dynamic_slowdown_max_ns must be >= dynamic_slowdown_min_ns"
                )
        if self.reclaim_interval_ns <= 0:
            raise ValueError("reclaim_interval_ns must be positive")
        if self.value_threshold is not None and self.value_threshold < 0:
            raise ValueError("value_threshold must be >= 0 (or None)")
        if self.vlog_segment_bytes <= 0:
            raise ValueError("vlog_segment_bytes must be positive")
        if not 0.0 < self.vlog_gc_garbage_ratio <= 1.0:
            raise ValueError("vlog_gc_garbage_ratio must be in (0, 1]")

    def max_bytes_for_level(self, level: int) -> float:
        """Capacity limit of level ``level`` (level >= 1)."""
        if level < 1:
            raise ValueError(f"levels below 1 have no byte limit: {level}")
        result = float(self.max_bytes_for_level_base)
        for _ in range(level - 1):
            result *= self.level_multiplier
        return result

    def expanded_compaction_limit(self) -> int:
        """Max bytes of lower-level files in one compaction (LevelDB)."""
        return 25 * self.max_file_size

    def grandparent_overlap_limit(self) -> int:
        """Max overlap with level+2 before an output file is cut."""
        return 10 * self.max_file_size

    def scaled(self, scale: float) -> "Options":
        """Shrink every capacity by ``scale`` (>= 1), keeping ratios.

        The block size is a *format* granularity (device sector/cache
        unit), not a capacity, so it stays at the paper's 4 KiB — scaling
        it would distort per-byte CPU costs. File sizes are floored at
        4 KiB so encodings stay meaningful at extreme scales.
        """
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return replace(
            self,
            write_buffer_size=max(int(self.write_buffer_size / scale), 4 * KIB),
            max_file_size=max(int(self.max_file_size / scale), 4 * KIB),
            max_bytes_for_level_base=max(
                int(self.max_bytes_for_level_base / scale), 2 * KIB
            ),
            block_cache_bytes=max(int(self.block_cache_bytes / scale), 8 * KIB),
            vlog_segment_bytes=max(int(self.vlog_segment_bytes / scale), 4 * KIB),
            sync=replace(self.sync),
        )


def level_file_limits(options: Options) -> List[float]:
    """Convenience: byte limits for levels 1..num_levels-1."""
    return [
        options.max_bytes_for_level(level)
        for level in range(1, options.num_levels)
    ]
