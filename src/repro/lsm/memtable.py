"""The in-memory memtable.

LevelDB's skiplist keeps *every* version of a key until the memtable is
dumped; so does this one (a hash map of per-key version lists, sorted
once at dump time — a minor compaction sorts anyway). Keeping versions
is what makes snapshots work: a reader pinned at sequence S sees the
newest version with sequence <= S.

``add`` and ``get`` run once per simulated operation, so both keep an
allocation-light fast path: inserts append in sequence order without a
``setdefault`` scratch list, sizes are tracked incrementally (never
recomputed by walking entries), and an unbounded lookup returns the
head version without touching the bound-check loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.lsm.format import TYPE_DELETION, TYPE_VALUE

#: rough per-entry bookkeeping overhead, mirroring LevelDB's arena cost
ENTRY_OVERHEAD = 24

#: (sequence, value_type, value), newest first
Version = Tuple[int, int, bytes]


class MemTable:
    """Mutable in-memory table of all buffered versions per user key."""

    __slots__ = ("_entries", "_bytes", "_count")

    def __init__(self) -> None:
        self._entries: Dict[bytes, List[Version]] = {}
        self._bytes = 0
        self._count = 0

    def __len__(self) -> int:
        """Number of buffered entries (versions, not unique keys)."""
        return self._count

    @property
    def approximate_memory_usage(self) -> int:
        return self._bytes

    @property
    def empty(self) -> bool:
        return self._count == 0

    @property
    def unique_keys(self) -> int:
        """Distinct user keys buffered (vs ``len()``, which counts versions)."""
        return len(self._entries)

    def add(self, sequence: int, value_type: int, key: bytes, value: bytes) -> None:
        """Insert a put (TYPE_VALUE) or tombstone (TYPE_DELETION)."""
        if value_type != TYPE_VALUE and value_type != TYPE_DELETION:
            raise ValueError(f"bad value type {value_type}")
        entry = (sequence, value_type, value)
        entries = self._entries
        versions = entries.get(key)
        if versions is None:
            entries[key] = [entry]
        elif sequence < versions[0][0]:
            # out-of-order insert (only happens in WAL replay edge cases):
            # keep the list newest-first
            versions.append(entry)
            versions.sort(key=lambda v: -v[0])
        else:
            versions.insert(0, entry)
        self._bytes += len(key) + len(value) + ENTRY_OVERHEAD
        self._count += 1

    def get(
        self, key: bytes, sequence_bound: Optional[int] = None
    ) -> Optional[Tuple[bool, bytes]]:
        """Look up the newest version of ``key`` at or below the bound.

        Returns ``None`` if the memtable holds nothing visible for the
        key, ``(True, value)`` for a live value, ``(False, b"")`` when
        the visible version is a deletion.
        """
        versions = self._entries.get(key)
        if not versions:
            return None
        if sequence_bound is None:
            _, value_type, value = versions[0]
            if value_type == TYPE_DELETION:
                return (False, b"")
            return (True, value)
        for sequence, value_type, value in versions:
            if sequence > sequence_bound:
                continue
            if value_type == TYPE_DELETION:
                return (False, b"")
            return (True, value)
        return None

    def sorted_entries(self) -> Iterator[Tuple[bytes, int, int, bytes]]:
        """Yield (user_key, sequence, type, value): keys ascending,
        versions newest-first within a key (internal-key order)."""
        entries = self._entries
        for key in sorted(entries):
            for sequence, value_type, value in entries[key]:
                yield key, sequence, value_type, value

    def smallest_key(self) -> bytes:
        return min(self._entries)

    def largest_key(self) -> bytes:
        return max(self._entries)
