"""LevelDB-style WriteBatch: atomic multi-operation writes."""

from __future__ import annotations

from typing import List

from repro.lsm.format import TYPE_DELETION, TYPE_VALUE
from repro.lsm.wal import BatchEntry


class WriteBatch:
    """A group of updates applied atomically by :meth:`repro.lsm.db.DB.write`.

    All entries of one batch share one WAL record and consecutive
    sequence numbers, so a crash either keeps the whole batch or none
    of it (once the record is durable).

    >>> batch = WriteBatch()
    >>> batch.put(b"k1", b"v1")
    >>> batch.delete(b"k2")
    >>> len(batch)
    2
    """

    def __init__(self) -> None:
        self._entries: List[BatchEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[BatchEntry]:
        return list(self._entries)

    @property
    def approximate_size(self) -> int:
        return sum(len(k) + len(v) + 13 for _, k, v in self._entries)

    def put(self, key: bytes, value: bytes) -> None:
        self._entries.append((TYPE_VALUE, bytes(key), bytes(value)))

    def delete(self, key: bytes) -> None:
        self._entries.append((TYPE_DELETION, bytes(key), b""))

    def clear(self) -> None:
        self._entries.clear()

    def append(self, other: "WriteBatch") -> None:
        """Concatenate another batch's updates after this one's."""
        self._entries.extend(other._entries)
