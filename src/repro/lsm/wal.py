"""Write-ahead log.

Record format (one record per write batch)::

    crc32(payload)   fixed32
    payload length   fixed32
    payload:
        sequence     fixed64  (sequence of the first entry)
        count        fixed32
        count x [type(1B) | klen varint | key | vlen varint | value]

The log is appended through the page cache and — matching LevelDB's
default and the paper's consistency test — never synced, so a crash can
corrupt or truncate its tail. The reader stops cleanly at the first
record that fails its length or CRC check.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.fs.ext4 import File
from repro.lsm.format import (
    CorruptionError,
    TYPE_DELETION,
    TYPE_VALUE,
    crc32,
    get_fixed32,
    get_fixed64,
    get_varint,
    put_fixed32,
    put_fixed64,
    put_varint,
)

HEADER_SIZE = 8

#: (value_type, key, value)
BatchEntry = Tuple[int, bytes, bytes]


#: single-byte encodings of the two value types (TYPE_DELETION, TYPE_VALUE)
_TYPE_BYTES = (b"\x00", b"\x01")


def encode_batch(sequence: int, entries: List[BatchEntry]) -> bytes:
    """Serialize a write batch into one log record."""
    parts = [put_fixed64(sequence), put_fixed32(len(entries))]
    append = parts.append
    for value_type, key, value in entries:
        if value_type != TYPE_VALUE and value_type != TYPE_DELETION:
            raise ValueError(f"bad value type {value_type}")
        append(_TYPE_BYTES[value_type])
        append(put_varint(len(key)))
        append(key)
        append(put_varint(len(value)))
        append(value)
    payload = b"".join(parts)
    return put_fixed32(crc32(payload)) + put_fixed32(len(payload)) + payload


def decode_batch(payload: bytes) -> Tuple[int, List[BatchEntry]]:
    """Parse one record payload back into (sequence, entries)."""
    if len(payload) < 12:
        raise CorruptionError("batch payload too short")
    sequence = get_fixed64(payload, 0)
    count = get_fixed32(payload, 8)
    entries: List[BatchEntry] = []
    pos = 12
    for _ in range(count):
        if pos >= len(payload):
            raise CorruptionError("batch truncated")
        value_type = payload[pos]
        pos += 1
        klen, pos = get_varint(payload, pos)
        key = bytes(payload[pos : pos + klen])
        pos += klen
        vlen, pos = get_varint(payload, pos)
        value = bytes(payload[pos : pos + vlen])
        pos += vlen
        if len(key) != klen or len(value) != vlen:
            raise CorruptionError("batch entry truncated")
        entries.append((value_type, key, value))
    return sequence, entries


class LogWriter:
    """Appends batch records to a log file.

    ``records_written``/``bytes_written`` follow the unified stats
    contract (see :mod:`repro.sim.stats`): the store aggregates them
    across WAL switches and surfaces them through its snapshot source.
    """

    def __init__(self, handle: File) -> None:
        self.handle = handle
        self.records_written = 0
        self.bytes_written = 0

    def add_record(self, sequence: int, entries: List[BatchEntry], at: int) -> int:
        record = encode_batch(sequence, entries)
        self.records_written += 1
        self.bytes_written += len(record)
        return self.handle.append(record, at=at)

    def snapshot(self) -> "dict[str, object]":
        return {
            "records_written": self.records_written,
            "bytes_written": self.bytes_written,
        }


class LogReader:
    """Replays records; stops at the first corrupt or truncated record."""

    def __init__(self, handle: File) -> None:
        self.handle = handle
        self.dropped_tail = False

    def records(self, at: int) -> Iterator[Tuple[int, List[BatchEntry]]]:
        """Yield (sequence, entries) for every intact record."""
        offset = 0
        size = self.handle.size
        while offset + HEADER_SIZE <= size:
            header, _ = self.handle.read(offset, HEADER_SIZE, at=at)
            expected_crc = get_fixed32(header, 0)
            length = get_fixed32(header, 4)
            if offset + HEADER_SIZE + length > size:
                self.dropped_tail = True
                return
            payload, _ = self.handle.read(offset + HEADER_SIZE, length, at=at)
            if crc32(payload) != expected_crc:
                self.dropped_tail = True
                return
            try:
                yield decode_batch(payload)
            except CorruptionError:
                self.dropped_tail = True
                return
            offset += HEADER_SIZE + length
        if offset != size:
            self.dropped_tail = True
