"""On-disk encodings shared by the WAL, blocks, SSTables and MANIFEST.

Follows LevelDB's conventions: little-endian fixed ints, varints, and
internal keys of the form ``user_key . (sequence << 8 | value_type)``.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple

# Value types (low byte of the packed sequence tag).
TYPE_DELETION = 0x0
TYPE_VALUE = 0x1

MAX_SEQUENCE = (1 << 56) - 1

_FIXED32 = struct.Struct("<I")
_FIXED64 = struct.Struct("<Q")


class CorruptionError(Exception):
    """Raised when a decode fails a structural or CRC check."""


def put_fixed32(value: int) -> bytes:
    return _FIXED32.pack(value & 0xFFFFFFFF)


def get_fixed32(buf: bytes, offset: int = 0) -> int:
    return _FIXED32.unpack_from(buf, offset)[0]


def put_fixed64(value: int) -> bytes:
    return _FIXED64.pack(value & 0xFFFFFFFFFFFFFFFF)


def get_fixed64(buf: bytes, offset: int = 0) -> int:
    return _FIXED64.unpack_from(buf, offset)[0]


#: single-byte encodings for values < 128 — the overwhelmingly common
#: case (key/value length prefixes); indexing this table avoids the
#: encode loop and a bytearray allocation per call
_VARINT_SMALL = tuple(bytes((v,)) for v in range(0x80))

#: memo for multi-byte encodings — length prefixes repeat endlessly
#: (every value in a run has the same size), so encode each once
_VARINT_CACHE: "dict[int, bytes]" = {}
_VARINT_CACHE_CAPACITY = 4096


def put_varint(value: int) -> bytes:
    """Encode a non-negative int as a LEB128 varint."""
    if 0 <= value < 0x80:
        return _VARINT_SMALL[value]
    cached = _VARINT_CACHE.get(value)
    if cached is not None:
        return cached
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    remaining = value
    out = bytearray()
    while True:
        byte = remaining & 0x7F
        remaining >>= 7
        if remaining:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break
    encoded = bytes(out)
    if len(_VARINT_CACHE) < _VARINT_CACHE_CAPACITY:
        _VARINT_CACHE[value] = encoded
    return encoded


def get_varint(buf: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint; returns (value, next_offset)."""
    # fast path: single-byte varint (values < 128)
    if offset < len(buf):
        byte = buf[offset]
        if byte < 0x80:
            return byte, offset + 1
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise CorruptionError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long")


def put_length_prefixed(data: bytes) -> bytes:
    return put_varint(len(data)) + data


def get_length_prefixed(buf: bytes, offset: int = 0) -> Tuple[bytes, int]:
    length, pos = get_varint(buf, offset)
    end = pos + length
    if end > len(buf):
        raise CorruptionError("truncated length-prefixed slice")
    return bytes(buf[pos:end]), end


def crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# internal keys
# ----------------------------------------------------------------------


def pack_tag(sequence: int, value_type: int) -> int:
    if not 0 <= sequence <= MAX_SEQUENCE:
        raise ValueError(f"sequence out of range: {sequence}")
    if value_type not in (TYPE_DELETION, TYPE_VALUE):
        raise ValueError(f"bad value type: {value_type}")
    return (sequence << 8) | value_type


def make_internal_key(user_key: bytes, sequence: int, value_type: int) -> bytes:
    """user_key followed by the 8-byte packed (sequence, type) tag."""
    return user_key + put_fixed64(pack_tag(sequence, value_type))


def parse_internal_key(internal_key: bytes) -> Tuple[bytes, int, int]:
    """Returns (user_key, sequence, value_type)."""
    if len(internal_key) < 8:
        raise CorruptionError("internal key shorter than its tag")
    tag = get_fixed64(internal_key, len(internal_key) - 8)
    return internal_key[:-8], tag >> 8, tag & 0xFF


def internal_key_user_part(internal_key: bytes) -> bytes:
    return internal_key[:-8]


def internal_compare(a: bytes, b: bytes) -> int:
    """LevelDB's internal comparator.

    Orders by user key ascending, then by sequence *descending* so the
    newest version of a key sorts first.
    """
    ua, ub = a[:-8], b[:-8]
    if ua < ub:
        return -1
    if ua > ub:
        return 1
    ta = get_fixed64(a, len(a) - 8)
    tb = get_fixed64(b, len(b) - 8)
    if ta > tb:
        return -1
    if ta < tb:
        return 1
    return 0
