"""Virtual-time token-bucket rate limiting for major compactions.

"On Performance Stability in LSM-based Storage Systems" (Luo & Carey)
shows that throughput-optimal LSM-trees still exhibit large latency
spikes because compaction debt is paid in *bursts*: a deep major grabs
the device for a long contiguous window and every foreground WAL append
behind it queues. Pome-style scheduling treats compaction bandwidth as
a schedulable resource instead; this module is the simulator's version
of that idea.

:class:`CompactionRateLimiter` is a token bucket on the **virtual**
clock. Tokens are bytes of compaction input; they refill at
``bytes_per_sec`` of virtual time up to ``burst_bytes``. When the
store's scheduler picks a major compaction it asks :meth:`admit` for a
start time: if the bucket holds enough tokens the job starts at its
ready time, otherwise its start is pushed to the virtual instant the
bucket will have refilled — the compaction still runs, just spread out,
so the device sees a bounded compaction byte-rate per window instead of
an all-or-nothing burst.

**Fair mode** (the ``urgent`` flag, driven by
``Options.compaction_rate_fair``) recognises that not all compaction
bytes are equal: L0->L1 work is what keeps ``l0_live_count`` below the
slowdown/stop triggers, i.e. what keeps *writers* unblocked. Urgent
admissions are never delayed; they still debit the bucket (the bytes
are real device traffic), driving it negative if needed, which pushes
future non-urgent work further out — exactly the "L0 first, deep
levels pay" priority the stability literature argues for.

Everything is integer arithmetic on virtual nanoseconds, so runs stay
bit-deterministic. The limiter is off (``None`` on the DB) unless
``Options.compaction_rate_bytes_per_sec`` is set, and the default
options therefore keep the seed's byte-identical behaviour.
"""

from __future__ import annotations

from typing import Dict

NS_PER_SEC = 1_000_000_000


class CompactionRateLimiter:
    """Token bucket over virtual time; tokens are compaction input bytes."""

    __slots__ = (
        "bytes_per_sec",
        "burst_bytes",
        "fair",
        "_tokens",
        "_last_refill_ns",
        "admitted_jobs",
        "admitted_bytes",
        "throttled_jobs",
        "throttle_ns",
        "bypassed_jobs",
        "bypassed_bytes",
        "held_jobs",
    )

    def __init__(
        self,
        bytes_per_sec: int,
        burst_bytes: int = 0,
        fair: bool = False,
    ) -> None:
        if bytes_per_sec <= 0:
            raise ValueError(
                f"bytes_per_sec must be positive, got {bytes_per_sec}"
            )
        if burst_bytes < 0:
            raise ValueError(f"burst_bytes must be >= 0, got {burst_bytes}")
        self.bytes_per_sec = bytes_per_sec
        #: bucket capacity; defaults to one virtual second of tokens
        self.burst_bytes = burst_bytes if burst_bytes > 0 else bytes_per_sec
        self.fair = fair
        self._tokens = self.burst_bytes  # start full: no cold-start stall
        self._last_refill_ns = 0
        self.admitted_jobs = 0
        self.admitted_bytes = 0
        self.throttled_jobs = 0
        self.throttle_ns = 0
        self.bypassed_jobs = 0
        self.bypassed_bytes = 0
        self.held_jobs = 0

    def note_held(self) -> None:
        """Count one hold-back: a scheduler declined to dispatch a job
        because :meth:`peek` placed its start beyond the scheduling
        horizon. Held jobs are re-offered on a later poll, so the same
        compaction may be counted several times — this is a pressure
        signal, not a job count."""
        self.held_jobs += 1

    def _refill(self, at: int) -> None:
        if at <= self._last_refill_ns:
            return
        gained = (at - self._last_refill_ns) * self.bytes_per_sec // NS_PER_SEC
        if gained:
            self._tokens = min(self._tokens + gained, self.burst_bytes)
            # advance only by the time the integer division consumed, so
            # fractional refill is carried, not dropped
            self._last_refill_ns += gained * NS_PER_SEC // self.bytes_per_sec
        if self._last_refill_ns < at and self._tokens >= self.burst_bytes:
            self._last_refill_ns = at

    def tokens_at(self, at: int) -> int:
        """Bucket level at virtual time ``at`` (refills, no consumption)."""
        self._refill(at)
        return self._tokens

    def peek(self, ready: int, nbytes: int, urgent: bool = False) -> int:
        """The start :meth:`admit` would grant, without consuming tokens.

        Schedulers use this to *hold back* a throttled job instead of
        dispatching it with a far-future start (which would occupy a
        worker's timeline and block unthrottled work behind it).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        ready = int(ready)
        self._refill(ready)
        if urgent or self._tokens >= nbytes:
            return ready
        deficit = nbytes - self._tokens
        wait_ns = (deficit * NS_PER_SEC + self.bytes_per_sec - 1) // (
            self.bytes_per_sec
        )
        return ready + wait_ns

    def admit(self, ready: int, nbytes: int, urgent: bool = False) -> int:
        """Earliest start time for a job of ``nbytes``; consumes tokens.

        Non-urgent jobs wait for the bucket to cover them; urgent jobs
        (fair-mode L0 drain) start at ``ready`` and may overdraw the
        bucket. Call with the job's ready time; the returned time is
        ``>= ready`` and the tokens are debited at that instant.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        ready = int(ready)
        self._refill(ready)
        if urgent or self._tokens >= nbytes:
            if urgent and self._tokens < nbytes:
                self.bypassed_jobs += 1
                self.bypassed_bytes += nbytes
            self._tokens -= nbytes
            self.admitted_jobs += 1
            self.admitted_bytes += nbytes
            return ready
        deficit = nbytes - self._tokens
        # ceil-divide so the bucket is never admitted short
        wait_ns = (deficit * NS_PER_SEC + self.bytes_per_sec - 1) // (
            self.bytes_per_sec
        )
        start = ready + wait_ns
        self._refill(start)
        self._tokens -= nbytes
        self.admitted_jobs += 1
        self.admitted_bytes += nbytes
        self.throttled_jobs += 1
        self.throttle_ns += start - ready
        return start

    def snapshot(self) -> Dict[str, object]:
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "bytes_per_sec": self.bytes_per_sec,
            "burst_bytes": self.burst_bytes,
            "fair": self.fair,
            "admitted_jobs": self.admitted_jobs,
            "admitted_bytes": self.admitted_bytes,
            "throttled_jobs": self.throttled_jobs,
            "throttle_ns": self.throttle_ns,
            "bypassed_jobs": self.bypassed_jobs,
            "bypassed_bytes": self.bypassed_bytes,
            "held_jobs": self.held_jobs,
        }

    def __repr__(self) -> str:
        return (
            f"CompactionRateLimiter({self.bytes_per_sec} B/s, "
            f"burst={self.burst_bytes}, fair={self.fair}, "
            f"throttled={self.throttled_jobs})"
        )
