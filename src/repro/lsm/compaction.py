"""Compaction picking and geometry (LevelDB's logic).

- *Size compaction*: the level whose score (bytes / limit, or L0 file
  count / trigger) is highest and >= 1.
- *Seek compaction*: a file that served too many fruitless seeks is sent
  down one level (Section 5.2 of the paper leans on these for the
  readrandom result).
- *Trivial move*: a single input file with no next-level overlap and
  bounded grandparent overlap is moved without rewriting.

Output files are cut at ``max_file_size`` or when they would overlap too
much of level+2 (the grandparent limit), as in LevelDB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lsm.format import TYPE_DELETION
from repro.lsm.options import Options
from repro.lsm.version import FileMetaData, VersionEdit, VersionSet


@dataclass
class Compaction:
    """A planned compaction from ``level`` into ``level + 1``."""

    level: int
    inputs: List[FileMetaData]  # files at `level`
    overlaps: List[FileMetaData]  # files at `level + 1`
    grandparents: List[FileMetaData] = field(default_factory=list)
    is_seek: bool = False

    @property
    def output_level(self) -> int:
        return self.level + 1

    @property
    def all_inputs(self) -> List[FileMetaData]:
        return self.inputs + self.overlaps

    @property
    def input_bytes(self) -> int:
        return sum(f.file_size for f in self.all_inputs)

    def user_range(self) -> "tuple[Optional[bytes], Optional[bytes]]":
        """Smallest/largest user key across every input file."""
        return _range_of(self.all_inputs)

    def touched_levels(self) -> "frozenset[int]":
        """Levels this compaction reads from or writes to."""
        return frozenset((self.level, self.output_level))

    def is_trivial_move(self, options: Options) -> bool:
        """Move the single input down without rewriting it."""
        if len(self.inputs) != 1 or self.overlaps:
            return False
        grandparent_bytes = sum(f.file_size for f in self.grandparents)
        return grandparent_bytes <= options.grandparent_overlap_limit()

    def make_delete_edit(self) -> VersionEdit:
        edit = VersionEdit()
        for meta in self.inputs:
            edit.delete_file(self.level, meta.number)
        for meta in self.overlaps:
            edit.delete_file(self.output_level, meta.number)
        return edit

    def span_attrs(self) -> "dict[str, object]":
        """Structured attributes for this compaction's observability span."""
        return {
            "level": self.level,
            "output_level": self.output_level,
            "inputs": len(self.inputs),
            "overlaps": len(self.overlaps),
            "input_bytes": self.input_bytes,
            "seek": self.is_seek,
        }


def _range_of(files: List[FileMetaData]) -> "tuple[Optional[bytes], Optional[bytes]]":
    if not files:
        return None, None
    smallest = min(f.smallest for f in files)
    largest = max(f.largest for f in files)
    return smallest[:-8], largest[:-8]


def pick_size_compaction(
    versions: VersionSet, options: Options, level: Optional[int] = None
) -> Optional[Compaction]:
    """LevelDB's PickCompaction for the highest-scoring level.

    Passing ``level`` picks at that specific level instead of the score
    winner — the parallel scheduler uses this to try the second-best
    level when the best one conflicts with an in-flight compaction.
    """
    if level is None:
        level, score = versions.pick_compaction_level()
    if level is None:
        return None
    version = versions.current
    pointer = versions.compact_pointer.get(level)
    inputs: List[FileMetaData] = []
    for meta in version.files[level]:
        if pointer is None or meta.largest[:-8] > pointer:
            inputs.append(meta)
            break
    if not inputs:
        files = version.files[level]
        if not files:
            return None
        inputs = [files[0]]
    if level == 0:
        begin, end = _range_of(inputs)
        inputs = version.overlapping_inputs(0, begin, end)
    return _setup_other_inputs(versions, options, level, inputs)


def pick_seek_compaction(
    versions: VersionSet,
    options: Options,
    level: int,
    meta: FileMetaData,
) -> Optional[Compaction]:
    """Compact one over-seeked file into the next level."""
    if level >= options.num_levels - 1:
        return None
    if meta.number not in {f.number for f in versions.current.files[level]}:
        return None  # the file was compacted away in the meantime
    inputs = [meta]
    if level == 0:
        # level-0 files overlap: every overlapping sibling must move
        # together or an older version could end up above a newer one
        begin, end = meta.user_range()
        inputs = versions.current.overlapping_inputs(0, begin, end)
    compaction = _setup_other_inputs(versions, options, level, inputs)
    if compaction is not None:
        compaction.is_seek = True
    return compaction


def _setup_other_inputs(
    versions: VersionSet,
    options: Options,
    level: int,
    inputs: List[FileMetaData],
) -> Optional[Compaction]:
    version = versions.current
    begin, end = _range_of(inputs)
    overlaps = version.overlapping_inputs(level + 1, begin, end)

    # Try to grow the level-`level` input set without changing the
    # level+1 inputs (LevelDB's expansion rule), bounded in size.
    all_begin, all_end = _range_of(inputs + overlaps)
    expanded = version.overlapping_inputs(level, all_begin, all_end)
    if len(expanded) > len(inputs):
        inputs_size = sum(f.file_size for f in inputs)
        expanded_size = sum(f.file_size for f in expanded)
        overlap_size = sum(f.file_size for f in overlaps)
        if (
            expanded_size + overlap_size
            < options.expanded_compaction_limit()
        ):
            new_begin, new_end = _range_of(expanded)
            new_overlaps = version.overlapping_inputs(
                level + 1, new_begin, new_end
            )
            if len(new_overlaps) == len(overlaps):
                inputs = expanded
                begin, end = new_begin, new_end

    grandparents: List[FileMetaData] = []
    if level + 2 < options.num_levels:
        gp_begin, gp_end = _range_of(inputs + overlaps)
        grandparents = version.overlapping_inputs(level + 2, gp_begin, gp_end)

    compaction = Compaction(
        level=level,
        inputs=inputs,
        overlaps=overlaps,
        grandparents=grandparents,
    )
    # Remember where to start next time at this level (round-robin).
    if inputs:
        versions.compact_pointer[level] = max(
            f.largest[:-8] for f in inputs
        )
    return compaction


def ranges_overlap(
    a_begin: Optional[bytes],
    a_end: Optional[bytes],
    b_begin: Optional[bytes],
    b_end: Optional[bytes],
) -> bool:
    """Do two inclusive user-key ranges intersect? ``None`` = unbounded."""
    if a_end is not None and b_begin is not None and a_end < b_begin:
        return False
    if b_end is not None and a_begin is not None and b_end < a_begin:
        return False
    return True


@dataclass
class InflightJob:
    """One background job whose virtual-time span is still open."""

    levels: "frozenset[int]"
    begin: Optional[bytes]
    end: Optional[bytes]
    done: int


class CompactionSchedule:
    """In-flight spans of concurrent background compactions.

    With several background threads, jobs execute host-sequentially but
    their *virtual* spans overlap. Two compactions may overlap in
    virtual time only when they are disjoint — different levels or
    non-intersecting key ranges — because an overlapping pair would have
    one job consuming (or deleting) SSTables the other is still writing
    at that virtual moment. A major compaction's outputs always fall
    inside its input key range, so "shared level AND intersecting range"
    is exactly the hazard predicate.

    The schedule answers one question at pick time: *may this compaction
    start at time* ``at``? If not, :meth:`clearance` returns the virtual
    time at which every conflicting in-flight job has completed — the
    scheduler re-submits the job as ready at that time instead of
    dropping it.
    """

    def __init__(self) -> None:
        self._jobs: List[InflightJob] = []
        #: jobs whose dispatch was pushed past a conflicting in-flight
        #: span (the stall detector labels these ``major_deferred``)
        self.deferrals = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def note_deferral(self) -> None:
        self.deferrals += 1

    def prune(self, at: int) -> None:
        """Forget jobs whose spans closed at or before ``at``."""
        self._jobs = [job for job in self._jobs if job.done > at]

    def add(
        self,
        levels: "frozenset[int]",
        begin: Optional[bytes],
        end: Optional[bytes],
        done: int,
    ) -> None:
        """Record one executed job's span (call with its completion)."""
        self._jobs.append(InflightJob(levels, begin, end, done))

    def clearance(
        self,
        levels: "frozenset[int]",
        begin: Optional[bytes],
        end: Optional[bytes],
        at: int,
    ) -> Optional[int]:
        """Earliest conflict-free start for a job, or ``None`` if ``at`` is.

        A conflict is an in-flight job, still open at ``at``, that shares
        a level and intersects the key range. The returned time is the
        max completion over all conflicting jobs — starting there, the
        job observes every conflicting predecessor as finished.
        """
        clearance = None
        for job in self._jobs:
            if job.done <= at:
                continue
            if not (job.levels & levels):
                continue
            if not ranges_overlap(job.begin, job.end, begin, end):
                continue
            clearance = job.done if clearance is None else max(clearance, job.done)
        return clearance


class VersionKeeper:
    """LevelDB's snapshot-aware drop rule during a compaction merge.

    Walking entries in internal-key order (user key ascending, sequence
    descending), a version is dropped once a *newer* version of the same
    key exists at or below the smallest live snapshot — no reader can
    ever observe it. Tombstones that reach the base level are dropped
    too, once they are invisible to every snapshot.
    """

    __slots__ = (
        "smallest_snapshot",
        "drop_tombstones",
        "_last_user",
        "_has_newer_visible_everywhere",
        "dropped",
    )

    def __init__(self, smallest_snapshot: int, drop_tombstones: bool) -> None:
        self.smallest_snapshot = smallest_snapshot
        self.drop_tombstones = drop_tombstones
        self._last_user: Optional[bytes] = None
        self._has_newer_visible_everywhere = False
        self.dropped = 0

    def keep(self, user_key: bytes, sequence: int, value_type: int) -> bool:
        if user_key != self._last_user:
            self._last_user = user_key
            self._has_newer_visible_everywhere = False
        if self._has_newer_visible_everywhere:
            self.dropped += 1
            return False
        if sequence <= self.smallest_snapshot:
            # this version is the newest one every snapshot can see;
            # everything older for this key is shadowed
            self._has_newer_visible_everywhere = True
            if value_type == TYPE_DELETION and self.drop_tombstones:
                self.dropped += 1
                return False
        return True


class OutputCutter:
    """Decides when to finish the current output file (LevelDB rules)."""

    __slots__ = (
        "grandparents",
        "_max_file_size",
        "_overlap_limit",
        "_gp_bounds",
        "_gp_count",
        "_gp_index",
        "_overlap_bytes",
    )

    def __init__(self, compaction: Compaction, options: Options) -> None:
        self.grandparents = compaction.grandparents
        self._max_file_size = options.max_file_size
        self._overlap_limit = options.grandparent_overlap_limit()
        # (largest user key, file size) per grandparent, sliced once
        # instead of on every should_stop_before call
        self._gp_bounds = [
            (meta.largest[:-8], meta.file_size)
            for meta in compaction.grandparents
        ]
        self._gp_count = len(self._gp_bounds)
        self._gp_index = 0
        self._overlap_bytes = 0

    def should_stop_before(self, user_key: bytes, current_output_size: int) -> bool:
        if current_output_size >= self._max_file_size:
            return True
        # Advance through grandparents the key has passed, accumulating
        # overlap; cut when the next output would overlap too much of
        # level + 2.
        bounds = self._gp_bounds
        index = self._gp_index
        count = self._gp_count
        overlap = self._overlap_bytes
        while index < count and user_key > bounds[index][0]:
            overlap += bounds[index][1]
            index += 1
        self._gp_index = index
        if overlap > self._overlap_limit:
            self._overlap_bytes = 0
            return True
        self._overlap_bytes = overlap
        return False

    def reset_for_new_output(self) -> None:
        self._overlap_bytes = 0
