"""SSTable writer and reader.

Layout::

    [data block 0] ... [data block N-1]
    [bloom filter]
    [index block]   entries: last internal key of block -> (offset, size)
    [footer]        bloom_offset, bloom_size, index_offset, index_size, magic

Keys inside data blocks are *internal* keys (user key + sequence tag);
index keys are the last internal key of each block. All sizes are real —
the simulated device is charged for exactly the bytes a real LevelDB
would move.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fs.ext4 import Ext4, File
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.bloom import BloomFilter
from repro.lsm.format import (
    CorruptionError,
    MAX_SEQUENCE,
    TYPE_DELETION,
    TYPE_VALUE,
    get_fixed64,
    make_internal_key,
    parse_internal_key,
    put_fixed64,
)
from repro.lsm.options import Options

FOOTER_SIZE = 40
TABLE_MAGIC = 0xDB4775248B80FB57


class TableBuilder:
    """Builds one SSTable; entries must arrive in internal-key order."""

    def __init__(
        self,
        fs: Ext4,
        path: str,
        options: Options,
        at: int,
        number: int = -1,
    ) -> None:
        self.fs = fs
        self.options = options
        handle, t = fs.create(path, at=at)
        self.handle = handle
        self.path = path
        self.number = number
        self._time = t
        self._block = BlockBuilder()
        self._index = BlockBuilder()
        self._block_size_limit = options.block_size
        self._pending: List[bytes] = []  # completed data blocks
        self._offset = 0
        self._user_keys: List[bytes] = []
        self.num_entries = 0
        self.smallest: Optional[bytes] = None
        self.largest: Optional[bytes] = None
        self._last_user: Optional[bytes] = None
        self._last_tag = 0
        self.finished = False

    @property
    def current_size(self) -> int:
        return self._offset + self._block.size_estimate

    def add(self, internal_key: bytes, value: bytes) -> None:
        if self.finished:
            raise RuntimeError("builder already finished")
        # ordering check, internal_compare inlined against the cached
        # (user, tag) of the previous entry: user asc, tag (seq) desc
        user = internal_key[:-8]
        tag = int.from_bytes(internal_key[-8:], "little")
        last_user = self._last_user
        if last_user is not None and (
            user < last_user or (user == last_user and tag >= self._last_tag)
        ):
            raise ValueError("table entries must be strictly increasing")
        self._last_user = user
        self._last_tag = tag
        if self.smallest is None:
            self.smallest = internal_key
        self.largest = internal_key
        self._user_keys.append(user)
        self.num_entries += 1
        if self._block.add(internal_key, value) >= self._block_size_limit:
            self._cut_block()

    def _cut_block(self) -> None:
        if self._block.empty:
            return
        last_key = self._block.last_key
        data = self._block.finish()
        self._pending.append(data)
        self._index.add(
            last_key, put_fixed64(self._offset) + put_fixed64(len(data))
        )
        self._offset += len(data)

    def finish(self, at: int) -> Tuple[int, int]:
        """Write everything out; returns (file_size, completion_time)."""
        if self.finished:
            raise RuntimeError("builder already finished")
        self.finished = True
        self._cut_block()
        bloom = BloomFilter.build(self._user_keys, self.options.bloom_bits_per_key)
        bloom_bytes = bloom.encode()
        bloom_offset = self._offset
        index_bytes = self._index.finish()
        index_offset = bloom_offset + len(bloom_bytes)
        footer = (
            put_fixed64(bloom_offset)
            + put_fixed64(len(bloom_bytes))
            + put_fixed64(index_offset)
            + put_fixed64(len(index_bytes))
            + put_fixed64(TABLE_MAGIC)
        )
        contents = b"".join(self._pending) + bloom_bytes + index_bytes + footer
        t = max(at, self._time)
        t = self.handle.append(contents, at=t)
        # checksumming cost over the table
        t += self.fs.cpu.crc_per_kib_ns * (len(contents) // 1024 + 1)
        return len(contents), t

    def abandon(self, at: int) -> int:
        """Drop a partially built table (failed compaction)."""
        self.finished = True
        return self.fs.unlink(self.path, at=at)


def _lower_bound(keys: List[bytes], target: bytes) -> int:
    """First index whose internal key >= target (internal ordering).

    ``internal_compare`` is inlined: the target's user part and tag are
    sliced once instead of on every probe.
    """
    lo, hi = 0, len(keys)
    if lo == hi:
        return lo
    target_user = target[:-8]
    target_tag = get_fixed64(target, len(target) - 8)
    while lo < hi:
        mid = (lo + hi) >> 1
        key = keys[mid]
        user = key[:-8]
        # key < target iff user asc first, then tag (sequence) desc
        if user < target_user or (
            user == target_user
            and get_fixed64(key, len(key) - 8) > target_tag
        ):
            lo = mid + 1
        else:
            hi = mid
    return lo


class Table:
    """An open SSTable: footer/index/bloom parsed, blocks read on demand.

    ``block_cache`` (optional, shared across tables) bounds how many
    decoded blocks stay resident — LevelDB's 8 MB Cache; without one the
    table falls back to a private unbounded dict (unit-test convenience).
    """

    def __init__(
        self,
        fs: Ext4,
        handle: File,
        index: Block,
        bloom: BloomFilter,
        file_size: int,
        block_cache=None,
        number: int = -1,
    ) -> None:
        self.fs = fs
        self.handle = handle
        self.index = index
        self.bloom = bloom
        self.file_size = file_size
        self.number = number
        self.shared_cache = block_cache
        self._block_cache: Dict[int, Block] = {}
        # (offset, size) per data block, parsed once instead of two
        # get_fixed64 calls on every _read_block
        self._spans: List[Tuple[int, int]] = [
            (get_fixed64(v, 0), get_fixed64(v, 8)) for v in index.values
        ]

    @classmethod
    def open(
        cls, fs: Ext4, path: str, at: int, block_cache=None, number: int = -1
    ) -> Tuple["Table", int]:
        handle, t = fs.open(path, at=at)
        size = handle.size
        if size < FOOTER_SIZE:
            raise CorruptionError(f"{path}: too small for a table footer")
        footer, t = handle.read(size - FOOTER_SIZE, FOOTER_SIZE, at=t)
        if get_fixed64(footer, 32) != TABLE_MAGIC:
            raise CorruptionError(f"{path}: bad table magic")
        bloom_offset = get_fixed64(footer, 0)
        bloom_size = get_fixed64(footer, 8)
        index_offset = get_fixed64(footer, 16)
        index_size = get_fixed64(footer, 24)
        bloom_bytes, t = handle.read(bloom_offset, bloom_size, at=t)
        index_bytes, t = handle.read(index_offset, index_size, at=t)
        t += fs.cpu.block_decode_ns
        index = Block.decode(index_bytes)
        bloom = BloomFilter.decode(bloom_bytes)
        return cls(
            fs, handle, index, bloom, size,
            block_cache=block_cache, number=number,
        ), t

    def _read_block(self, block_pos: int, at: int) -> Tuple[Block, int]:
        if self.shared_cache is not None:
            cached = self.shared_cache.get(self.number, block_pos)
        else:
            cached = self._block_cache.get(block_pos)
        if cached is not None:
            return cached, at
        offset, size = self._spans[block_pos]
        raw, t = self.handle.read(offset, size, at=at)
        t += self.fs.cpu.block_decode_ns
        block = Block.decode(raw)
        if self.shared_cache is not None:
            self.shared_cache.put(self.number, block_pos, block, size)
        else:
            self._block_cache[block_pos] = block
        return block, t

    def get(
        self,
        user_key: bytes,
        at: int,
        sequence_bound: int = MAX_SEQUENCE,
    ) -> Tuple[Optional[Tuple[bool, bytes]], int]:
        """Point lookup of the newest version at or below the bound.

        Returns ``(None, t)`` when nothing visible is in this table,
        ``((True, value), t)`` for a live value, ``((False, b''), t)`` for
        a tombstone.
        """
        t = at + self.fs.cpu.bloom_check_ns
        if not self.bloom.may_contain(user_key):
            return None, t
        target = make_internal_key(user_key, sequence_bound, TYPE_VALUE)
        block_pos = _lower_bound(self.index.keys, target)
        if block_pos >= len(self.index.keys):
            return None, t
        block, t = self._read_block(block_pos, t)
        entry_pos = _lower_bound(block.keys, target)
        t += self.fs.cpu.memtable_lookup_ns  # binary-search cost
        if entry_pos >= len(block.keys):
            # the match may start in the next block (bound skipped past
            # this block's tail versions)
            block_pos += 1
            if block_pos >= len(self.index.keys):
                return None, t
            block, t = self._read_block(block_pos, t)
            entry_pos = 0
        found_user, _, value_type = parse_internal_key(block.keys[entry_pos])
        if found_user != user_key:
            return None, t
        if value_type == TYPE_DELETION:
            return (False, b""), t
        return (True, block.values[entry_pos]), t

    def largest_key(self) -> bytes:
        """Largest internal key (the index's last entry)."""
        if not self.index.keys:
            raise CorruptionError("empty table has no largest key")
        return self.index.keys[-1]

    def smallest_key(self, at: int) -> Tuple[bytes, int]:
        """Smallest internal key (first entry of the first block)."""
        if not self.index.keys:
            raise CorruptionError("empty table has no smallest key")
        block, t = self._read_block(0, at)
        return block.keys[0], t

    def max_sequence(self, at: int) -> Tuple[int, int]:
        """Highest sequence number stored in the table (full scan).

        Used by orphan-table adoption during NobLSM recovery, which must
        restore ``last_sequence`` past every adopted entry.
        """
        entries, t = self.all_entries(at)
        best = 0
        for key, _ in entries:
            _, sequence, _ = parse_internal_key(key)
            if sequence > best:
                best = sequence
        return best, t

    def iterate(self, at: int) -> "TableIterator":
        return TableIterator(self, at)

    def all_entries(self, at: int) -> Tuple[List[Tuple[bytes, bytes]], int]:
        """Read the whole table (compaction input)."""
        entries: List[Tuple[bytes, bytes]] = []
        t = at
        for pos in range(len(self.index.keys)):
            block, t = self._read_block(pos, t)
            entries.extend(zip(block.keys, block.values))
        return entries, t


class TableIterator:
    """Forward iterator over one table; blocks are read only when the
    iterator is positioned (lazy, like LevelDB's two-level iterator)."""

    __slots__ = (
        "table", "time", "_block_pos", "_block", "_entry_pos", "_iter_next_ns"
    )

    def __init__(self, table: Table, at: int) -> None:
        self.table = table
        self.time = at
        self._block_pos = -1
        self._block: Optional[Block] = None
        self._entry_pos = 0
        self._iter_next_ns = table.fs.cpu.iter_next_ns

    def seek_to_first(self) -> None:
        self._block_pos = -1
        self._advance_block()

    def _advance_block(self) -> None:
        self._block_pos += 1
        if self._block_pos >= len(self.table.index.keys):
            self._block = None
            return
        self._block, self.time = self.table._read_block(
            self._block_pos, self.time
        )
        self._entry_pos = 0

    @property
    def valid(self) -> bool:
        return self._block is not None

    @property
    def key(self) -> bytes:
        return self._block.keys[self._entry_pos]

    @property
    def value(self) -> bytes:
        return self._block.values[self._entry_pos]

    def seek(self, target: bytes) -> None:
        """Position at the first entry with internal key >= target."""
        keys = self.table.index.keys
        pos = _lower_bound(keys, target)
        if pos >= len(keys):
            self._block = None
            self._block_pos = len(keys)
            return
        self._block_pos = pos - 1
        self._advance_block()
        if self._block is not None:
            self._entry_pos = _lower_bound(self._block.keys, target)
            if self._entry_pos >= len(self._block.keys):
                self._advance_block()

    def next(self) -> None:
        block = self._block
        if block is None:
            raise StopIteration("iterator exhausted")
        self.time += self._iter_next_ns
        pos = self._entry_pos + 1
        self._entry_pos = pos
        if pos >= len(block.keys):
            self._advance_block()
