"""Background work execution on the virtual clock.

LevelDB runs compactions on one background thread; RocksDB-like stores
use several. Each thread is a *free-at watermark*: a job executes eagerly
in program order, but its virtual-time span is
``[max(ready, thread_free), completion]``.

Work is **pulled, not pushed**: the store keeps the pending-work state
(sealed memtable, compaction scores, seek requests) and the executor only
runs a job when the store decides the thread has virtual time for it.
That gives the scheduling semantics of the real system — the memtable
dump is always picked before size compactions, deep-level backlog only
consumes thread time as the clock actually passes, and work left over at
the end of a benchmark window stays unexecuted until someone waits for
it — which is exactly how db_bench's timed window sees a real LevelDB.
"""

from __future__ import annotations

from typing import Callable, List

WorkFn = Callable[[int], int]  # start_time -> completion_time


class LazyExecutor:
    """N virtual worker threads, each a serial free-at timeline."""

    def __init__(self, num_threads: int = 1) -> None:
        if num_threads < 1:
            raise ValueError(f"need at least one thread, got {num_threads}")
        self._free_at: List[int] = [0] * num_threads
        self.jobs = 0
        self.busy_ns = 0

    @property
    def num_threads(self) -> int:
        return len(self._free_at)

    def earliest_free(self) -> int:
        return min(self._free_at)

    def latest_free(self) -> int:
        return max(self._free_at)

    def execute(self, ready: int, work: WorkFn) -> int:
        """Run ``work`` on the least-loaded thread; returns completion.

        The job starts no earlier than ``ready`` (when its trigger arose)
        and no earlier than the thread's free time.
        """
        index = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        start = max(int(ready), self._free_at[index])
        done = work(start)
        if done < start:
            raise RuntimeError(
                f"background work went backwards in time ({done} < {start})"
            )
        # `work` may have executed nested follow-ups that advanced the
        # thread past `done`; never rewind.
        self._free_at[index] = max(self._free_at[index], done)
        self.jobs += 1
        self.busy_ns += done - start
        return done

    def idle_at(self, at: int) -> bool:
        return all(free <= at for free in self._free_at)
