"""Background work execution on the virtual clock.

LevelDB runs compactions on one background thread; RocksDB-like stores
use several. Each thread is a *free-at watermark*: a job executes eagerly
in program order, but its virtual-time span is
``[max(ready, thread_free), completion]``.

Work is **pulled, not pushed**: the store keeps the pending-work state
(sealed memtable, compaction scores, seek requests) and the executor only
runs a job when the store decides the thread has virtual time for it.
That gives the scheduling semantics of the real system — the memtable
dump is always picked before size compactions, deep-level backlog only
consumes thread time as the clock actually passes, and work left over at
the end of a benchmark window stays unexecuted until someone waits for
it — which is exactly how db_bench's timed window sees a real LevelDB.

The executor attributes work per thread (``thread_jobs`` /
``thread_busy_ns``) and accounts *queue stalls*: whenever a job's start
is delayed past its ready time because every thread was busy, the wait
is added to ``stall_ns`` (and, when an observability registry is wired
in, to the ``bg.stall_ns`` counter and ``bg.queue_ns`` histogram). This
is the scheduling-delay signal Luo & Carey tie to write stalls — a
compaction backlog on too few threads shows up here before it shows up
in user-visible latency.
"""

from __future__ import annotations

from typing import Callable, List, Optional

WorkFn = Callable[[int], int]  # start_time -> completion_time


class LazyExecutor:
    """N virtual worker threads, each a serial free-at timeline."""

    def __init__(
        self,
        num_threads: int = 1,
        obs=None,
        name: str = "bg",
    ) -> None:
        if num_threads < 1:
            raise ValueError(f"need at least one thread, got {num_threads}")
        self._free_at: List[int] = [0] * num_threads
        self.jobs = 0
        self.busy_ns = 0
        self.stall_ns = 0
        #: virtual time jobs were pushed back by the compaction rate
        #: limiter (the store calls :meth:`note_throttle` at admit time)
        self.throttle_ns = 0
        self.thread_jobs: List[int] = [0] * num_threads
        self.thread_busy_ns: List[int] = [0] * num_threads
        self._name = name
        self._observe = obs is not None and obs.enabled
        self._obs = obs if self._observe else None
        if self._observe:
            obs.register_source(name, self.snapshot)
            self._stall_counter = obs.counter("bg.stall_ns")
            self._queue_hist = obs.histogram("bg.queue_ns")

    @property
    def num_threads(self) -> int:
        return len(self._free_at)

    def earliest_free(self) -> int:
        return min(self._free_at)

    def latest_free(self) -> int:
        return max(self._free_at)

    def free_at(self, thread: int) -> int:
        """When one specific thread's timeline becomes free."""
        return self._free_at[thread]

    def next_start(self, ready: int) -> int:
        """The start time a job submitted now with ``ready`` would get."""
        return max(int(ready), self.earliest_free())

    def execute(
        self, ready: int, work: WorkFn, thread: Optional[int] = None
    ) -> int:
        """Run ``work`` on the least-loaded thread; returns completion.

        The job starts no earlier than ``ready`` (when its trigger arose)
        and no earlier than the thread's free time. Passing ``thread``
        pins the job to a specific worker (schedulers that separate, say,
        memtable dumps from major compactions use this).
        """
        if thread is None:
            index = min(
                range(len(self._free_at)), key=self._free_at.__getitem__
            )
        else:
            index = thread
        start = max(int(ready), self._free_at[index])
        stall = start - int(ready)
        tracer = self._obs.tracer if self._obs is not None else None
        if tracer is not None:
            # spans opened inside the job land on this worker's track
            tracer.push_track(f"{self._name}.t{index}")
            try:
                done = work(start)
            finally:
                tracer.pop_track()
        else:
            done = work(start)
        if done < start:
            raise RuntimeError(
                f"background work went backwards in time ({done} < {start})"
            )
        # `work` may have executed nested follow-ups that advanced the
        # thread past `done`; never rewind.
        self._free_at[index] = max(self._free_at[index], done)
        self.jobs += 1
        self.busy_ns += done - start
        self.thread_jobs[index] += 1
        self.thread_busy_ns[index] += done - start
        self.stall_ns += stall
        if self._observe:
            self._stall_counter.inc(stall)
            self._queue_hist.record(stall)
        return done

    def idle_at(self, at: int) -> bool:
        return all(free <= at for free in self._free_at)

    def note_throttle(self, ns: int) -> None:
        """Attribute rate-limiter delay imposed on a job's ready time.

        Distinct from ``stall_ns`` (queueing behind busy threads): this
        is time the *scheduler chose* to defer work to shape compaction
        bandwidth; the executor keeps both so the soak report can tell
        "not enough threads" apart from "bandwidth budget".
        """
        self.throttle_ns += int(ns)
        if self._observe:
            self._obs.counter("bg.throttle_ns").inc(int(ns))

    def snapshot(self) -> "dict[str, object]":
        """Unified stats view (see :mod:`repro.sim.stats` contract)."""
        return {
            "threads": self.num_threads,
            "jobs": self.jobs,
            "busy_ns": self.busy_ns,
            "stall_ns": self.stall_ns,
            "throttle_ns": self.throttle_ns,
            "thread_jobs": list(self.thread_jobs),
            "thread_busy_ns": list(self.thread_busy_ns),
        }
