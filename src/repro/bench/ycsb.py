"""YCSB macro-benchmark (paper Section 5.3).

The paper runs the workloads in the order Load-A, A, B, C, F, D, Load-E,
E (as BoLT and PebblesDB do). Load phases clear the data set and insert
``record_count`` 1 KB records; each run phase issues ``operation_count``
requests with the standard YCSB mixes:

======== ======================================== ==============
workload mix                                      distribution
======== ======================================== ==============
A        50% update / 50% read                    zipfian
B        5% update / 95% read                     zipfian
C        100% read                                zipfian
D        5% insert / 95% read                     latest
E        5% insert / 95% scan (len <= 100)        zipfian
F        50% read-modify-write / 50% read         zipfian
======== ======================================== ==============

Multi-threaded runs split the same total operation count over K client
threads driven by :class:`repro.bench.harness.ThreadedDriver`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import BenchResult, ScaledConfig, collect_result
from repro.bench.workloads import ValueGenerator
from repro.bench.zipf import Latest, ScrambledZipfian
from repro.fs.stack import StorageStack
from repro.lsm.db import DB

#: the paper's execution order
PAPER_ORDER = ["load-a", "a", "b", "c", "f", "d", "load-e", "e"]

MAX_SCAN_LENGTH = 100


def ycsb_key(index: int) -> bytes:
    return f"user{index:012d}".encode()


class YCSBWorkload:
    """Generates the operation stream for one workload phase."""

    def __init__(
        self,
        name: str,
        record_count: int,
        operation_count: int,
        value_size: int,
        seed: int,
    ) -> None:
        self.name = name.lower()
        self.record_count = record_count
        self.operation_count = operation_count
        self.values = ValueGenerator(value_size, seed=seed)
        self._rng = random.Random(seed)
        if self.name in ("load-a", "load-e"):
            self._inserted = 0  # loads insert user0 .. user{N-1}
            self._chooser = None
        elif self.name == "d":
            self._inserted = record_count
            self._chooser = Latest(max(record_count, 1), seed=seed + 1)
        else:
            self._inserted = record_count
            self._chooser = ScrambledZipfian(max(record_count, 1), seed=seed + 1)
        self._scan_rng = random.Random(seed + 2)

    @property
    def inserted_count(self) -> int:
        """Records present once the generated ops have run.

        Load phases count the records they insert; run phases start from
        ``record_count`` and grow with every insert op generated (D and
        E). This is the workload's public record-accounting contract —
        callers chaining phases (the suite runner, the serving layer)
        read it instead of reaching into generator internals.
        """
        return self._inserted

    # mix fractions: (read, update, insert, scan, rmw)
    _MIXES: Dict[str, Tuple[float, float, float, float, float]] = {
        "a": (0.50, 0.50, 0.00, 0.00, 0.00),
        "b": (0.95, 0.05, 0.00, 0.00, 0.00),
        "c": (1.00, 0.00, 0.00, 0.00, 0.00),
        "d": (0.95, 0.00, 0.05, 0.00, 0.00),
        "e": (0.00, 0.00, 0.05, 0.95, 0.00),
        "f": (0.50, 0.00, 0.00, 0.00, 0.50),
    }

    def operations(self) -> List[Callable[[DB, int], int]]:
        """The phase's operation closures, each ``(db, at) -> completion``."""
        if self._chooser is None:
            return [self._insert_op() for _ in range(self.record_count)]
        read_f, update_f, insert_f, scan_f, rmw_f = self._MIXES[self.name]
        ops: List[Callable[[DB, int], int]] = []
        for _ in range(self.operation_count):
            roll = self._rng.random()
            if roll < read_f:
                ops.append(self._read_op())
            elif roll < read_f + update_f:
                ops.append(self._update_op())
            elif roll < read_f + update_f + insert_f:
                ops.append(self._insert_op())
            elif roll < read_f + update_f + insert_f + scan_f:
                ops.append(self._scan_op())
            else:
                ops.append(self._rmw_op())
        return ops

    def _next_key(self) -> bytes:
        index = self._chooser.next()
        return ycsb_key(index % max(self._inserted, 1))

    def _read_op(self) -> Callable[[DB, int], int]:
        key = self._next_key()

        def op(db: DB, at: int) -> int:
            _, t = db.get(key, at)
            return t

        return op

    def _update_op(self) -> Callable[[DB, int], int]:
        key = self._next_key()
        value = self.values.next()

        def op(db: DB, at: int) -> int:
            return db.put(key, value, at)

        return op

    def _insert_op(self) -> Callable[[DB, int], int]:
        key = ycsb_key(self._inserted)
        self._inserted += 1
        if isinstance(self._chooser, Latest):
            self._chooser.set_count(self._inserted)
        value = self.values.next()

        def op(db: DB, at: int) -> int:
            return db.put(key, value, at)

        return op

    def _scan_op(self) -> Callable[[DB, int], int]:
        key = self._next_key()
        length = self._scan_rng.randrange(1, MAX_SCAN_LENGTH + 1)

        def op(db: DB, at: int) -> int:
            _, t = db.scan(key, length, at)
            return t

        return op

    def _rmw_op(self) -> Callable[[DB, int], int]:
        key = self._next_key()
        value = self.values.next()

        def op(db: DB, at: int) -> int:
            _, t = db.get(key, at)
            return db.put(key, value, t)

        return op


#: idle time between phases in paper-seconds (the YCSB client restarts
#: between load/run invocations; background compactions keep running)
PHASE_GAP_PAPER_SECONDS = 30.0


def run_ycsb_suite(
    store_name: str,
    config: ScaledConfig,
    workloads: Optional[List[str]] = None,
    record_count: Optional[int] = None,
    operation_count: Optional[int] = None,
    phase_gap_s: float = PHASE_GAP_PAPER_SECONDS,
) -> Dict[str, BenchResult]:
    """Run the YCSB phases in the paper's order on one store.

    Load phases rebuild the store from scratch (fresh stack) as the
    paper does ("Load-A and Load-E clear data sets and then fill up").
    Between phases the client is idle for ``phase_gap_s`` paper-seconds
    (scaled), during which background compactions proceed — as they do
    while the real YCSB client restarts for the next phase.
    Returns one :class:`BenchResult` per phase.
    """
    workloads = [w.lower() for w in (workloads or PAPER_ORDER)]
    # paper: 50 M records loaded, 10 M requests per phase; scale both
    records = record_count or max(int(50_000_000 / config.scale), 100)
    operations = operation_count or max(int(10_000_000 / config.scale), 100)
    results: Dict[str, BenchResult] = {}
    stack: Optional[StorageStack] = None
    db: Optional[DB] = None
    t = 0
    seed = config.seed
    for phase in workloads:
        seed += 1
        if phase.startswith("load") or db is None:
            stack, db = config.build_store(store_name)
            t = stack.now
        workload = YCSBWorkload(
            phase,
            record_count=records,
            operation_count=operations,
            value_size=config.value_size,
            seed=seed,
        )
        ops = workload.operations()
        stack.sync_stats.reset()
        stack.ssd.stats.reset()
        start = t
        if config.threads <= 1:
            for op in ops:
                t = op(db, t)
        else:
            from repro.bench.harness import ThreadedDriver

            driver = ThreadedDriver(db, config.threads, start=t)
            t = driver.run(ops)
        results[phase] = collect_result(
            store_name, phase, config, stack, db, start, t, len(ops)
        )
        if phase.startswith("load"):
            # records now present for the following run phases
            records = workload.inserted_count
        # idle gap before the next phase: background work catches up
        gap = int(phase_gap_s * 1e9 / config.scale)
        t += gap
        stack.events.run_until(t)
        db._advance_background(t)
    return results
