"""A db_bench-style command line, mirroring LevelDB's binary.

Usage::

    python -m repro.bench.dbbench_cli --store noblsm \
        --benchmarks fillrandom,overwrite,readrandom \
        --num 20000 --value-size 1024 --scale 500

Prints one line per benchmark in db_bench's familiar format::

    fillrandom   :      11.075 micros/op;   88.1 MB/s

``--observe`` threads a metric registry through the stack and appends
per-op latency percentiles plus a per-layer virtual-time breakdown;
``--json PATH`` writes the machine-readable ``repro.bench/1`` document.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baselines.registry import STORE_CLASSES
from repro.bench.db_bench import WORKLOADS, run_workload
from repro.bench.harness import ScaledConfig
from repro.bench.report import (
    format_breakdown_table,
    format_latency_table,
    write_results_json,
)

DEFAULT_BENCHMARKS = "fillrandom,overwrite,readseq,readrandom"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.dbbench_cli",
        description="LevelDB db_bench on the simulated stack.",
    )
    parser.add_argument(
        "--store",
        default="noblsm",
        choices=sorted(STORE_CLASSES),
        help="which store to benchmark",
    )
    parser.add_argument(
        "--benchmarks",
        default=DEFAULT_BENCHMARKS,
        help=f"comma-separated list from: {', '.join(sorted(WORKLOADS))}",
    )
    parser.add_argument("--num", type=int, default=0,
                        help="operations per benchmark (0 = 10M/scale)")
    parser.add_argument("--value-size", type=int, default=1024)
    parser.add_argument("--scale", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--observe",
        action="store_true",
        help="enable the metric registry: percentiles + layer breakdown",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write results as a repro.bench/1 JSON document",
    )
    args = parser.parse_args(argv)

    config = ScaledConfig(
        scale=args.scale,
        num_ops=args.num,
        value_size=args.value_size,
        seed=args.seed,
        observe=args.observe,
    )
    print(
        f"store: {args.store}; keys: 16 bytes each; "
        f"values: {args.value_size} bytes each; "
        f"entries: {config.num_ops}; scale: {args.scale:g}"
    )
    print("-" * 60)
    results = []
    for name in args.benchmarks.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in WORKLOADS:
            print(f"{name:12s} : unknown benchmark", file=sys.stderr)
            return 2
        result = run_workload(name, args.store, config)
        results.append(result)
        payload = (16 + args.value_size) * result.num_ops
        seconds = result.virtual_seconds
        rate = payload / seconds / (1024 * 1024) if seconds > 0 else 0.0
        print(
            f"{name:12s} : {result.us_per_op:10.3f} micros/op; "
            f"{rate:7.1f} MB/s ({result.num_ops} ops)"
        )
    if args.observe and results:
        print()
        print(format_latency_table(results))
        print()
        print(format_breakdown_table(results))
    if args.json:
        write_results_json(
            args.json,
            results,
            meta={
                "store": args.store,
                "scale": args.scale,
                "value_size": args.value_size,
                "seed": args.seed,
                "observed": args.observe,
            },
        )
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
