"""Terminal plots for the figures (no plotting libraries offline).

Two chart kinds match the paper's figures:

- :func:`grouped_bars` — Figure 2b/5-style grouped bar charts;
- :func:`line_series` — Figure 4-style series over value sizes, with an
  optional log y-axis (the paper plots 4a/4b in log scale).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

BAR_WIDTH = 40
GLYPHS = "#*+o@x%="

#: intensity ramp for sparklines, dimmest to brightest (pure ASCII,
#: like every other chart here — no terminal-font roulette)
SPARK_RAMP = " .:-=+*#%@"


def sparkline(
    values: Sequence[Optional[float]],
    width: int = 60,
    maximum: Optional[float] = None,
) -> str:
    """One-line intensity plot of ``values``, downsampled to ``width``.

    Downsampling takes the *max* within each bucket, so a one-sample
    spike survives — the whole point of a flight recorder. ``None``
    entries (gaps) render as spaces. ``maximum`` pins the scale (share
    it across lanes to make them comparable); by default the line
    self-scales to its own peak.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        return " " * width
    buckets: List[Optional[float]] = [None] * width
    n = len(values)
    for i, value in enumerate(values):
        if value is None:
            continue
        j = i * width // n
        if buckets[j] is None or value > buckets[j]:
            buckets[j] = value
    peak = maximum
    if peak is None:
        peak = max((v for v in buckets if v is not None), default=0.0)
    cells = []
    top = len(SPARK_RAMP) - 1
    for value in buckets:
        if value is None:
            cells.append(" ")
        elif peak <= 0:
            cells.append(SPARK_RAMP[0])
        else:
            level = min(max(int(round(value / peak * top)), 0), top)
            # a non-zero value never renders as blank
            if level == 0 and value > 0:
                level = 1
            cells.append(SPARK_RAMP[level])
    return "".join(cells)


def _scale(value: float, maximum: float, log: bool) -> float:
    if value <= 0 or maximum <= 0:
        return 0.0
    if not log:
        return value / maximum
    # log scale anchored one decade below the smallest plotted value
    return max(
        0.0,
        min(1.0, math.log10(value * 10 / maximum) / math.log10(10 * 10)),
    )


def grouped_bars(
    title: str,
    groups: Sequence[str],
    series: Dict[str, Dict[str, float]],
    unit: str = "",
    log: bool = False,
) -> str:
    """One bar per (group, series) pair, labelled rows.

    ``series`` maps series name -> {group label -> value}.
    """
    maximum = max(
        (value for per_group in series.values() for value in per_group.values()),
        default=1.0,
    )
    lines = [title]
    name_width = max((len(name) for name in series), default=4)
    for group in groups:
        lines.append(f"{group}:")
        for name, per_group in series.items():
            value = per_group.get(group)
            if value is None:
                continue
            filled = int(round(_scale(value, maximum, log) * BAR_WIDTH))
            bar = "#" * max(filled, 1 if value > 0 else 0)
            lines.append(
                f"  {name.ljust(name_width)} |{bar.ljust(BAR_WIDTH)}| "
                f"{value:10.3f} {unit}"
            )
    if log:
        lines.append(f"(bar lengths are log-scaled; max = {maximum:.3f} {unit})")
    return "\n".join(lines)


def line_series(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Dict[float, float]],
    x_label: str = "",
    unit: str = "",
    log: bool = False,
    height: int = 12,
) -> str:
    """A character plot of several series over shared x values."""
    points = [
        value
        for per_x in series.values()
        for value in per_x.values()
        if value > 0
    ]
    if not points:
        return title + "\n(no data)"
    maximum = max(points)
    minimum = min(points)
    if log:
        lo, hi = math.log10(minimum), math.log10(maximum)
    else:
        lo, hi = 0.0, maximum
    if hi <= lo:
        hi = lo + 1.0

    def row_of(value: float) -> int:
        position = (math.log10(value) if log else value)
        fraction = (position - lo) / (hi - lo)
        return min(height - 1, max(0, int(round(fraction * (height - 1)))))

    columns = len(x_values)
    col_width = 6
    grid = [[" " for _ in range(columns * col_width)] for _ in range(height)]
    legend = []
    for index, (name, per_x) in enumerate(series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph}={name}")
        for column, x in enumerate(x_values):
            value = per_x.get(x)
            if value is None or value <= 0:
                continue
            row = height - 1 - row_of(value)
            position = column * col_width + col_width // 2
            if grid[row][position] == " ":
                grid[row][position] = glyph
            else:
                grid[row][position] = "&"  # overlapping series
    lines = [title]
    scale_note = "log " if log else ""
    lines.append(f"{unit} ({scale_note}scale), max={maximum:.3f}")
    for row in grid:
        lines.append("|" + "".join(row))
    axis = ""
    for x in x_values:
        axis += str(x).rjust(col_width)
    lines.append("+" + "-" * (columns * col_width))
    lines.append(" " + axis + f"   {x_label}")
    lines.append("legend: " + "  ".join(legend) + "   (&: overlap)")
    return "\n".join(lines)
