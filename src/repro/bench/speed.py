"""Wall-clock speed benchmark: how fast the *simulator itself* runs.

Every other benchmark in this package reports virtual time — the
simulated device/CPU cost model — which is deterministic and invariant
across hosts. This module measures the opposite axis: real host seconds
per simulated fillrandom run, i.e. the simulator's own efficiency. It
backs the ``speed`` CLI target and the CI ``speed-gate`` step.

Protocol: build a fresh store and run fillrandom ``warmup + repeats``
times; the warm-up runs (imports, code caches, the block decode cache's
first population) are discarded and the headline number is the *median*
ops/sec of the measured runs — the median resists one-off scheduler
noise better than the mean, and "best" is reported alongside for
reference.

The document schema is ``repro.speed/1`` and its headline metric
(``ops_per_sec``) is higher-is-better; :mod:`repro.bench.compare` gates
it with a deliberately generous threshold because wall-clock numbers
move with host hardware and interpreter version, unlike the
virtual-time metrics. Re-record with ``make refresh-speed-baseline``
on the gating machine after a deliberate change.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import ScaledConfig

SPEED_SCHEMA = "repro.speed/1"


@dataclass
class SpeedResult:
    """Wall-clock timings of one (store, workload) speed run."""

    store: str
    workload: str
    num_ops: int
    value_size: int
    num_channels: int
    background_threads: int
    #: measured host seconds per run, warm-up excluded
    wall_seconds: List[float] = field(default_factory=list)
    #: discarded warm-up timings, kept for the report only
    warmup_seconds: List[float] = field(default_factory=list)

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.wall_seconds) if self.wall_seconds else 0.0

    @property
    def best_seconds(self) -> float:
        return min(self.wall_seconds) if self.wall_seconds else 0.0

    @property
    def ops_per_sec(self) -> float:
        """The gated headline: simulated ops per host second (median run)."""
        median = self.median_seconds
        return self.num_ops / median if median > 0 else 0.0

    @property
    def best_ops_per_sec(self) -> float:
        best = self.best_seconds
        return self.num_ops / best if best > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "store": self.store,
            "workload": self.workload,
            "ops": self.num_ops,
            "value_size": self.value_size,
            "ops_per_sec": round(self.ops_per_sec, 1),
            "best_ops_per_sec": round(self.best_ops_per_sec, 1),
            "median_seconds": round(self.median_seconds, 4),
            "wall_seconds": [round(s, 4) for s in self.wall_seconds],
            "warmup_seconds": [round(s, 4) for s in self.warmup_seconds],
            "extras": {
                "num_channels": self.num_channels,
                "background_threads": self.background_threads,
            },
        }


def run_speed(
    store: str = "noblsm",
    scale: float = 2000.0,
    num_ops: int = 0,
    seed: int = 1234,
    repeats: int = 3,
    warmup: int = 1,
    num_channels: int = 1,
    background_threads: int = 1,
) -> SpeedResult:
    """Time ``warmup + repeats`` fillrandom runs; warm-ups are discarded.

    Observability stays off: the speed number measures the untraced hot
    path, the one the zero-overhead guarantee protects.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")

    def one_run() -> "tuple[float, int]":
        config = ScaledConfig(
            scale=scale,
            num_ops=num_ops,
            seed=seed,
            num_channels=num_channels,
            background_threads=background_threads,
        )
        start = time.perf_counter()
        bench, _, _ = run_fillrandom(store, config)
        return time.perf_counter() - start, bench.num_ops

    result = SpeedResult(
        store=store,
        workload="fillrandom",
        num_ops=0,
        value_size=ScaledConfig(scale=scale, num_ops=num_ops, seed=seed).value_size,
        num_channels=num_channels,
        background_threads=background_threads,
    )
    for _ in range(warmup):
        elapsed, ops = one_run()
        result.warmup_seconds.append(elapsed)
        result.num_ops = ops
    for _ in range(repeats):
        elapsed, ops = one_run()
        result.wall_seconds.append(elapsed)
        result.num_ops = ops
    return result


def speed_document(
    results: Sequence[SpeedResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Versioned ``repro.speed/1`` document (host info goes in meta)."""
    merged: Dict[str, object] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if meta:
        merged.update(meta)
    return {
        "schema": SPEED_SCHEMA,
        "meta": merged,
        "results": [r.to_dict() for r in results],
    }


def write_speed_json(
    path: str,
    results: Sequence[SpeedResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write ``speed_document`` to ``path``; returns the document."""
    doc = speed_document(results, meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def render_speed(results: Sequence[SpeedResult]) -> str:
    """Human summary, one line per speed run."""
    lines = ["simulator speed (wall clock, higher is better)"]
    for r in results:
        runs = ", ".join(f"{s:.3f}s" for s in r.wall_seconds)
        lines.append(
            f"{r.store}/{r.workload}: {r.num_ops} ops in "
            f"{r.median_seconds:.3f}s median -> {r.ops_per_sec:,.0f} ops/sec "
            f"(best {r.best_ops_per_sec:,.0f}; runs: {runs}; "
            f"{len(r.warmup_seconds)} warm-up discarded)"
        )
    return "\n".join(lines)
