"""Parallelism sweep: device channels x background compaction threads.

The paper's PM883 is a single-queue SATA device and NobLSM runs one
background thread — the seed's defaults. This sweep asks the NVMe-era
question: what happens when the device exposes several submission
channels (:class:`~repro.sim.ssd.SSD` multi-queue model) and the store
schedules non-conflicting major compactions onto several background
threads (:class:`~repro.lsm.compaction.CompactionSchedule`)?

Each sweep point runs compaction-bound ``fillrandom`` under one
``(num_channels, background_threads)`` pair and reports throughput,
put tail latency, writer stalls, and the background scheduler's queue
stall — the signal that shows *why* extra threads help (the compaction
backlog stops waiting for a free thread) and why threads without
channels do not (the jobs just fight over one device queue).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.bench.db_bench import run_fillrandom
from repro.bench.harness import BenchResult, ScaledConfig
from repro.bench.report import format_table

DEFAULT_SCALE = 2000.0
DEFAULT_CHANNELS = (1, 4)
DEFAULT_THREADS = (1, 2)


def sweep_points(
    channels: Sequence[int], threads: Sequence[int]
) -> List[Tuple[int, int]]:
    """The grid, baseline (1, 1) first so speedups are well-defined."""
    points = sorted(
        {(c, t) for c in channels for t in threads},
        key=lambda p: (p != (1, 1), p),
    )
    if (1, 1) not in points:
        points.insert(0, (1, 1))
    return points


def run_parallelism(
    store: str = "noblsm",
    scale: float = DEFAULT_SCALE,
    num_ops: int = 0,
    value_size: int = 1024,
    channels: Sequence[int] = DEFAULT_CHANNELS,
    threads: Sequence[int] = DEFAULT_THREADS,
    seed: int = 1234,
) -> List[BenchResult]:
    """Run the sweep; one observed fillrandom per grid point."""
    results: List[BenchResult] = []
    base_ns: Optional[int] = None
    for num_channels, background_threads in sweep_points(channels, threads):
        config = ScaledConfig(
            scale=scale,
            num_ops=num_ops,
            value_size=value_size,
            seed=seed,
            observe=True,
            num_channels=num_channels,
            background_threads=background_threads,
        )
        result, stack, db = run_fillrandom(store, config)
        if base_ns is None:
            base_ns = result.virtual_ns
        result.extras["num_channels"] = num_channels
        result.extras["background_threads"] = background_threads
        result.extras["bg_stall_ns"] = db.bg.stall_ns
        result.extras["bg_jobs"] = db.bg.jobs
        result.extras["speedup"] = (
            base_ns / result.virtual_ns if result.virtual_ns else 0.0
        )
        busy = stack.ssd.stats.channel_busy_ns
        if busy:
            result.extras["channel_busy_max_ns"] = max(busy)
            result.extras["channel_busy_min_ns"] = min(busy)
        results.append(result)
    return results


def render_parallelism(results: Sequence[BenchResult]) -> str:
    """Human table: one row per (channels, threads) point."""
    rows = []
    for result in results:
        p99 = result.latency_us.get("put", {}).get("p99", 0.0)
        rows.append(
            [
                int(result.extras["num_channels"]),
                int(result.extras["background_threads"]),
                round(result.us_per_op, 3),
                round(p99, 1),
                round(result.stall_ns / 1e6, 2),
                round(result.extras["bg_stall_ns"] / 1e6, 2),
                result.major_compactions,
                round(result.extras["speedup"], 2),
            ]
        )
    store = results[0].store if results else "?"
    return format_table(
        f"parallelism sweep: {store} fillrandom "
        "(channels x background threads)",
        [
            "channels",
            "threads",
            "us_per_op",
            "put_p99_us",
            "stall_ms",
            "bg_stall_ms",
            "majors",
            "speedup",
        ],
        rows,
    )
