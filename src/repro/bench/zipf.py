"""YCSB's request distributions: uniform, zipfian, scrambled, latest.

The zipfian generator is Gray et al.'s constant-time method, the same
one YCSB implements, with theta = 0.99. `ScrambledZipfian` spreads the
popular items over the whole keyspace via FNV hashing, and `Latest`
skews toward the most recently inserted records (workload D).
"""

from __future__ import annotations

import random

ZIPFIAN_CONSTANT = 0.99
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value``."""
    result = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        result ^= octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class Uniform:
    """Uniform over [0, count)."""

    def __init__(self, count: int, seed: int = 0) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.count)


class Zipfian:
    """Gray's zipfian generator (as used by YCSB), theta = 0.99."""

    def __init__(
        self,
        count: int,
        seed: int = 0,
        theta: float = ZIPFIAN_CONSTANT,
    ) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self.count = count
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(count)
        self._zeta2 = self._zeta(2)
        self._eta = self._compute_eta()

    def _zeta(self, n: int) -> float:
        return sum(1.0 / (i ** self.theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        # count == 2 makes the denominator zero (zeta(n) == zeta(2));
        # eta is unreachable there — next() always resolves in the
        # rank-0/rank-1 branches because u * zetan < zeta(2).
        denominator = 1 - self._zeta2 / self._zetan
        if denominator == 0.0:
            return 0.0
        return (1 - (2.0 / self.count) ** (1 - self.theta)) / denominator

    def set_count(self, count: int) -> None:
        """Re-target the distribution at ``count`` items.

        Growing the bound means the normalization constants must move
        with it: ``_zetan`` is the zeta sum over *all* ranks and
        ``_eta`` is derived from it, so leaving them at the old count
        silently keeps the old count's skew (the head ranks stay as
        popular as they were in the smaller keyspace — YCSB's own
        generator recomputes both). Growth extends ``_zetan``
        incrementally with just the new ranks' terms, which is exact:
        zeta(n) is a prefix sum. Shrinking (not used by YCSB) falls
        back to a full recompute.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if count == self.count:
            return
        if count > self.count:
            self._zetan += sum(
                1.0 / (i ** self.theta)
                for i in range(self.count + 1, count + 1)
            )
        else:
            self._zetan = self._zeta(count)
        self.count = count
        self._eta = self._compute_eta()

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.count * (self._eta * u - self._eta + 1) ** self._alpha
        )


class ScrambledZipfian:
    """Zipfian ranks scattered over the keyspace by FNV hashing (YCSB)."""

    def __init__(self, count: int, seed: int = 0) -> None:
        self.count = count
        self._zipf = Zipfian(count, seed)

    def next(self) -> int:
        return fnv64(self._zipf.next()) % self.count


class Latest:
    """Skewed toward the most recent insert (YCSB workload D)."""

    def __init__(self, count: int, seed: int = 0) -> None:
        self.count = count
        self._zipf = Zipfian(count, seed)

    def set_count(self, count: int) -> None:
        if count > self.count:
            self.count = count
            # YCSB re-targets the zipfian at the new max; ranks near
            # zero map to the newest items, and the zipfian renormalizes
            # its zeta constants for the wider rank space.
            self._zipf.set_count(count)

    def next(self) -> int:
        rank = self._zipf.next() % self.count
        return self.count - 1 - rank
