"""Key and value generation, mirroring LevelDB's db_bench."""

from __future__ import annotations

import random
from typing import Iterator, List


def make_key(index: int, key_size: int = 16) -> bytes:
    """db_bench-style key: zero-padded decimal, fixed width."""
    return f"{index:0{key_size}d}".encode()[:key_size]


class ValueGenerator:
    """Compressible-ish pseudo-random values, deterministic per seed.

    db_bench generates values from a recycled random pool; we keep a pool
    of fragments and stitch them, so value bytes differ between keys but
    generation stays cheap.
    """

    def __init__(self, value_size: int, seed: int = 99) -> None:
        if value_size <= 0:
            raise ValueError(f"value_size must be positive, got {value_size}")
        self.value_size = value_size
        rng = random.Random(seed)
        self._pool = [
            bytes(rng.randrange(32, 127) for _ in range(64)) for _ in range(32)
        ]
        # Stitching fragment i, i+1, ... cyclically equals slicing a
        # repeated pool concatenation at fragment i's offset, so the 32
        # possible unstamped values are precomputed once: ``next`` is a
        # table lookup plus the counter stamp instead of a per-call
        # stitch loop. Byte-for-byte identical to the loop it replaced.
        repeated = b"".join(self._pool) * (2 + value_size // (64 * 32))
        self._values = [
            repeated[start * 64 : start * 64 + value_size]
            for start in range(32)
        ]
        self._counter = 0

    def next(self) -> bytes:
        self._counter = counter = self._counter + 1
        value = self._values[counter & 31]
        # stamp the counter so every value is unique (overwrite checks)
        stamp = str(counter).encode()
        return stamp + value[len(stamp):]


def fillrandom_indices(num_ops: int, seed: int) -> Iterator[int]:
    """db_bench fillrandom: uniform keys over [0, num_ops)."""
    rng = random.Random(seed)
    for _ in range(num_ops):
        yield rng.randrange(num_ops)


def fillseq_indices(num_ops: int) -> Iterator[int]:
    return iter(range(num_ops))


def readrandom_indices(num_ops: int, key_space: int, seed: int) -> Iterator[int]:
    rng = random.Random(seed)
    for _ in range(num_ops):
        yield rng.randrange(key_space)
