"""Key and value generation, mirroring LevelDB's db_bench."""

from __future__ import annotations

import random
from typing import Iterator, List


def make_key(index: int, key_size: int = 16) -> bytes:
    """db_bench-style key: zero-padded decimal, fixed width."""
    return f"{index:0{key_size}d}".encode()[:key_size]


class ValueGenerator:
    """Compressible-ish pseudo-random values, deterministic per seed.

    db_bench generates values from a recycled random pool; we keep a pool
    of fragments and stitch them, so value bytes differ between keys but
    generation stays cheap.
    """

    def __init__(self, value_size: int, seed: int = 99) -> None:
        if value_size <= 0:
            raise ValueError(f"value_size must be positive, got {value_size}")
        self.value_size = value_size
        rng = random.Random(seed)
        self._pool = [
            bytes(rng.randrange(32, 127) for _ in range(64)) for _ in range(32)
        ]
        self._counter = 0

    def next(self) -> bytes:
        self._counter += 1
        parts: List[bytes] = []
        remaining = self.value_size
        index = self._counter
        while remaining > 0:
            fragment = self._pool[index % len(self._pool)]
            parts.append(fragment[: min(64, remaining)])
            remaining -= 64
            index += 1
        value = b"".join(parts)
        # stamp the counter so every value is unique (overwrite checks)
        stamp = str(self._counter).encode()
        return stamp + value[len(stamp):]


def fillrandom_indices(num_ops: int, seed: int) -> Iterator[int]:
    """db_bench fillrandom: uniform keys over [0, num_ops)."""
    rng = random.Random(seed)
    for _ in range(num_ops):
        yield rng.randrange(num_ops)


def fillseq_indices(num_ops: int) -> Iterator[int]:
    return iter(range(num_ops))


def readrandom_indices(num_ops: int, key_space: int, seed: int) -> Iterator[int]:
    rng = random.Random(seed)
    for _ in range(num_ops):
        yield rng.randrange(key_space)
