"""db_bench micro-benchmarks (paper Section 5.2).

The four workloads of Figure 4, each issuing ``num_ops`` requests with
16-byte keys and a configurable value size:

- ``fillrandom``  — random puts over a fresh store;
- ``overwrite``   — random puts over an already-filled store;
- ``readseq``     — one sequential iteration over every KV pair;
- ``readrandom``  — random point lookups.

Plus the rest of LevelDB's standard db_bench set (not in the paper's
figures, useful for regression comparisons):

- ``fillseq``      — sequential puts (compaction-light);
- ``readmissing``  — random lookups of absent keys (bloom-filter path);
- ``seekrandom``   — random iterator seeks;
- ``deleterandom`` — random deletes over a filled store.

Each run reports the average execution time per operation in virtual
microseconds, the metric the paper plots.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.harness import BenchResult, ScaledConfig, collect_result
from repro.bench.workloads import (
    ValueGenerator,
    fillrandom_indices,
    fillseq_indices,
    make_key,
    readrandom_indices,
)
from repro.fs.stack import StorageStack
from repro.lsm.db import DB


def _fill(db: DB, config: ScaledConfig, seed_offset: int, at: int) -> int:
    values = ValueGenerator(config.value_size, seed=config.seed + seed_offset)
    t = at
    for index in fillrandom_indices(config.num_ops, config.seed + seed_offset):
        t = db.put(make_key(index, config.key_size), values.next(), at=t)
    return t


def run_fillrandom(
    store_name: str, config: ScaledConfig
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random writes into a fresh store."""
    stack, db = config.build_store(store_name)
    start = stack.now
    end = _fill(db, config, seed_offset=0, at=start)
    result = collect_result(
        store_name, "fillrandom", config, stack, db, start, end, config.num_ops
    )
    return result, stack, db


def run_overwrite(
    store_name: str, config: ScaledConfig
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random updates over an existing data set (fill first, then measure)."""
    stack, db = config.build_store(store_name)
    t = _fill(db, config, seed_offset=0, at=stack.now)
    t = db.wait_for_background(t)
    stack.sync_stats.reset()
    stack.ssd.stats.reset()
    stack.obs.reset()
    db.stats.stall_ns = 0
    start = t
    end = _fill(db, config, seed_offset=1, at=start)
    result = collect_result(
        store_name, "overwrite", config, stack, db, start, end, config.num_ops
    )
    return result, stack, db


def run_readseq(
    store_name: str,
    config: ScaledConfig,
    prepared: Optional[Tuple[StorageStack, DB, int]] = None,
) -> Tuple[BenchResult, StorageStack, DB]:
    """Sequential iteration over all pairs (after a fill)."""
    if prepared is None:
        stack, db = config.build_store(store_name)
        t = _fill(db, config, seed_offset=0, at=stack.now)
        t = db.wait_for_background(t)
    else:
        stack, db, t = prepared
    start = t
    iterator = db.iterate(at=start)
    count = 0
    while iterator.valid:
        count += 1
        iterator.next()
    end = max(iterator.time, start)
    result = collect_result(
        store_name, "readseq", config, stack, db, start, end, max(count, 1)
    )
    return result, stack, db


def run_readrandom(
    store_name: str,
    config: ScaledConfig,
    prepared: Optional[Tuple[StorageStack, DB, int]] = None,
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random point lookups (after a fill)."""
    if prepared is None:
        stack, db = config.build_store(store_name)
        t = _fill(db, config, seed_offset=0, at=stack.now)
        t = db.wait_for_background(t)
    else:
        stack, db, t = prepared
    start = t
    num_reads = config.num_ops
    for index in readrandom_indices(num_reads, config.num_ops, config.seed + 7):
        _, t = db.get(make_key(index, config.key_size), at=t)
    end = t
    result = collect_result(
        store_name, "readrandom", config, stack, db, start, end, num_reads
    )
    return result, stack, db


def run_fillseq(
    store_name: str, config: ScaledConfig
) -> Tuple[BenchResult, StorageStack, DB]:
    """Sequential writes into a fresh store (minimal compaction churn)."""
    stack, db = config.build_store(store_name)
    values = ValueGenerator(config.value_size, seed=config.seed)
    start = stack.now
    t = start
    for index in fillseq_indices(config.num_ops):
        t = db.put(make_key(index, config.key_size), values.next(), at=t)
    result = collect_result(
        store_name, "fillseq", config, stack, db, start, t, config.num_ops
    )
    return result, stack, db


def run_readmissing(
    store_name: str,
    config: ScaledConfig,
    prepared: Optional[Tuple[StorageStack, DB, int]] = None,
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random lookups of keys that were never written (bloom-filter path)."""
    if prepared is None:
        stack, db = config.build_store(store_name)
        t = _fill(db, config, seed_offset=0, at=stack.now)
        t = db.wait_for_background(t)
    else:
        stack, db, t = prepared
    start = t
    for index in readrandom_indices(config.num_ops, config.num_ops, config.seed + 11):
        missing = b"@" + make_key(index, config.key_size - 1)
        _, t = db.get(missing, at=t)
    result = collect_result(
        store_name, "readmissing", config, stack, db, start, t, config.num_ops
    )
    return result, stack, db


def run_seekrandom(
    store_name: str,
    config: ScaledConfig,
    prepared: Optional[Tuple[StorageStack, DB, int]] = None,
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random iterator seeks (positions + reads one entry)."""
    if prepared is None:
        stack, db = config.build_store(store_name)
        t = _fill(db, config, seed_offset=0, at=stack.now)
        t = db.wait_for_background(t)
    else:
        stack, db, t = prepared
    start = t
    num_seeks = max(config.num_ops // 10, 100)
    for index in readrandom_indices(num_seeks, config.num_ops, config.seed + 13):
        pairs, t = db.scan(make_key(index, config.key_size), 1, at=t)
    result = collect_result(
        store_name, "seekrandom", config, stack, db, start, t, num_seeks
    )
    return result, stack, db


def run_deleterandom(
    store_name: str, config: ScaledConfig
) -> Tuple[BenchResult, StorageStack, DB]:
    """Random deletes over a filled store."""
    stack, db = config.build_store(store_name)
    t = _fill(db, config, seed_offset=0, at=stack.now)
    t = db.wait_for_background(t)
    stack.sync_stats.reset()
    stack.ssd.stats.reset()
    stack.obs.reset()
    start = t
    for index in readrandom_indices(config.num_ops, config.num_ops, config.seed + 17):
        t = db.delete(make_key(index, config.key_size), at=t)
    result = collect_result(
        store_name, "deleterandom", config, stack, db, start, t, config.num_ops
    )
    return result, stack, db


WORKLOADS = {
    "fillrandom": run_fillrandom,
    "overwrite": run_overwrite,
    "readseq": run_readseq,
    "readrandom": run_readrandom,
    "fillseq": run_fillseq,
    "readmissing": run_readmissing,
    "seekrandom": run_seekrandom,
    "deleterandom": run_deleterandom,
}


def run_workload(
    workload: str, store_name: str, config: ScaledConfig
) -> BenchResult:
    """Run one db_bench workload; returns its result record."""
    try:
        runner = WORKLOADS[workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValueError(f"unknown workload {workload!r}; known: {known}") from None
    result, _, _ = runner(store_name, config)
    return result


def run_matrix(
    stores: "list[str]",
    workloads: "list[str]",
    config: ScaledConfig,
) -> Dict[Tuple[str, str], BenchResult]:
    """Full (store x workload) sweep with a shared fill for read workloads."""
    results: Dict[Tuple[str, str], BenchResult] = {}
    for store_name in stores:
        prepared = None
        for workload in workloads:
            if workload in ("readseq", "readrandom"):
                if prepared is None:
                    stack, db = config.build_store(store_name)
                    t = _fill(db, config, seed_offset=0, at=stack.now)
                    t = db.wait_for_background(t)
                    prepared = (stack, db, t)
                runner = WORKLOADS[workload]
                result, stack, db = runner(store_name, config, prepared=prepared)
                # the next read workload starts where this one finished
                prepared = (stack, db, prepared[2] + result.virtual_ns)
            else:
                result = run_workload(workload, store_name, config)
            results[(store_name, workload)] = result
    return results
