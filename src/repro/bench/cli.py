"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.bench fig2a
    python -m repro.bench fig2b  [--scale 500]
    python -m repro.bench fig4a  [--scale 500] [--stores leveldb,noblsm]
    python -m repro.bench fig4b | fig4c | fig4d
    python -m repro.bench table1 [--scale 500]
    python -m repro.bench fig5a  [--scale 2000]
    python -m repro.bench fig5b  [--scale 2000]
    python -m repro.bench all
    python -m repro.bench crash-matrix [--points 120] [--seed 0]
                                       [--num 240] [--modes noblsm,sync]
    python -m repro.bench parallelism  [--scale 2000] [--stores noblsm]
                                       [--channels 1,4] [--threads 1,2]
    python -m repro.bench fillrandom   [--observe] [--trace-out t.json]
                                       [--scale 2000] [--stores noblsm]
    python -m repro.bench speed        [--repeats 3] [--warmup 1]
                                       [--scale 2000] [--stores noblsm]
    python -m repro.bench soak         [--rate 40000] [--duration 0.75]
                                       [--window-ms 25] [--stores noblsm]
    python -m repro.bench serve        [--shards 4] [--tenants 6]
                                       [--rate 90000] [--duration 0.3]
                                       [--mode open] [--max-queue 32]
    python -m repro.bench amplification [--scale 2000] [--num 0]
                                       [--stores noblsm,noblsm-kv]
                                       [--value-sizes 1024,4096]
                                       [--value-threshold 1024]
    python -m repro.bench slo           [--scenario serve|soak]
                                       [--interval-ms 5] [--gate]
                                       [--latency-slo-us 100]
                                       [--rate 90000] [--duration 0.3]
    python -m repro.bench compare BASELINE.json CURRENT.json
                                       [--thresholds us_per_op=0.1,...]
                                       [--json DIR]

``crash-matrix`` is the durability sweep, not a figure: it exits
non-zero if any crash point violates a durability invariant, so CI can
gate on it. ``parallelism`` sweeps device channels x background
compaction threads over compaction-bound fillrandom. ``fillrandom``
runs one store once, optionally with observability (``--observe``) and
causal tracing (``--trace-out`` writes a Perfetto-loadable Chrome
trace and prints the critical-path attribution table). ``speed`` times
the *simulator itself* — fillrandom run ``--repeats`` times with
``--warmup`` discarded runs, reported as wall-clock ops/sec
(``repro.speed/1``). ``soak`` runs the long-horizon stability pair —
an open-loop Poisson workload measured in windowed p50/p99/p99.9, once
with stock options and once with the rate limiter + dynamic slowdown —
and prints ascii timelines (``repro.soak/1``). ``serve`` runs the
sharded multi-tenant serving pair — N store shards behind the
deterministic router with tenant-affine placement, hot-tenant zipf
skew, a diurnal open-loop arrival curve, and per-shard admission
control — once untuned and once fair-scheduled, reporting per-tenant
and per-shard p50/p99/p99.9, the fairness ratio, and shed/queued
counts (``repro.serve/1``). ``amplification`` sweeps write/read/space
amplification over a large-value fillrandom grid, noblsm against the
key-value-separated noblsm-kv (``repro.amplification/1``). ``slo`` runs
the serve (or soak) pair with continuous telemetry attached — a
virtual-time sampler scraping counters, gauges, windowed percentiles,
and health probes at a fixed interval, with latency/availability SLO
monitors firing multi-window burn-rate alerts — and prints the ASCII
flight-recorder dashboard; ``--gate`` exits non-zero unless the untuned
run fires a fast-burn alert while the tuned twin fires none
(``repro.slo/1`` plus per-variant ``repro.timeseries/1``). ``compare``
diffs two ``repro.bench/1`` / ``repro.speed/1`` / ``repro.soak/1`` /
``repro.serve/1`` / ``repro.amplification/1`` / ``repro.slo/1`` JSONs
and exits non-zero on a regression — the CI perf gate; ``--json``
additionally writes the machine-readable ``repro.compare/1`` report.
``all`` regenerates the figures only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.bench import figures

_FIG4 = {
    "fig4a": "fillrandom",
    "fig4b": "overwrite",
    "fig4c": "readseq",
    "fig4d": "readrandom",
}


def _render(
    target: str,
    scale: Optional[float],
    stores: Optional[List[str]],
    chart: bool = False,
) -> str:
    kwargs = {}
    if stores:
        kwargs["stores"] = stores
    if target == "fig2a":
        return figures.render_fig2a()
    if target == "fig2b":
        return figures.render_fig2b(scale or figures.DEFAULT_SCALE)
    if target in _FIG4:
        workload = _FIG4[target]
        if chart:
            from repro.bench.ascii_plot import line_series

            series = figures.fig4(
                workload, scale=scale or figures.DEFAULT_SCALE, **kwargs
            )
            sizes = sorted(next(iter(series.values())))
            return line_series(
                f"Figure {target[-2:]}: {workload}",
                sizes,
                series,
                x_label="value size (B)",
                unit="us/op",
                log=workload in ("fillrandom", "overwrite"),
            )
        return figures.render_fig4(
            workload, scale=scale or figures.DEFAULT_SCALE, **kwargs
        )
    if target == "table1":
        return figures.render_table1(scale or figures.DEFAULT_SCALE)
    if target in ("fig5a", "fig5b"):
        threads = 1 if target == "fig5a" else 4
        if chart:
            from repro.bench.ascii_plot import grouped_bars
            from repro.bench.ycsb import PAPER_ORDER

            series = figures.fig5(threads, scale=scale or 2000.0, **kwargs)
            phases = [p for p in PAPER_ORDER if p in next(iter(series.values()))]
            return grouped_bars(
                f"Figure {target[-2:]}: YCSB, {threads} thread(s)",
                phases,
                series,
                unit="us/op",
            )
        return figures.render_fig5(threads, scale=scale or 2000.0, **kwargs)
    raise ValueError(f"unknown target {target!r}")


def _payload(
    target: str,
    scale: Optional[float],
    stores: Optional[List[str]],
) -> Dict[str, object]:
    """Machine-readable data for one target (recomputes the figure)."""
    kwargs = {}
    if stores:
        kwargs["stores"] = stores

    def series_doc(series, x_label):
        return {
            x_label: {
                store: {str(x): v for x, v in points.items()}
                for store, points in series.items()
            }
        }

    doc: Dict[str, object] = {"schema": "repro.figure/1", "figure": target}
    if target == "fig2a":
        doc.update(series_doc(figures.fig2a(), "series"))
    elif target == "fig2b":
        data = figures.fig2b(scale or figures.DEFAULT_SCALE)
        doc["points"] = {k: round(v, 3) for k, v in data.items()}
    elif target in _FIG4:
        series = figures.fig4(
            _FIG4[target], scale=scale or figures.DEFAULT_SCALE, **kwargs
        )
        doc["workload"] = _FIG4[target]
        doc.update(series_doc(series, "series"))
    elif target == "table1":
        data = figures.table1(scale=scale or figures.DEFAULT_SCALE, **kwargs)
        doc["stores"] = {
            store: {"syncs": syncs, "gb_equiv": round(gb, 3)}
            for store, (syncs, gb) in data.items()
        }
    elif target in ("fig5a", "fig5b"):
        threads = 1 if target == "fig5a" else 4
        series = figures.fig5(threads, scale=scale or 2000.0, **kwargs)
        doc["threads"] = threads
        doc.update(series_doc(series, "series"))
    else:
        raise ValueError(f"unknown target {target!r}")
    return doc


ALL_TARGETS = ["fig2a", "fig2b", "fig4a", "fig4b", "fig4c", "fig4d",
               "table1", "fig5a", "fig5b"]


def _run_crash_matrix(args) -> int:
    """The ``crash-matrix`` target: sweep crash points, gate on violations."""
    from repro.crashtest import (
        CrashMatrixConfig,
        matrix_payload,
        render_matrix,
        run_crash_matrix,
    )

    modes = args.modes.split(",") if args.modes else ["noblsm", "sync"]
    reports = []
    for mode in modes:
        config = CrashMatrixConfig(
            mode=mode,
            points=args.points,
            seed=args.seed,
            num_ops=args.num,
            background_threads=args.bg_threads,
        )
        reports.append(run_crash_matrix(config))
    print(render_matrix(reports))
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "crash-matrix.json")
        with open(path, "w") as fh:
            json.dump(matrix_payload(reports), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {path}")
    return 0 if not any(r.violations for r in reports) else 1


def _run_parallelism(args) -> int:
    """The ``parallelism`` target: channels x threads sweep + JSON."""
    from repro.bench.parallelism import (
        DEFAULT_CHANNELS,
        DEFAULT_SCALE,
        DEFAULT_THREADS,
        render_parallelism,
        run_parallelism,
    )
    from repro.bench.report import write_results_json

    channels = (
        [int(c) for c in args.channels.split(",")]
        if args.channels
        else list(DEFAULT_CHANNELS)
    )
    threads = (
        [int(t) for t in args.threads.split(",")]
        if args.threads
        else list(DEFAULT_THREADS)
    )
    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or DEFAULT_SCALE
    results = run_parallelism(
        store=store,
        scale=scale,
        num_ops=args.num if args.num != 240 else 0,
        channels=channels,
        threads=threads,
        seed=args.seed if args.seed else 1234,
    )
    print(render_parallelism(results))
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "parallelism.json")
        write_results_json(
            path,
            results,
            meta={
                "target": "parallelism",
                "store": store,
                "scale": scale,
                "channels": channels,
                "threads": threads,
            },
        )
        print(f"\nwrote {path}")
    return 0


def _run_fillrandom(args) -> int:
    """The ``fillrandom`` target: one store, optional trace + JSON."""
    import time

    from repro.bench.db_bench import run_fillrandom
    from repro.bench.harness import ScaledConfig
    from repro.bench.report import (
        format_breakdown_table,
        format_latency_table,
        write_results_json,
    )
    from repro.obs.critical_path import analyze_write_path, render_critical_path
    from repro.obs.trace import write_chrome_trace

    trace = args.trace_out is not None
    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or 2000.0
    seed = args.seed if args.seed else 1234
    channels = int(args.channels.split(",")[0]) if args.channels else 1
    threads = int(args.threads.split(",")[0]) if args.threads else 1
    config = ScaledConfig(
        scale=scale,
        num_ops=args.num if args.num != 240 else 0,
        seed=seed,
        observe=args.observe or trace,
        trace=trace,
        num_channels=channels,
        background_threads=threads,
    )
    wall_start = time.perf_counter()
    result, stack, db = run_fillrandom(store, config)
    result.wall_seconds = time.perf_counter() - wall_start
    print(
        f"fillrandom {store}: {result.num_ops} ops, "
        f"{result.us_per_op:.3f} us/op, {result.sync_calls} syncs, "
        f"{result.stall_ns / 1e6:.2f} ms stalled "
        f"[host: {result.wall_seconds:.3f}s, "
        f"{result.ops_per_sec_wall:,.0f} ops/sec real time]"
    )
    if stack.obs.enabled:
        print()
        print(format_latency_table([result]))
        print()
        print(format_breakdown_table([result]))
    if trace:
        report = analyze_write_path(stack.obs)
        print()
        print(render_critical_path(report, stack.obs))
        doc = write_chrome_trace(
            args.trace_out,
            stack.obs.tracer,
            meta={
                "target": "fillrandom",
                "store": store,
                "scale": scale,
                "seed": seed,
                "num_ops": result.num_ops,
                "device": stack.ssd.profile.describe(),
            },
        )
        print(
            f"\nwrote {args.trace_out} "
            f"({len(doc['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "fillrandom.json")
        write_results_json(
            path,
            [result],
            meta={
                "target": "fillrandom",
                "store": store,
                "scale": scale,
                "seed": seed,
            },
        )
        print(f"\nwrote {path}")
    return 0


def _run_speed(args) -> int:
    """The ``speed`` target: wall-clock simulator throughput + JSON."""
    from repro.bench.speed import render_speed, run_speed, write_speed_json

    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or 2000.0
    channels = int(args.channels.split(",")[0]) if args.channels else 1
    threads = int(args.threads.split(",")[0]) if args.threads else 1
    result = run_speed(
        store=store,
        scale=scale,
        num_ops=args.num if args.num != 240 else 0,
        seed=args.seed if args.seed else 1234,
        repeats=args.repeats,
        warmup=args.warmup,
        num_channels=channels,
        background_threads=threads,
    )
    print(render_speed([result]))
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "speed.json")
        write_speed_json(
            path,
            [result],
            meta={
                "target": "speed",
                "store": store,
                "scale": scale,
                "repeats": args.repeats,
                "warmup": args.warmup,
            },
        )
        print(f"\nwrote {path}")
    return 0


def _run_soak(args) -> int:
    """The ``soak`` target: untuned + tuned stability pair, JSON + timeline."""
    from repro.bench.soak import (
        SoakConfig,
        render_soak,
        run_soak_pair,
        write_soak_json,
    )

    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or 2000.0
    seed = args.seed if args.seed else 1234
    channels = int(args.channels.split(",")[0]) if args.channels else 1
    threads = int(args.threads.split(",")[0]) if args.threads else 1
    config = SoakConfig(
        store=store,
        scale=scale,
        seed=seed,
        arrival_rate=args.rate if args.rate is not None else 40_000.0,
        duration_s=args.duration if args.duration is not None else 0.75,
        window_ms=args.window_ms,
        num_channels=channels,
        background_threads=threads,
    )
    results = run_soak_pair(config)
    rendered = render_soak(results)
    print(rendered)
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "soak.json")
        write_soak_json(
            path,
            results,
            meta={
                "target": "soak",
                "store": store,
                "scale": scale,
                "seed": seed,
                "arrival_rate": args.rate,
                "duration_s": args.duration,
                "window_ms": args.window_ms,
            },
        )
        timeline = os.path.join(args.json, "soak-timeline.txt")
        with open(timeline, "w") as fh:
            fh.write(rendered + "\n")
        print(f"\nwrote {path} and {timeline}")
    return 0


def _run_serve(args) -> int:
    """The ``serve`` target: untuned + fair cluster pair, JSON + timeline."""
    from repro.serve import (
        ServeConfig,
        render_serve,
        run_serve_pair,
        write_serve_json,
    )

    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or 2000.0
    seed = args.seed if args.seed else 1234
    channels = int(args.channels.split(",")[0]) if args.channels else 1
    threads = int(args.threads.split(",")[0]) if args.threads else 1
    config = ServeConfig(
        store=store,
        num_shards=args.shards,
        num_tenants=args.tenants,
        scale=scale,
        seed=seed,
        arrival_rate=args.rate if args.rate is not None else 90_000.0,
        duration_s=args.duration if args.duration is not None else 0.3,
        window_ms=args.window_ms,
        diurnal_amplitude=args.amplitude,
        spread=args.spread,
        max_queue=args.max_queue,
        mode=args.mode,
        num_channels=channels,
        background_threads=threads,
    )
    results = run_serve_pair(config)
    rendered = render_serve(results)
    print(rendered)
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "serve.json")
        write_serve_json(
            path,
            results,
            meta={
                "target": "serve",
                "store": store,
                "scale": scale,
                "seed": seed,
                "shards": config.num_shards,
                "tenants": config.num_tenants,
                "arrival_rate": config.arrival_rate,
                "duration_s": config.duration_s,
                "window_ms": args.window_ms,
                "mode": config.mode,
            },
        )
        timeline = os.path.join(args.json, "serve-timeline.txt")
        with open(timeline, "w") as fh:
            fh.write(rendered + "\n")
        print(f"\nwrote {path} and {timeline}")
    return 0


def _run_amplification(args) -> int:
    """The ``amplification`` target: noblsm vs noblsm-kv WA/RA/SA sweep."""
    from repro.bench.amplification import (
        DEFAULT_SCALE,
        DEFAULT_STORES,
        DEFAULT_VALUE_SIZES,
        DEFAULT_VALUE_THRESHOLD,
        amplification_document,
        render_amplification,
        run_amplification_sweep,
    )

    stores = args.stores.split(",") if args.stores else list(DEFAULT_STORES)
    value_sizes = (
        [int(v) for v in args.value_sizes.split(",")]
        if args.value_sizes
        else list(DEFAULT_VALUE_SIZES)
    )
    scale = args.scale or DEFAULT_SCALE
    threshold = (
        args.value_threshold
        if args.value_threshold is not None
        else DEFAULT_VALUE_THRESHOLD
    )
    seed = args.seed if args.seed else 1234
    rows = run_amplification_sweep(
        stores=stores,
        value_sizes=value_sizes,
        scale=scale,
        num_ops=args.num if args.num != 240 else 0,
        value_threshold=threshold,
        seed=seed,
    )
    print(render_amplification(rows))
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "amplification.json")
        doc = amplification_document(
            rows,
            meta={
                "target": "amplification",
                "stores": stores,
                "value_sizes": value_sizes,
                "scale": scale,
                "value_threshold": threshold,
                "seed": seed,
            },
        )
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {path}")
    return 0


def _run_slo(args) -> int:
    """The ``slo`` target: telemetry-on pair, dashboard, alert gate."""
    from repro.bench.slo import (
        SloConfig,
        check_discrimination,
        render_slo,
        run_slo,
        write_slo_json,
        write_timeseries_json,
    )
    from repro.bench.soak import SoakConfig
    from repro.serve.bench import ServeConfig

    store = args.stores.split(",")[0] if args.stores else "noblsm"
    scale = args.scale or 2000.0
    seed = args.seed if args.seed else 1234
    config = SloConfig(
        scenario=args.scenario,
        interval_ms=args.interval_ms,
        latency_threshold_us=args.latency_slo_us,
        serve=ServeConfig(
            store=store,
            num_shards=args.shards,
            num_tenants=args.tenants,
            scale=scale,
            seed=seed,
            arrival_rate=args.rate if args.rate is not None else 90_000.0,
            duration_s=args.duration if args.duration is not None else 0.3,
            window_ms=args.window_ms,
            diurnal_amplitude=args.amplitude,
            spread=args.spread,
            max_queue=args.max_queue,
        ),
        soak=SoakConfig(
            store=store,
            scale=scale,
            seed=seed,
            arrival_rate=args.rate if args.rate is not None else 40_000.0,
            duration_s=args.duration if args.duration is not None else 0.75,
            window_ms=args.window_ms,
        ),
    )
    results = run_slo(config)
    rendered = render_slo(results)
    print(rendered)
    meta = {
        "target": "slo",
        "scenario": config.scenario,
        "store": store,
        "scale": scale,
        "seed": seed,
        "interval_ms": args.interval_ms,
        "latency_slo_us": args.latency_slo_us,
        "window_ms": args.window_ms,
    }
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "slo.json")
        write_slo_json(path, results, meta)
        written = [path]
        for result in results:
            ts_path = os.path.join(
                args.json, f"timeseries-{result.workload}.json"
            )
            write_timeseries_json(
                ts_path, result, dict(meta, workload=result.workload)
            )
            written.append(ts_path)
        dashboard = os.path.join(args.json, "slo-dashboard.txt")
        with open(dashboard, "w") as fh:
            fh.write(rendered + "\n")
        written.append(dashboard)
        print(f"\nwrote {', '.join(written)}")
    if args.gate:
        problems = check_discrimination(results)
        return 0 if not problems else 1
    return 0


def _run_compare(args) -> int:
    """The ``compare`` target: perf gate over two repro.bench/1 files."""
    from repro.bench.compare import (
        compare_documents,
        parse_thresholds,
        render_compare,
        report_payload,
    )

    if len(args.paths) != 2:
        print(
            "usage: python -m repro.bench compare BASELINE.json CURRENT.json",
            file=sys.stderr,
        )
        return 2
    base_path, cur_path = args.paths
    with open(base_path) as fh:
        base_doc = json.load(fh)
    with open(cur_path) as fh:
        cur_doc = json.load(fh)
    report = compare_documents(
        base_doc, cur_doc, thresholds=parse_thresholds(args.thresholds)
    )
    print(render_compare(report))
    if args.json:
        os.makedirs(args.json, exist_ok=True)
        path = os.path.join(args.json, "compare.json")
        with open(path, "w") as fh:
            json.dump(report_payload(report), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {path}")
    return 0 if report.passed else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the NobLSM paper's tables and figures.",
    )
    parser.add_argument(
        "target",
        choices=ALL_TARGETS
        + ["all", "crash-matrix", "parallelism", "fillrandom", "speed",
           "soak", "serve", "amplification", "slo", "compare"],
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="compare: BASELINE.json CURRENT.json",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="scale factor (paper setup / N); default per target",
    )
    parser.add_argument(
        "--stores",
        type=str,
        default=None,
        help="comma-separated store subset (default: the paper's seven)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render an ASCII chart instead of a table (fig4*/fig5*)",
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="also write <DIR>/<target>.json machine-readable payloads "
             "(reruns each target)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=120,
        help="crash-matrix: injection-point budget per mode (default 120)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="crash-matrix: workload / point-selection seed (default 0)",
    )
    parser.add_argument(
        "--num",
        type=int,
        default=240,
        help="crash-matrix: operations per workload (default 240)",
    )
    parser.add_argument(
        "--modes",
        type=str,
        default=None,
        help="crash-matrix: comma-separated modes (default noblsm,sync)",
    )
    parser.add_argument(
        "--bg-threads",
        type=int,
        default=1,
        help="crash-matrix: background compaction threads (default 1)",
    )
    parser.add_argument(
        "--channels",
        type=str,
        default=None,
        help="parallelism: comma-separated device channel counts "
             "(default 1,4)",
    )
    parser.add_argument(
        "--threads",
        type=str,
        default=None,
        help="parallelism: comma-separated background thread counts "
             "(default 1,2)",
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help="fillrandom: wire a MetricRegistry through the stack",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="fillrandom: write a Chrome trace-event JSON (implies "
             "--observe) and print the critical-path table",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="speed: measured fillrandom runs (default 3)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=1,
        help="speed: discarded warm-up runs before measuring (default 1)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="soak/serve: open-loop arrival rate, ops per virtual second "
             "(default 40000 soak, 90000 serve)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="soak/serve: horizon in virtual seconds "
             "(default 0.75 soak, 0.3 serve)",
    )
    parser.add_argument(
        "--window-ms",
        type=float,
        default=25.0,
        help="soak: percentile window width in virtual ms (default 25)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="serve: independent store shards (default 4)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=6,
        help="serve: tenants sharing the cluster (default 6)",
    )
    parser.add_argument(
        "--mode",
        choices=["open", "closed"],
        default="open",
        help="serve: open-loop arrivals or closed-loop clients "
             "(default open)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        help="serve: per-shard admission queue bound, 0 disables "
             "admission control (default 32)",
    )
    parser.add_argument(
        "--spread",
        type=int,
        default=1,
        help="serve: shards per tenant home group; 1 = tenant-affine "
             "placement (default 1)",
    )
    parser.add_argument(
        "--amplitude",
        type=float,
        default=0.4,
        help="serve: diurnal rate modulation depth in [0, 1) "
             "(default 0.4)",
    )
    parser.add_argument(
        "--value-sizes",
        type=str,
        default=None,
        help="amplification: comma-separated value sizes in bytes "
             "(default 1024,4096)",
    )
    parser.add_argument(
        "--value-threshold",
        type=int,
        default=None,
        help="amplification: kv separation threshold in bytes, applied "
             "to *-kv stores only (default 1024)",
    )
    parser.add_argument(
        "--scenario",
        choices=["serve", "soak"],
        default="serve",
        help="slo: which benchmark pair to fly the recorder on "
             "(default serve)",
    )
    parser.add_argument(
        "--interval-ms",
        type=float,
        default=5.0,
        help="slo: virtual sampling interval in ms (default 5)",
    )
    parser.add_argument(
        "--latency-slo-us",
        type=float,
        default=100.0,
        help="slo: latency objective threshold in us — keep it on a "
             "1-2-5 histogram bucket bound for exact good/bad counting "
             "(default 100)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="slo: exit non-zero unless the untuned run fires a "
             "fast-burn alert and the tuned run fires none",
    )
    parser.add_argument(
        "--thresholds",
        type=str,
        default=None,
        help="compare: per-metric threshold overrides, e.g. "
             "us_per_op=0.1,stall_ns=0.5",
    )
    args = parser.parse_args(argv)
    if args.target == "crash-matrix":
        return _run_crash_matrix(args)
    if args.target == "parallelism":
        return _run_parallelism(args)
    if args.target == "fillrandom":
        return _run_fillrandom(args)
    if args.target == "speed":
        return _run_speed(args)
    if args.target == "soak":
        return _run_soak(args)
    if args.target == "serve":
        return _run_serve(args)
    if args.target == "amplification":
        return _run_amplification(args)
    if args.target == "slo":
        return _run_slo(args)
    if args.target == "compare":
        return _run_compare(args)
    stores = args.stores.split(",") if args.stores else None
    targets = ALL_TARGETS if args.target == "all" else [args.target]
    for target in targets:
        print(_render(target, args.scale, stores, chart=args.chart))
        print()
        if args.json:
            os.makedirs(args.json, exist_ok=True)
            path = os.path.join(args.json, f"{target}.json")
            with open(path, "w") as fh:
                json.dump(
                    _payload(target, args.scale, stores),
                    fh, indent=2, sort_keys=True,
                )
                fh.write("\n")
            print(f"wrote {path}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
