"""Long-horizon soak benchmark: windowed tails under sustained load.

"On Performance Stability in LSM-based Storage Systems" (Luo & Carey)
argues that run-wide averages hide the failure mode that matters for
LSM-trees: bursty compaction debt produces minutes-long windows where
p99.9 is orders of magnitude above steady state. This harness measures
exactly that. It drives an **open-loop** Poisson arrival process (ops
keep arriving whether or not the store is stalled, so queueing delay is
charged to latency instead of silently slowing the workload down) for a
long virtual horizon, and reports percentiles **per fixed window of
virtual time** rather than per run.

Each operation's latency is ``completion - arrival`` and is recorded in
the window of its *arrival* (via
:meth:`repro.obs.metrics.WindowedHistogram`), so an op delayed across a
window boundary is charged to the window whose load caused the delay.
Write stalls are captured from the ``lsm.write_stall`` spans the store
emits on every observed run, attributed to the window where the stall
began, and broken down by cause (l0_slowdown / memtable_full / l0_stop /
major_deferred).

The headline stability metrics (all lower is better):

- ``windowed_p999_us`` — the worst windowed p99.9: the spike a user hits;
- ``p999_ratio``       — worst windowed p99.9 / median windowed p99.9:
  how far the bad window sits above steady state (1.0 = perfectly flat);
- ``max_stall_ns``     — the single longest write stall;
- ``blocked_ns``       — total writer time not making progress
  (hard stalls + deliberate slowdown injections).

Documents use the versioned ``repro.soak/1`` schema and are gated by
:mod:`repro.bench.compare` exactly like the throughput baselines. The
``tuned`` variant enables the performance-stability machinery of this
package — the compaction rate limiter in fair mode
(:mod:`repro.lsm.ratelimit`) plus dynamic slowdown — and the soak gate
asserts it strictly improves the spike metrics over stock behaviour.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.baselines.registry import make_store
from repro.bench.harness import ScaledConfig
from repro.bench.workloads import ValueGenerator, make_key
from repro.sim.clock import to_micros

SOAK_SCHEMA = "repro.soak/1"

NS_PER_SEC = 1_000_000_000

#: stall causes in rendering order (matches the ``lsm.write_stall`` labels)
STALL_CAUSES = ("l0_slowdown", "memtable_full", "l0_stop", "major_deferred")


@dataclass
class SoakConfig:
    """One soak run: workload shape + stability tuning knobs."""

    store: str = "noblsm"
    scale: float = 2000.0
    seed: int = 1234
    value_size: int = 1024
    key_size: int = 16
    #: mean arrival rate of the open-loop Poisson process, ops per
    #: virtual second (pick ~50-60% of the store's closed-loop
    #: throughput so compaction debt builds into spike windows but the
    #: arrival queue stays finite)
    arrival_rate: float = 40_000.0
    #: soak horizon in virtual seconds
    duration_s: float = 0.75
    #: percentile window width in virtual milliseconds
    window_ms: float = 25.0
    num_channels: int = 1
    background_threads: int = 1
    # --- stability tuning (the "tuned" soak variant) ---
    compaction_rate_bytes_per_sec: int = 0
    compaction_rate_burst_bytes: int = 0
    compaction_rate_fair: bool = False
    dynamic_slowdown: bool = False

    @property
    def window_ns(self) -> int:
        return max(int(self.window_ms * 1_000_000), 1)

    @property
    def horizon_ns(self) -> int:
        return int(self.duration_s * NS_PER_SEC)

    @property
    def expected_ops(self) -> int:
        return max(int(self.arrival_rate * self.duration_s), 1)

    @property
    def tuned(self) -> bool:
        return (
            self.compaction_rate_bytes_per_sec > 0 or self.dynamic_slowdown
        )

    @property
    def variant(self) -> str:
        return "soak-tuned" if self.tuned else "soak"


def tuned_variant(config: SoakConfig) -> SoakConfig:
    """The stability-tuned twin of ``config`` (same workload, same seed).

    The rate cap is sized relative to the workload: sustained user-data
    ingest is ``arrival_rate * (key + value)`` bytes/s and leveling
    write amplification multiplies that several-fold (~10x at this
    tree shape), so the cap is set at 14x ingest — enough budget to keep
    up with steady-state demand while holding back the deep-major
    bursts that produce the spike windows. Fair mode exempts L0->L1 drains
    (and picks them first under L0 pressure), and dynamic slowdown
    replaces the fixed 1 ms writer delay with a debt-scaled ramp.
    """
    ingest = int(
        config.arrival_rate * (config.key_size + config.value_size)
    )
    return replace(
        config,
        compaction_rate_bytes_per_sec=14 * ingest,
        # a shallow bucket (~100 ms of ingest) so deep-major *bursts*
        # are spread even though the average rate never binds
        compaction_rate_burst_bytes=ingest // 10,
        compaction_rate_fair=True,
        dynamic_slowdown=True,
    )


@dataclass
class SoakWindow:
    """Percentiles + stall accounting of one virtual-time window."""

    index: int
    ops: int
    p50_us: float
    p99_us: float
    p999_us: float
    max_us: float
    #: ns of write stall that *began* in this window, by cause
    stall_ns: Dict[str, int] = field(default_factory=dict)
    #: longest single stall beginning in this window
    max_stall_ns: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "ops": self.ops,
            "p50_us": round(self.p50_us, 3),
            "p99_us": round(self.p99_us, 3),
            "p999_us": round(self.p999_us, 3),
            "max_us": round(self.max_us, 3),
            "stall_ns": dict(self.stall_ns),
            "max_stall_ns": self.max_stall_ns,
        }


@dataclass
class SoakResult:
    """Outcome of one soak run (one row of the ``repro.soak/1`` gate)."""

    store: str
    workload: str  # "soak" or "soak-tuned"
    num_ops: int
    value_size: int
    num_channels: int
    background_threads: int
    arrival_rate: float
    duration_s: float
    window_ns: int
    virtual_ns: int = 0
    windows: List[SoakWindow] = field(default_factory=list)
    # headline stability metrics (lower is better)
    windowed_p999_us: float = 0.0  # worst windowed p99.9
    median_p999_us: float = 0.0  # median windowed p99.9
    p999_ratio: float = 0.0  # worst / median
    overall_p999_us: float = 0.0  # run-wide p99.9 for reference
    max_stall_ns: int = 0
    blocked_ns: int = 0
    stall_ns: int = 0
    slowdown_ns: int = 0
    l0_stop_abandoned: int = 0
    stall_cause_ns: Dict[str, int] = field(default_factory=dict)
    throttled_jobs: int = 0
    held_jobs: int = 0
    bypassed_jobs: int = 0
    wall_seconds: float = 0.0

    def row(self) -> Dict[str, object]:
        return {
            "store": self.store,
            "workload": self.workload,
            "ops": self.num_ops,
            "value_size": self.value_size,
            "windowed_p999_us": round(self.windowed_p999_us, 3),
            "median_p999_us": round(self.median_p999_us, 3),
            "p999_ratio": round(self.p999_ratio, 4),
            "max_stall_ns": self.max_stall_ns,
            "blocked_ns": self.blocked_ns,
        }

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.row())
        data.update(
            {
                "virtual_ns": self.virtual_ns,
                "overall_p999_us": round(self.overall_p999_us, 3),
                "stall_ns": self.stall_ns,
                "slowdown_ns": self.slowdown_ns,
                "l0_stop_abandoned": self.l0_stop_abandoned,
                "stall_cause_ns": dict(self.stall_cause_ns),
                "arrival_rate": self.arrival_rate,
                "duration_s": self.duration_s,
                "window_ns": self.window_ns,
                "extras": {
                    "num_channels": self.num_channels,
                    "background_threads": self.background_threads,
                    "throttled_jobs": self.throttled_jobs,
                    "held_jobs": self.held_jobs,
                    "bypassed_jobs": self.bypassed_jobs,
                },
                "windows": [w.to_dict() for w in self.windows],
            }
        )
        if self.wall_seconds > 0.0:
            data["host"] = {"wall_seconds": round(self.wall_seconds, 4)}
        return data


def run_soak(config: SoakConfig, telemetry=None) -> SoakResult:
    """Run one open-loop soak; returns its windowed stability record.

    ``telemetry`` is an optional continuous-telemetry rig (duck-typed;
    see :class:`repro.bench.slo.Telemetry`): ``on_stack(stack, db)``
    points its sampler at the soak stack's own registry, and
    ``advance(at)`` is driven to every arrival (relative to the run
    start, like the latency windows) so ticks fire deterministically
    between requests. The rig's clock is its own; the soak's virtual
    timeline and results are identical with or without it.
    """
    scaled = ScaledConfig(
        scale=config.scale,
        num_ops=config.expected_ops,
        value_size=config.value_size,
        key_size=config.key_size,
        seed=config.seed,
        observe=True,
        num_channels=config.num_channels,
        background_threads=config.background_threads,
    )
    stack = scaled.build_stack()
    options = scaled.build_options()
    options.compaction_rate_bytes_per_sec = config.compaction_rate_bytes_per_sec
    options.compaction_rate_burst_bytes = config.compaction_rate_burst_bytes
    options.compaction_rate_fair = config.compaction_rate_fair
    options.dynamic_slowdown = config.dynamic_slowdown
    db = make_store(config.store, stack, "db", options=options)
    if telemetry is not None:
        telemetry.on_stack(stack, db)

    start = stack.now
    window_ns = config.window_ns
    latency = stack.obs.windowed_histogram("soak.put_ns", window_ns)

    # stall attribution: every observed run emits cause-labelled
    # lsm.write_stall spans; charge each to the window where it began
    stall_by_window: Dict[int, Dict[str, int]] = {}
    max_stall_by_window: Dict[int, int] = {}
    stall_cause_ns: Dict[str, int] = {}
    max_stall = 0

    def on_span(span) -> None:
        nonlocal max_stall
        if span.name != "lsm.write_stall":
            return
        cause = str(span.attrs.get("cause", "unknown"))
        duration = span.duration_ns
        index = (span.start_ns - start) // window_ns
        per_window = stall_by_window.setdefault(index, {})
        per_window[cause] = per_window.get(cause, 0) + duration
        stall_cause_ns[cause] = stall_cause_ns.get(cause, 0) + duration
        if duration > max_stall_by_window.get(index, 0):
            max_stall_by_window[index] = duration
        if duration > max_stall:
            max_stall = duration

    stack.obs.add_span_listener(on_span)

    rng = random.Random(config.seed)
    values = ValueGenerator(config.value_size, seed=config.seed)
    keyspace = config.expected_ops
    horizon = config.horizon_ns
    arrival = start
    ops = 0
    last_done = start
    wall_start = time.perf_counter()
    while True:
        arrival += max(int(rng.expovariate(config.arrival_rate) * NS_PER_SEC), 1)
        if arrival - start >= horizon:
            break
        if telemetry is not None:
            telemetry.advance(arrival - start)
        key = make_key(rng.randrange(keyspace), config.key_size)
        done = db.put(key, values.next(), at=arrival)
        latency.record(arrival - start, done - arrival)
        last_done = done
        ops += 1
    if telemetry is not None:
        telemetry.finish(horizon)
    wall_seconds = time.perf_counter() - wall_start
    stack.obs.remove_span_listener(on_span)

    result = SoakResult(
        store=config.store,
        workload=config.variant,
        num_ops=ops,
        value_size=config.value_size,
        num_channels=config.num_channels,
        background_threads=config.background_threads,
        arrival_rate=config.arrival_rate,
        duration_s=config.duration_s,
        window_ns=window_ns,
        virtual_ns=max(last_done - start, 0),
        wall_seconds=wall_seconds,
    )
    for index in latency.window_indices():
        hist = latency.windows[index]
        result.windows.append(
            SoakWindow(
                index=index,
                ops=hist.count,
                p50_us=to_micros(hist.p50),
                p99_us=to_micros(hist.p99),
                p999_us=to_micros(hist.percentile(99.9)),
                max_us=to_micros(hist.max),
                stall_ns=stall_by_window.get(index, {}),
                max_stall_ns=max_stall_by_window.get(index, 0),
            )
        )
    result.windowed_p999_us = to_micros(latency.max_over_windows(99.9))
    result.median_p999_us = to_micros(latency.median_over_windows(99.9))
    result.p999_ratio = (
        result.windowed_p999_us / result.median_p999_us
        if result.median_p999_us > 0
        else 0.0
    )
    result.overall_p999_us = to_micros(latency.total.percentile(99.9))
    result.max_stall_ns = max_stall
    result.blocked_ns = db.stats.blocked_ns
    result.stall_ns = db.stats.stall_ns
    result.slowdown_ns = db.stats.slowdown_ns
    result.l0_stop_abandoned = db.stats.l0_stop_abandoned
    result.stall_cause_ns = stall_cause_ns
    limiter = getattr(db, "_ratelimiter", None)
    if limiter is not None:
        result.throttled_jobs = limiter.throttled_jobs
        result.held_jobs = limiter.held_jobs
        result.bypassed_jobs = limiter.bypassed_jobs
    return result


def run_soak_pair(config: SoakConfig) -> List[SoakResult]:
    """Run the untuned soak and its stability-tuned twin (same seed)."""
    untuned = replace(
        config,
        compaction_rate_bytes_per_sec=0,
        compaction_rate_burst_bytes=0,
        compaction_rate_fair=False,
        dynamic_slowdown=False,
    )
    return [run_soak(untuned), run_soak(tuned_variant(config))]


def soak_document(
    results: Sequence[SoakResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The versioned ``repro.soak/1`` document for a set of soak runs."""
    return {
        "schema": SOAK_SCHEMA,
        "meta": dict(meta) if meta else {},
        "results": [r.to_dict() for r in results],
    }


def write_soak_json(
    path: str,
    results: Sequence[SoakResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write ``soak_document`` to ``path``; returns the document."""
    doc = soak_document(results, meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def _cause_summary(stall_ns: Dict[str, int]) -> str:
    parts = []
    for cause in STALL_CAUSES:
        ns = stall_ns.get(cause, 0)
        if ns:
            parts.append(f"{cause.split('_')[-1][:4]}:{ns / 1e6:.1f}ms")
    return " ".join(parts)


def render_timeline(result: SoakResult, width: int = 40) -> str:
    """Ascii timeline: one row per window, p99.9 bar + stall causes."""
    title = (
        f"{result.store}/{result.workload}: {result.num_ops} ops @ "
        f"{result.arrival_rate:,.0f}/s over {result.duration_s:g} virtual s "
        f"(window = {result.window_ns / 1e6:g} ms)"
    )
    lines = [title, "-" * len(title)]
    peak = max((w.p999_us for w in result.windows), default=0.0)
    header = (
        f"{'win':>4} {'ops':>6} {'p50us':>8} {'p99us':>9} {'p999us':>9} "
        f"{'stall':>9}  p99.9"
    )
    lines.append(header)
    for w in result.windows:
        bar = "#" * (
            max(int(w.p999_us / peak * width), 1) if peak > 0 else 0
        )
        total_stall = sum(w.stall_ns.values())
        causes = _cause_summary(w.stall_ns)
        stall_col = f"{total_stall / 1e6:>7.1f}ms" if total_stall else f"{'-':>9}"
        line = (
            f"{w.index:>4} {w.ops:>6} {w.p50_us:>8.1f} {w.p99_us:>9.1f} "
            f"{w.p999_us:>9.1f} {stall_col}  {bar}"
        )
        if causes:
            line += f"  [{causes}]"
        lines.append(line)
    lines.append("")
    lines.append(
        f"windowed p99.9: worst {result.windowed_p999_us:,.1f} us, "
        f"median {result.median_p999_us:,.1f} us, "
        f"ratio {result.p999_ratio:.2f}x"
    )
    lines.append(
        f"max stall {result.max_stall_ns / 1e6:.2f} ms; "
        f"blocked {result.blocked_ns / 1e6:.2f} ms "
        f"(hard stalls {result.stall_ns / 1e6:.2f} ms + "
        f"slowdown {result.slowdown_ns / 1e6:.2f} ms); "
        f"l0-stop abandoned {result.l0_stop_abandoned}"
    )
    if result.throttled_jobs or result.held_jobs or result.bypassed_jobs:
        lines.append(
            f"rate limiter: {result.throttled_jobs} throttled, "
            f"{result.held_jobs} hold-backs, "
            f"{result.bypassed_jobs} urgent bypasses"
        )
    return "\n".join(lines)


def render_soak(results: Sequence[SoakResult], width: int = 40) -> str:
    """Timelines for every run plus an untuned-vs-tuned verdict."""
    blocks = [render_timeline(r, width=width) for r in results]
    by_variant = {r.workload: r for r in results}
    if "soak" in by_variant and "soak-tuned" in by_variant:
        base, tuned = by_variant["soak"], by_variant["soak-tuned"]
        blocks.append(
            "stability: tuned vs untuned — "
            f"p99.9 ratio {base.p999_ratio:.2f}x -> {tuned.p999_ratio:.2f}x, "
            f"worst windowed p99.9 {base.windowed_p999_us:,.1f} -> "
            f"{tuned.windowed_p999_us:,.1f} us, "
            f"max stall {base.max_stall_ns / 1e6:.2f} -> "
            f"{tuned.max_stall_ns / 1e6:.2f} ms"
        )
    return "\n\n".join(blocks)
