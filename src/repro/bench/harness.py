"""Benchmark harness: scaled configurations, runners, result records.

Scaling model (DESIGN.md section 6): one factor ``scale`` shrinks the
paper's setup uniformly — operation count, memtable/SSTable/level byte
sizes, the journal's 5 s commit interval, NobLSM's reclaim interval and
the device's fixed per-IO costs all divide by ``scale``; value sizes and
per-operation CPU costs stay as in the paper. A scaled run is therefore
a time-compressed paper run: every component keeps its share of the
total, so the *shapes* (who wins, by what factor) carry over while each
point runs in seconds of host time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.registry import make_store
from repro.fs.jbd2 import JournalConfig
from repro.fs.stack import StackConfig, StorageStack
from repro.lsm.db import DB
from repro.lsm.options import MIB, Options
from repro.obs.critical_path import analyze_write_path
from repro.obs.export import layer_breakdown, registry_document
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Tracer
from repro.sim.clock import seconds, to_micros, to_seconds
from repro.sim.latency import GIB, PM883

#: the paper's run: 10 M requests over 64 MB SSTables on a PM883
PAPER_NUM_OPS = 10_000_000
PAPER_TABLE_MB = 64.0
PAPER_COMMIT_INTERVAL_S = 5.0


@dataclass
class ScaledConfig:
    """One scaled experiment setup."""

    scale: float = 500.0
    num_ops: int = 0  # 0 = PAPER_NUM_OPS / scale
    value_size: int = 1024
    key_size: int = 16
    table_mb: float = PAPER_TABLE_MB  # the paper's SSTable size knob
    pagecache_gb: float = 16.0  # paper host: 2 TB DRAM; scaled below
    threads: int = 1
    seed: int = 1234
    observe: bool = False  # wire a MetricRegistry through the stack
    #: attach a causal Tracer to the registry (implies observe)
    trace: bool = False
    #: device parallelism: NVMe-style submission channels (1 = the
    #: paper's single-queue SATA PM883)
    num_channels: int = 1
    #: store parallelism: background compaction threads
    background_threads: int = 1
    #: key-value separation (noblsm-kv): values >= this many bytes move
    #: to the vLog; ``None`` keeps every store in plain LSM mode
    value_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ValueError(f"scale must be >= 1, got {self.scale}")
        if self.num_ops == 0:
            self.num_ops = max(int(PAPER_NUM_OPS / self.scale), 200)

    def build_options(self) -> Options:
        base = Options(
            write_buffer_size=int(self.table_mb * MIB),
            max_file_size=int(self.table_mb * MIB),
        )
        options = base.scaled(self.scale)
        options.reclaim_interval_ns = max(
            int(seconds(PAPER_COMMIT_INTERVAL_S) / self.scale), 1000
        )
        if self.background_threads != 1:
            options.background_threads = self.background_threads
        if self.value_threshold is not None:
            options.value_threshold = self.value_threshold
        return options

    def dataset_bytes(self) -> int:
        """Rough user-data volume of one run (ops x value size)."""
        return self.num_ops * (self.value_size + self.key_size)

    def build_stack(self) -> StorageStack:
        journal = JournalConfig(
            commit_interval_ns=max(
                int(seconds(PAPER_COMMIT_INTERVAL_S) / self.scale), 1000
            )
        )
        # The paper's host has 2 TB DRAM against a <= 60 GB working set:
        # the cache never evicts. Keep that ratio: at least ~30x the
        # run's user data stays cacheable at any scale.
        pagecache = max(
            int(self.pagecache_gb * GIB / self.scale),
            30 * self.dataset_bytes(),
        )
        obs = None
        if self.observe or self.trace:
            obs = MetricRegistry()
            if self.trace:
                # attach before the stack is built so every component
                # (DB caches its tracer at init) sees it
                Tracer(obs)
        return StorageStack(
            StackConfig(
                device=PM883.time_compressed(self.scale),
                pagecache_bytes=pagecache,
                writeback_interval_ns=max(
                    int(seconds(1.0) / self.scale), 1000
                ),
                writeback_chunk_bytes=max(int(16 * MIB / self.scale), 16 * 1024),
                journal=journal,
                obs=obs,
                num_channels=(
                    self.num_channels if self.num_channels != 1 else None
                ),
            )
        )

    def build_store(self, name: str, dbname: str = "db") -> "tuple[StorageStack, DB]":
        stack = self.build_stack()
        db = make_store(name, stack, dbname, options=self.build_options())
        return stack, db


@dataclass
class BenchResult:
    """Outcome of one (store, workload) run."""

    store: str
    workload: str
    num_ops: int
    value_size: int
    virtual_ns: int
    sync_calls: int
    bytes_synced: int
    device_bytes_written: int
    device_bytes_read: int
    stall_ns: int
    minor_compactions: int
    major_compactions: int
    extras: Dict[str, float] = field(default_factory=dict)
    #: per-op latency percentiles in microseconds, e.g.
    #: ``{"put": {"p50": 1.2, "p95": 3.4, "p99": 8.9}}`` — only filled
    #: when the run's :class:`ScaledConfig` had ``observe=True``.
    latency_us: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: virtual time attributed per layer (device/journal/compaction/
    #: stalls); empty unless observed.
    breakdown_ns: Dict[str, int] = field(default_factory=dict)
    #: full ``repro.obs/1`` export document; ``None`` unless observed.
    obs_document: "Optional[Dict[str, object]]" = None
    #: critical-path attribution (CriticalPathReport.to_dict());
    #: ``None`` unless the run was traced.
    critical_path: "Optional[Dict[str, object]]" = None
    #: host wall-clock seconds the run took to *simulate* (not virtual
    #: time); 0.0 unless the caller timed the run. Exported under a
    #: separate ``host`` key so virtual-time records stay byte-stable.
    wall_seconds: float = 0.0

    @property
    def us_per_op(self) -> float:
        if self.num_ops == 0:
            return 0.0
        return to_micros(self.virtual_ns) / self.num_ops

    @property
    def ops_per_sec_wall(self) -> float:
        """Simulated operations per real host second (simulator speed)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_ops / self.wall_seconds

    @property
    def virtual_seconds(self) -> float:
        return to_seconds(self.virtual_ns)

    @property
    def gib_synced(self) -> float:
        return self.bytes_synced / GIB

    def row(self) -> Dict[str, object]:
        return {
            "store": self.store,
            "workload": self.workload,
            "ops": self.num_ops,
            "value_size": self.value_size,
            "us_per_op": round(self.us_per_op, 3),
            "virtual_s": round(self.virtual_seconds, 4),
            "syncs": self.sync_calls,
            "gib_synced": round(self.gib_synced, 4),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full machine-readable record (superset of :meth:`row`)."""
        data: Dict[str, object] = dict(self.row())
        data.update(
            {
                "virtual_ns": self.virtual_ns,
                "bytes_synced": self.bytes_synced,
                "device_bytes_written": self.device_bytes_written,
                "device_bytes_read": self.device_bytes_read,
                "stall_ns": self.stall_ns,
                "minor_compactions": self.minor_compactions,
                "major_compactions": self.major_compactions,
            }
        )
        if self.extras:
            data["extras"] = dict(self.extras)
        if self.latency_us:
            data["latency_us"] = {
                op: dict(ps) for op, ps in self.latency_us.items()
            }
        if self.breakdown_ns:
            data["breakdown_ns"] = dict(self.breakdown_ns)
        if self.critical_path:
            data["critical_path"] = dict(self.critical_path)
        if self.wall_seconds > 0.0:
            # Host-dependent numbers live under their own key: the
            # determinism golden tests and the perf gate read only the
            # virtual-time fields, which stay byte-identical across
            # hosts; this section varies with the machine and is never
            # part of a byte comparison.
            data["host"] = {
                "wall_seconds": round(self.wall_seconds, 4),
                "ops_per_sec_wall": round(self.ops_per_sec_wall, 1),
            }
        return data


def collect_result(
    store_name: str,
    workload: str,
    config: ScaledConfig,
    stack: StorageStack,
    db: DB,
    start_ns: int,
    end_ns: int,
    num_ops: int,
) -> BenchResult:
    result = BenchResult(
        store=store_name,
        workload=workload,
        num_ops=num_ops,
        value_size=config.value_size,
        virtual_ns=max(end_ns - start_ns, 0),
        sync_calls=stack.sync_stats.sync_calls,
        bytes_synced=stack.sync_stats.bytes_synced,
        device_bytes_written=stack.ssd.stats.bytes_written,
        device_bytes_read=stack.ssd.stats.bytes_read,
        stall_ns=db.stats.stall_ns,
        minor_compactions=db.stats.minor_compactions,
        major_compactions=db.stats.major_compactions,
    )
    obs = stack.obs
    if obs.enabled:
        if obs.tracer is not None:
            report = analyze_write_path(obs)
            if report.count:
                result.critical_path = report.to_dict()
        result.breakdown_ns = layer_breakdown(obs)
        result.latency_us = latency_percentiles(obs)
        result.obs_document = registry_document(
            obs,
            meta={
                "store": store_name,
                "workload": workload,
                "num_ops": num_ops,
                "value_size": config.value_size,
                "scale": config.scale,
            },
        )
    return result


#: operation histograms surfaced as benchmark percentile columns
_LATENCY_OPS = ("put", "get", "delete", "scan")


def latency_percentiles(obs) -> Dict[str, Dict[str, float]]:
    """Per-op p50/p95/p99 in microseconds from ``db.<op>_ns`` histograms."""
    out: Dict[str, Dict[str, float]] = {}
    for op in _LATENCY_OPS:
        hist = obs.find_histogram(f"db.{op}_ns")
        if hist is None or hist.count == 0:
            continue
        out[op] = {
            "p50": round(hist.p50 / 1000.0, 3),
            "p95": round(hist.p95 / 1000.0, 3),
            "p99": round(hist.p99 / 1000.0, 3),
            "mean": round(hist.mean / 1000.0, 3),
            "count": hist.count,
        }
    return out


class ThreadedDriver:
    """Simulates K client threads issuing operations against one store.

    Each thread has a private clock; the driver always advances the
    thread with the smallest local time, so operations interleave in
    virtual-time order. Writes serialize on the store's writer mutex and
    the shared device timeline; reads run concurrently apart from device
    contention — matching how LevelDB behaves under a multi-threaded
    YCSB client (Section 5.3).
    """

    def __init__(self, db: DB, threads: int, start: int = 0) -> None:
        if threads < 1:
            raise ValueError(f"need at least one thread, got {threads}")
        self.db = db
        self.clocks = [start] * threads

    def run(self, operations: List[Callable[[DB, int], int]]) -> int:
        """Execute all operations; returns the last completion time.

        ``operations[i]`` is a callable ``(db, at) -> completion``.
        Operations are dealt to threads in order, next-free-thread first.
        """
        for op in operations:
            index = min(range(len(self.clocks)), key=self.clocks.__getitem__)
            self.clocks[index] = op(self.db, self.clocks[index])
        return max(self.clocks)
