"""The flight recorder: continuous telemetry + SLO gate over serve/soak.

This is the bench-side harness for :mod:`repro.obs.timeseries` and
:mod:`repro.obs.slo`: run the serving pair (or the soak pair) with a
:class:`Telemetry` rig attached, sample every health signal the stack
exposes at a fixed virtual interval, evaluate latency and availability
SLOs with fast/slow burn-rate alerting, render an ASCII flight-recorder
dashboard (one sparkline lane per series, alert markers inline), and
emit the versioned ``repro.slo/1`` gate document.

The rig owns a *dedicated* virtual clock + event queue (an instance of
the same sim machinery the stacks run on): the bench loop advances it
to every request arrival, so sampler ticks fire at deterministic
virtual times between requests and never touch any stack's timeline —
results with telemetry attached are identical to results without.

The gate's discrimination claim, checked by CI: the **untuned** serve
run must fire at least one fast-burn alert (its hot shard genuinely
burns the availability/latency budget), while the **fair-scheduled**
twin must fire none — an alerting layer that cannot tell those two
apart is decoration, not observability.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.ascii_plot import sparkline
from repro.bench.soak import SoakConfig, run_soak, tuned_variant
from repro.lsm.db import PRESSURE_CODES
from repro.obs.metrics import MetricRegistry
from repro.obs.slo import (
    AVAILABILITY,
    LATENCY,
    CounterRatioSource,
    LatencyThresholdSource,
    SLOMonitor,
    SLOSpec,
    default_burn_rules,
)
from repro.obs.timeseries import TimeSeriesSampler
from repro.serve.bench import ServeConfig, fair_variant, run_serve
from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue

SLO_SCHEMA = "repro.slo/1"

#: workload names of the variant expected to breach / to hold
_UNTUNED = ("serve", "soak")
_TUNED = ("serve-fair", "soak-tuned")


@dataclass
class SloConfig:
    """One flight-recorder run: scenario + sampling + objectives."""

    scenario: str = "serve"  # "serve" | "soak"
    interval_ms: float = 5.0
    capacity: int = 4096
    #: latency objective: ``latency_target`` of requests complete within
    #: ``latency_threshold_us``. Keep the threshold on a 1-2-5 histogram
    #: bucket bound so good/bad counting is exact (see
    #: ``Histogram.count_over``). 99.95% (not three nines) because the
    #: untuned cluster's breach is one concentrated stall burst: at
    #: three nines its long-window burn peaks just *under* the canonical
    #: 14.4x fast threshold, and the recorder's job is to page on
    #: exactly this burst.
    latency_target: float = 0.9995
    latency_threshold_us: float = 100.0
    #: availability objective (serve only): fraction of requests not shed
    availability_target: float = 0.9995
    serve: ServeConfig = field(default_factory=ServeConfig)
    soak: SoakConfig = field(default_factory=SoakConfig)

    @property
    def interval_ns(self) -> int:
        return max(int(self.interval_ms * 1_000_000), 1)

    @property
    def latency_threshold_ns(self) -> int:
        return max(int(self.latency_threshold_us * 1_000), 1)

    @property
    def horizon_ns(self) -> int:
        if self.scenario == "soak":
            return self.soak.horizon_ns
        return max(int(self.serve.duration_s * 1e9), 1)


class Telemetry:
    """One run's continuous-telemetry rig.

    Owns the sampling timeline (clock + event queue), the cluster-level
    registry (for serve), the sampler, and the SLO monitors. The bench
    loop drives :meth:`advance` to each arrival and :meth:`finish` at
    the horizon; the serve/soak runners call :meth:`on_cluster` /
    :meth:`on_stack` once their components exist so probes can bind.
    """

    def __init__(self, config: SloConfig) -> None:
        self.config = config
        self.clock = VirtualClock()
        self.events = EventQueue(self.clock)
        #: cluster-level registry (the serve front door records here)
        self.registry = MetricRegistry()
        self.sampler: Optional[TimeSeriesSampler] = None
        self.monitors: List[SLOMonitor] = []

    # ------------------------------------------------------------------
    # wiring, called by the runners
    # ------------------------------------------------------------------

    def _start(self, registry: MetricRegistry) -> None:
        if self.sampler is not None:
            raise RuntimeError("telemetry rig already wired to a run")
        self.sampler = TimeSeriesSampler(
            registry, self.config.interval_ns, capacity=self.config.capacity
        )
        self.sampler.attach(self.events)

    def _add_monitor(self, monitor: SLOMonitor) -> None:
        self.monitors.append(monitor)
        self.sampler.add_monitor(monitor)

    def _add_store_probes(self, name: str, db, stack) -> None:
        """Health levels of one store: debt, pressure, tokens, garbage."""
        sampler = self.sampler
        sampler.add_probe(
            f"{name}.pressure",
            lambda at, d=db: float(PRESSURE_CODES[d.write_pressure()]),
        )
        sampler.add_probe(
            f"{name}.debt_bytes",
            lambda at, d=db: float(d.compaction_debt_bytes()),
        )
        limiter = getattr(db, "_ratelimiter", None)
        if limiter is not None:
            sampler.add_probe(
                f"{name}.ratelimit_tokens",
                lambda at, l=limiter: float(l.tokens_at(at)),
            )
        vlog = getattr(db, "vlog", None)
        if vlog is not None:

            def garbage_ratio(at: int, v=vlog) -> float:
                snap = v.snapshot()
                total = snap.get("total_bytes", 0)
                if not total:
                    return 0.0
                return round(1.0 - snap["live_bytes"] / total, 4)

            sampler.add_probe(f"{name}.vlog_garbage", garbage_ratio)

    def on_cluster(self, cluster) -> None:
        """Wire the serve scenario: front-door SLOs + per-shard probes."""
        self._start(self.registry)
        config = self.config
        rules = default_burn_rules(config.horizon_ns)
        latency = self.registry.windowed_histogram(
            "serve.latency_ns", cluster.config.window_ns
        )
        self._add_monitor(
            SLOMonitor(
                SLOSpec(
                    "latency",
                    LATENCY,
                    config.latency_target,
                    config.latency_threshold_ns,
                ),
                LatencyThresholdSource(latency, config.latency_threshold_ns),
                rules,
            )
        )
        self._add_monitor(
            SLOMonitor(
                SLOSpec("availability", AVAILABILITY, config.availability_target),
                CounterRatioSource(
                    self.registry.counter("serve.served"),
                    self.registry.counter("serve.shed"),
                ),
                rules,
            )
        )
        for shard in cluster.shards:
            name = f"shard{shard.index}"
            self.sampler.add_probe(
                f"{name}.queue_depth",
                lambda at, a=shard.admission: float(a.peek_depth(at)),
            )
            self._add_store_probes(name, shard.db, shard.stack)

    def on_stack(self, stack, db) -> None:
        """Wire the soak scenario: the stack's own registry + one store."""
        self._start(stack.obs)
        config = self.config
        rules = default_burn_rules(config.horizon_ns)
        latency = stack.obs.windowed_histogram(
            "soak.put_ns", config.soak.window_ns
        )
        self._add_monitor(
            SLOMonitor(
                SLOSpec(
                    "latency",
                    LATENCY,
                    config.latency_target,
                    config.latency_threshold_ns,
                ),
                LatencyThresholdSource(latency, config.latency_threshold_ns),
                rules,
            )
        )
        self._add_store_probes("db", db, stack)

    # ------------------------------------------------------------------
    # driven by the bench loop
    # ------------------------------------------------------------------

    def advance(self, at: int) -> None:
        self.events.run_until(at)

    def finish(self, at: int) -> None:
        self.events.run_until(at)
        if self.sampler is not None:
            self.sampler.finish(at)


@dataclass
class SloRunResult:
    """One variant's flight-recorder outcome."""

    row: Dict[str, object]
    telemetry: Telemetry
    base: object  # the underlying ServeResult / SoakResult

    @property
    def workload(self) -> str:
        return str(self.row["workload"])


def _slo_row(
    scenario: str, base, telemetry: Telemetry, config: SloConfig
) -> Dict[str, object]:
    """The gate row: base identity + alert/budget summary (flat metrics)."""
    monitors = telemetry.monitors
    alerts = [a for m in monitors for a in m.alerts]
    fast = [a for a in alerts if a.rule == "fast-burn"]
    slow = [a for a in alerts if a.rule == "slow-burn"]
    return {
        "store": base.store,
        "workload": base.workload,
        "ops": base.num_ops,
        "value_size": base.value_size,
        "scenario": scenario,
        "interval_ns": config.interval_ns,
        "horizon_ns": config.horizon_ns,
        "samples": telemetry.sampler.samples,
        "series": len(telemetry.sampler.series),
        "alerts_total": len(alerts),
        "fast_burn_alerts": len(fast),
        "slow_burn_alerts": len(slow),
        "first_fast_burn_at_ns": min(
            (a.fired_at_ns for a in fast), default=None
        ),
        "bad_events": sum(m.bad_total for m in monitors),
        "max_burn": round(max((m.peak_burn for m in monitors), default=0.0), 3),
        "slos": [m.snapshot() for m in monitors],
    }


def run_slo(config: SloConfig) -> List[SloRunResult]:
    """Run the scenario pair (untuned, tuned) with telemetry attached."""
    if config.scenario == "serve":
        untuned = replace(
            config.serve,
            compaction_rate_bytes_per_sec=0,
            compaction_rate_burst_bytes=0,
            compaction_rate_fair=False,
            dynamic_slowdown=False,
        )
        variants = [untuned, fair_variant(config.serve)]
        runner = run_serve
    elif config.scenario == "soak":
        untuned = replace(
            config.soak,
            compaction_rate_bytes_per_sec=0,
            compaction_rate_burst_bytes=0,
            compaction_rate_fair=False,
            dynamic_slowdown=False,
        )
        variants = [untuned, tuned_variant(config.soak)]
        runner = run_soak
    else:
        raise ValueError(f"unknown scenario {config.scenario!r}")
    results = []
    for variant in variants:
        telemetry = Telemetry(config)
        base = runner(variant, telemetry=telemetry)
        results.append(
            SloRunResult(
                row=_slo_row(config.scenario, base, telemetry, config),
                telemetry=telemetry,
                base=base,
            )
        )
    return results


# ----------------------------------------------------------------------
# gate + documents
# ----------------------------------------------------------------------


def check_discrimination(results: Sequence[SloRunResult]) -> List[str]:
    """The alerting layer's reason to exist, as gate failures.

    Untuned variants must fire >= 1 fast-burn alert; tuned variants must
    fire none at all. Returns human-readable problems (empty = pass).
    """
    problems = []
    for result in results:
        row = result.row
        if row["workload"] in _UNTUNED and row["fast_burn_alerts"] < 1:
            problems.append(
                f"{row['workload']}: expected >= 1 fast-burn alert, got 0 "
                "(the untuned run should breach its SLOs)"
            )
        if row["workload"] in _TUNED and row["alerts_total"] > 0:
            problems.append(
                f"{row['workload']}: expected 0 alerts, got "
                f"{row['alerts_total']} (the tuned run should hold its SLOs)"
            )
    return problems


def slo_document(
    results: Sequence[SloRunResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The versioned ``repro.slo/1`` gate document."""
    return {
        "schema": SLO_SCHEMA,
        "meta": dict(meta) if meta else {},
        "results": [dict(r.row) for r in results],
    }


def write_slo_json(
    path: str,
    results: Sequence[SloRunResult],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    doc = slo_document(results, meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def write_timeseries_json(
    path: str,
    result: SloRunResult,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One variant's ``repro.timeseries/1`` document to ``path``."""
    doc = result.telemetry.sampler.document(meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
# the dashboard
# ----------------------------------------------------------------------


def _lane_cells(
    series, horizon_ns: int, width: int
) -> List[Optional[float]]:
    """Time-aligned bucket maxima: column = t * width / horizon."""
    cells: List[Optional[float]] = [None] * width
    for t, value in zip(series.times, series.values):
        column = min(int(t) * width // max(horizon_ns, 1), width - 1)
        if cells[column] is None or value > cells[column]:
            cells[column] = value
    return cells


def _alert_columns(
    monitor: SLOMonitor, horizon_ns: int, width: int
) -> List[int]:
    """Columns where any of the monitor's alerts were active."""
    columns = set()
    for alert in monitor.alerts:
        start = min(int(alert.fired_at_ns) * width // max(horizon_ns, 1),
                    width - 1)
        end_ns = (
            alert.resolved_at_ns
            if alert.resolved_at_ns is not None
            else horizon_ns
        )
        end = min(int(end_ns) * width // max(horizon_ns, 1), width - 1)
        columns.update(range(start, end + 1))
    return sorted(columns)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:,.6g}"


def render_dashboard(result: SloRunResult, width: int = 60) -> str:
    """The flight recorder: one sparkline lane per series, alerts inline.

    SLO burn lanes overlay ``!`` on the columns where an alert was
    active, so the breach is visible in the lane itself; the alert log
    below gives the exact virtual timestamps.
    """
    telemetry = result.telemetry
    sampler = telemetry.sampler
    row = result.row
    horizon = int(row["horizon_ns"])
    title = (
        f"flight recorder — {row['store']}/{row['workload']} "
        f"({row['scenario']}), {sampler.samples} samples @ "
        f"{sampler.interval_ns / 1e6:g} ms over {horizon / 1e6:g} ms"
    )
    lines = [title, "-" * min(len(title), 78)]
    name_width = max((len(n) for n in sampler.series), default=4)
    name_width = min(max(name_width, 24), 34)
    lines.append(
        f"{'series':<{name_width}} {'min':>10} {'max':>10} {'last':>10}  "
        f"|0 .. {horizon / 1e6:g} ms|"
    )
    burn_lanes = {
        f"slo.{m.spec.name}.burn": m for m in telemetry.monitors
    }
    for name in sorted(sampler.series):
        series = sampler.series[name]
        cells = _lane_cells(series, horizon, width)
        present = [v for v in cells if v is not None]
        spark = list(sparkline(cells, width))
        monitor = burn_lanes.get(name)
        if monitor is not None:
            for column in _alert_columns(monitor, horizon, width):
                spark[column] = "!"
        lines.append(
            f"{name:<{name_width}} "
            f"{_fmt(min(present) if present else None):>10} "
            f"{_fmt(max(present) if present else None):>10} "
            f"{_fmt(series.last()):>10}  |{''.join(spark)}|"
        )
    lines.append("")
    lines.append("alerts:")
    any_alert = False
    for monitor in telemetry.monitors:
        for alert in monitor.alerts:
            any_alert = True
            resolved = (
                f"resolved @{alert.resolved_at_ns / 1e6:.1f} ms"
                if alert.resolved_at_ns is not None
                else "unresolved at horizon"
            )
            lines.append(
                f"  {alert.slo}/{alert.rule}: fired "
                f"@{alert.fired_at_ns / 1e6:.1f} ms "
                f"(burn long {alert.burn_long:.1f} / short "
                f"{alert.burn_short:.1f}, peak {alert.peak_burn:.1f}), "
                f"{resolved}"
            )
    if not any_alert:
        lines.append("  (none)")
    lines.append("")
    for monitor in telemetry.monitors:
        spec = monitor.spec
        objective = (
            f"{spec.target * 100:g}% < {spec.threshold_ns / 1000:g} us"
            if spec.kind == LATENCY
            else f"{spec.target * 100:g}% admitted"
        )
        lines.append(
            f"slo {spec.name} ({objective}): good {monitor.good_total}, "
            f"bad {monitor.bad_total}, budget consumed "
            f"{monitor.budget_consumed:.2f}x, peak burn "
            f"{monitor.peak_burn:.1f}"
        )
    return "\n".join(lines)


def render_slo(results: Sequence[SloRunResult], width: int = 60) -> str:
    """Dashboards for every variant plus the discrimination verdict."""
    blocks = [render_dashboard(r, width=width) for r in results]
    problems = check_discrimination(results)
    if problems:
        blocks.append("\n".join(["alert discrimination: FAIL"] +
                                [f"  {p}" for p in problems]))
    else:
        fired = sum(r.row["alerts_total"] for r in results
                    if r.workload in _UNTUNED)
        blocks.append(
            "alert discrimination: PASS — untuned fired "
            f"{fired} alert(s), tuned fired none"
        )
    return "\n\n".join(blocks)
