"""Write/read/space amplification analysis.

The paper positions NobLSM as *complementary* to write-amplification
research (Section 6): it reduces sync counts, not bytes rewritten. This
module quantifies that claim — it runs a fillrandom workload on any
store and reports:

- **WA(device)** — device bytes written / user bytes (includes journal
  and writeback traffic);
- **WA(compaction)** — bytes flushed + compacted / user bytes (the
  classic LSM metric);
- **RA(point)** — table probes per point lookup;
- **SA** — live on-disk bytes / logical (deduplicated) user bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bench.harness import ScaledConfig
from repro.bench.workloads import ValueGenerator, fillrandom_indices, make_key


@dataclass
class AmplificationReport:
    store: str
    user_bytes: int
    logical_bytes: int
    device_bytes_written: int
    compaction_bytes: int
    live_bytes: int
    probes: int
    lookups: int

    @property
    def wa_device(self) -> float:
        return self.device_bytes_written / max(self.user_bytes, 1)

    @property
    def wa_compaction(self) -> float:
        return self.compaction_bytes / max(self.user_bytes, 1)

    @property
    def ra_point(self) -> float:
        return self.probes / max(self.lookups, 1)

    @property
    def space_amplification(self) -> float:
        return self.live_bytes / max(self.logical_bytes, 1)

    def row(self) -> Dict[str, float]:
        return {
            "wa_device": round(self.wa_device, 2),
            "wa_compaction": round(self.wa_compaction, 2),
            "ra_point": round(self.ra_point, 2),
            "space_amp": round(self.space_amplification, 2),
        }


def measure_amplification(
    store_name: str,
    config: Optional[ScaledConfig] = None,
    read_fraction: float = 0.2,
) -> AmplificationReport:
    """Fill a store, then probe it; returns the amplification report."""
    config = config or ScaledConfig(scale=1000, value_size=1024)
    stack, db = config.build_store(store_name)
    values = ValueGenerator(config.value_size, seed=config.seed)
    written_keys = set()
    t = 0
    for index in fillrandom_indices(config.num_ops, config.seed):
        key = make_key(index, config.key_size)
        t = db.put(key, values.next(), at=t)
        written_keys.add(key)
    t = db.wait_for_background(t)
    t = max(t, stack.settle())
    if hasattr(db, "reclaim"):
        t = db.reclaim(t)

    user_bytes = config.num_ops * (config.key_size + config.value_size)
    logical_bytes = len(written_keys) * (config.key_size + config.value_size)
    live_bytes = sum(
        meta.file_size
        for files in db.versions.current.files
        for meta in files
        if not meta.shadow
    )

    # read-amplification probe: count table.get calls per lookup
    probes = 0
    lookups = max(int(config.num_ops * read_fraction), 1)
    import repro.lsm.sstable as sstable_module

    original_get = sstable_module.Table.get

    def counting_get(self, user_key, at, sequence_bound=None, _orig=original_get):
        nonlocal probes
        probes += 1
        if sequence_bound is None:
            return _orig(self, user_key, at)
        return _orig(self, user_key, at, sequence_bound)

    sstable_module.Table.get = counting_get
    try:
        rng_keys = fillrandom_indices(lookups, config.seed + 3)
        for index in rng_keys:
            _, t = db.get(make_key(index, config.key_size), at=t)
    finally:
        sstable_module.Table.get = original_get

    return AmplificationReport(
        store=store_name,
        user_bytes=user_bytes,
        logical_bytes=logical_bytes,
        device_bytes_written=stack.ssd.stats.bytes_written,
        compaction_bytes=db.stats.bytes_flushed + db.stats.bytes_compacted_out,
        live_bytes=live_bytes,
        probes=probes,
        lookups=lookups,
    )
