"""Write/read/space amplification analysis.

The paper positions NobLSM as *complementary* to write-amplification
research (Section 6): it reduces sync counts, not bytes rewritten. This
module quantifies that claim — it runs a fillrandom workload on any
store and reports:

- **WA(device)** — device bytes written / user bytes (includes journal
  and writeback traffic);
- **WA(compaction)** — bytes flushed + compacted / user bytes (the
  classic LSM metric);
- **RA(point)** — table probes per point lookup;
- **SA** — live on-disk bytes / logical (deduplicated) user bytes.

For the key-value-separated ``noblsm-kv`` store the accounting is kept
honest: vLog appends (initial separation *and* GC relocation) count into
WA(compaction), and the full on-disk vLog footprint — garbage included —
counts into SA. The separation claim only holds if kv still wins under
those terms: values are written to the vLog once and relocated rarely,
instead of being rewritten at every level the LSM pushes them through.

:func:`run_amplification_sweep` compares noblsm against noblsm-kv over a
large-value fillrandom grid and emits a ``repro.amplification/1``
document, gated in CI by ``python -m repro.bench compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ScaledConfig
from repro.bench.workloads import ValueGenerator, fillrandom_indices, make_key

AMPLIFICATION_SCHEMA = "repro.amplification/1"

#: the sweep's defaults: the 4 KiB row is the CI gate's headline
DEFAULT_VALUE_SIZES = (1024, 4096)
DEFAULT_STORES = ("noblsm", "noblsm-kv")
DEFAULT_SCALE = 2000.0
DEFAULT_VALUE_THRESHOLD = 1024


@dataclass
class AmplificationReport:
    store: str
    user_bytes: int
    logical_bytes: int
    device_bytes_written: int
    compaction_bytes: int
    live_bytes: int
    probes: int
    lookups: int
    #: on-disk vLog footprint at measurement time (0 for plain stores)
    vlog_bytes: int = 0
    #: extra counters worth keeping next to the ratios (vLog stats)
    extras: Dict[str, int] = field(default_factory=dict)

    @property
    def wa_device(self) -> float:
        return self.device_bytes_written / max(self.user_bytes, 1)

    @property
    def wa_compaction(self) -> float:
        return self.compaction_bytes / max(self.user_bytes, 1)

    @property
    def ra_point(self) -> float:
        return self.probes / max(self.lookups, 1)

    @property
    def space_amplification(self) -> float:
        return self.live_bytes / max(self.logical_bytes, 1)

    def row(self) -> Dict[str, float]:
        return {
            "wa_device": round(self.wa_device, 2),
            "wa_compaction": round(self.wa_compaction, 2),
            "ra_point": round(self.ra_point, 2),
            "space_amp": round(self.space_amplification, 2),
        }


def measure_amplification(
    store_name: str,
    config: Optional[ScaledConfig] = None,
    read_fraction: float = 0.2,
) -> AmplificationReport:
    """Fill a store, then probe it; returns the amplification report."""
    config = config or ScaledConfig(scale=1000, value_size=1024)
    stack, db = config.build_store(store_name)
    values = ValueGenerator(config.value_size, seed=config.seed)
    written_keys = set()
    t = 0
    for index in fillrandom_indices(config.num_ops, config.seed):
        key = make_key(index, config.key_size)
        t = db.put(key, values.next(), at=t)
        written_keys.add(key)
    t = db.wait_for_background(t)
    t = max(t, stack.settle())
    if hasattr(db, "reclaim"):
        t = db.reclaim(t)

    user_bytes = config.num_ops * (config.key_size + config.value_size)
    logical_bytes = len(written_keys) * (config.key_size + config.value_size)
    live_bytes = sum(
        meta.file_size
        for files in db.versions.current.files
        for meta in files
        if not meta.shadow
    )
    # key-value separation: vLog segments are on-disk state too — count
    # their full footprint (garbage included) into space amplification,
    # and every byte the store appended to them (separation + GC
    # relocation) into the compaction write total
    vlog = getattr(db, "vlog", None)
    vlog_bytes = 0
    vlog_appended = 0
    extras: Dict[str, int] = {}
    if vlog is not None:
        vlog_bytes = vlog.total_bytes()
        vlog_appended = vlog.appended_bytes
        live_bytes += vlog_bytes
        extras = {
            "vlog_segments": len(vlog.segments()),
            "vlog_appended_bytes": vlog.appended_bytes,
            "vlog_relocated_bytes": vlog.relocated_bytes,
            "vlog_reclaimed_segments": vlog.reclaimed_segments,
        }

    # read-amplification probe: count table.get calls per lookup
    probes = 0
    lookups = max(int(config.num_ops * read_fraction), 1)
    import repro.lsm.sstable as sstable_module

    original_get = sstable_module.Table.get

    def counting_get(self, user_key, at, sequence_bound=None, _orig=original_get):
        nonlocal probes
        probes += 1
        if sequence_bound is None:
            return _orig(self, user_key, at)
        return _orig(self, user_key, at, sequence_bound)

    sstable_module.Table.get = counting_get
    try:
        rng_keys = fillrandom_indices(lookups, config.seed + 3)
        for index in rng_keys:
            _, t = db.get(make_key(index, config.key_size), at=t)
    finally:
        sstable_module.Table.get = original_get

    return AmplificationReport(
        store=store_name,
        user_bytes=user_bytes,
        logical_bytes=logical_bytes,
        device_bytes_written=stack.ssd.stats.bytes_written,
        compaction_bytes=(
            db.stats.bytes_flushed
            + db.stats.bytes_compacted_out
            + vlog_appended
        ),
        live_bytes=live_bytes,
        probes=probes,
        lookups=lookups,
        vlog_bytes=vlog_bytes,
        extras=extras,
    )


# ----------------------------------------------------------------------
# the noblsm vs noblsm-kv sweep (``repro.amplification/1``)
# ----------------------------------------------------------------------


def run_amplification_sweep(
    stores: Sequence[str] = DEFAULT_STORES,
    value_sizes: Sequence[int] = DEFAULT_VALUE_SIZES,
    scale: float = DEFAULT_SCALE,
    num_ops: int = 0,
    value_threshold: int = DEFAULT_VALUE_THRESHOLD,
    seed: int = 1234,
) -> List[Dict[str, object]]:
    """Measure every (store, value size) cell; returns document rows.

    ``value_threshold`` applies only to stores that understand it (the
    registry's kv variants); plain stores run with separation off.
    """
    rows: List[Dict[str, object]] = []
    for value_size in value_sizes:
        for store in stores:
            config = ScaledConfig(
                scale=scale,
                num_ops=num_ops,
                value_size=value_size,
                seed=seed,
                value_threshold=(
                    value_threshold if store.endswith("-kv") else None
                ),
            )
            report = measure_amplification(store, config)
            row: Dict[str, object] = {
                "store": store,
                "workload": "fillrandom",
                "value_size": value_size,
                "ops": config.num_ops,
                "wa_device": round(report.wa_device, 4),
                "wa_compaction": round(report.wa_compaction, 4),
                "ra_point": round(report.ra_point, 4),
                "space_amp": round(report.space_amplification, 4),
                "user_bytes": report.user_bytes,
                "device_bytes_written": report.device_bytes_written,
                "compaction_bytes": report.compaction_bytes,
                "live_bytes": report.live_bytes,
                "vlog_bytes": report.vlog_bytes,
            }
            if report.extras:
                row["vlog"] = dict(report.extras)
            rows.append(row)
    return rows


def amplification_document(
    rows: List[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    return {
        "schema": AMPLIFICATION_SCHEMA,
        "meta": dict(meta or {}),
        "results": rows,
    }


def render_amplification(rows: List[Dict[str, object]]) -> str:
    """Human table, one line per (store, value size) cell."""
    header = (
        f"{'store':<12} {'vsize':>6} {'ops':>7} "
        f"{'WA(dev)':>9} {'WA(comp)':>9} {'RA(pt)':>8} {'SA':>6} "
        f"{'vlog KiB':>9}"
    )
    lines = ["write/read/space amplification (fillrandom)", header,
             "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['store']:<12} {row['value_size']:>6} {row['ops']:>7} "
            f"{row['wa_device']:>9.2f} {row['wa_compaction']:>9.2f} "
            f"{row['ra_point']:>8.2f} {row['space_amp']:>6.2f} "
            f"{row['vlog_bytes'] / 1024.0:>9.1f}"
        )
    return "\n".join(lines)
