"""One entry point per table/figure of the paper's evaluation.

Each ``fig*``/``table*`` function runs the corresponding experiment at a
configurable scale and returns the same rows/series the paper reports;
``render_*`` helpers print them. The ``benchmarks/`` pytest-benchmark
targets are thin wrappers over these functions, and EXPERIMENTS.md
records one run of each next to the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.registry import PAPER_STORES
from repro.bench.db_bench import (
    run_fillrandom,
    run_overwrite,
    run_readrandom,
    run_readseq,
)
from repro.bench.harness import ScaledConfig
from repro.bench.rawio import run_fig2a as _run_fig2a_raw
from repro.bench.report import format_table, series_by_store
from repro.bench.ycsb import PAPER_ORDER, run_ycsb_suite
from repro.sim.latency import GIB

#: the value sizes swept in Figure 4
FIG4_VALUE_SIZES = (256, 512, 1024, 2048, 4096)

#: default scale for the db_bench figures (10 M ops -> 20 k ops);
#: at this scale the headline numbers land on the paper's (see
#: EXPERIMENTS.md)
DEFAULT_SCALE = 500.0


# ----------------------------------------------------------------------
# Figure 2a — Async / Direct / Sync raw writing
# ----------------------------------------------------------------------

def fig2a(sizes: Tuple[int, ...] = (4 * GIB, 8 * GIB)) -> Dict[str, Dict[int, float]]:
    """Execution time (s) of Async, Direct, Sync for each data size."""
    raw = _run_fig2a_raw(list(sizes))
    return {
        strategy: {size: result.seconds for size, result in by_size.items()}
        for strategy, by_size in raw.items()
    }


def render_fig2a() -> str:
    data = fig2a()
    sizes = sorted(next(iter(data.values())))
    rows = [
        [strategy.capitalize()] + [round(data[strategy][s], 2) for s in sizes]
        for strategy in ("async", "direct", "sync")
    ]
    header = ["strategy"] + [f"{s // GIB}GB" for s in sizes]
    return format_table(
        "Figure 2a: execution time (s) of Async, Direct and Sync writing",
        header,
        rows,
    )


# ----------------------------------------------------------------------
# Figure 2b — SSTable size and syncs (LevelDB vs volatile LevelDB)
# ----------------------------------------------------------------------

FIG2B_SCALE = 1000.0


def fig2b(scale: float = FIG2B_SCALE) -> Dict[str, float]:
    """Paper-equivalent execution time (s) for Figure 2b's eight bars.

    Bars: {fillrand, overwrt} x {2MB, 64MB} x {Sync (stock LevelDB),
    No-Sync (volatile)} — keyed 'fillrand-2MB-sync' etc. Times are
    us/op x the paper's 10 M operations, so bars are comparable across
    configurations regardless of the scale they ran at.
    """
    from repro.bench.harness import PAPER_NUM_OPS

    results: Dict[str, float] = {}
    for table_mb, label in ((2.0, "2MB"), (64.0, "64MB")):
        for store, suffix in (("leveldb", "sync"), ("volatile", "nosync")):
            config = ScaledConfig(scale=scale, value_size=1024, table_mb=table_mb)
            fill, stack, db = run_fillrandom(store, config)
            over, _, _ = run_overwrite(store, config)
            results[f"fillrand-{label}-{suffix}"] = (
                fill.us_per_op * PAPER_NUM_OPS / 1e6
            )
            results[f"overwrt-{label}-{suffix}"] = (
                over.us_per_op * PAPER_NUM_OPS / 1e6
            )
    return results


def render_fig2b(scale: float = FIG2B_SCALE) -> str:
    data = fig2b(scale)
    rows = []
    for workload in ("fillrand", "overwrt"):
        for label in ("2MB", "64MB"):
            rows.append(
                [
                    f"{workload} {label}",
                    round(data[f"{workload}-{label}-sync"], 3),
                    round(data[f"{workload}-{label}-nosync"], 3),
                ]
            )
    return format_table(
        "Figure 2b: paper-equivalent execution time (s), Sync vs No-Sync",
        ["workload/table", "Sync", "No-Sync"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 4 — db_bench across seven stores and five value sizes
# ----------------------------------------------------------------------

_FIG4_RUNNERS = {
    "fillrandom": run_fillrandom,
    "overwrite": run_overwrite,
    "readseq": run_readseq,
    "readrandom": run_readrandom,
}


def fig4(
    workload: str,
    stores: Optional[Iterable[str]] = None,
    value_sizes: Iterable[int] = FIG4_VALUE_SIZES,
    scale: float = DEFAULT_SCALE,
) -> Dict[str, Dict[int, float]]:
    """us/op per store per value size for one db_bench workload."""
    runner = _FIG4_RUNNERS[workload]
    stores = list(stores or PAPER_STORES)
    series: Dict[str, Dict[int, float]] = {store: {} for store in stores}
    for value_size in value_sizes:
        for store in stores:
            config = ScaledConfig(scale=scale, value_size=value_size)
            result, _, _ = runner(store, config)
            series[store][value_size] = result.us_per_op
    return series


def render_fig4(workload: str, scale: float = DEFAULT_SCALE, **kwargs) -> str:
    label = {
        "fillrandom": "4a",
        "overwrite": "4b",
        "readseq": "4c",
        "readrandom": "4d",
    }[workload]
    series = fig4(workload, scale=scale, **kwargs)
    sizes = sorted(next(iter(series.values())))
    return series_by_store(
        series,
        sizes,
        "value size (B)",
        f"Figure {label}: {workload} time/op (us, virtual)",
    )


# ----------------------------------------------------------------------
# Table 1 — number of syncs and size of data synced (fillrandom, 1 KB)
# ----------------------------------------------------------------------

def table1(
    stores: Optional[Iterable[str]] = None,
    scale: float = DEFAULT_SCALE,
) -> Dict[str, Tuple[int, float]]:
    """(sync count, GB-equivalent synced) per store.

    Matching the paper's accounting, only SSTable syncs are counted (the
    'minor' and 'major' reasons); GB are rescaled to paper volume by the
    run's scale factor so the row is directly comparable to Table 1.
    """
    stores = list(stores or PAPER_STORES)
    rows: Dict[str, Tuple[int, float]] = {}
    for store in stores:
        config = ScaledConfig(scale=scale, value_size=1024)
        _, stack, _ = run_fillrandom(store, config)
        stats = stack.sync_stats
        count = stats.by_reason.get("minor", 0) + stats.by_reason.get("major", 0)
        gib = (
            stats.bytes_by_reason.get("minor", 0)
            + stats.bytes_by_reason.get("major", 0)
        ) / GIB
        rows[store] = (count, gib * scale)
    return rows


def render_table1(scale: float = DEFAULT_SCALE) -> str:
    data = table1(scale=scale)
    rows = [
        [store, count, round(gb, 2)] for store, (count, gb) in data.items()
    ]
    return format_table(
        "Table 1: no. of SSTable syncs and GB-equivalent synced (fillrandom, 1KB)",
        ["store", "syncs", "GB synced (paper-equivalent)"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 5 — YCSB, single- and multi-threaded
# ----------------------------------------------------------------------

def fig5(
    threads: int,
    stores: Optional[Iterable[str]] = None,
    scale: float = 5000.0,
    workloads: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """us/op per store per YCSB phase (Fig 5a: threads=1, 5b: threads=4)."""
    stores = list(stores or PAPER_STORES)
    series: Dict[str, Dict[str, float]] = {}
    for store in stores:
        config = ScaledConfig(scale=scale, value_size=1024, threads=threads)
        results = run_ycsb_suite(store, config, workloads=workloads)
        series[store] = {
            phase: result.us_per_op for phase, result in results.items()
        }
    return series


def render_fig5(threads: int, scale: float = 5000.0, **kwargs) -> str:
    label = "5a" if threads == 1 else "5b"
    series = fig5(threads, scale=scale, **kwargs)
    phases = [p for p in PAPER_ORDER if p in next(iter(series.values()))]
    return series_by_store(
        series,
        phases,
        "workload",
        f"Figure {label}: YCSB time/op (us, virtual), {threads} thread(s)",
    )
