"""Plain-text rendering of benchmark results (the paper's rows/series)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    title: str,
    header: Sequence[str],
    rows: List[Sequence[object]],
) -> str:
    """Fixed-width table with a title line."""
    columns = len(header)
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, header has {columns}: {row!r}"
            )
        cells = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def series_by_store(
    results: Dict[str, Dict[object, float]],
    x_values: Sequence[object],
    x_label: str,
    title: str,
) -> str:
    """One row per store, one column per x value (a figure's series)."""
    header = [x_label] + [str(x) for x in x_values]
    rows = []
    for store, series in results.items():
        rows.append([store] + [round(series.get(x, float("nan")), 3) for x in x_values])
    return format_table(title, header, rows)
