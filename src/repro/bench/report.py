"""Rendering and export of benchmark results.

Two consumers, two formats:

- plain-text tables (``format_table`` / ``series_by_store`` /
  ``format_latency_table`` / ``format_breakdown_table``) for humans;
- a versioned JSON document (``results_document`` /
  ``write_results_json``, schema ``repro.bench/1``) so runs can be
  diffed and plotted by machines. Observed runs additionally carry
  per-op latency percentiles and the per-layer time breakdown.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

RESULTS_SCHEMA = "repro.bench/1"


def format_table(
    title: str,
    header: Sequence[str],
    rows: List[Sequence[object]],
) -> str:
    """Fixed-width table with a title line."""
    columns = len(header)
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, header has {columns}: {row!r}"
            )
        cells = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        rendered_rows.append(cells)
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def series_by_store(
    results: Dict[str, Dict[object, float]],
    x_values: Sequence[object],
    x_label: str,
    title: str,
) -> str:
    """One row per store, one column per x value (a figure's series)."""
    header = [x_label] + [str(x) for x in x_values]
    rows = []
    for store, series in results.items():
        rows.append([store] + [round(series.get(x, float("nan")), 3) for x in x_values])
    return format_table(title, header, rows)


def format_latency_table(results: Sequence[object], title: str = "latency (us)") -> str:
    """Percentile columns for observed runs (one row per store/op).

    ``results`` are :class:`~repro.bench.harness.BenchResult` objects;
    rows come from their ``latency_us`` field, so unobserved runs simply
    contribute nothing.
    """
    header = ["store", "workload", "op", "p50", "p95", "p99", "mean"]
    rows: List[Sequence[object]] = []
    for result in results:
        for op, ps in sorted(getattr(result, "latency_us", {}).items()):
            rows.append(
                [
                    result.store,
                    result.workload,
                    op,
                    ps.get("p50", 0.0),
                    ps.get("p95", 0.0),
                    ps.get("p99", 0.0),
                    ps.get("mean", 0.0),
                ]
            )
    if not rows:
        return f"{title}\n(no observed runs — pass observe=True)"
    return format_table(title, header, rows)


def format_breakdown_table(
    results: Sequence[object], title: str = "virtual-time breakdown (ms)"
) -> str:
    """Per-layer virtual-time table for observed runs.

    Layers overlap (a compaction span contains its device time), so the
    columns answer "how busy was each layer", not "a partition of the
    run" — ``total`` is the run's virtual time for reference.
    """
    header = ["store", "workload", "total", "device", "journal", "compaction", "stalls"]
    rows: List[Sequence[object]] = []
    for result in results:
        breakdown = getattr(result, "breakdown_ns", {})
        if not breakdown:
            continue
        rows.append(
            [
                result.store,
                result.workload,
                round(result.virtual_ns / 1e6, 3),
            ]
            + [
                round(breakdown.get(layer, 0) / 1e6, 3)
                for layer in ("device", "journal", "compaction", "stalls")
            ]
        )
    if not rows:
        return f"{title}\n(no observed runs — pass observe=True)"
    return format_table(title, header, rows)


def results_document(
    results: Sequence[object],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Versioned machine-readable document for a list of BenchResults."""
    return {
        "schema": RESULTS_SCHEMA,
        "meta": dict(meta) if meta else {},
        "results": [r.to_dict() for r in results],
    }


def write_results_json(
    path: str,
    results: Sequence[object],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write ``results_document`` to ``path``; returns the document."""
    doc = results_document(results, meta)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
