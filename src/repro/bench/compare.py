"""Diff two ``repro.bench/1`` documents — the CI perf-regression gate.

:func:`compare_documents` matches result rows between a *baseline* and a
*current* document by their identity key (store, workload, value size,
op count, channels, threads) and checks each guarded metric against a
relative threshold plus an absolute floor::

    regressed  iff  current > baseline * (1 + threshold) + floor

The floor keeps tiny absolute wobbles on near-zero metrics (a few
syncs, a handful of stall microseconds) from tripping a relative gate.
Rows present in the baseline but missing from the current run are
regressions too — a silently dropped benchmark must fail the gate.

The simulation is deterministic, so identical code produces *identical*
numbers and the thresholds only have to absorb deliberate behaviour
changes; ``make refresh-baselines`` re-records them when a change is
intentional.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SCHEMA = "repro.bench/1"
SPEED_SCHEMA = "repro.speed/1"
SOAK_SCHEMA = "repro.soak/1"
SERVE_SCHEMA = "repro.serve/1"
AMPLIFICATION_SCHEMA = "repro.amplification/1"
SLO_SCHEMA = "repro.slo/1"

#: machine-readable report schema emitted by ``compare --json``
COMPARE_SCHEMA = "repro.compare/1"


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: relative threshold + absolute floor.

    ``higher_is_better`` flips the direction: a wall-clock throughput
    metric regresses when it *drops* below its limit.
    """

    name: str
    threshold: float
    floor: float
    higher_is_better: bool = False

    def limit(self, base: float) -> float:
        if self.higher_is_better:
            return base * (1.0 - self.threshold) - self.floor
        return base * (1.0 + self.threshold) + self.floor

    def is_regression(self, base: float, current: float) -> bool:
        if self.higher_is_better:
            return current < self.limit(base)
        return current > self.limit(base)


#: the gate's default metric set; all are lower-is-better
DEFAULT_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("us_per_op", 0.10, 0.01),
    MetricSpec("put_p99_us", 0.25, 5.0),
    MetricSpec("stall_ns", 0.25, 5e6),
    MetricSpec("device_bytes_written", 0.25, 64 * 1024),
    MetricSpec("syncs", 0.10, 2.0),
)

#: the ``repro.speed/1`` gate: wall-clock throughput, higher-is-better.
#: The threshold is deliberately generous (fail only below half the
#: recorded baseline) because host hardware and interpreter version move
#: wall-clock numbers in ways the deterministic virtual-time metrics
#: never experience.
SPEED_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("ops_per_sec", 0.50, 0.0, higher_is_better=True),
)

#: the ``repro.soak/1`` stability gate (all lower-is-better, all
#: deterministic virtual-time numbers). ``windowed_p999_us`` is the
#: worst windowed p99.9 — the spike a user actually hits;
#: ``p999_ratio`` is that spike relative to the median window, the
#: paper-style stability measure; ``max_stall_ns`` the single longest
#: write stall; ``blocked_ns`` the unified stall + slowdown total.
#: Floors absorb near-zero wobble: a tuned run whose worst window is a
#: few microseconds must not fail the gate over nanosecond noise.
SOAK_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("windowed_p999_us", 0.25, 50.0),
    MetricSpec("p999_ratio", 0.25, 0.5),
    MetricSpec("max_stall_ns", 0.25, 1e6),
    MetricSpec("blocked_ns", 0.25, 5e6),
)

#: the ``repro.serve/1`` multi-tenant gate (all lower-is-better,
#: deterministic virtual-time numbers). ``worst_tenant_p999_us`` is the
#: serving headline — the tail the worst-off tenant actually gets;
#: ``fairness_ratio`` (worst/best tenant p99) is the multi-tenant SLA
#: measure; ``shed`` counts refused requests (a fair cluster should not
#: start shedding more than its recorded baseline); ``blocked_ns`` sums
#: writer-not-progressing time over every shard. Floors absorb
#: near-zero wobble on the tuned variant.
SERVE_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("worst_tenant_p999_us", 0.25, 50.0),
    MetricSpec("worst_tenant_p99_us", 0.25, 25.0),
    MetricSpec("fairness_ratio", 0.25, 0.5),
    MetricSpec("shed", 0.25, 20.0),
    MetricSpec("blocked_ns", 0.25, 5e6),
)

#: the ``repro.amplification/1`` gate (all lower-is-better ratios from
#: deterministic virtual-time runs). ``wa_device`` and ``wa_compaction``
#: are the headline write-amplification claims the kv variant exists
#: for; ``ra_point`` absorbs more wobble because probe counts shift with
#: any compaction-shape change; ``space_amp`` guards vLog garbage from
#: piling up unreclaimed.
AMPLIFICATION_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("wa_device", 0.10, 0.05),
    MetricSpec("wa_compaction", 0.10, 0.05),
    MetricSpec("ra_point", 0.25, 0.25),
    MetricSpec("space_amp", 0.10, 0.05),
)

#: the ``repro.slo/1`` alerting gate (all lower-is-better, fully
#: deterministic). Alert *counts* are gated exactly (threshold 0 with a
#: 0.5 floor: any extra alert on a variant that held its SLOs fails);
#: ``bad_events`` (summed SLO violations) and ``max_burn`` (worst burn
#: rate any monitor saw) absorb moderate wobble because deliberate
#: workload changes shift them without changing the alert story.
SLO_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("alerts_total", 0.0, 0.5),
    MetricSpec("fast_burn_alerts", 0.0, 0.5),
    MetricSpec("bad_events", 0.25, 20.0),
    MetricSpec("max_burn", 0.25, 1.0),
)

#: row-identity fields; extras are included when present
_KEY_FIELDS = ("store", "workload", "value_size", "ops")
_KEY_EXTRAS = ("num_channels", "background_threads")

RowKey = Tuple[object, ...]


def row_key(row: Dict[str, object]) -> RowKey:
    extras = row.get("extras") or {}
    return tuple(row.get(f) for f in _KEY_FIELDS) + tuple(
        extras.get(f) for f in _KEY_EXTRAS
    )


def _metric_value(row: Dict[str, object], name: str) -> Optional[float]:
    if name == "put_p99_us":
        latency = row.get("latency_us") or {}
        put = latency.get("put") or {}
        value = put.get("p99")
    else:
        value = row.get(name)
    if value is None:
        return None
    return float(value)


@dataclass
class MetricDelta:
    """One (row, metric) comparison."""

    key: RowKey
    metric: str
    base: float
    current: float
    threshold: float
    regressed: bool
    higher_is_better: bool = False

    @property
    def ratio(self) -> float:
        if self.base == 0:
            return 0.0 if self.current == 0 else float("inf")
        return self.current / self.base


@dataclass
class CompareReport:
    """Everything the gate found, regressions first in rendering."""

    base_meta: Dict[str, object] = field(default_factory=dict)
    cur_meta: Dict[str, object] = field(default_factory=dict)
    deltas: List[MetricDelta] = field(default_factory=list)
    missing_rows: List[RowKey] = field(default_factory=list)
    new_rows: List[RowKey] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.missing_rows


def parse_thresholds(spec: Optional[str]) -> Optional[Dict[str, float]]:
    """Parse a ``metric=frac,metric=frac`` CLI override string."""
    if not spec:
        return None
    overrides: Dict[str, float] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad threshold {item!r}; expected metric=fraction"
            )
        name, _, value = item.partition("=")
        overrides[name.strip()] = float(value)
    return overrides


def _check_schema(doc: Dict[str, object], which: str) -> str:
    schema = doc.get("schema") if isinstance(doc, dict) else None
    known = (
        SCHEMA,
        SPEED_SCHEMA,
        SOAK_SCHEMA,
        SERVE_SCHEMA,
        AMPLIFICATION_SCHEMA,
        SLO_SCHEMA,
    )
    if schema not in known:
        raise ValueError(
            f"{which} document is not one of "
            f"{', '.join(repr(s) for s in known)} "
            f"(schema={schema if isinstance(doc, dict) else doc!r})"
        )
    if not isinstance(doc.get("results"), list):
        raise ValueError(f"{which} document has no results list")
    return schema


def compare_documents(
    base_doc: Dict[str, object],
    cur_doc: Dict[str, object],
    thresholds: Optional[Dict[str, float]] = None,
) -> CompareReport:
    """Compare current against baseline; thresholds override by name.

    Both documents must share a schema; ``repro.bench/1`` gates the
    lower-is-better virtual-time metrics, ``repro.speed/1`` gates
    wall-clock throughput (higher-is-better).
    """
    base_schema = _check_schema(base_doc, "baseline")
    cur_schema = _check_schema(cur_doc, "current")
    if base_schema != cur_schema:
        raise ValueError(
            f"schema mismatch: baseline is {base_schema!r}, "
            f"current is {cur_schema!r}"
        )
    if base_schema == SPEED_SCHEMA:
        metric_set = SPEED_METRICS
    elif base_schema == SOAK_SCHEMA:
        metric_set = SOAK_METRICS
    elif base_schema == SERVE_SCHEMA:
        metric_set = SERVE_METRICS
    elif base_schema == AMPLIFICATION_SCHEMA:
        metric_set = AMPLIFICATION_METRICS
    elif base_schema == SLO_SCHEMA:
        metric_set = SLO_METRICS
    else:
        metric_set = DEFAULT_METRICS
    metrics = [
        MetricSpec(
            m.name,
            thresholds[m.name] if thresholds and m.name in thresholds else m.threshold,
            m.floor,
            m.higher_is_better,
        )
        for m in metric_set
    ]
    base_rows = {row_key(r): r for r in base_doc["results"]}
    cur_rows = {row_key(r): r for r in cur_doc["results"]}

    report = CompareReport(
        base_meta=dict(base_doc.get("meta") or {}),
        cur_meta=dict(cur_doc.get("meta") or {}),
    )
    for key, base_row in base_rows.items():
        cur_row = cur_rows.get(key)
        if cur_row is None:
            report.missing_rows.append(key)
            continue
        for spec in metrics:
            base = _metric_value(base_row, spec.name)
            current = _metric_value(cur_row, spec.name)
            if base is None or current is None:
                continue
            report.deltas.append(
                MetricDelta(
                    key=key,
                    metric=spec.name,
                    base=base,
                    current=current,
                    threshold=spec.threshold,
                    regressed=spec.is_regression(base, current),
                    higher_is_better=spec.higher_is_better,
                )
            )
    report.new_rows = [k for k in cur_rows if k not in base_rows]
    return report


def _key_label(key: RowKey) -> str:
    store, workload, value_size, ops, channels, threads = key
    label = f"{store}/{workload} v{value_size} n{ops}"
    if channels is not None or threads is not None:
        label += f" ch{channels or 1}xt{threads or 1}"
    return label


def report_payload(report: CompareReport) -> Dict[str, object]:
    """The machine-readable ``repro.compare/1`` document for a report.

    Everything :func:`render_compare` prints, as data: per-delta rows
    with base/current/ratio/limit, the missing/new row keys, and the
    verdict — so CI can annotate a failed gate without scraping text.
    """
    return {
        "schema": COMPARE_SCHEMA,
        "base_meta": dict(report.base_meta),
        "cur_meta": dict(report.cur_meta),
        "passed": report.passed,
        "regression_count": len(report.regressions),
        "missing_rows": [list(k) for k in report.missing_rows],
        "new_rows": [list(k) for k in report.new_rows],
        "deltas": [
            {
                "row": _key_label(d.key),
                "key": list(d.key),
                "metric": d.metric,
                "base": d.base,
                "current": d.current,
                "ratio": (
                    round(d.ratio, 6)
                    if d.ratio != float("inf")
                    else None
                ),
                "threshold": d.threshold,
                "higher_is_better": d.higher_is_better,
                "regressed": d.regressed,
            }
            for d in report.deltas
        ],
    }


def render_compare(report: CompareReport) -> str:
    """Human summary: regressions first, then per-row deltas, verdict."""
    lines: List[str] = []
    title = "perf gate: current vs baseline"
    lines.append(title)
    lines.append("-" * len(title))
    for key in report.missing_rows:
        lines.append(f"MISSING  {_key_label(key)} — row absent from current run")
    for delta in report.regressions:
        sign = "-" if delta.higher_is_better else "+"
        lines.append(
            f"REGRESSED  {_key_label(delta.key)}  {delta.metric}: "
            f"{delta.base:g} -> {delta.current:g} "
            f"({delta.ratio:.3f}x, limit {sign}{delta.threshold * 100:.0f}%)"
        )
    header = (
        f"{'row':<38} {'metric':<22} {'base':>14} {'current':>14} {'ratio':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for delta in report.deltas:
        flag = " <-- REGRESSED" if delta.regressed else ""
        lines.append(
            f"{_key_label(delta.key):<38} {delta.metric:<22} "
            f"{delta.base:>14g} {delta.current:>14g} "
            f"{delta.ratio:>8.3f}{flag}"
        )
    for key in report.new_rows:
        lines.append(f"(new row, not gated: {_key_label(key)})")
    lines.append("")
    if report.passed:
        lines.append("PASS: no metric exceeded its threshold")
    else:
        lines.append(
            f"FAIL: {len(report.regressions)} regression(s), "
            f"{len(report.missing_rows)} missing row(s)"
        )
    return "\n".join(lines)
