"""Benchmark harness reproducing the paper's evaluation.

- :mod:`repro.bench.db_bench` — the four micro-benchmarks of Figure 4;
- :mod:`repro.bench.ycsb` — the YCSB phases of Figure 5;
- :mod:`repro.bench.rawio` — the Figure 2a sync-cost study;
- :mod:`repro.bench.figures` — one entry point per table/figure;
- :mod:`repro.bench.harness` — scaling model, result records, threads.
"""

from repro.bench.harness import BenchResult, ScaledConfig, ThreadedDriver

__all__ = ["BenchResult", "ScaledConfig", "ThreadedDriver"]
