"""Run the benchmark CLI: ``python -m repro.bench <target>``."""

import sys

from repro.bench.cli import main

sys.exit(main())
