"""The Figure 2a raw-I/O study: Async vs Direct vs Sync file writing.

The paper writes 4 GB and 8 GB of data in 2 MB files to the SSD through
Ext4 and times three strategies:

- **Async** — plain buffered writes (page-cache speed; writeback happens
  later);
- **Direct** — O_DIRECT writes, blocking on the device per file;
- **Sync**  — buffered writes plus an fsync per file.

Because the file content is synthetic, the simulated files use zero-run
extents and the experiment runs at the paper's full data sizes. The
paper's anchors: Async 0.83 s / 1.72 s, Direct 8.18 s / 16.42 s, Sync
10.06 s / 22.44 s for 4 GB / 8 GB (13.0x Async-to-Sync overall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fs.stack import StackConfig, StorageStack
from repro.sim.clock import to_seconds
from repro.sim.latency import GIB, MIB, PM883

STRATEGIES = ("async", "direct", "sync")


@dataclass
class RawIOResult:
    strategy: str
    total_bytes: int
    file_bytes: int
    seconds: float


def _fresh_stack() -> StorageStack:
    # Paper host: 2 TB DRAM — the page cache never pressures writers.
    return StorageStack(StackConfig(device=PM883, pagecache_bytes=64 * GIB))


def run_rawio(
    strategy: str,
    total_bytes: int = 4 * GIB,
    file_bytes: int = 2 * MIB,
) -> RawIOResult:
    """Write ``total_bytes`` in ``file_bytes`` files with one strategy."""
    strategy = strategy.lower()
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; known: {STRATEGIES}")
    stack = _fresh_stack()
    fs = stack.fs
    t = 0
    count = total_bytes // file_bytes
    for index in range(count):
        handle, t = fs.create(f"data/file-{index:06d}", at=t)
        if strategy == "direct":
            t = handle.write_direct(file_bytes, at=t)
        else:
            t = handle.append_zeros(file_bytes, at=t)
            if strategy == "sync":
                t = handle.fsync(at=t, reason="rawio")
        handle.close()
    return RawIOResult(
        strategy=strategy,
        total_bytes=total_bytes,
        file_bytes=file_bytes,
        seconds=to_seconds(t),
    )


def run_fig2a(
    sizes: List[int] = (4 * GIB, 8 * GIB),
    file_bytes: int = 2 * MIB,
) -> Dict[str, Dict[int, RawIOResult]]:
    """All three strategies over the paper's two data sizes."""
    results: Dict[str, Dict[int, RawIOResult]] = {}
    for strategy in STRATEGIES:
        results[strategy] = {}
        for size in sizes:
            results[strategy][size] = run_rawio(strategy, size, file_bytes)
    return results
