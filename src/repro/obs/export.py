"""JSON export and the per-layer virtual-time breakdown.

The exported document is versioned (``schema``) and fully
machine-readable so benchmark trajectories can be diffed across runs:

.. code-block:: text

    {
      "schema": "repro.obs/1",
      "meta": {...},                       # caller-supplied run context
      "counters": {"db.stall.l0_stop_ns": 0, ...},
      "gauges": {...},
      "histograms": {"db.put_ns": {"count", "sum", "min", "max",
                                   "mean", "p50", "p95", "p99"}, ...},
      "sources": {"device": {...}, "sync": {...}, ...},
      "breakdown_ns": {"device", "journal", "compaction", "stalls"},
      "spans": {"collected": N, "dropped": M, "roots": [...]}   # first K
    }

``layer_breakdown`` answers the paper's core question — *where did the
virtual time go?* — from well-known metric names: device busy time from
the device stats source, journal-commit time from the ``journal.commit``
span histogram, compaction time from the minor/major compaction span
histograms, and stall time from the store's attributed stall counters.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs.metrics import MetricRegistry

SCHEMA = "repro.obs/1"

#: stall counters summed into the breakdown's "stalls" entry
STALL_COUNTERS = (
    "db.stall.l0_slowdown_ns",
    "db.stall.memtable_wait_ns",
    "db.stall.l0_stop_ns",
)

#: span histograms summed into the breakdown's "compaction" entry
COMPACTION_SPANS = ("span.db.compaction.minor_ns", "span.db.compaction.major_ns")


def layer_breakdown(registry: MetricRegistry) -> Dict[str, int]:
    """Virtual ns attributed to each layer of the stack.

    The layers overlap by design (a compaction's span includes its
    device time; an fsync stall includes a journal commit) — the
    breakdown answers "how busy was each layer", not "a partition of
    wall time".
    """
    snapshot = registry.snapshot()
    sources = snapshot.get("sources", {})
    histograms = snapshot.get("histograms", {})
    counters = snapshot.get("counters", {})

    device = int(sources.get("device", {}).get("busy_ns", 0))
    journal = int(histograms.get("span.journal.commit_ns", {}).get("sum", 0))
    compaction = sum(
        int(histograms.get(name, {}).get("sum", 0)) for name in COMPACTION_SPANS
    )
    stalls = sum(int(counters.get(name, 0)) for name in STALL_COUNTERS)
    return {
        "device": device,
        "journal": journal,
        "compaction": compaction,
        "stalls": stalls,
    }


def registry_document(
    registry: MetricRegistry,
    meta: Optional[Dict[str, object]] = None,
    max_spans: int = 1000,
) -> Dict[str, object]:
    """The full versioned export document for one registry."""
    snapshot = registry.snapshot()
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "meta": dict(meta) if meta else {},
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": snapshot.get("histograms", {}),
        "windowed": snapshot.get("windowed", {}),
        "sources": snapshot.get("sources", {}),
        "breakdown_ns": layer_breakdown(registry),
        "spans": {
            "collected": len(registry.spans),
            "dropped": registry.spans_dropped,
            "roots": [s.to_dict() for s in registry.spans[:max_spans]],
        },
    }
    if registry.io_log is not None:
        doc["io"] = {
            "events": len(registry.io_log.events),
            "dropped": registry.io_log.dropped,
            "totals": registry.io_log.totals(),
        }
    return doc


def to_json(
    registry: MetricRegistry,
    meta: Optional[Dict[str, object]] = None,
    indent: int = 2,
) -> str:
    return json.dumps(registry_document(registry, meta), indent=indent, sort_keys=True)


def write_json(
    path: str,
    registry: MetricRegistry,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the export document to ``path``; returns the document."""
    doc = registry_document(registry, meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
