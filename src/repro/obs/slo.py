"""Declarative SLOs, error budgets, and multi-window burn-rate alerts.

The serving north star needs the SRE vocabulary, evaluated in virtual
time: an :class:`SLOSpec` states an objective ("99.9% of requests under
100 us", "99.9% of requests admitted"), an :class:`SLOMonitor` accounts
good/bad events against the error budget, and :class:`BurnRateRule`\\ s
fire alerts the way the Google SRE workbook prescribes — **multi-window
multi-burn-rate**: an alert fires only when *both* a long window and a
short window burn the budget faster than the rule's threshold (the long
window proves the problem is real, the short window proves it is still
happening), and resolves once the short window drops back under.

Burn rate is ``(bad / total) / (1 - target)``: 1.0 means the error
budget is consumed exactly at the rate the SLO allows over its period;
14.4 (the classic fast-burn threshold) means a 30-day budget would be
gone in two days. Our horizons are virtual milliseconds, not months, so
:func:`default_burn_rules` scales the canonical window pairs to the sim
horizon instead of hardcoding hours.

Good/bad events are pulled, not pushed: a source object's ``take(at)``
returns the *delta* of (good, bad) since the last pull, so monitors
piggyback on instruments the hot path already records —
:class:`CounterRatioSource` reads two counters (served vs shed for the
availability objective), :class:`LatencyThresholdSource` reads a
windowed histogram's exact over-threshold bucket counts
(:meth:`~repro.obs.metrics.Histogram.count_over`, exact at bucket
bounds, so good/bad stay monotone integers). Nothing here allocates
when telemetry is off because nothing here is constructed then.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.obs.metrics import Counter, WindowedHistogram

#: objective kinds
LATENCY = "latency"
AVAILABILITY = "availability"


@dataclass(frozen=True)
class SLOSpec:
    """One objective: a target fraction of events must be good.

    ``threshold_ns`` only applies to latency objectives (an event is bad
    when its latency exceeds the threshold); availability objectives
    count shed/refused events as bad directly.
    """

    name: str
    kind: str  # LATENCY | AVAILABILITY
    target: float  # e.g. 0.999
    threshold_ns: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.kind not in (LATENCY, AVAILABILITY):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == LATENCY and self.threshold_ns <= 0:
            raise ValueError("latency SLO needs a positive threshold_ns")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "threshold_ns": self.threshold_ns,
        }


@dataclass(frozen=True)
class BurnRateRule:
    """One alert rule: fire when both windows burn >= the threshold."""

    name: str
    long_window_ns: int
    short_window_ns: int
    burn_threshold: float

    def __post_init__(self) -> None:
        if not 0 < self.short_window_ns <= self.long_window_ns:
            raise ValueError(
                f"need 0 < short <= long, got {self.short_window_ns} / "
                f"{self.long_window_ns}"
            )
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "long_window_ns": self.long_window_ns,
            "short_window_ns": self.short_window_ns,
            "burn_threshold": self.burn_threshold,
        }


def default_burn_rules(horizon_ns: int) -> Tuple[BurnRateRule, ...]:
    """The SRE-workbook fast/slow pair, scaled to the sim horizon.

    The canonical 30-day SLO uses (1h long, 5m short, 14.4x) for the
    fast page and (6h long, 30m short, 6x) for the slow one — ratios of
    roughly (period/720, period/8640) and (period/120, period/1440).
    A sim horizon is milliseconds, so we keep the *shape* (long window
    ~12x the short one, fast rule an order of magnitude shorter than the
    slow) at proportions that leave several samples per short window:
    fast = (horizon/10, horizon/40, 14.4), slow = (horizon/3, horizon/10,
    6.0).
    """
    if horizon_ns <= 0:
        raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
    return (
        BurnRateRule(
            "fast-burn",
            long_window_ns=max(horizon_ns // 10, 1),
            short_window_ns=max(horizon_ns // 40, 1),
            burn_threshold=14.4,
        ),
        BurnRateRule(
            "slow-burn",
            long_window_ns=max(horizon_ns // 3, 1),
            short_window_ns=max(horizon_ns // 10, 1),
            burn_threshold=6.0,
        ),
    )


class CounterRatioSource:
    """Good/bad deltas from two monotone counters (served vs shed)."""

    __slots__ = ("good", "bad", "_last_good", "_last_bad")

    def __init__(self, good: Counter, bad: Counter) -> None:
        self.good = good
        self.bad = bad
        self._last_good = 0
        self._last_bad = 0

    def take(self, at: int) -> Tuple[int, int]:
        good, bad = self.good.value, self.bad.value
        delta = (good - self._last_good, bad - self._last_bad)
        self._last_good, self._last_bad = good, bad
        return delta


class LatencyThresholdSource:
    """Good/bad deltas from a windowed histogram's run-wide totals.

    Bad is the exact count of recorded values over ``threshold_ns``
    (:meth:`~repro.obs.metrics.Histogram.count_over` — pick a 1-2-5
    bucket bound, e.g. 50_000 or 100_000 ns, for exactness).
    """

    __slots__ = ("hist", "threshold_ns", "_last_total", "_last_over")

    def __init__(self, hist: WindowedHistogram, threshold_ns: int) -> None:
        self.hist = hist
        self.threshold_ns = threshold_ns
        self._last_total = 0
        self._last_over = 0

    def take(self, at: int) -> Tuple[int, int]:
        total = self.hist.total.count
        over = self.hist.total.count_over(self.threshold_ns)
        delta = (
            (total - self._last_total) - (over - self._last_over),
            over - self._last_over,
        )
        self._last_total, self._last_over = total, over
        return delta


@dataclass
class Alert:
    """One fired alert; ``resolved_at_ns`` stays None while active."""

    slo: str
    rule: str
    fired_at_ns: int
    burn_long: float
    burn_short: float
    peak_burn: float
    resolved_at_ns: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "rule": self.rule,
            "fired_at_ns": self.fired_at_ns,
            "resolved_at_ns": self.resolved_at_ns,
            "burn_long": round(self.burn_long, 3),
            "burn_short": round(self.burn_short, 3),
            "peak_burn": round(self.peak_burn, 3),
        }


class SLOMonitor:
    """Accounts one SLO's good/bad stream and evaluates its alert rules.

    Call :meth:`observe` at every sampler tick (or directly): it pulls
    the source's delta, appends a ``(at, good, bad)`` sample, trims
    samples older than the longest rule window, and fires/resolves
    alerts. ``last_burn`` is the first rule's long-window burn after the
    latest tick — the number the dashboard lane plots.
    """

    def __init__(
        self,
        spec: SLOSpec,
        source,
        rules: Tuple[BurnRateRule, ...],
    ) -> None:
        if not rules:
            raise ValueError("SLOMonitor needs at least one BurnRateRule")
        self.spec = spec
        self.source = source
        self.rules = tuple(rules)
        self._max_window = max(r.long_window_ns for r in self.rules)
        self.samples: Deque[Tuple[int, int, int]] = deque()
        self.good_total = 0
        self.bad_total = 0
        self.alerts: List[Alert] = []
        self._active: dict = {}
        self.last_burn = 0.0
        self.peak_burn = 0.0

    # ------------------------------------------------------------------

    def observe(self, at: int) -> None:
        good, bad = self.source.take(at)
        self.good_total += good
        self.bad_total += bad
        self.samples.append((at, good, bad))
        cutoff = at - self._max_window
        while self.samples and self.samples[0][0] <= cutoff:
            self.samples.popleft()
        self._evaluate(at)

    def burn_rate(self, at: int, window_ns: int) -> float:
        """Budget-burn multiple over the trailing window ending at ``at``."""
        good = bad = 0
        cutoff = at - window_ns
        for t, g, b in reversed(self.samples):
            if t <= cutoff:
                break
            good += g
            bad += b
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.spec.target)

    def _evaluate(self, at: int) -> None:
        for index, rule in enumerate(self.rules):
            burn_long = self.burn_rate(at, rule.long_window_ns)
            burn_short = self.burn_rate(at, rule.short_window_ns)
            if index == 0:
                self.last_burn = burn_long
                if burn_long > self.peak_burn:
                    self.peak_burn = burn_long
            active = self._active.get(rule.name)
            if (
                burn_long >= rule.burn_threshold
                and burn_short >= rule.burn_threshold
            ):
                if active is None:
                    alert = Alert(
                        slo=self.spec.name,
                        rule=rule.name,
                        fired_at_ns=at,
                        burn_long=burn_long,
                        burn_short=burn_short,
                        peak_burn=burn_long,
                    )
                    self._active[rule.name] = alert
                    self.alerts.append(alert)
                elif burn_long > active.peak_burn:
                    active.peak_burn = burn_long
            elif active is not None and burn_short < rule.burn_threshold:
                active.resolved_at_ns = at
                del self._active[rule.name]

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return self.good_total + self.bad_total

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (1.0 = SLO exactly missed)."""
        allowed = (1.0 - self.spec.target) * self.total
        if allowed <= 0.0:
            return 0.0
        return self.bad_total / allowed

    def alerts_for(self, rule_name: str) -> List[Alert]:
        return [a for a in self.alerts if a.rule == rule_name]

    def snapshot(self) -> dict:
        """One JSON-ready dict: spec, budget, rules, alerts."""
        return {
            "spec": self.spec.to_dict(),
            "rules": [r.to_dict() for r in self.rules],
            "good": self.good_total,
            "bad": self.bad_total,
            "budget_consumed": round(self.budget_consumed, 4),
            "peak_burn": round(self.peak_burn, 3),
            "alerts": [a.to_dict() for a in self.alerts],
        }
