"""Device I/O event log — the storage core behind I/O tracing.

An :class:`IOLog` is a bounded in-memory record of device operations
(reads, writes, flushes) with their virtual submission and completion
times. It holds the storage and summary logic that used to live inside
``repro.sim.trace.IOTrace``; the trace class is now a thin attach/detach
adapter over this log, and a :class:`~repro.obs.metrics.MetricRegistry`
can own one directly (see ``MetricRegistry.trace_io``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class IOEvent:
    """One device operation."""

    kind: str  # 'read' | 'write' | 'flush'
    nbytes: int
    submitted_at: int
    completed_at: int
    sequential: bool

    @property
    def queued_ns(self) -> int:
        """Time spent waiting behind earlier I/O."""
        return max(self.completed_at - self.submitted_at, 0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "nbytes": self.nbytes,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "sequential": self.sequential,
        }


class IOLog:
    """Bounded list of :class:`IOEvent` with totals and a timeline view."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: List[IOEvent] = []
        self.dropped = 0

    def record(
        self, kind: str, nbytes: int, at: int, done: int, sequential: bool
    ) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(IOEvent(kind, nbytes, int(at), int(done), sequential))

    def reset(self) -> None:
        self.events.clear()
        self.dropped = 0

    def totals(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
            out[f"{event.kind}_bytes"] = (
                out.get(f"{event.kind}_bytes", 0) + event.nbytes
            )
        return out

    def format_timeline(self, limit: int = 50) -> str:
        """First ``limit`` events as a readable timeline (debugging aid)."""
        lines = ["      t(us)   done(us)  op     bytes"]
        for event in self.events[:limit]:
            lines.append(
                f"{event.submitted_at / 1000:11.1f} "
                f"{event.completed_at / 1000:10.1f}  "
                f"{event.kind:5s} {event.nbytes:>9d}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
