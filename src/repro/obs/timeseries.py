"""Continuous telemetry: a virtual-time sampler over a MetricRegistry.

Every observability surface before this module was end-of-run — the
``repro.obs/1`` snapshot, the Chrome trace, the bench documents — so a
mid-run stall storm is invisible until the final percentiles wash it
out. "On Performance Stability in LSM-based Storage Systems" (PAPERS.md)
argues LSM behaviour must be judged *over time*; this module is that
axis: a :class:`TimeSeriesSampler` scheduled on a sim
:class:`~repro.sim.events.EventQueue` scrapes a
:class:`~repro.obs.metrics.MetricRegistry` at a fixed virtual interval
and appends into ring-buffered :class:`Series`.

What one tick records, per instrument kind:

- **counters** — the delta since the previous tick (a rate series, one
  point per tick, named ``<counter>.delta``);
- **gauges** — the current level;
- **windowed histograms** — for every window that *closed* since the
  previous tick: the window's op count and its percentiles
  (``<name>.ops``, ``<name>.p50``, ``<name>.p999``), timestamped at the
  window's end. Windows are consumed through a per-series cursor, so
  each is emitted exactly once;
- **probes** — caller-registered ``fn(at)`` callables for levels that
  live outside the registry (admission queue depth, rate-limiter
  tokens, compaction debt). A probe returning ``None`` skips the tick,
  so sparse signals cost nothing;
- **SLO monitors** — attached :class:`~repro.obs.slo.SLOMonitor`
  objects observe the same tick and append their current burn rate as
  ``slo.<name>.burn``.

Everything is virtual-time deterministic: the sampler never touches the
clock it is scheduled on (ticks are read-only), so enabling sampling
changes *no* simulated timing — the same discipline as the PR 1
registry. When sampling is off nothing here is ever constructed, which
keeps the disabled path allocation-free.

Exports a versioned ``repro.timeseries/1`` document.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricRegistry

TIMESERIES_SCHEMA = "repro.timeseries/1"

#: fn(at) -> value or None; a caller-owned level read at sample time
Probe = Callable[[int], Optional[float]]


def _percentile_label(q: float) -> str:
    """``50 -> "p50"``, ``99.9 -> "p999"`` (the repo's field idiom)."""
    text = f"{q:g}".replace(".", "")
    return f"p{text}"


class Series:
    """One named ring-buffered time series of ``(virtual_ns, value)``.

    Bounded so an arbitrarily long soak cannot grow host memory without
    bound: once ``capacity`` points are held the oldest drop and
    ``dropped`` counts them — the export says so rather than silently
    truncating.
    """

    __slots__ = ("name", "kind", "capacity", "times", "values", "dropped")

    def __init__(self, name: str, kind: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "window" | "probe" | "slo"
        self.capacity = capacity
        self.times: Deque[int] = deque(maxlen=capacity)
        self.values: Deque[float] = deque(maxlen=capacity)
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def append(self, at: int, value: float) -> None:
        if len(self.times) == self.capacity:
            self.dropped += 1
        self.times.append(at)
        self.values.append(value)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def points(self) -> List[Tuple[int, float]]:
        return list(zip(self.times, self.values))

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "dropped": self.dropped,
            "points": [[t, v] for t, v in zip(self.times, self.values)],
        }

    def __repr__(self) -> str:
        return f"Series({self.name!r}, {self.kind}, n={len(self.times)})"


class TimeSeriesSampler:
    """Scrapes a registry at a fixed virtual interval into :class:`Series`.

    Drive it either by :meth:`attach`-ing to an
    :class:`~repro.sim.events.EventQueue` (the tick re-arms itself until
    :meth:`stop`) or by calling :meth:`sample` directly. Ticks are
    idempotent per timestamp — :meth:`finish` may land on an already
    sampled instant without double-counting deltas.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        interval_ns: int,
        capacity: int = 4096,
        percentiles: Sequence[float] = (50.0, 99.9),
    ) -> None:
        if not registry.enabled:
            raise ValueError(
                "TimeSeriesSampler needs an enabled MetricRegistry; the "
                "disabled path must never construct a sampler"
            )
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.capacity = capacity
        self.percentiles = tuple(percentiles)
        self._labels = tuple(_percentile_label(q) for q in self.percentiles)
        self.series: Dict[str, Series] = {}
        self.samples = 0
        self.last_sample_ns = -1
        self._counter_last: Dict[str, int] = {}
        self._window_cursor: Dict[str, int] = {}
        self._probes: List[Tuple[str, Probe]] = []
        self.monitors: List[object] = []  # SLOMonitor ducks
        self._stopped = False
        self._pending = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def add_probe(self, name: str, fn: Probe) -> None:
        """Sample ``fn(at)`` each tick into a ``probe`` series."""
        self._probes.append((name, fn))

    def add_monitor(self, monitor) -> None:
        """Evaluate an :class:`~repro.obs.slo.SLOMonitor` each tick."""
        self.monitors.append(monitor)

    def attach(self, events, first_at: Optional[int] = None) -> None:
        """Schedule the re-arming tick on ``events``.

        The timer keeps re-arming until :meth:`stop` (or :meth:`finish`)
        — safe against ``StorageStack.settle``-style drains because
        those check quiescence before stepping, the same contract the
        journal commit timer relies on.
        """
        start = (
            first_at
            if first_at is not None
            else events.clock.now + self.interval_ns
        )

        def tick(at: int) -> None:
            if self._stopped:
                return
            self.sample(at)
            self._pending = events.schedule(at + self.interval_ns, tick)

        self._pending = events.schedule(start, tick)

    def stop(self) -> None:
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def finish(self, at: int) -> None:
        """Take one final sample at ``at`` and disarm the timer."""
        self.sample(at)
        self.stop()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _series(self, name: str, kind: str) -> Series:
        cell = self.series.get(name)
        if cell is None:
            cell = self.series[name] = Series(name, kind, self.capacity)
        return cell

    def sample(self, at: int) -> None:
        """One scrape at virtual time ``at`` (no-op if already sampled)."""
        if at <= self.last_sample_ns:
            return
        self.last_sample_ns = at
        self.samples += 1
        registry = self.registry
        for name, counter in registry.iter_counters():
            value = counter.value
            delta = value - self._counter_last.get(name, 0)
            self._counter_last[name] = value
            self._series(f"{name}.delta", "counter").append(at, delta)
        for name, gauge in registry.iter_gauges():
            self._series(name, "gauge").append(at, gauge.value)
        for name, windowed in registry.iter_windowed():
            closed = at // windowed.window_ns
            cursor = self._window_cursor.get(name, 0)
            if closed <= cursor:
                continue
            for index in sorted(windowed.windows):
                if index < cursor or index >= closed:
                    continue
                hist = windowed.windows[index]
                end = (index + 1) * windowed.window_ns
                self._series(f"{name}.ops", "window").append(end, hist.count)
                for q, label in zip(self.percentiles, self._labels):
                    self._series(f"{name}.{label}", "window").append(
                        end, round(hist.percentile(q), 3)
                    )
            self._window_cursor[name] = closed
        for name, fn in self._probes:
            value = fn(at)
            if value is not None:
                self._series(name, "probe").append(at, value)
        for monitor in self.monitors:
            monitor.observe(at)
            self._series(f"slo.{monitor.spec.name}.burn", "slo").append(
                at, round(monitor.last_burn, 3)
            )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def document(
        self, meta: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        """The versioned ``repro.timeseries/1`` document."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "meta": dict(meta) if meta else {},
            "interval_ns": self.interval_ns,
            "capacity": self.capacity,
            "samples": self.samples,
            "last_sample_ns": self.last_sample_ns,
            "series": {
                name: self.series[name].to_dict()
                for name in sorted(self.series)
            },
        }
