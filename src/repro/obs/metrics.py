"""The metric registry: counters, gauges, fixed-bucket histograms, spans.

One :class:`MetricRegistry` is the sink for everything a simulated
machine observes about itself. Components grab their instruments once
(``registry.counter("device.queue_ns")``) and record into them on the
hot path; instruments are cached by name so every layer referring to the
same name shares the same cell.

Recording must be **zero-cost when disabled**: the default registry on a
:class:`~repro.fs.stack.StorageStack` is :data:`NULL_REGISTRY`, whose
instruments are shared no-op singletons and whose ``enabled`` flag lets
hot paths skip recording blocks entirely. Benchmark numbers are
therefore unaffected unless observability is explicitly requested — and
because recording never touches the virtual clock, enabling it changes
*no* simulated timing, only host-side cost.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import IOLog
from repro.obs.spans import NULL_SPAN, Span


def default_latency_buckets() -> Tuple[int, ...]:
    """1-2-5 log-spaced upper bounds from 1 us to 50 s (virtual ns)."""
    bounds: List[int] = []
    for exp in range(3, 11):
        for mantissa in (1, 2, 5):
            bounds.append(mantissa * 10**exp)
    return tuple(bounds)


DEFAULT_LATENCY_BUCKETS = default_latency_buckets()


class Counter:
    """A monotonically increasing integer cell."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A settable level (last-write-wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in an implicit overflow bucket. Percentiles interpolate linearly
    inside the winning bucket and are clamped to the observed min/max,
    so small-sample answers stay sane.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[int]] = None
    ) -> None:
        self.name = name
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min = 0
        self.max = 0

    def record(self, value: int) -> None:
        value = int(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.sum += value
        self.counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated value at percentile ``q`` (0 < q <= 100)."""
        if not 0 < q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                fraction = (target - cumulative) / bucket_count
                value = lower + (upper - lower) * fraction
                return float(min(max(value, self.min), self.max))
            cumulative += bucket_count
        return float(self.max)

    def count_over(self, bound: int) -> int:
        """Recorded values strictly greater than ``bound``.

        Exact when ``bound`` is one of the bucket bounds (buckets are
        inclusive upper bounds, so the buckets above it hold precisely
        the values ``> bound``) — and therefore a monotone integer as
        the histogram grows, which is what SLO good/bad accounting
        needs. A non-bound threshold counts the whole enclosing bucket
        as over (the threshold is effectively rounded down to the
        bucket's lower bound).
        """
        index = bisect.bisect_left(self.bounds, bound)
        if index < len(self.bounds) and self.bounds[index] == bound:
            index += 1
        return sum(self.counts[index:])

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min = 0
        self.max = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.0f})"


class WindowedHistogram:
    """A histogram per fixed-width virtual-time window.

    Long-horizon stability analysis ("On Performance Stability in
    LSM-based Storage Systems") needs latency percentiles *per window*,
    not per run: a store can have a flat overall p99 and still spike to
    100x in one bad minute. Values are recorded with the virtual time
    they belong to (for request latency: the *arrival* time, so an op
    delayed across a window boundary is charged to the window whose load
    caused the delay) and land in the histogram of window
    ``at // window_ns``.

    Windows are materialised lazily in a dict, so sparse timelines cost
    nothing, and every window shares the same bucket layout so
    percentiles are comparable across the run.
    """

    __slots__ = ("name", "window_ns", "bounds", "windows", "total")

    def __init__(
        self,
        name: str,
        window_ns: int,
        buckets: Optional[Sequence[int]] = None,
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.name = name
        self.window_ns = int(window_ns)
        self.bounds = (
            tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        )
        #: window index -> Histogram (indices are ``at // window_ns``)
        self.windows: Dict[int, Histogram] = {}
        #: run-wide histogram over the same values, for overall p99.9
        self.total = Histogram(name, self.bounds)

    def record(self, at: int, value: int) -> None:
        index = int(at) // self.window_ns
        hist = self.windows.get(index)
        if hist is None:
            hist = self.windows[index] = Histogram(
                f"{self.name}[{index}]", self.bounds
            )
        hist.record(value)
        self.total.record(value)

    @property
    def count(self) -> int:
        return self.total.count

    def window_indices(self) -> List[int]:
        return sorted(self.windows)

    def series(self, q: float) -> List[Tuple[int, float]]:
        """``(window_index, percentile(q))`` for every non-empty window."""
        return [
            (index, self.windows[index].percentile(q))
            for index in sorted(self.windows)
        ]

    def max_over_windows(self, q: float) -> float:
        """The worst windowed percentile — the spike the run hit."""
        if not self.windows:
            return 0.0
        return max(h.percentile(q) for h in self.windows.values())

    def median_over_windows(self, q: float) -> float:
        """The typical windowed percentile — the run's steady state."""
        if not self.windows:
            return 0.0
        values = sorted(h.percentile(q) for h in self.windows.values())
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0

    def reset(self) -> None:
        self.windows.clear()
        self.total.reset()

    def snapshot(self) -> Dict[str, object]:
        return {
            "window_ns": self.window_ns,
            "windows": len(self.windows),
            "count": self.total.count,
            "p50": self.total.p50,
            "p99": self.total.p99,
            "p999": self.total.percentile(99.9),
            "max_windowed_p999": self.max_over_windows(99.9),
            "median_windowed_p999": self.median_over_windows(99.9),
        }

    def __repr__(self) -> str:
        return (
            f"WindowedHistogram({self.name!r}, window={self.window_ns}ns, "
            f"windows={len(self.windows)}, n={self.total.count})"
        )


class _NullCounter(Counter):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: int) -> None:
        pass

    def add(self, n: int = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", buckets=(1,))

    def record(self, value: int) -> None:
        pass


class _NullWindowedHistogram(WindowedHistogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", window_ns=1, buckets=(1,))

    def record(self, at: int, value: int) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()
NULL_WINDOWED_HISTOGRAM = _NullWindowedHistogram()

#: fn() -> Dict[str, object]; a component-owned snapshot provider
SnapshotSource = Callable[[], Dict[str, object]]

#: fn(span) -> None; called for every finished span (roots and children)
SpanListener = Callable[[Span], None]


class MetricRegistry:
    """Instrument factory + span collector + snapshot aggregator.

    - :meth:`counter` / :meth:`gauge` / :meth:`histogram` create or
      return the named instrument (shared by name).
    - :meth:`start_span` opens a virtual-time :class:`Span`; finished
      root spans are collected (bounded by ``max_spans``) and every
      finished span feeds a ``span.<name>_ns`` duration histogram — the
      basis of the per-layer time breakdown.
    - :meth:`register_source` plugs in a component's own ``snapshot()``
      (e.g. :class:`~repro.sim.stats.DeviceStats`), so legacy stats
      appear in the unified snapshot without per-op double counting.
    - :meth:`trace_io` attaches a bounded :class:`IOLog` to a device.
    """

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._windowed: Dict[str, WindowedHistogram] = {}
        self._sources: Dict[str, SnapshotSource] = {}
        self.spans: List[Span] = []
        self.spans_dropped = 0
        self._span_listeners: List[SpanListener] = []
        self.io_log: Optional[IOLog] = None
        self._io_device = None
        #: the attached :class:`~repro.obs.trace.Tracer`, if any
        self.tracer = None

    # ------------------------------------------------------------------
    # instruments
    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        cell = self._counters.get(name)
        if cell is None:
            cell = self._counters[name] = Counter(name)
        return cell

    def gauge(self, name: str) -> Gauge:
        cell = self._gauges.get(name)
        if cell is None:
            cell = self._gauges[name] = Gauge(name)
        return cell

    def histogram(
        self, name: str, buckets: Optional[Sequence[int]] = None
    ) -> Histogram:
        cell = self._histograms.get(name)
        if cell is None:
            cell = self._histograms[name] = Histogram(name, buckets)
        return cell

    def find_histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram if some component created it, else None."""
        return self._histograms.get(name)

    def windowed_histogram(
        self,
        name: str,
        window_ns: int,
        buckets: Optional[Sequence[int]] = None,
    ) -> WindowedHistogram:
        cell = self._windowed.get(name)
        if cell is None:
            cell = self._windowed[name] = WindowedHistogram(
                name, window_ns, buckets
            )
        return cell

    def find_windowed_histogram(self, name: str) -> Optional[WindowedHistogram]:
        return self._windowed.get(name)

    def register_source(self, name: str, source: SnapshotSource) -> None:
        self._sources[name] = source

    # name-sorted live views, for the time-series sampler: scraping per
    # tick must not build the full nested ``snapshot()`` dict
    def iter_counters(self) -> List[Tuple[str, Counter]]:
        return sorted(self._counters.items())

    def iter_gauges(self) -> List[Tuple[str, Gauge]]:
        return sorted(self._gauges.items())

    def iter_windowed(self) -> List[Tuple[str, WindowedHistogram]]:
        return sorted(self._windowed.items())

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def start_span(
        self, name: str, at: int, parent: Optional[Span] = None, **attrs: object
    ) -> Span:
        if parent is not None:
            return parent.child(name, at, **attrs)
        span = Span(name, at, registry=self, **attrs)
        if self.tracer is not None:
            self.tracer._on_start(span)
        return span

    def _finish_span(self, span: Span) -> None:
        self.histogram(f"span.{span.name}_ns").record(span.duration_ns)
        for listener in self._span_listeners:
            listener(span)
        if span.parent is None:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.spans_dropped += 1

    def add_span_listener(self, listener: SpanListener) -> None:
        """Call ``listener(span)`` for every span as it finishes.

        Unlike the bounded ``spans`` collection, listeners see *every*
        finished span (children included) as a stream — the crash-test
        harness uses this to discover injection points without retaining
        the spans themselves.
        """
        self._span_listeners.append(listener)

    def remove_span_listener(self, listener: SpanListener) -> None:
        self._span_listeners.remove(listener)

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    # ------------------------------------------------------------------
    # device tracing
    # ------------------------------------------------------------------

    def trace_io(self, device, capacity: int = 1_000_000) -> IOLog:
        """Record every operation of ``device`` into a bounded IOLog."""
        if self.io_log is not None:
            raise RuntimeError("registry already traces a device")
        log = IOLog(capacity)

        def listener(kind, nbytes, at, done, sequential):
            log.record(kind, nbytes, at, done, sequential)

        device.add_io_listener(listener)
        self.io_log = log
        self._io_device = (device, listener)
        return log

    def stop_io_trace(self) -> None:
        if self._io_device is not None:
            device, listener = self._io_device
            device.remove_io_listener(listener)
            self._io_device = None

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """One nested dict of everything recorded so far."""
        doc: Dict[str, object] = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
            "windowed": {
                n: w.snapshot() for n, w in sorted(self._windowed.items())
            },
            "sources": {n: fn() for n, fn in sorted(self._sources.items())},
            "spans": {
                "collected": len(self.spans),
                "dropped": self.spans_dropped,
            },
        }
        if self.io_log is not None:
            doc["io"] = {
                "events": len(self.io_log.events),
                "dropped": self.io_log.dropped,
                "totals": self.io_log.totals(),
            }
        return doc

    def reset(self) -> None:
        """Zero every instrument and forget collected spans.

        Registered sources are kept but not reset — they belong to their
        components (call their own ``reset()`` for a new experiment).
        """
        for cell in self._counters.values():
            cell.reset()
        for cell in self._gauges.values():
            cell.reset()
        for cell in self._histograms.values():
            cell.reset()
        for cell in self._windowed.values():
            cell.reset()
        self.spans.clear()
        self.spans_dropped = 0
        if self.io_log is not None:
            self.io_log.reset()
        if self.tracer is not None:
            self.tracer.reset()


class NullRegistry(MetricRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Hot paths may additionally guard whole recording blocks with
    ``if registry.enabled:`` so that disabled runs pay nothing beyond an
    attribute check.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_spans=0)

    def counter(self, name: str) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, buckets: Optional[Sequence[int]] = None
    ) -> Histogram:
        return NULL_HISTOGRAM

    def windowed_histogram(
        self,
        name: str,
        window_ns: int,
        buckets: Optional[Sequence[int]] = None,
    ) -> WindowedHistogram:
        return NULL_WINDOWED_HISTOGRAM

    def register_source(self, name: str, source: SnapshotSource) -> None:
        pass

    def start_span(
        self, name: str, at: int, parent: Optional[Span] = None, **attrs: object
    ):
        return NULL_SPAN

    def snapshot(self) -> Dict[str, object]:
        return {}


NULL_REGISTRY = NullRegistry()
