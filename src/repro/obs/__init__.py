"""Unified observability: metrics, virtual-time spans, tracing, export.

One :class:`MetricRegistry` per simulated machine is the sink for every
layer's accounting — device I/O and queueing, page-cache writeback,
journal commits, syscall traffic, compactions, per-op latency and stall
attribution. The default is :data:`NULL_REGISTRY` (recording disabled,
zero cost); pass a real registry via
``StackConfig(obs=MetricRegistry())`` or ``ScaledConfig(observe=True)``
to turn everything on.

See ``docs/ARCHITECTURE.md`` ("Observability") and
``examples/observability.py`` for walkthroughs.
"""

from repro.obs.events import IOEvent, IOLog
from repro.obs.export import (
    SCHEMA,
    layer_breakdown,
    registry_document,
    to_json,
    write_json,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.spans import NULL_SPAN, Span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "IOEvent",
    "IOLog",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "SCHEMA",
    "Span",
    "layer_breakdown",
    "registry_document",
    "to_json",
    "write_json",
]
