"""Unified observability: metrics, virtual-time spans, tracing, export.

One :class:`MetricRegistry` per simulated machine is the sink for every
layer's accounting — device I/O and queueing, page-cache writeback,
journal commits, syscall traffic, compactions, per-op latency and stall
attribution. The default is :data:`NULL_REGISTRY` (recording disabled,
zero cost); pass a real registry via
``StackConfig(obs=MetricRegistry())`` or ``ScaledConfig(observe=True)``
to turn everything on.

On top of the metric substrate sits causal tracing: attach a
:class:`Tracer` to an enabled registry and every ``put``/``get``/
compaction obtains a trace id that follows the data through memtable,
WAL, minor dump, SSTable write, JBD2 commit and dependency-group
retirement. :func:`write_chrome_trace` exports the result as a
Perfetto-loadable Chrome trace-event file, and
:func:`analyze_write_path` decomposes put latency into named segments.

See ``docs/ARCHITECTURE.md`` ("Observability") and
``examples/observability.py`` / ``examples/tracing.py`` for
walkthroughs.
"""

from repro.obs.critical_path import (
    CriticalPathReport,
    SegmentStat,
    WRITE_SEGMENTS,
    analyze_write_path,
    render_critical_path,
)
from repro.obs.events import IOEvent, IOLog
from repro.obs.export import (
    SCHEMA,
    layer_breakdown,
    registry_document,
    to_json,
    write_json,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.spans import NULL_SPAN, Span
from repro.obs.trace import (
    Tracer,
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "CriticalPathReport",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "IOEvent",
    "IOLog",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NullRegistry",
    "SCHEMA",
    "SegmentStat",
    "Span",
    "Tracer",
    "WRITE_SEGMENTS",
    "analyze_write_path",
    "chrome_trace_document",
    "layer_breakdown",
    "registry_document",
    "render_critical_path",
    "to_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_json",
]
