"""Virtual-time spans with parent/child nesting.

A :class:`Span` covers one logical operation on the virtual clock — a
journal commit, a compaction, a reclamation poll. Spans carry structured
attributes, may nest (``span.child(...)``), and report their duration
once ended. Finished root spans are collected by the registry that
created them.

Spans are time-explicit like everything else in the simulation: the
caller passes the virtual start time at creation and the virtual end
time to :meth:`Span.end`. There is no ambient "current span"; parenthood
is explicit, which keeps the model honest about which thread of virtual
time a span belongs to.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Span:
    """One timed operation: name, [start, end] in virtual ns, attributes."""

    __slots__ = (
        "name",
        "start_ns",
        "end_ns",
        "attrs",
        "parent",
        "children",
        "trace_id",
        "track",
        "_registry",
    )

    def __init__(
        self,
        name: str,
        start_ns: int,
        registry=None,
        parent: "Optional[Span]" = None,
        **attrs: object,
    ) -> None:
        self.name = name
        self.start_ns = int(start_ns)
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, object] = dict(attrs)
        self.parent = parent
        self.children: List[Span] = []
        self.trace_id = 0
        self.track = "client"
        self._registry = registry

    @property
    def ended(self) -> bool:
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return max(self.end_ns - self.start_ns, 0)

    def annotate(self, **attrs: object) -> "Span":
        """Attach (or overwrite) structured attributes."""
        self.attrs.update(attrs)
        return self

    def child(self, name: str, at: int, **attrs: object) -> "Span":
        """Open a nested span starting at virtual time ``at``.

        Children inherit the parent's trace id; the track is whichever
        execution context (tracer track stack) is active *now*, so a
        child created on a background thread lands on that thread's
        track even though its parent started on the client track.
        """
        span = Span(name, at, registry=self._registry, parent=self, **attrs)
        span.trace_id = self.trace_id
        tracer = self._registry.tracer if self._registry is not None else None
        span.track = tracer.current_track if tracer is not None else self.track
        self.children.append(span)
        return span

    def end(self, at: int) -> int:
        """Close the span at virtual time ``at``; returns ``at`` unchanged.

        Ending twice keeps the first end time (idempotent). Root spans
        are handed to the registry on their first end.
        """
        if self.end_ns is None:
            self.end_ns = max(int(at), self.start_ns)
            if self._registry is not None:
                self._registry._finish_span(self)
        return at

    def to_dict(self, include_children: bool = True) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }
        if self.trace_id:
            doc["trace"] = self.trace_id
        if include_children and self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    def __repr__(self) -> str:
        state = f"{self.duration_ns}ns" if self.ended else "open"
        return f"Span({self.name!r}, {state}, attrs={self.attrs})"


class _NullSpan:
    """Shared no-op span returned by the disabled registry."""

    __slots__ = ()

    name = "null"
    start_ns = 0
    end_ns = 0
    attrs: Dict[str, object] = {}
    children: List[Span] = []
    parent = None
    ended = True
    duration_ns = 0
    trace_id = 0
    track = "client"

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    def child(self, name: str, at: int, **attrs: object) -> "_NullSpan":
        return self

    def end(self, at: int) -> int:
        return at

    def to_dict(self, include_children: bool = True) -> Dict[str, object]:
        return {}

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()
